"""Bench: Fig. 6 — fairness irrespective of subflow count."""

import pytest

from _bench_common import emit

from repro.experiments.fig6_fairness import Fig6Config, run_fig6

TIME_SCALE = 0.25


@pytest.mark.parametrize("beta", [4.0, 6.0], ids=["beta4", "beta6"])
def test_fig6_fairness(once, beta):
    result = once(run_fig6, Fig6Config(beta=beta, time_scale=TIME_SCALE))
    s = TIME_SCALE
    lines = [f"beta={beta}: flow rates in the all-active window (Mbps)"]
    for flow in (1, 2, 3, 4):
        rate = result.flow_rate_between(flow, 21 * s, 25 * s)
        lines.append(f"  flow {flow}: {rate / 1e6:7.1f}")
    lines.append(f"Jain index: {result.fairness_all_flows():.4f}")
    emit(f"fig6_fairness_beta{int(beta)}", "\n".join(lines))

    if beta == 4.0:
        # Paper: with beta=4 all four flows share equally regardless of
        # having 3/2/1/1 subflows.
        assert result.fairness_all_flows() > 0.9


def test_fig6_beta4_at_least_as_fair_as_beta6(once):
    def both():
        r4 = run_fig6(Fig6Config(beta=4.0, time_scale=TIME_SCALE))
        r6 = run_fig6(Fig6Config(beta=6.0, time_scale=TIME_SCALE))
        return r4.fairness_all_flows(), r6.fairness_all_flows()

    jain4, jain6 = once(both)
    emit(
        "fig6_beta_comparison",
        f"Jain(beta=4)={jain4:.4f}  Jain(beta=6)={jain6:.4f}",
    )
    assert jain4 > jain6 - 0.05  # beta=4 no less fair (paper: strictly fairer)
