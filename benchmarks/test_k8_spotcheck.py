"""Spot-check at the paper's fabric scale: a k=8 fat tree (128 hosts).

The standing experiments run at k=4 for wall-clock reasons; this bench
runs one short Permutation burst at the paper's k=8 so the headline
ordering (XMP-2 > DCTCP, both using the paper's K=10/beta=4 on 1 Gbps
links) is verified on the fabric where inter-pod pairs really have 16
equal-cost paths.
"""

import dataclasses

from _bench_common import BENCH_BASE, emit

from repro.experiments.fattree_eval import run_fattree

K8 = dataclasses.replace(
    BENCH_BASE,
    k=8,
    duration=0.15,
    perm_size_min=500_000,
    perm_size_max=4_000_000,
)


def test_k8_spotcheck(once):
    def run_pair():
        xmp = run_fattree(dataclasses.replace(K8, scheme="xmp", subflows=2))
        dctcp = run_fattree(dataclasses.replace(K8, scheme="dctcp", subflows=1))
        return xmp, dctcp

    xmp, dctcp = once(run_pair)
    lines = [
        "k=8 fat tree (128 hosts), Permutation, 0.15 s:",
        f"  XMP-2  mean goodput {xmp.mean_goodput_bps('XMP-2') / 1e6:7.1f} Mbps  "
        f"(drops {xmp.total_dropped}, marks {xmp.total_marked}, "
        f"{xmp.events} events)",
        f"  DCTCP  mean goodput {dctcp.mean_goodput_bps('DCTCP') / 1e6:7.1f} Mbps  "
        f"(drops {dctcp.total_dropped}, marks {dctcp.total_marked}, "
        f"{dctcp.events} events)",
    ]
    emit("k8_spotcheck", "\n".join(lines))

    assert xmp.mean_goodput_bps("XMP-2") > dctcp.mean_goodput_bps("DCTCP")
    assert xmp.total_dropped == 0  # marking keeps k=8 queues loss-free too
