"""Ablation: SACK on loss-driven schemes.

The paper's LIA/TCP numbers come from a Linux stack (SACK on) while our
default stack is SACK-less NewReno; this ablation quantifies how much of
the loss-recovery penalty that difference accounts for by re-running the
Random-pattern LIA-2 cell with SACK enabled on the large flows.
"""

import dataclasses
import random

from _bench_common import BENCH_BASE, emit

from repro.mptcp.connection import MptcpConnection
from repro.net.routing import DistinctPathSelector
from repro.topology.fattree import build_fattree
from repro.traffic.factory import TransferFactory
from repro.traffic.random_pattern import RandomPattern


def run_random_lia(sack: bool, duration: float = 0.4):
    """A Random-pattern LIA-2 run with SACK toggled on the large flows."""
    net = build_fattree(k=BENCH_BASE.k)
    factory = TransferFactory(
        net, "lia", subflow_count=2, rng=random.Random(11), label="LIA-2"
    )
    if sack:
        # Route transfer creation through a thin wrapper flipping SACK on.
        original_launch = factory.launch

        def launch_with_sack(src, dst, size_bytes, on_complete=None,
                             subflow_count=None):
            count = subflow_count or factory.subflow_count
            paths = net.paths(src, dst)
            selector = DistinctPathSelector(factory.rng)
            chosen = selector.select(paths, 0, count)
            conn = MptcpConnection(
                net, src, dst, chosen, scheme="lia",
                size_bytes=size_bytes, sack=True,
            )
            conn.on_complete = lambda c, now: _finish(c, now, src, dst,
                                                      size_bytes, on_complete)
            factory.active.append(conn)
            conn.start()
            return conn

        def _finish(conn, now, src, dst, size_bytes, on_complete):
            from repro.metrics.goodput import FlowRecord

            record = FlowRecord(
                conn.flow_id, "LIA-2", src, dst,
                factory.category(src, dst), size_bytes,
                conn.start_time or 0.0, now, conn.delivered_bytes,
            )
            factory.records.append(record)
            if conn in factory.active:
                factory.active.remove(conn)
            if on_complete is not None:
                on_complete(record)

        factory.launch = launch_with_sack

    pattern = RandomPattern(
        factory, net.host_names,
        mean_bytes=BENCH_BASE.random_mean, max_bytes=BENCH_BASE.random_max,
        rng=random.Random(12),
    )
    pattern.start()
    net.sim.run(until=duration)
    records = factory.all_records(duration)
    if not records:
        return 0.0, net.total_dropped()
    mean_goodput = sum(r.goodput_bps(duration) for r in records) / len(records)
    return mean_goodput / 1e6, net.total_dropped()


def test_ablation_sack(once):
    def run_both():
        return run_random_lia(sack=False), run_random_lia(sack=True)

    (without, drops_without), (with_sack, drops_with) = once(run_both)
    emit(
        "ablation_sack",
        "LIA-2, Random pattern, mean goodput (Mbps):\n"
        f"  NewReno (no SACK): {without:.1f}   drops={drops_without}\n"
        f"  with SACK:         {with_sack:.1f}   drops={drops_with}\n"
        "(the paper's Linux stack had SACK; our default does not — this\n"
        " bounds how much of LIA's penalty is recovery mechanics rather\n"
        " than its congestion response)",
    )
    # SACK must not hurt, and usually helps a loss-driven scheme.
    assert with_sack >= without * 0.9
