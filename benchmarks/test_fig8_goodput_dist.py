"""Bench: Fig. 8 — goodput CDFs and per-category percentile bars."""

from _bench_common import BENCH_BASE, BENCH_INCAST, BENCH_JOBS, emit

from repro.experiments.fig8_goodput_dist import run_fig8
from repro.experiments.reporting import format_summary
from repro.metrics.stats import percentile


def render(result) -> str:
    lines = [f"Pattern: {result.pattern}"]
    lines.append("Goodput CDF quantiles (normalized to 1 Gbps):")
    for label, points in result.cdfs.items():
        values = [v for v, _ in points]
        if not values:
            lines.append(f"  {label:<7} (no flows)")
            continue
        qs = "  ".join(
            f"p{q}={percentile(values, q):.3f}" for q in (10, 50, 90)
        )
        lines.append(f"  {label:<7} {qs}  n={len(values)}")
    lines.append("Per-category five-number summaries:")
    for label, by_category in result.by_category.items():
        for category, summary in sorted(by_category.items()):
            lines.append(
                f"  {label:<7} {category:<11} {format_summary(summary)}"
            )
    return "\n".join(lines)


def test_fig8a_permutation_cdf(once):
    result = once(run_fig8, "permutation", BENCH_BASE, jobs=BENCH_JOBS)
    emit("fig8a_permutation", render(result))
    # Paper shape: the XMP-4 CDF sits right of DCTCP's (higher goodput).
    assert result.median("XMP-4") > result.median("DCTCP") * 0.95
    assert result.median("XMP-2") > result.median("LIA-2")


def test_fig8b_incast_cdf(once):
    result = once(run_fig8, "incast", BENCH_INCAST)
    emit("fig8b_incast", render(result))
    assert result.median("XMP-2") > result.median("LIA-2")


def test_fig8cd_categories(once):
    result = once(run_fig8, "permutation", BENCH_BASE)
    by_cat = result.by_category
    # Paper shape (Fig. 8c): DCTCP wins inner-rack; XMP narrows the gap on
    # inter-pod flows via multipath.
    dctcp = by_cat["DCTCP"]
    xmp = by_cat["XMP-2"]
    if "inner-rack" in dctcp and "inner-rack" in xmp:
        assert dctcp["inner-rack"]["p50"] >= 0.5 * xmp["inner-rack"]["p50"]
    if "inter-pod" in dctcp and "inter-pod" in xmp:
        assert xmp["inter-pod"]["p50"] > 0.8 * dctcp["inter-pod"]["p50"]
