"""Ablation: TraSh coupling on vs off.

Two properties separate XMP (BOS + TraSh) from uncoupled BOS subflows:

* fairness — an uncoupled 3-subflow flow takes ~3 shares of a shared
  bottleneck, a coupled one takes ~1 (Fig. 6's point);
* shifting — without the delta coupling, subflows keep pushing into a
  congested path instead of moving traffic to the clean one (Fig. 4's
  point).
"""

from _bench_common import emit

from repro.experiments.fig4_traffic_shifting import Fig4Config, run_fig4
from repro.mptcp.connection import MptcpConnection
from repro.topology.bottleneck import build_single_bottleneck

DURATION = 0.4


def fairness_ratio(scheme: str) -> float:
    """Bytes(3-subflow flow) / bytes(1-subflow flow) on one bottleneck."""
    net = build_single_bottleneck(num_pairs=2, marking_threshold=10)
    multi = MptcpConnection(
        net, "S0", "D0", [net.flow_path(0)] * 3, scheme=scheme
    )
    single = MptcpConnection(net, "S1", "D1", [net.flow_path(1)], scheme=scheme)
    multi.start()
    single.start()
    net.sim.run(until=DURATION)
    return multi.delivered_bytes / max(single.delivered_bytes, 1)


def test_ablation_coupling(once):
    def run_all():
        coupled = fairness_ratio("xmp")
        uncoupled = fairness_ratio("bos-uncoupled")
        shift_coupled = run_fig4(Fig4Config(scheme="xmp", time_scale=0.1))
        return coupled, uncoupled, shift_coupled

    coupled, uncoupled, shift = once(run_all)
    phases = shift.phases()
    baseline = shift.mean_normalized("flow2-1", *phases["baseline"])
    congested = shift.mean_normalized("flow2-1", *phases["bg_on_dn1"])
    lines = [
        "TraSh coupling ablation:",
        f"  3-subflow vs 1-subflow share, coupled (XMP):      {coupled:.2f}x",
        f"  3-subflow vs 1-subflow share, uncoupled BOS:      {uncoupled:.2f}x",
        f"  XMP subflow-1 rate before/after congestion:       "
        f"{baseline:.3f} -> {congested:.3f}",
    ]
    emit("ablation_coupling", "\n".join(lines))

    # Coupled: close to one share. Uncoupled: close to three.
    assert coupled < 1.7
    assert uncoupled > 2.0
    # And the coupled flow genuinely shifts away from congestion.
    assert congested < 0.7 * baseline
