"""Bench: Fig. 4 — traffic shifting on the two-bottleneck testbed."""

import pytest

from _bench_common import emit

from repro.experiments.fig4_traffic_shifting import Fig4Config, run_fig4

#: Compress the paper's 40 s schedule to 10 s of simulated time.
TIME_SCALE = 0.25


@pytest.mark.parametrize("beta", [4.0, 6.0], ids=["beta4", "beta6"])
def test_fig4_traffic_shifting(once, beta):
    result = once(run_fig4, Fig4Config(beta=beta, time_scale=TIME_SCALE))
    phases = result.phases()
    lines = [f"beta={beta}: Flow 2 subflow rates (normalized to 300 Mbps)"]
    for phase, (start, end) in phases.items():
        m1 = result.mean_normalized("flow2-1", start, end)
        m2 = result.mean_normalized("flow2-2", start, end)
        lines.append(f"  {phase:>10}: subflow1={m1:.3f}  subflow2={m2:.3f}")
    emit(f"fig4_shifting_beta{int(beta)}", "\n".join(lines))

    baseline = result.mean_normalized("flow2-1", *phases["baseline"])
    congested = result.mean_normalized("flow2-1", *phases["bg_on_dn1"])
    sibling = result.mean_normalized("flow2-2", *phases["bg_on_dn1"])
    # The paper's claim: traffic shifts off the congested bottleneck and
    # the sibling compensates; beta=4 shifts decisively.
    assert congested < baseline
    if beta == 4.0:
        assert congested < 0.6 * baseline
        assert sibling > result.mean_normalized("flow2-2", *phases["baseline"])
