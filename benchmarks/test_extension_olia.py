"""Extension: OLIA vs LIA on the fat tree (the paper's §7 pointer).

The paper notes TraSh may share LIA's non-Pareto-optimality and that
Khalili et al.'s OLIA could improve it.  This bench runs the Random
pattern with LIA-2 and OLIA-2 and compares mean goodput and per-flow
fairness — establishing the baseline an OLIA-style XMP refinement would
have to beat.
"""

import dataclasses

from _bench_common import BENCH_BASE, emit

from repro.experiments.fattree_eval import run_fattree
from repro.metrics.fairness import jain_index


def test_extension_olia_vs_lia(once):
    def run_pair():
        results = {}
        for scheme in ("lia", "olia"):
            scenario = dataclasses.replace(
                BENCH_BASE, scheme=scheme, subflows=2, pattern="random",
                duration=0.4,
            )
            run = run_fattree(scenario)
            label = scenario.label()
            records = run.all_records(label)
            goodputs = [r.goodput_bps(run.duration) for r in records]
            results[scheme] = (
                run.mean_goodput_bps(label) / 1e6,
                jain_index(goodputs),
                run.total_dropped,
            )
        return results

    results = once(run_pair)
    lines = ["Random pattern, 2 subflows each:"]
    for scheme, (goodput, jain, drops) in results.items():
        lines.append(
            f"  {scheme.upper():<6} goodput {goodput:6.1f} Mbps   "
            f"Jain {jain:.3f}   drops {drops}"
        )
    emit("extension_olia", "\n".join(lines))

    # Both loss-driven couplings are in the same performance class; OLIA
    # must at least not collapse relative to LIA.
    lia_goodput = results["lia"][0]
    olia_goodput = results["olia"][0]
    assert olia_goodput > 0.6 * lia_goodput
    assert results["olia"][1] > 0.3  # sane fairness
