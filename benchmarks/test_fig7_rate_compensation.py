"""Bench: Fig. 7 — rate compensation ('attenuated Dominos') on the torus."""

import pytest

from _bench_common import emit

from repro.experiments.fig7_rate_compensation import Fig7Config, run_fig7

#: Compress the paper's 70 s schedule to 3.5 s; intervals stay hundreds of
#: RTTs long.
TIME_SCALE = 0.05

#: The paper's (beta, K) pairs, K from Eq. 1 with the largest path BDP.
CONFIGS = [(4.0, 20), (5.0, 15), (6.0, 10)]


@pytest.mark.parametrize("beta,threshold", CONFIGS,
                         ids=[f"beta{int(b)}_k{k}" for b, k in CONFIGS])
def test_fig7_rate_compensation(once, beta, threshold):
    result = once(
        run_fig7,
        Fig7Config(beta=beta, marking_threshold=threshold,
                   time_scale=TIME_SCALE),
    )
    s = TIME_SCALE

    def window(name, start, end):
        return result.normalized_mean(name, start * s, end * s)

    lines = [f"beta={beta} K={threshold}: normalized mean subflow rates"]
    lines.append(f"  {'subflow':<9} {'pre(20-25)':>10} {'cong(40-45)':>11} "
                 f"{'closed(65-70)':>13}")
    for i in range(1, 6):
        for j in (1, 2):
            name = f"flow{i}-{j}"
            lines.append(
                f"  {name:<9} {window(name, 20, 25):>10.3f} "
                f"{window(name, 40, 45):>11.3f} {window(name, 65, 70):>13.3f}"
            )
    emit(f"fig7_compensation_beta{int(beta)}", "\n".join(lines))

    # L3 subflows sink under background load and die when L3 closes.
    assert window("flow2-2", 40, 45) < 0.7 * window("flow2-2", 20, 25)
    assert window("flow3-1", 40, 45) < 0.7 * window("flow3-1", 20, 25)
    assert window("flow2-2", 65, 70) < 0.02
    assert window("flow3-1", 65, 70) < 0.02
    # Their siblings compensate.
    assert window("flow2-1", 40, 45) > window("flow2-1", 20, 25)
    assert window("flow3-2", 40, 45) > window("flow3-2", 20, 25)
