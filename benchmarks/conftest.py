"""Fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
scaled-down defaults of DESIGN.md §4; shared scenario settings and the
output helper live in ``_bench_common``.  All fat-tree benches route
their simulations through the :mod:`repro.runner` cache, so the modules
that share a scenario grid (Table 1 and Figs. 8/10/11 use the same
simulations) pay for each cell once per pytest session.

Two environment knobs extend that:

* ``REPRO_BENCH_CACHE`` — attach the runner's *disk* tier so warm runs
  skip simulation across sessions: ``1`` uses ``benchmarks/.cache``, any
  other value is taken as the cache directory.  Off by default so code
  changes can never be masked by stale results.
* ``REPRO_BENCH_JOBS`` — fan grid cells over N worker processes
  (deterministic; see ``_bench_common.BENCH_JOBS``).
"""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture(scope="session", autouse=True)
def _bench_run_cache():
    """Optionally attach a persistent disk tier to the runner cache."""
    target = os.environ.get("REPRO_BENCH_CACHE")
    if not target:
        yield
        return
    from repro.runner.cache import DiskCache, default_cache

    if target == "1":
        directory = pathlib.Path(__file__).parent / ".cache"
    else:
        directory = pathlib.Path(target).expanduser()
    cache = default_cache()
    previous = cache.disk
    cache.disk = DiskCache(directory)
    print(f"\n[runner] benchmark disk cache: {directory}")
    yield
    cache.disk = previous


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (simulations are their own
    statistics; repeating a deterministic 10-second run adds nothing)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
