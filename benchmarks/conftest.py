"""Fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
scaled-down defaults of DESIGN.md §4; shared scenario settings and the
output helper live in ``_bench_common``.  The fat-tree benches share one
scenario grid through the driver's in-process cache, so e.g. Table 1 and
Figs. 8/10/11 pay for each simulation once per pytest session.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (simulations are their own
    statistics; repeating a deterministic 10-second run adds nothing)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
