"""Ablation: the beta/K trade-off (paper Eq. 1 and §2.1).

For beta in 2..6 we run one XMP flow at (a) the Eq.-1-derived minimum K
and (b) a deliberately too-small K, recording utilization and mean queue.
The claims: at the Eq. 1 bound the link stays busy; below it throughput
drops; larger beta admits a smaller K and hence lower queueing delay.
"""

import math

from _bench_common import emit

from repro.core.utility import min_marking_threshold
from repro.metrics.collector import QueueMonitor
from repro.mptcp.connection import MptcpConnection
from repro.sim.units import bandwidth_delay_product_packets
from repro.topology.bottleneck import build_single_bottleneck

RATE = 1e9
RTT = 225e-6
DURATION = 0.4
BETAS = (2.0, 3.0, 4.0, 5.0, 6.0)


def run_cell(beta: float, threshold: int):
    net = build_single_bottleneck(
        num_pairs=1, bottleneck_rate_bps=RATE, rtt=RTT,
        marking_threshold=threshold,
    )
    monitor = QueueMonitor(net.sim, [net.forward_bottleneck], 0.001)
    monitor.start()
    MptcpConnection(net, "S0", "D0", [net.flow_path(0)],
                    scheme="xmp", beta=beta).start()
    net.sim.run(until=DURATION)
    return (
        net.forward_bottleneck.utilization(DURATION),
        monitor.mean_occupancy(net.forward_bottleneck.name),
    )


def test_ablation_beta_k(once):
    def sweep():
        bdp = bandwidth_delay_product_packets(RATE, RTT)
        rows = []
        for beta in BETAS:
            bound = int(math.ceil(min_marking_threshold(bdp, beta)))
            at_bound = run_cell(beta, bound + 1)
            below = run_cell(beta, max(1, bound // 4))
            rows.append((beta, bound, at_bound, below))
        return rows

    rows = once(sweep)
    lines = ["beta   Eq1-K   util@K    q@K   util@K/4   q@K/4"]
    for beta, bound, (u1, q1), (u2, q2) in rows:
        lines.append(
            f"{beta:4.0f} {bound:6d} {u1:9.3f} {q1:6.1f} {u2:10.3f} {q2:7.1f}"
        )
    emit("ablation_beta_k", "\n".join(lines))

    for beta, bound, (util_at, queue_at), (util_below, _) in rows:
        assert util_at > 0.9, f"beta={beta} under-utilized at the Eq.1 bound"
        assert util_below < util_at, f"beta={beta}: tiny K should cost throughput"
    # Larger beta -> smaller bound -> lower queueing delay at the bound.
    queue_means = [q for _, _, (_, q), _ in rows]
    assert queue_means[-1] < queue_means[0]
