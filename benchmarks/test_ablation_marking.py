"""Ablation: instantaneous-threshold marking vs RED/EWMA (paper §2.1).

The paper argues the averaged queue is the wrong congestion metric for
DCNs: with ultra-low RTTs and low statistical multiplexing, the EWMA lags
the bursts that actually fill buffers.  We run the same two XMP flows
over (a) the paper's threshold rule, (b) RED with a slow EWMA and the
classic 5/15 thresholds, and compare buffer occupancy and drops.
"""

import random

from _bench_common import emit

from repro.metrics.collector import QueueMonitor
from repro.mptcp.connection import MptcpConnection
from repro.net.queue import REDQueue
from repro.topology.bottleneck import build_single_bottleneck

DURATION = 0.4


def run_variant(queue_mode: str):
    net = build_single_bottleneck(num_pairs=2, marking_threshold=10)
    if queue_mode == "red":
        for link in net.links_by_layer("bottleneck"):
            link.queue = REDQueue(
                capacity=100, min_threshold=5, max_threshold=15,
                max_probability=0.1, weight=0.002, rng=random.Random(7),
            )
    monitor = QueueMonitor(net.sim, [net.forward_bottleneck], 0.0005)
    monitor.start()
    for i in range(2):
        MptcpConnection(
            net, f"S{i}", f"D{i}", [net.flow_path(i)], scheme="xmp"
        ).start()
    net.sim.run(until=DURATION)
    name = net.forward_bottleneck.name
    return {
        "mean_queue": monitor.mean_occupancy(name),
        "max_queue": monitor.max_occupancy(name),
        "drops": net.total_dropped(),
        "marks": net.total_marked(),
        "utilization": net.forward_bottleneck.utilization(DURATION),
    }


def test_ablation_marking(once):
    def run_both():
        return run_variant("threshold"), run_variant("red")

    threshold, red = once(run_both)
    lines = ["Marking-rule ablation (two XMP flows, 1 Gbps bottleneck):"]
    for name, stats in (("threshold K=10", threshold), ("RED/EWMA 5/15", red)):
        lines.append(
            f"  {name:<16} mean_q={stats['mean_queue']:6.1f}  "
            f"max_q={stats['max_queue']:3d}  drops={stats['drops']:4d}  "
            f"marks={stats['marks']:5d}  util={stats['utilization']:.3f}"
        )
    emit("ablation_marking", "\n".join(lines))

    # The instantaneous rule keeps the queue pinned near K; the lagging
    # average lets it ride far higher (and with DropTail-style dynamics,
    # reach for the buffer cap).
    assert threshold["mean_queue"] < red["mean_queue"]
    assert threshold["max_queue"] < red["max_queue"]
    assert threshold["drops"] == 0
