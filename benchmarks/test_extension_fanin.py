"""Extension: incast fan-in sweep.

The paper fixes jobs at 8 servers; this extension sweeps the fan-in to
locate the incast cliff — the fan-in at which the synchronized response
burst overflows the client port's free buffer (queue capacity minus the
~K packets the marked bulk flows occupy) and JCTs jump by RTOmin.  It
exercises the same machinery as Fig. 9 along the axis the incast
literature (Vasudevan et al.) cares about.
"""

import random

from _bench_common import emit

from repro.metrics.stats import percentile
from repro.topology.fattree import build_fattree
from repro.traffic.factory import TransferFactory
from repro.traffic.incast import IncastPattern

FAN_INS = (2, 4, 8, 12)
DURATION = 1.0


def run_fanin(servers: int):
    net = build_fattree(k=4)
    factory = TransferFactory(net, "tcp", rng=random.Random(21))
    pattern = IncastPattern(
        factory, net.host_names, servers_per_job=servers,
        concurrent_jobs=4, rng=random.Random(22),
    )
    pattern.start()
    net.sim.run(until=DURATION)
    jcts = pattern.completion_times()
    return jcts, net.total_dropped()


def test_extension_fanin_sweep(once):
    def sweep():
        return {servers: run_fanin(servers) for servers in FAN_INS}

    results = once(sweep)
    lines = ["Incast fan-in sweep (no background load, 4 concurrent jobs):",
             f"  {'fan-in':>7} {'jobs':>5} {'p50 (ms)':>9} {'p90 (ms)':>9} "
             f"{'collapsed':>10} {'drops':>6}"]
    collapse_fraction = {}
    for servers, (jcts, drops) in results.items():
        collapsed = sum(1 for jct in jcts if jct > 0.18)
        collapse_fraction[servers] = collapsed / len(jcts) if jcts else 1.0
        lines.append(
            f"  {servers:>7} {len(jcts):>5} "
            f"{percentile(jcts, 50) * 1e3:>9.1f} "
            f"{percentile(jcts, 90) * 1e3:>9.1f} "
            f"{collapsed:>10} {drops:>6}"
        )
    emit("extension_fanin", "\n".join(lines))

    # Small fan-in: bursts fit the buffer, almost no collapses; collapse
    # probability grows with fan-in.
    assert collapse_fraction[2] < 0.2
    assert collapse_fraction[12] >= collapse_fraction[2]
