"""Bench: Table 1 — average goodput per scheme per traffic pattern."""

from _bench_common import BENCH_BASE, BENCH_INCAST, BENCH_JOBS, emit

from repro.experiments.table1_goodput import PAPER_TABLE1, run_table1


def run_full_table1():
    """Permutation/Random cells at the standard horizon, Incast at the
    longer one (shared, via the result cache, with Figs. 8-11/Table 3)."""
    bulk = run_table1(BENCH_BASE, patterns=("permutation", "random"),
                      jobs=BENCH_JOBS)
    incast = run_table1(BENCH_INCAST, patterns=("incast",), jobs=BENCH_JOBS)
    for label, cells in incast.goodput_mbps.items():
        bulk.goodput_mbps[label]["incast"] = cells["incast"]
    bulk.patterns = ("permutation", "random", "incast")
    return bulk


def test_table1_goodput(once):
    result = once(run_full_table1)
    lines = [result.format(), "", "Paper (k=8, 600 GB):"]
    for label, row in PAPER_TABLE1.items():
        lines.append(
            f"  {label:<6} perm={row['permutation']:.1f}  "
            f"rand={row['random']:.1f}  incast={row['incast']:.1f}"
        )
    emit("table1_goodput", "\n".join(lines))

    goodput = result.goodput_mbps
    for pattern in ("permutation", "random", "incast"):
        # Headline orderings of the paper's Table 1.
        assert goodput["XMP-2"][pattern] > goodput["DCTCP"][pattern] * 0.95
        assert goodput["XMP-2"][pattern] > goodput["LIA-2"][pattern]
        assert goodput["XMP-4"][pattern] > goodput["LIA-2"][pattern]
    # LIA gains a lot from extra subflows; XMP needs far fewer.
    assert all(
        goodput["LIA-4"][p] > goodput["LIA-2"][p] for p in goodput["LIA-4"]
    )
