"""Shared scenario base and output helper for the benchmark harness.

(Separate from conftest.py so benches import it under a stable name.)
"""

from __future__ import annotations

import dataclasses
import os
import pathlib

from repro.experiments.fattree_eval import FatTreeScenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Worker processes for grid benches (``REPRO_BENCH_JOBS=N``); results
#: are bit-identical to serial, only wall-clock changes.
BENCH_JOBS = max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))

#: The shared fat-tree evaluation grid (k=4; paper link parameters; scaled
#: flow sizes; 0.5 s of simulated time per cell).
BENCH_BASE = FatTreeScenario(duration=0.5, seed=1)

#: Incast cells run longer so enough jobs complete for stable JCT
#: statistics (a job that trips one 200 ms RTO already eats 40% of the
#: short horizon).
BENCH_INCAST = dataclasses.replace(BENCH_BASE, duration=1.5)


def base_for(pattern: str) -> FatTreeScenario:
    """The bench scenario base appropriate for a traffic pattern."""
    return BENCH_INCAST if pattern == "incast" else BENCH_BASE


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
