"""Bench: Fig. 9 — incast job-completion-time CDF."""

from _bench_common import BENCH_INCAST, emit

from repro.experiments.fig9_jct_cdf import run_jct
from repro.metrics.stats import percentile


def test_fig9_jct_cdf(once):
    result = once(run_jct, BENCH_INCAST)
    lines = ["JCT CDF quantiles (ms):"]
    for label, jcts in result.jcts.items():
        if not jcts:
            lines.append(f"  {label:<7} (no completed jobs)")
            continue
        qs = "  ".join(
            f"p{q}={percentile(jcts, q) * 1e3:.1f}" for q in (10, 50, 90, 99)
        )
        lines.append(
            f"  {label:<7} {qs}  n={len(jcts)}/{result.jobs_started[label]}"
        )
    emit("fig9_jct_cdf", "\n".join(lines))

    # Paper shapes: the fast mass of the CDF sits ~10 ms for ECN schemes
    # and a cliff near RTOmin (~200 ms) marks incast collapses.
    for label in ("DCTCP", "XMP-2"):
        assert percentile(result.jcts[label], 50) < 0.1
    # Every scheme has jobs that finish before any collapse...
    for label in result.jcts:
        assert percentile(result.jcts[label], 10) < 0.05
    # ...and LIA's collapses are at least as common as XMP's.
    assert max(result.jcts["LIA-2"]) > 0.18
    assert percentile(result.jcts["LIA-2"], 90) >= percentile(
        result.jcts["XMP-2"], 90
    ) * 0.8

    # "It might not be a good practice to establish too many subflows":
    # XMP-4 saturates every path, so more of its jobs hit the RTO cliff
    # than XMP-2's (the paper's ~8%-second-collapse observation, amplified
    # at k=4 where 4 subflows cover all equal-cost paths).
    def collapse_fraction(label):
        jcts = result.jcts[label]
        return sum(1 for j in jcts if j > 0.18) / len(jcts)

    assert collapse_fraction("XMP-4") >= collapse_fraction("XMP-2") * 0.8
