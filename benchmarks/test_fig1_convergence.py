"""Bench: Fig. 1 — convergence/fairness of DCTCP vs constant-factor cuts."""

import pytest

from _bench_common import emit

from repro.experiments.fig1_convergence import Fig1Config, run_fig1

#: One simulated second per join/leave step (the paper used 5 s; 1 s is
#: ~4400 RTTs at 225 us, ample for steady state).
INTERVAL = 1.0


@pytest.mark.parametrize(
    "scheme,threshold",
    [("dctcp", 10), ("dctcp", 20), ("bos", 10), ("bos", 20)],
    ids=["dctcp_k10", "dctcp_k20", "halving_k10", "halving_k20"],
)
def test_fig1_convergence(once, scheme, threshold):
    config = Fig1Config(
        scheme=scheme,
        beta=2.0,  # "halving cwnd" panels
        marking_threshold=threshold,
        interval=INTERVAL,
        sample_interval=0.02,
    )
    result = once(run_fig1, config)
    lines = [f"{scheme} K={threshold}: steady-state Jain index per segment"]
    for start, end, active, jain in result.segments:
        lines.append(
            f"  t=[{start:4.1f},{end:4.1f})s  active={active}  jain={jain:.4f}"
        )
    lines.append(f"worst multi-flow Jain: {result.worst_jain():.4f}")
    lines.append(
        "mean convergence time (30% band): "
        f"{result.mean_convergence_time():.3f}s of {INTERVAL:.1f}s segments"
    )
    emit(f"fig1_{scheme}_k{threshold}", "\n".join(lines))

    # Paper shape: the constant-factor cut converges to a fair share in
    # every segment; at K=20 both schemes utilize the link fully.
    if scheme == "bos":
        assert result.worst_jain() > 0.9
    # All schemes keep the single-flow segments at full rate.
    last_segment = result.segments[-1]
    assert last_segment[2] == 1
