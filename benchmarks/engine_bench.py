"""The engine perf-trajectory runner: measures events/sec, gates CI.

This is the substrate speedometer.  It times a small set of canonical
cells — two scheduler microbenches plus full experiment cells (the Fig. 1
convergence bottleneck, a k=4 fat-tree permutation, the incast cell) —
and maintains ``BENCH_engine.json`` at the repository root as an
append-only *trajectory*: one history entry per recorded engine state,
so speedups (and regressions) are visible in the diff of a single file.

Usage::

    python benchmarks/engine_bench.py                  # measure + print
    python benchmarks/engine_bench.py --record LABEL   # append to trajectory
    python benchmarks/engine_bench.py --check          # compare vs last entry
    python benchmarks/engine_bench.py --check --threshold 0.15

``--check`` is what ``scripts/check.sh --bench`` and the CI job run: it
re-measures every cell present in the last trajectory entry and fails
when any falls more than ``threshold`` (default 15%) below the recorded
events/sec.  Cells are measured best-of-N (``REPRO_BENCH_REPEATS``,
default 3) to shave scheduler noise; absolute numbers are still
host-dependent, which is why the gate is a generous ratio, not an
equality.

The harness runs against both the seed binary-heap engine and the
calendar-queue engine: it feature-detects ``Simulator.post`` (the
allocation-free fast path) and ``Link`` batching, and simply omits cells
the engine under test cannot run, so the committed baseline entry really
was measured on the seed engine with the same workloads.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Any, Callable, Dict, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_engine.json"
BENCH_VERSION = 1

#: Best-of-N repetitions per cell.
REPEATS = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "3")))

#: Default CI regression gate: fail when a cell drops below
#: ``(1 - threshold)`` of the last recorded events/sec.
DEFAULT_THRESHOLD = 0.15


def _ensure_src_on_path() -> None:
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


# ----------------------------------------------------------------------
# Cells.  Each returns (events_fired, wall_seconds).
# ----------------------------------------------------------------------


def cell_micro_schedule_fire() -> Tuple[int, float]:
    """Schedule 100k cancellable events up front, then drain the loop.

    Exercises the full :meth:`Simulator.schedule` path (handle object,
    cancellation bookkeeping) plus the far-horizon structure: events are
    spread over 100 ms, far beyond any near-time window.
    """
    from repro.sim.engine import Simulator

    sim = Simulator()
    noop = lambda: None  # noqa: E731 - the cheapest possible callback
    n = 100_000
    started = time.perf_counter()
    schedule = sim.schedule
    for i in range(n):
        schedule(i * 1e-6, noop)
    sim.run()
    return sim.events_processed, time.perf_counter() - started


def cell_micro_hotpath_fire() -> Tuple[int, float]:
    """Self-scheduling event chains: the pattern the packet layers drive.

    Eight concurrent chains, each event posting its successor a few
    microseconds ahead — the shape of link serialization/propagation
    traffic.  Uses :meth:`Simulator.post` (the allocation-free path) when
    the engine provides it, else falls back to :meth:`schedule`, so the
    same cell runs on the seed engine.
    """
    from repro.sim.engine import Simulator

    sim = Simulator()
    post = getattr(sim, "post", None)
    n = 200_000
    fired = [0]

    if post is not None:
        def tick() -> None:
            fired[0] += 1
            if fired[0] < n:
                post(1.3e-6, tick)
    else:
        def tick() -> None:
            fired[0] += 1
            if fired[0] < n:
                sim.schedule(1.3e-6, tick)

    for lane in range(8):
        sim.schedule(lane * 1e-7, tick)
    started = time.perf_counter()
    sim.run()
    return sim.events_processed, time.perf_counter() - started


def cell_fig1_convergence() -> Tuple[int, float]:
    """The Fig. 1 shape: XMP flows converging on one ECN bottleneck."""
    from repro.mptcp.connection import MptcpConnection
    from repro.topology.bottleneck import build_single_bottleneck

    net = build_single_bottleneck(num_pairs=2, marking_threshold=10)
    path0 = net.flow_path(0)
    conns = [
        MptcpConnection(net, "S0", "D0", [path0, path0], scheme="xmp",
                        size_bytes=2_000_000),
        MptcpConnection(net, "S1", "D1", [net.flow_path(1)], scheme="xmp",
                        size_bytes=2_000_000),
    ]
    for conn in conns:
        conn.start()
    started = time.perf_counter()
    net.sim.run(until=1.0)
    return net.sim.events_processed, time.perf_counter() - started


def _fattree_cell(pattern: str, batch: int) -> Tuple[int, float]:
    from repro.experiments.fattree_eval import FatTreeScenario, _simulate

    scenario = FatTreeScenario(pattern=pattern, duration=0.02, k=4, seed=1)
    previous = os.environ.get("REPRO_LINK_BATCH")
    if batch > 1:
        os.environ["REPRO_LINK_BATCH"] = str(batch)
    try:
        started = time.perf_counter()
        result = _simulate(scenario)
        wall = time.perf_counter() - started
    finally:
        if batch > 1:
            if previous is None:
                os.environ.pop("REPRO_LINK_BATCH", None)
            else:
                os.environ["REPRO_LINK_BATCH"] = previous
    return result.events, wall


def cell_fattree_permutation() -> Tuple[int, float]:
    """A k=4 fat-tree permutation cell (exact per-packet link service)."""
    return _fattree_cell("permutation", batch=1)


def cell_fattree_incast() -> Tuple[int, float]:
    """The incast cell: RTO-dominated fan-in on a k=4 fat tree."""
    return _fattree_cell("incast", batch=1)


def cell_fattree_permutation_batched() -> Tuple[int, float]:
    """The permutation cell under batched link service (train size 16)."""
    return _fattree_cell("permutation", batch=16)


def cell_fluid_fattree_k16() -> Tuple[int, float]:
    """The fluid backend at scale the packet engine cannot reach: a k=16
    fat tree (1,024 hosts, 6,144 directed links) under 10,240 long-lived
    XMP-2 flows, integrated by the numpy vector solver.  Events are ODE
    state updates — the fluid backend's events-processed equivalent, so
    events/sec stays the cross-backend throughput currency.
    """
    from repro.fluid.backend import FluidScenario, _simulate

    scenario = FluidScenario(
        scheme="xmp", topology="fattree", flows=10_240, subflows=2,
        duration=0.005, k=16, solver="vector",
    )
    started = time.perf_counter()
    result = _simulate(scenario)
    return result.events, time.perf_counter() - started


def _fluid_vector_available() -> bool:
    from repro.fluid.solver import vector_available

    return vector_available()


def _engine_supports_batching() -> bool:
    from repro.net.link import Link

    return "batch" in getattr(Link, "__slots__", ())


#: Cell name -> (function, availability predicate or None).
CELLS: Dict[str, Tuple[Callable[[], Tuple[int, float]],
                       Optional[Callable[[], bool]]]] = {
    "micro_schedule_fire": (cell_micro_schedule_fire, None),
    "micro_hotpath_fire": (cell_micro_hotpath_fire, None),
    "fig1_convergence": (cell_fig1_convergence, None),
    "fattree_permutation": (cell_fattree_permutation, None),
    "fattree_incast": (cell_fattree_incast, None),
    "fattree_permutation_batched": (
        cell_fattree_permutation_batched, _engine_supports_batching
    ),
    "fluid_fattree_k16": (cell_fluid_fattree_k16, _fluid_vector_available),
}


# ----------------------------------------------------------------------
# Measurement and the trajectory file
# ----------------------------------------------------------------------


def measure_cell(name: str) -> Optional[Dict[str, Any]]:
    """Best-of-``REPEATS`` measurement of one cell (``None`` if N/A)."""
    fn, available = CELLS[name]
    if available is not None and not available():
        return None
    best: Optional[Dict[str, Any]] = None
    for _ in range(REPEATS):
        events, wall = fn()
        rate = events / wall if wall > 0 else 0.0
        if best is None or rate > best["events_per_sec"]:
            best = {
                "events": events,
                "wall_s": round(wall, 4),
                "events_per_sec": round(rate, 1),
            }
    return best


def measure_all() -> Dict[str, Dict[str, Any]]:
    _ensure_src_on_path()
    results: Dict[str, Dict[str, Any]] = {}
    for name in CELLS:
        cell = measure_cell(name)
        if cell is not None:
            results[name] = cell
            print(f"  {name:<32} {cell['events']:>9,} events  "
                  f"{cell['wall_s']:>8.3f}s  {cell['events_per_sec']:>12,.0f} ev/s")
        else:
            print(f"  {name:<32} (not supported by this engine; skipped)")
    return results


def load_trajectory() -> Dict[str, Any]:
    if BENCH_FILE.exists():
        with open(BENCH_FILE, "r", encoding="utf-8") as handle:
            return json.load(handle)
    return {"version": BENCH_VERSION, "history": []}


def save_trajectory(data: Dict[str, Any]) -> None:
    with open(BENCH_FILE, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def record(label: str) -> int:
    print(f"recording trajectory entry {label!r} (best of {REPEATS}):")
    cells = measure_all()
    data = load_trajectory()
    entry = {
        "label": label,
        "python": ".".join(str(part) for part in sys.version_info[:3]),
        "cells": cells,
    }
    history = [e for e in data.get("history", []) if e.get("label") != label]
    history.append(entry)
    data["history"] = history
    data["version"] = BENCH_VERSION
    save_trajectory(data)
    print(f"wrote {BENCH_FILE.relative_to(REPO_ROOT)} "
          f"({len(history)} trajectory entries)")
    _print_trajectory(history)
    return 0


def _print_trajectory(history: Any) -> None:
    if len(history) < 2:
        return
    first, last = history[0], history[-1]
    print(f"\ntrajectory {first['label']!r} -> {last['label']!r}:")
    for name, cell in last["cells"].items():
        base = first["cells"].get(name)
        if base is None:
            print(f"  {name:<32} {cell['events_per_sec']:>12,.0f} ev/s  (new cell)")
            continue
        ratio = cell["events_per_sec"] / base["events_per_sec"]
        print(f"  {name:<32} {base['events_per_sec']:>12,.0f} -> "
              f"{cell['events_per_sec']:>12,.0f} ev/s  ({ratio:.2f}x)")


def check(threshold: float) -> int:
    data = load_trajectory()
    history = data.get("history", [])
    if not history:
        print(f"error: {BENCH_FILE.name} has no recorded trajectory entry; "
              "run with --record LABEL first", file=sys.stderr)
        return 2
    recorded = history[-1]
    print(f"checking against trajectory entry {recorded['label']!r} "
          f"(fail below {100 * (1 - threshold):.0f}% of recorded events/sec):")
    failures = []
    for name, base in recorded["cells"].items():
        if name not in CELLS:
            print(f"  {name:<32} (unknown cell in trajectory; skipped)")
            continue
        cell = measure_cell(name)
        if cell is None:
            failures.append(f"{name}: recorded in trajectory but no longer "
                            "supported by the engine")
            continue
        ratio = cell["events_per_sec"] / base["events_per_sec"]
        verdict = "ok" if ratio >= 1.0 - threshold else "REGRESSION"
        print(f"  {name:<32} {base['events_per_sec']:>12,.0f} ev/s recorded, "
              f"{cell['events_per_sec']:>12,.0f} measured  "
              f"({ratio:.2f}x)  {verdict}")
        if ratio < 1.0 - threshold:
            failures.append(
                f"{name}: {cell['events_per_sec']:,.0f} ev/s is "
                f"{100 * (1 - ratio):.1f}% below the recorded "
                f"{base['events_per_sec']:,.0f}"
            )
    if failures:
        print("\nperformance regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print("(if the slowdown is intentional, re-record with "
              "`python benchmarks/engine_bench.py --record LABEL` and commit "
              "the updated BENCH_engine.json)", file=sys.stderr)
        return 1
    print("bench gate ok")
    return 0


def main(argv: Any = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", metavar="LABEL",
                        help="measure and append a trajectory entry")
    parser.add_argument("--check", action="store_true",
                        help="measure and fail on regression vs the last entry")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional drop for --check "
                             f"(default {DEFAULT_THRESHOLD})")
    args = parser.parse_args(argv)
    _ensure_src_on_path()
    if args.record and args.check:
        parser.error("--record and --check are mutually exclusive")
    if args.record:
        return record(args.record)
    if args.check:
        return check(args.threshold)
    print(f"measuring (best of {REPEATS}):")
    measure_all()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
