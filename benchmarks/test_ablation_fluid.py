"""Ablation: fluid model (Eq. 2) vs the packet-level simulator.

The paper derives BOS from the window ODE of Eq. 2 and its equilibrium
Eq. 3.  This bench integrates that fluid model for N flows on a marked
1 Gbps link and compares steady-state windows, queue and aggregate rate
against the packet simulator configured identically — the strongest
internal-consistency check the reproduction has.
"""

import pytest

from _bench_common import emit

from repro.core import fluid
from repro.metrics.collector import QueueMonitor
from repro.mptcp.connection import MptcpConnection
from repro.topology.bottleneck import build_single_bottleneck

CAPACITY = 1e9
BASE_RTT = 225e-6
THRESHOLD = 10
FLOW_COUNTS = (1, 2, 4)


def packet_run(num_flows: int):
    net = build_single_bottleneck(
        num_pairs=num_flows, bottleneck_rate_bps=CAPACITY, rtt=BASE_RTT,
        marking_threshold=THRESHOLD,
    )
    monitor = QueueMonitor(net.sim, [net.forward_bottleneck], 0.001)
    monitor.start()
    connections = []
    for i in range(num_flows):
        conn = MptcpConnection(net, f"S{i}", f"D{i}", [net.flow_path(i)],
                               scheme="xmp")
        conn.start()
        connections.append(conn)
    net.sim.run(until=0.3)
    windows = [c.subflows[0].sender.cwnd for c in connections]
    queue = monitor.mean_occupancy(net.forward_bottleneck.name)
    return windows, queue


def test_ablation_fluid_vs_packet(once):
    def compare():
        rows = []
        for n in FLOW_COUNTS:
            fluid_result = fluid.integrate_shared_link(
                num_flows=n, capacity_bps=CAPACITY, base_rtt=BASE_RTT,
                threshold=THRESHOLD, duration=0.25,
            )
            fluid_w = sum(fluid_result.steady_state_windows()) / n
            fluid_q = fluid_result.steady_state_queue()
            packet_w_list, packet_q = packet_run(n)
            packet_w = sum(packet_w_list) / n
            rows.append((n, fluid_w, packet_w, fluid_q, packet_q))
        return rows

    rows = once(compare)
    lines = ["flows   fluid w   packet w   fluid q   packet q"]
    for n, fw, pw, fq, pq in rows:
        lines.append(f"{n:5d} {fw:9.1f} {pw:10.1f} {fq:9.1f} {pq:10.1f}")
    emit("ablation_fluid_vs_packet", "\n".join(lines))

    for n, fluid_w, packet_w, fluid_q, packet_q in rows:
        # Mean windows within ~60% (the packet system is a sawtooth the
        # fluid limit averages out), queues within a handful of packets.
        assert packet_w == pytest.approx(fluid_w, rel=0.6)
        assert abs(packet_q - fluid_q) < 8
