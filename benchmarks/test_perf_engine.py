"""Performance microbenchmarks of the simulator core.

Unlike the experiment benches (which run once and print paper tables),
these measure the substrate's raw speed — the number that bounds how much
simulated traffic a wall-clock second buys.  Useful for catching
performance regressions in the event loop, link pipeline or TCP path.
"""

from repro.mptcp.connection import MptcpConnection
from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import DATA, Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.topology.bottleneck import build_single_bottleneck


def test_engine_schedule_run_throughput(benchmark):
    """Schedule + fire 10k no-op events."""

    def run():
        sim = Simulator()
        noop = lambda: None
        for i in range(10_000):
            sim.schedule(i * 1e-6, noop)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 10_000


def test_link_pipeline_throughput(benchmark):
    """Push 5k packets through one link (serialization + propagation)."""

    class Sink(Node):
        __slots__ = ("count",)

        def __init__(self, sim, name):
            super().__init__(sim, name)
            self.count = 0

        def receive(self, packet):
            self.count += 1

    def run():
        sim = Simulator()
        dst = Sink(sim, "dst")
        link = Link(sim, "L", Sink(sim, "src"), dst, 10e9, 1e-6,
                    DropTailQueue(10_000))
        for _ in range(5_000):
            link.enqueue(Packet(DATA, 1500, 0, 0))
        sim.run()
        return dst.count

    delivered = benchmark(run)
    assert delivered == 5_000


def test_tcp_transfer_events_per_second(benchmark):
    """A complete 2 MB XMP transfer over one bottleneck — the end-to-end
    cost per simulated event with the full transport stack engaged."""

    def run():
        net = build_single_bottleneck(num_pairs=1, marking_threshold=10)
        conn = MptcpConnection(net, "S0", "D0", [net.flow_path(0)],
                               scheme="xmp", size_bytes=2_000_000)
        conn.start()
        net.sim.run(until=1.0)
        assert conn.completed
        return net.sim.events_processed

    events = benchmark(run)
    assert events > 10_000
