"""Overhead benchmarks for the observability layer (repro.obs).

Two readings matter:

* ``test_perf_engine.test_engine_schedule_run_throughput`` vs.
  ``test_engine_throughput_profiled`` here is the *enabled* cost of the
  profiler's timed dispatch (two clock reads + one dict update per
  event);
* the ``test_perf_engine`` numbers themselves, tracked across commits,
  guard the *disabled* cost — an unprofiled simulator pays one aliased
  ``is None`` branch per event and one per ``schedule()``, bounded at
  <3% by the zero-cost contract (see OBSERVABILITY.md).
"""

from repro.mptcp.connection import MptcpConnection
from repro.obs import Profiler, profiling
from repro.sim.engine import Simulator
from repro.topology.bottleneck import build_single_bottleneck


def test_engine_throughput_profiled(benchmark):
    """Schedule + fire 10k no-op events under an attached profiler."""

    def run():
        sim = Simulator()
        profiler = Profiler()
        profiler.attach(sim)
        noop = lambda: None
        for i in range(10_000):
            sim.schedule(i * 1e-6, noop)
        sim.run()
        return profiler.snapshot()

    snap = benchmark(run)
    assert snap.events == 10_000
    assert snap.heap.pushes == 10_000


def test_tcp_transfer_profiled(benchmark):
    """The full-stack transfer of ``test_tcp_transfer_events_per_second``
    with profiling on: end-to-end enabled overhead, plus the snapshot."""

    def run():
        with profiling() as profiler:
            net = build_single_bottleneck(num_pairs=1, marking_threshold=10)
            conn = MptcpConnection(net, "S0", "D0", [net.flow_path(0)],
                                   scheme="xmp", size_bytes=2_000_000)
            conn.start()
            net.sim.run(until=1.0)
            assert conn.completed
        return net.sim.events_processed, profiler.snapshot()

    events, snap = benchmark(run)
    assert snap.events == events > 10_000
    assert snap.callback_wall_s > 0
