"""Bench: Fig. 11 — link-utilization distributions by layer."""

import pytest

from _bench_common import base_for, emit

from repro.experiments.fig11_utilization import run_fig11


@pytest.mark.parametrize("pattern", ["permutation", "random", "incast"])
def test_fig11_utilization(once, pattern):
    result = once(run_fig11, pattern, base_for(pattern))
    emit(f"fig11_utilization_{pattern}", result.format())

    # Paper shapes: DCTCP's single-path collisions give it the widest
    # utilization spread in the multipath-relevant layers; XMP both
    # tightens the distribution and raises the mean vs single path.
    dctcp_spread = result.spread("DCTCP", "core") + result.spread(
        "DCTCP", "aggregation"
    )
    xmp_spread = result.spread("XMP-2", "core") + result.spread(
        "XMP-2", "aggregation"
    )
    assert xmp_spread < dctcp_spread * 1.25
    assert result.mean_utilization("XMP-2") > result.mean_utilization("DCTCP") * 0.9
