"""Robustness: the headline Table 1 ordering across random seeds.

Every other bench runs one seed; this one re-runs the XMP-2 vs DCTCP
Permutation comparison under three seeds and requires the ordering to
hold in each — guarding the reproduction's main claim against
got-lucky-with-the-seed artifacts.
"""

import dataclasses

from _bench_common import BENCH_BASE, emit

from repro.experiments.fattree_eval import run_fattree

SEEDS = (1, 2, 3)


def test_seed_robustness(once):
    def sweep():
        rows = []
        for seed in SEEDS:
            base = dataclasses.replace(BENCH_BASE, seed=seed, duration=0.4)
            xmp = run_fattree(dataclasses.replace(base, scheme="xmp", subflows=2))
            dctcp = run_fattree(
                dataclasses.replace(base, scheme="dctcp", subflows=1)
            )
            rows.append(
                (
                    seed,
                    xmp.mean_goodput_bps("XMP-2") / 1e6,
                    dctcp.mean_goodput_bps("DCTCP") / 1e6,
                )
            )
        return rows

    rows = once(sweep)
    lines = ["Permutation, XMP-2 vs DCTCP across seeds (Mbps):"]
    for seed, xmp, dctcp in rows:
        lines.append(f"  seed {seed}:  XMP-2 {xmp:6.1f}   DCTCP {dctcp:6.1f}")
    emit("seed_robustness", "\n".join(lines))

    for seed, xmp, dctcp in rows:
        assert xmp > dctcp * 0.95, f"ordering broke at seed {seed}"
    # And strictly ahead in aggregate.
    assert sum(r[1] for r in rows) > sum(r[2] for r in rows)
