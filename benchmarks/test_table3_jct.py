"""Bench: Table 3 — mean JCT and fraction of jobs over 300 ms."""

from _bench_common import BENCH_INCAST, emit

from repro.experiments.table3_jct import PAPER_TABLE3, run_table3


def test_table3_jct(once):
    result = once(run_table3, BENCH_INCAST)
    lines = [result.format_table3(), "", "Paper:"]
    for label, (mean_s, frac) in PAPER_TABLE3.items():
        lines.append(f"  {label:<6} {mean_s * 1e3:.0f} ms   >300ms: {frac:.1%}")
    emit("table3_jct", "\n".join(lines))

    # Paper shapes: DCTCP fastest; XMP in between (it saturates all
    # paths); LIA worst, with a visible deadline-miss fraction.
    assert result.mean_jct("DCTCP") <= result.mean_jct("XMP-2") * 1.2
    assert result.mean_jct("XMP-2") < result.mean_jct("LIA-2")
    assert result.fraction_over("LIA-2") >= result.fraction_over("XMP-2")
    assert result.fraction_over("XMP-2") < 0.2
