"""Ablation: how many subflows does each coupling need? (paper §5.2.2)

Raiciu et al. found LIA needs ~8 subflows for good fat-tree utilization;
the paper's claim is that XMP gets there with 2 (only ~10% more from 4).
We sweep subflow counts under the Permutation pattern.
"""

import dataclasses

from _bench_common import BENCH_BASE, emit

from repro.experiments.fattree_eval import run_fattree

COUNTS = (1, 2, 4, 8)


def test_ablation_subflow_count(once):
    def sweep():
        table = {}
        for scheme in ("xmp", "lia"):
            for count in COUNTS:
                scenario = dataclasses.replace(
                    BENCH_BASE, scheme=scheme, subflows=count,
                    pattern="permutation", duration=0.4,
                )
                run = run_fattree(scenario)
                table[(scheme, count)] = run.mean_goodput_bps(scenario.label()) / 1e6
        return table

    table = once(sweep)
    lines = ["Mean goodput (Mbps) vs subflow count, Permutation pattern:",
             "  subflows:   " + "".join(f"{c:>9}" for c in COUNTS)]
    for scheme in ("xmp", "lia"):
        row = "".join(f"{table[(scheme, c)]:9.1f}" for c in COUNTS)
        lines.append(f"  {scheme.upper():<10}{row}")
    emit("ablation_subflows", "\n".join(lines))

    # XMP-2 already near its ceiling: going to 4 adds little (paper: ~10%).
    gain_xmp_2_to_4 = table[("xmp", 4)] / table[("xmp", 2)]
    assert gain_xmp_2_to_4 < 1.4
    # LIA profits much more from extra subflows (paper: >40% from 2 to 4).
    gain_lia_2_to_4 = table[("lia", 4)] / table[("lia", 2)]
    assert gain_lia_2_to_4 > gain_xmp_2_to_4
    # Multipath beats single path for both couplings.
    assert table[("xmp", 2)] > table[("xmp", 1)]
    assert table[("lia", 4)] > table[("lia", 1)]
