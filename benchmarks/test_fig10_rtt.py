"""Bench: Fig. 10 — RTT distributions by flow category."""

import pytest

from _bench_common import base_for, emit

from repro.experiments.fig10_rtt import run_fig10


@pytest.mark.parametrize("pattern", ["permutation", "random", "incast"])
def test_fig10_rtt(once, pattern):
    result = once(run_fig10, pattern, base_for(pattern))
    emit(f"fig10_rtt_{pattern}", result.format())

    # Paper shapes: XMP and DCTCP hold RTT low (queues near K); LIA's RTT
    # is several times larger (full DropTail buffers); subflow count
    # barely moves XMP's RTT.
    for label in ("DCTCP", "XMP-2", "XMP-4"):
        for category, summary in result.rtt[label].items():
            assert summary["p50"] < 1.5e-3, (label, category)
    lia = result.rtt.get("LIA-4", {})
    xmp = result.rtt.get("XMP-2", {})
    shared = set(lia) & set(xmp)
    assert shared
    for category in shared:
        assert lia[category]["p50"] > 1.5 * xmp[category]["p50"]
    if "XMP-4" in result.rtt:
        for category in set(result.rtt["XMP-4"]) & set(xmp):
            ratio = result.rtt["XMP-4"][category]["p50"] / xmp[category]["p50"]
            assert 0.4 < ratio < 2.5
