"""Bench: Table 2 — XMP coexisting with LIA / TCP / DCTCP."""

from _bench_common import BENCH_BASE, BENCH_JOBS, emit

from repro.experiments.table2_coexistence import (
    PAPER_TABLE2,
    run_table2,
)


def test_table2_coexistence(once):
    result = once(run_table2, BENCH_BASE, jobs=BENCH_JOBS)
    lines = [result.format(), "", "Paper:"]
    for (scheme, queue), (xmp, other) in sorted(PAPER_TABLE2.items()):
        lines.append(f"  XMP : {scheme.upper():<5} q={queue:<4} {xmp} : {other}")
    emit("table2_coexistence", "\n".join(lines))

    for queue in (50, 100):
        xmp_vs_dctcp = result.cells[("dctcp", queue)]
        # XMP and DCTCP share roughly fairly (both ECN-driven).
        ratio = xmp_vs_dctcp[0] / max(xmp_vs_dctcp[1], 1e-9)
        assert 0.5 < ratio < 2.0
        # XMP beats plain TCP.
        xmp_vs_tcp = result.cells[("tcp", queue)]
        assert xmp_vs_tcp[0] > xmp_vs_tcp[1]
        # XMP beats LIA.
        xmp_vs_lia = result.cells[("lia", queue)]
        assert xmp_vs_lia[0] > xmp_vs_lia[1] * 0.95
