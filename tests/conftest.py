"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.net.queue import ThresholdECNQueue
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def two_host_net() -> Network:
    """Two hosts joined through one switch; 1 Gbps, ~60 us one-way.

    The simplest network a transport connection can run on; bottleneck
    marking threshold 10, queue 100 (the paper's fat-tree values).
    """
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    s = net.add_switch("SW")
    queue = lambda: ThresholdECNQueue(100, 10)
    net.connect(a, s, 1e9, 30e-6, queue_factory=queue)
    net.connect(s, b, 1e9, 30e-6, queue_factory=queue)
    return net


def path_between(net: Network, src: str, dst: str):
    """The unique shortest path between two hosts (helper for tests)."""
    paths = net.paths(src, dst)
    assert paths, f"no path {src} -> {dst}"
    return paths[0]
