"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.net.network import Network
from repro.net.queue import ThresholdECNQueue
from repro.sim.engine import Simulator


def pytest_addoption(parser):
    parser.addoption(
        "--bless",
        action="store_true",
        default=False,
        help="regenerate the checked-in golden digests instead of "
        "diffing against them (commit the updated JSON)",
    )


@pytest.fixture
def bless(request) -> bool:
    """Whether this run should regenerate goldens (``--bless``)."""
    return bool(request.config.getoption("--bless"))


@pytest.fixture(autouse=True, scope="session")
def _hermetic_run_cache(tmp_path_factory):
    """Point the runner's disk cache at a per-session temp directory.

    CLI invocations under test attach a disk tier by default; without
    this, the suite would write into (and worse, *read* stale results
    from) the user's ~/.cache/repro.
    """
    from repro.runner.cache import reset_default_cache

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("run-cache"))
    reset_default_cache()
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    reset_default_cache()


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def two_host_net() -> Network:
    """Two hosts joined through one switch; 1 Gbps, ~60 us one-way.

    The simplest network a transport connection can run on; bottleneck
    marking threshold 10, queue 100 (the paper's fat-tree values).
    """
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    s = net.add_switch("SW")
    queue = lambda: ThresholdECNQueue(100, 10)
    net.connect(a, s, 1e9, 30e-6, queue_factory=queue)
    net.connect(s, b, 1e9, 30e-6, queue_factory=queue)
    return net


def path_between(net: Network, src: str, dst: str):
    """The unique shortest path between two hosts (helper for tests)."""
    paths = net.paths(src, dst)
    assert paths, f"no path {src} -> {dst}"
    return paths[0]
