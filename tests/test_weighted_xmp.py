"""Tests for weighted XMP (delta scaling, an extension of TraSh)."""

import pytest

from repro.mptcp.connection import MptcpConnection
from repro.mptcp.coupling import XmpCoupling
from repro.topology.bottleneck import build_single_bottleneck


class TestWeightPlumbing:
    def test_default_weight_one(self):
        assert XmpCoupling(beta=4.0).weight == 1.0

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            XmpCoupling(beta=4.0, weight=0.0)
        with pytest.raises(ValueError):
            XmpCoupling(beta=4.0, weight=-1.0)

    def test_delta_scales_with_weight(self):
        import math

        class StubSender:
            cwnd = 10.0
            srtt = 100e-6
            running = True
            completed = False

            @property
            def instant_rate(self):
                return self.cwnd / self.srtt

        unit = XmpCoupling(beta=4.0, weight=1.0)
        heavy = XmpCoupling(beta=4.0, weight=3.0)
        c1 = unit.make_controller()
        c2 = heavy.make_controller()
        c1.attach(StubSender())
        c2.attach(StubSender())
        assert heavy.delta(c2, 0.0) == pytest.approx(3.0 * unit.delta(c1, 0.0))

    def test_fallback_delta_is_weight(self):
        coupling = XmpCoupling(beta=4.0, weight=2.5)
        controller = coupling.make_controller()
        # No sender attached yet -> no rate info -> weight itself.
        assert coupling.delta(controller, 0.0) == 2.5


class TestWeightedSharing:
    def weighted_run(self, weight):
        """A weight-`weight` flow vs a weight-1 flow on one bottleneck.

        ACK jitter larger than one packet serialization time (12 us at
        1 Gbps) decorrelates the two flows' queue-arrival phases;
        without it the deterministic simulator phase-locks into biased
        marking (the paper's global-synchronization observation).
        """
        net = build_single_bottleneck(num_pairs=2, marking_threshold=10)
        connections = []
        for index, w in enumerate((weight, 1.0)):
            conn = MptcpConnection(
                net, f"S{index}", f"D{index}", [net.flow_path(index)],
                scheme="xmp", weight=w, ack_jitter=30e-6,
            )
            connections.append(conn)
        for conn in connections:
            conn.start()
        # Let the allocation converge, then measure the steady window.
        net.sim.run(until=0.5)
        baseline = [c.delivered_bytes for c in connections]
        net.sim.run(until=1.0)
        heavy, unit = (
            c.delivered_bytes - base for c, base in zip(connections, baseline)
        )
        return heavy / unit

    def test_double_weight_doubles_share(self):
        assert self.weighted_run(2.0) == pytest.approx(2.0, rel=0.25)

    def test_triple_weight(self):
        assert self.weighted_run(3.0) == pytest.approx(3.0, rel=0.3)

    def test_unit_weight_is_fair(self):
        assert self.weighted_run(1.0) == pytest.approx(1.0, rel=0.15)
