"""Fixture-corpus tests for simrace's static side (SIM016–SIM018).

Same contract as the simsem corpus (see ``test_simsem_fixtures.py``):
each direct subdirectory of ``tests/lint_fixtures/race/`` is one
mini-project analyzed as a unit through
``ProjectAnalyzer(race=True).analyze_sources``, with virtual paths from
each file's ``# simlint-path:`` header.  ``_bad`` projects must produce
exactly the findings their ``# EXPECT:`` comments announce (code, line
and multiplicity); ``_good`` twins must be clean — of race *and*
semantic findings, so a fixture can never hide a sem regression.
"""

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.lint.sem import ProjectAnalyzer

pytestmark = pytest.mark.simrace

RACE_FIXTURES = Path(__file__).parent / "lint_fixtures" / "race"
RACE_CODES = ("SIM016", "SIM017", "SIM018")

_PATH_RE = re.compile(r"#\s*simlint-path:\s*(\S+)")
_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*([A-Z0-9 ,]+)")

#: Every message must contain at least one of its code's anchor phrases,
#: so a rule cannot silently degenerate into a generic complaint.
MESSAGE_PHRASES = {
    "SIM016": ("write-write hazard",),
    "SIM017": ("seq-order dependence",),
    "SIM018": ("repro.sim.priorities",),
}


def project_dirs():
    return sorted(path for path in RACE_FIXTURES.iterdir() if path.is_dir())


def load_project(project: Path):
    """(virtual-path, source) pairs plus the EXPECTed finding multiset."""
    items = []
    expected: Counter = Counter()
    for path in sorted(project.glob("*.py")):
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        match = _PATH_RE.match(lines[0]) if lines else None
        assert match, f"{path} is missing its '# simlint-path:' header"
        virtual = match.group(1)
        items.append((virtual, text))
        for lineno, line in enumerate(lines, start=1):
            expect = _EXPECT_RE.search(line)
            if expect:
                for code in expect.group(1).split(","):
                    expected[(virtual, code.strip(), lineno)] += 1
    return items, expected


def analyze_project(project: Path):
    items, expected = load_project(project)
    analyzer = ProjectAnalyzer(cache=None, race=True)
    return analyzer.analyze_sources(items), expected


@pytest.mark.parametrize("project", project_dirs(), ids=lambda p: p.name)
def test_fixture_findings_exact(project):
    """Bad twins produce exactly their EXPECTed (path, code, line)
    multiset; good twins produce nothing at all."""
    findings, expected = analyze_project(project)
    actual = Counter((f.path, f.code, f.line) for f in findings)
    assert actual == expected, (
        f"{project.name}: findings diverge from EXPECT comments\n"
        + "\n".join(f.format() for f in findings)
    )
    if project.name.endswith("_good"):
        assert not findings
    if project.name.endswith("_bad"):
        assert findings, f"{project.name} found nothing"


@pytest.mark.parametrize("project", project_dirs(), ids=lambda p: p.name)
def test_fixture_messages_anchor_phrases(project):
    """Messages stay explanatory — each carries its rule's anchor."""
    findings, _expected = analyze_project(project)
    for finding in findings:
        phrases = MESSAGE_PHRASES[finding.code]
        assert any(phrase in finding.message for phrase in phrases), (
            f"{finding.code} message lost its anchor phrase: "
            f"{finding.message!r}"
        )


@pytest.mark.parametrize("code", RACE_CODES)
def test_every_race_rule_has_bad_and_good_twin(code):
    """Each race rule keeps a failing and a passing fixture."""
    suffix = code[3:].lstrip("0")
    bad = RACE_FIXTURES / f"sim0{suffix}_bad"
    good = RACE_FIXTURES / f"sim0{suffix}_good"
    assert bad.is_dir(), f"no bad twin for {code}"
    assert good.is_dir(), f"no good twin for {code}"
    bad_findings, _ = analyze_project(bad)
    assert any(f.code == code for f in bad_findings), (
        f"{bad.name} never triggers {code}"
    )


def test_race_off_by_default():
    """Without race=True the same bad twins produce no race findings."""
    for name in ("sim016_bad", "sim017_bad", "sim018_bad"):
        items, _expected = load_project(RACE_FIXTURES / name)
        findings = ProjectAnalyzer(cache=None).analyze_sources(items)
        assert not any(f.code in RACE_CODES for f in findings)


def test_finding_order_is_deterministic():
    """Same project, any input order, twice — identical finding lists."""
    project = RACE_FIXTURES / "sim018_bad"
    items, _expected = load_project(project)
    runs = []
    for ordered in (items, list(reversed(items)), items):
        analyzer = ProjectAnalyzer(cache=None, race=True)
        runs.append([f.format() for f in analyzer.analyze_sources(ordered)])
    assert runs[0] == runs[1] == runs[2]


def test_race_findings_are_suppressible():
    """`# simlint: disable=` pragmas silence race codes like any other."""
    items, _expected = load_project(RACE_FIXTURES / "sim016_bad")
    suppressed = [
        (
            path,
            text.replace(
                "# EXPECT: SIM016", "# simlint: disable=SIM016"
            ),
        )
        for path, text in items
    ]
    findings = ProjectAnalyzer(cache=None, race=True).analyze_sources(
        suppressed
    )
    assert not any(f.code == "SIM016" for f in findings)
