"""Additional fluid-model and analysis cross-checks (hypothesis-based)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analysis, fluid, utility


class TestFluidAnalysisConsistency:
    @given(
        bdp=st.floats(5.0, 100.0),
        beta=st.floats(2.0, 6.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_sawtooth_peak_exceeds_trough_by_one_beta_cut(self, bdp, beta):
        prediction = analysis.predict_sawtooth(bdp, bdp / 2, beta)
        if prediction.w_min > 2.0:  # not floored
            assert prediction.w_min == pytest.approx(
                prediction.w_max * (1 - 1 / beta)
            )

    @given(threshold=st.floats(1.0, 50.0))
    @settings(max_examples=30, deadline=None)
    def test_more_k_never_hurts_utilization(self, threshold):
        low = analysis.predict_sawtooth(30.0, threshold, 4.0).utilization
        high = analysis.predict_sawtooth(30.0, threshold * 1.5, 4.0).utilization
        assert high >= low - 1e-9

    def test_fluid_equilibrium_against_analysis_queue(self):
        """The ODE's standing queue and the sawtooth's mean queue should
        roughly agree for one flow (the ODE smooths the sawtooth)."""
        bdp_rtt = 225e-6
        capacity = 1e9
        bdp = capacity * bdp_rtt / fluid.PACKET_BITS
        threshold = 10
        ode = fluid.integrate_shared_link(
            num_flows=1, capacity_bps=capacity, base_rtt=bdp_rtt,
            threshold=threshold, duration=0.25,
        )
        sawtooth = analysis.predict_sawtooth(bdp, threshold, 4.0)
        assert ode.steady_state_queue() == pytest.approx(
            sawtooth.mean_queue_packets, abs=4.0
        )

    @given(p=st.floats(0.01, 0.9))
    @settings(max_examples=30, deadline=None)
    def test_ode_fixed_point_equals_eq3_inverse(self, p):
        w_star = utility.equilibrium_window(p, 1.0, 4.0)
        drift = fluid.bos_window_ode(w_star, p, 1.0, 4.0, 1e-4)
        assert drift == pytest.approx(0.0, abs=1e-6)


class TestFluidTrajectories:
    def test_alternating_marks_produce_sawtooth(self):
        """Periodic marking gives a bounded oscillation, not divergence."""
        period = 0.01

        def p_of_t(t):
            return 1.0 if (t % period) < 0.0005 else 0.0

        trajectory = fluid.integrate_single_flow(
            p_of_t, duration=0.2, dt=1e-5, w0=10.0,
        )
        tail = trajectory[len(trajectory) // 2:]
        assert max(tail) < 300
        assert min(tail) >= 1.0
        assert max(tail) - min(tail) > 1.0  # genuinely oscillating

    def test_result_sampling_consistency(self):
        result = fluid.integrate_shared_link(
            num_flows=3, capacity_bps=1e9, base_rtt=2e-4,
            threshold=10, duration=0.05,
        )
        assert len(result.times) == len(result.queue)
        for series in result.windows:
            assert len(series) == len(result.times)
        assert result.times == sorted(result.times)

    def test_steady_state_empty_result(self):
        empty = fluid.FluidLinkResult()
        assert empty.steady_state_windows() == []
        assert empty.steady_state_queue() == 0.0
