"""Tests for connection-level reinjection after subflow path failure."""

import pytest

from repro.mptcp.connection import MptcpConnection
from repro.mptcp.scheduler import SharedSegmentPool
from repro.net.network import Network
from repro.net.queue import ThresholdECNQueue


def diamond_net():
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    queue = lambda: ThresholdECNQueue(100, 10)
    for name in ("U", "V"):
        mid = net.add_switch(name)
        net.connect(a, mid, 1e9, 20e-6, queue_factory=queue)
        net.connect(mid, b, 1e9, 20e-6, queue_factory=queue)
    return net


def path_via(net, switch_name):
    for path in net.paths("A", "B"):
        if any(link.dst.name == switch_name for link in path):
            return path
    raise AssertionError(f"no path via {switch_name}")


def start_transfer(net, reinject, size=20_000_000):
    conn = MptcpConnection(
        net, "A", "B",
        [path_via(net, "U"), path_via(net, "V")],
        scheme="xmp", size_bytes=size,
        reinject_after_timeouts=reinject,
    )
    conn.start()
    return conn


class TestReinjection:
    def test_transfer_survives_path_failure(self):
        net = diamond_net()
        conn = start_transfer(net, reinject=2)
        # Kill the U path mid-transfer.
        u_link = path_via(net, "U")[0]
        net.sim.schedule(0.02, net.set_link_pair_down, u_link)
        net.sim.run(until=8.0)
        assert conn.completed
        assert conn.subflows[0].failed
        assert not conn.subflows[1].failed

    def test_without_reinjection_transfer_stalls(self):
        net = diamond_net()
        conn = start_transfer(net, reinject=None)
        u_link = path_via(net, "U")[0]
        net.sim.schedule(0.02, net.set_link_pair_down, u_link)
        net.sim.run(until=8.0)
        # The dead subflow strands its assigned segments forever.
        assert not conn.completed
        assert conn.delivered_segments < conn.total_segments

    def test_all_bytes_delivered_exactly_once(self):
        net = diamond_net()
        conn = start_transfer(net, reinject=2, size=5_000_000)
        u_link = path_via(net, "U")[0]
        net.sim.schedule(0.01, net.set_link_pair_down, u_link)
        net.sim.run(until=8.0)
        assert conn.completed
        # Surviving subflow delivered everything the dead one did not.
        survivor = conn.subflows[1].sender
        dead = conn.subflows[0].sender
        assert survivor.delivered_segments + dead.delivered_segments >= (
            conn.total_segments
        )

    def test_no_reinjection_while_path_alive(self):
        net = diamond_net()
        conn = start_transfer(net, reinject=2, size=5_000_000)
        net.sim.run(until=4.0)
        assert conn.completed
        assert not any(s.failed for s in conn.subflows)

    def test_single_subflow_keeps_probing(self):
        # With no sibling to shift to, the subflow is never declared dead.
        net = diamond_net()
        conn = MptcpConnection(
            net, "A", "B", [path_via(net, "U")], scheme="xmp",
            size_bytes=1_000_000, reinject_after_timeouts=2,
        )
        conn.start()
        u_link = path_via(net, "U")[0]
        net.sim.schedule(0.005, net.set_link_pair_down, u_link)
        net.sim.run(until=3.0)
        assert not conn.subflows[0].failed
        assert conn.subflows[0].sender.running

    def test_recovered_path_failure_timing(self):
        # Failure after the transfer finished is a no-op.
        net = diamond_net()
        conn = start_transfer(net, reinject=2, size=500_000)
        net.sim.run(until=2.0)
        assert conn.completed
        u_link = path_via(net, "U")[0]
        net.set_link_pair_down(u_link)
        net.sim.run(until=3.0)
        assert not any(s.failed for s in conn.subflows)


class TestPoolRestitution:
    def test_restitute_returns_capacity(self):
        pool = SharedSegmentPool(100)
        pool.take(60)
        pool.restitute(20)
        assert pool.remaining == 60
        assert pool.take(100) == 60

    def test_restitute_validation(self):
        pool = SharedSegmentPool(10)
        pool.take(5)
        with pytest.raises(ValueError):
            pool.restitute(6)
        with pytest.raises(ValueError):
            pool.restitute(-1)

    def test_exhausted_flips_back(self):
        pool = SharedSegmentPool(10)
        pool.take(10)
        assert pool.exhausted
        pool.restitute(3)
        assert not pool.exhausted
