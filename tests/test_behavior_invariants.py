"""Cross-module behavioural invariants — the paper's claims in miniature.

Each test runs a small simulation and asserts a property the design
guarantees: bounded buffer occupancy, full utilization at the Eq. 1
threshold, no losses under marking, coupled fairness, and the
throughput/latency trade-off between schemes.
"""

import pytest

from repro.core.utility import min_marking_threshold
from repro.metrics.collector import QueueMonitor
from repro.metrics.fairness import jain_index
from repro.mptcp.connection import MptcpConnection
from repro.sim.units import bandwidth_delay_product_packets
from repro.topology.bottleneck import build_single_bottleneck


def run_flows(net, specs, duration):
    """specs: list of (scheme, subflow_count, pair_index)."""
    connections = []
    for scheme, count, index in specs:
        path = net.flow_path(index)
        conn = MptcpConnection(
            net, f"S{index}", f"D{index}", [path] * count, scheme=scheme
        )
        conn.start()
        connections.append(conn)
    net.sim.run(until=duration)
    return connections


class TestBufferOccupancy:
    def test_xmp_queue_stays_near_k(self):
        net = build_single_bottleneck(num_pairs=2, marking_threshold=10)
        monitor = QueueMonitor(net.sim, [net.forward_bottleneck], 0.001)
        monitor.start()
        run_flows(net, [("xmp", 1, 0), ("xmp", 1, 1)], 0.3)
        name = net.forward_bottleneck.name
        # Instantaneous threshold marking: the queue overshoots K only by
        # about the in-flight reaction window, never the 100-packet cap.
        assert monitor.max_occupancy(name) < 45
        assert monitor.mean_occupancy(name) < 15

    def test_tcp_fills_droptail_queue(self):
        net = build_single_bottleneck(num_pairs=1, marking_threshold=None)
        monitor = QueueMonitor(net.sim, [net.forward_bottleneck], 0.001)
        monitor.start()
        run_flows(net, [("tcp", 1, 0)], 0.3)
        # Loss-driven control rides the buffer to the brim.
        assert monitor.max_occupancy(net.forward_bottleneck.name) >= 95

    def test_no_drops_with_marking(self):
        net = build_single_bottleneck(num_pairs=4, marking_threshold=10)
        run_flows(net, [("xmp", 1, i) for i in range(4)], 0.3)
        assert net.total_dropped() == 0
        assert net.total_marked() > 0


class TestEquation1Utilization:
    def test_threshold_at_bound_keeps_link_busy(self):
        rate, rtt = 1e9, 225e-6
        bdp = bandwidth_delay_product_packets(rate, rtt)
        beta = 4.0
        threshold = int(min_marking_threshold(bdp, beta)) + 1
        net = build_single_bottleneck(
            num_pairs=1, bottleneck_rate_bps=rate, rtt=rtt,
            marking_threshold=threshold,
        )
        run_flows(net, [("xmp", 1, 0)], 0.5)
        assert net.forward_bottleneck.utilization(0.5) > 0.93

    def test_threshold_far_below_bound_loses_throughput(self):
        net = build_single_bottleneck(
            num_pairs=1, bottleneck_rate_bps=1e9, rtt=225e-6,
            marking_threshold=1,
        )
        run_flows(net, [("xmp", 1, 0)], 0.5)
        assert net.forward_bottleneck.utilization(0.5) < 0.93


class TestCoupledFairness:
    def test_xmp_flows_share_equally(self):
        net = build_single_bottleneck(num_pairs=4, marking_threshold=10)
        connections = run_flows(net, [("xmp", 1, i) for i in range(4)], 0.4)
        rates = [c.delivered_bytes for c in connections]
        assert jain_index(rates) > 0.95

    def test_multi_subflow_flow_not_advantaged(self):
        net = build_single_bottleneck(num_pairs=2, marking_threshold=10)
        conns = run_flows(net, [("xmp", 3, 0), ("xmp", 1, 1)], 0.4)
        three_subflows, single = (c.delivered_bytes for c in conns)
        assert three_subflows < 1.6 * single

    def test_uncoupled_subflows_do_grab_more(self):
        # The ablation: without TraSh the 3-subflow flow behaves like
        # three independent BOS flows and takes ~3x.
        net = build_single_bottleneck(num_pairs=2, marking_threshold=10)
        conns = run_flows(
            net, [("bos-uncoupled", 3, 0), ("bos-uncoupled", 1, 1)], 0.4
        )
        uncoupled, single = (c.delivered_bytes for c in conns)
        assert uncoupled > 2.0 * single


class TestThroughputLatencyTradeoff:
    def test_xmp_and_dctcp_keep_rtt_low_tcp_does_not(self):
        def observed_rtt(scheme, threshold):
            net = build_single_bottleneck(
                num_pairs=1, marking_threshold=threshold, rtt=225e-6
            )
            conns = run_flows(net, [(scheme, 1, 0)], 0.3)
            return conns[0].subflows[0].sender.srtt

        rtt_xmp = observed_rtt("xmp", 10)
        rtt_tcp = observed_rtt("tcp", None)
        # TCP queues ~100 packets (1.2 ms); XMP holds ~K (0.12 ms).
        assert rtt_xmp < 0.5e-3
        assert rtt_tcp > 2 * rtt_xmp

    def test_non_ecn_tcp_dominates_one_shared_marked_queue(self):
        # Known ECN-coexistence behaviour: on a *single* shared queue a
        # loss-driven flow ignores the marks, keeps the queue above K, and
        # squeezes the ECN flow.  (Table 2's XMP > TCP result lives in the
        # fat tree, where multipath shifting and TCP's RTO penalties
        # reverse this — see test_experiments_fattree / the Table 2 bench.)
        net = build_single_bottleneck(num_pairs=2, marking_threshold=10)
        conns = run_flows(net, [("xmp", 1, 0), ("tcp", 1, 1)], 0.4)
        xmp_bytes, tcp_bytes = (c.delivered_bytes for c in conns)
        assert tcp_bytes > xmp_bytes
        # The XMP flow survives at its floor rather than being shut out.
        assert xmp_bytes > 0


class TestDeterminism:
    def test_identical_runs_bitwise_equal(self):
        def run_once():
            net = build_single_bottleneck(num_pairs=2, marking_threshold=10)
            conns = run_flows(net, [("xmp", 2, 0), ("dctcp", 1, 1)], 0.2)
            return (
                [c.delivered_segments for c in conns],
                net.sim.events_processed,
                net.total_marked(),
            )

        assert run_once() == run_once()
