"""Tests for the TCP sender state machine."""

import math

import pytest

from repro.net.packet import ACK, DATA, Packet, make_ack_packet
from repro.transport.cc import MIN_CWND, RenoCC
from repro.transport.flow import SinglePathFlow
from repro.transport.tcp import (
    DEFAULT_INITIAL_CWND,
    DUPACK_THRESHOLD,
    FiniteSource,
    InfiniteSource,
    TcpSender,
    segments_for_bytes,
)


class SenderHarness:
    """A sender on host A; the test plays the receiver by hand."""

    def __init__(self, net, total_segments=10_000, cc=None, initial_cwnd=10):
        self.net = net
        self.sent = []
        self.completions = []
        forward = net.paths("A", "B")[0]
        self.reverse = net.reverse_path(forward)
        net.host("B").register(0, 0, self.sent.append)
        self.sender = TcpSender(
            net.sim,
            net.host("A"),
            0,
            0,
            forward,
            cc if cc is not None else RenoCC(),
            FiniteSource(total_segments),
            initial_cwnd=initial_cwnd,
            on_complete=self.completions.append,
        )

    def start(self):
        self.sender.start()
        self.net.sim.run(until=self.net.sim.now + 0.01)

    def ack(self, ack_no, ece_count=0, ts_echo=-1.0):
        """Deliver one crafted ACK to the sender and settle events."""
        packet = make_ack_packet(0, 0, ack_no, self.net.sim.now,
                                 ts_echo=ts_echo, path=self.reverse,
                                 ece_count=ece_count)
        self.net.host("B").send(packet)
        self.net.sim.run(until=self.net.sim.now + 0.01)


class TestSending:
    def test_initial_window_sent_at_start(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=10)
        h.start()
        assert len(h.sent) == 10
        assert [p.seq for p in h.sent] == list(range(10))

    def test_flight_never_exceeds_cwnd(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=4)
        h.start()
        assert h.sender.flight == 4

    def test_ack_opens_window(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=4)
        h.start()
        h.ack(2)
        # 2 acked + slow-start growth by 2 -> window 6, una=2: sends up to 8.
        assert h.sender.snd_una == 2
        assert h.sender.snd_nxt == 8

    def test_app_limited_stops_sending(self, two_host_net):
        h = SenderHarness(two_host_net, total_segments=3, initial_cwnd=10)
        h.start()
        assert len(h.sent) == 3

    def test_data_packets_carry_timestamps(self, two_host_net):
        h = SenderHarness(two_host_net)
        h.start()
        assert all(p.ts >= 0 for p in h.sent)
        assert all(p.kind == DATA for p in h.sent)

    def test_start_twice_rejected(self, two_host_net):
        h = SenderHarness(two_host_net)
        h.start()
        with pytest.raises(RuntimeError):
            h.sender.start()


class TestSlowStart:
    def test_cwnd_grows_by_acked_segments(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=4)
        h.start()
        h.ack(4)
        assert h.sender.cwnd == 8.0

    def test_rtt_estimator_fed_by_ts_echo(self, two_host_net):
        h = SenderHarness(two_host_net)
        h.start()
        send_time = h.sent[0].ts
        h.ack(2, ts_echo=send_time)
        assert h.sender.srtt is not None
        assert h.sender.srtt > 0


class TestFastRetransmit:
    def trigger(self, h):
        h.start()
        h.ack(1)  # una=1
        for _ in range(DUPACK_THRESHOLD):
            h.ack(1)  # three dups

    def test_three_dupacks_retransmit_head(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=8)
        self.trigger(h)
        assert h.sender.fast_retransmits == 1
        retransmitted = [p for p in h.sent if p.seq == 1]
        assert len(retransmitted) == 2  # original + retransmission

    def test_window_halved_on_loss(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=8)
        self.trigger(h)
        # ssthresh = flight/2; window then inflates by the dupacks.
        assert h.sender.ssthresh <= 8
        assert h.sender.in_recovery

    def test_two_dupacks_do_nothing(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=8)
        h.start()
        h.ack(1)
        h.ack(1)
        h.ack(1)
        assert h.sender.fast_retransmits == 0

    def test_full_ack_exits_recovery_at_ssthresh(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=8)
        self.trigger(h)
        recover = h.sender.recover
        h.ack(recover)
        assert not h.sender.in_recovery
        # Deflated back near ssthresh (plus this ACK's CA growth), well
        # below the pre-loss window of 8+.
        assert h.sender.ssthresh <= h.sender.cwnd < 8

    def test_partial_ack_retransmits_next_hole(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=8)
        self.trigger(h)
        h.ack(3)  # partial: still below recover
        assert h.sender.in_recovery
        assert any(p.seq == 3 for p in h.sent if p.ts > 0)
        assert h.sender.retransmissions >= 2

    def test_dupacks_inflate_window(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=8)
        self.trigger(h)
        before = h.sender.cwnd
        h.ack(1)  # one more dup
        assert h.sender.cwnd == before + 1


class TestTimeout:
    def test_rto_fires_without_acks(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=4)
        h.sender.start()
        two_host_net.sim.run(until=1.5)  # initial RTO is 1 s
        assert h.sender.timeouts >= 1
        assert h.sender.cwnd == 1.0

    def test_go_back_n_resends_from_una(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=4)
        h.sender.start()
        two_host_net.sim.run(until=1.5)
        resent = [p.seq for p in h.sent if h.sent.index(p) >= 4]
        assert 0 in resent

    def test_backoff_doubles_rto(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=1)
        h.sender.start()
        two_host_net.sim.run(until=3.5)
        # Timeouts at ~1 s and ~3 s (doubled); not more.
        assert h.sender.timeouts == 2

    def test_ack_after_timeout_resumes(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=4)
        h.sender.start()
        two_host_net.sim.run(until=1.5)
        h.ack(4)
        assert h.sender.snd_una == 4
        assert h.sender.cwnd > 1.0


class TestCompletion:
    def test_complete_when_all_acked(self, two_host_net):
        h = SenderHarness(two_host_net, total_segments=5, initial_cwnd=10)
        h.start()
        h.ack(5)
        assert h.sender.completed
        assert h.completions
        assert not h.sender.rto_timer.armed

    def test_not_complete_with_outstanding(self, two_host_net):
        h = SenderHarness(two_host_net, total_segments=5, initial_cwnd=10)
        h.start()
        h.ack(4)
        assert not h.sender.completed

    def test_stop_cancels_timer(self, two_host_net):
        h = SenderHarness(two_host_net)
        h.start()
        h.sender.stop()
        assert not h.sender.rto_timer.armed
        two_host_net.sim.run(until=5.0)
        assert h.sender.timeouts == 0


class TestRounds:
    def test_round_counted_when_beg_seq_passed(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=4)
        h.start()
        assert h.sender.rounds == 0
        h.ack(1)
        assert h.sender.rounds == 1
        h.ack(3)  # still within the new round's window
        assert h.sender.rounds == 1

    def test_instant_rate_zero_before_rtt(self, two_host_net):
        h = SenderHarness(two_host_net)
        h.start()
        assert h.sender.instant_rate == 0.0

    def test_instant_rate_after_sample(self, two_host_net):
        h = SenderHarness(two_host_net)
        h.start()
        h.ack(2, ts_echo=h.sent[0].ts)
        assert h.sender.instant_rate == pytest.approx(
            h.sender.cwnd / h.sender.srtt
        )


class TestSources:
    def test_finite_source_grants_exactly_total(self):
        source = FiniteSource(10)
        assert source.take(16) == 10
        assert source.take(16) == 0
        assert source.exhausted

    def test_finite_source_partial_grants(self):
        source = FiniteSource(20)
        assert source.take(16) == 16
        assert source.take(16) == 4
        assert source.exhausted

    def test_infinite_source_never_exhausts(self):
        source = InfiniteSource()
        assert source.take(16) == 16
        assert not source.exhausted

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            FiniteSource(-1)

    def test_segments_for_bytes(self):
        assert segments_for_bytes(0) == 0
        assert segments_for_bytes(1) == 1
        assert segments_for_bytes(1460) == 1
        assert segments_for_bytes(1461) == 2
        assert segments_for_bytes(64_000) == 44


class TestEndToEnd:
    def test_transfer_completes_and_counts_bytes(self, two_host_net):
        flow = SinglePathFlow(
            two_host_net, "A", "B", two_host_net.paths("A", "B")[0],
            RenoCC(), size_bytes=1_000_000,
        )
        flow.start()
        two_host_net.sim.run(until=1.0)
        assert flow.completed
        assert flow.delivered_bytes >= 1_000_000
        assert flow.goodput_bps() > 100e6

    def test_goodput_zero_before_start(self, two_host_net):
        flow = SinglePathFlow(
            two_host_net, "A", "B", two_host_net.paths("A", "B")[0],
            RenoCC(), size_bytes=1000,
        )
        assert flow.goodput_bps() == 0.0
