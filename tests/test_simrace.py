"""simrace self-checks: static analyzer units, runtime sanitizer,
golden cross-check, and static/dynamic agreement.

The acceptance bar the detector is held to:

* the static pass is clean on ``src/repro`` (the priority audit is
  complete);
* ``REPRO_RACE``-style monitoring observes without perturbing — golden
  digests stay bit-identical with the sanitizer attached, with zero
  collisions;
* the two sides agree in the positive direction too: a planted
  same-instant write-write race is flagged statically *and* observed
  dynamically.
"""

import json

import pytest

from repro.lint.race import (
    activate,
    active_race_monitor,
    deactivate,
    race_monitoring,
    race_requested,
)
from repro.lint.race.runtime import RaceMonitor
from repro.lint.sem import ProjectAnalyzer
from repro.sim.engine import Simulator
from repro.sim.priorities import MODEL, SAMPLE, TIERS, tier_name

pytestmark = pytest.mark.simrace

RACE_CODES = ("SIM016", "SIM017", "SIM018")


def race_findings(sources):
    analyzer = ProjectAnalyzer(cache=None, race=True)
    return [
        f
        for f in analyzer.analyze_sources(sources)
        if f.code in RACE_CODES
    ]


# ----------------------------------------------------------------------
# The priority registry
# ----------------------------------------------------------------------


def test_priority_tiers():
    """MODEL is the engine default (annotating it never reorders);
    SAMPLE sorts strictly after every model event at its instant."""
    assert MODEL == 0
    assert SAMPLE > MODEL
    assert TIERS == {"MODEL": MODEL, "SAMPLE": SAMPLE}
    assert tier_name(SAMPLE) == "SAMPLE"
    assert tier_name(MODEL) == "MODEL"
    assert tier_name(42) is None


def test_sampler_tier_is_the_registry_value():
    """The metrics sampler priority is the registry constant, not a
    drifted copy (the original sampler bug this pass exists to catch)."""
    from repro.metrics.collector import SAMPLE_PRIORITY

    assert SAMPLE_PRIORITY == SAMPLE


# ----------------------------------------------------------------------
# Static analyzer units
# ----------------------------------------------------------------------

PLANTED_WW = '''
class Cell:
    def __init__(self, sim):
        self.sim = sim
        self.state = 0

    def kick(self):
        self.sim.schedule(0.5, self.set_low)
        self.sim.schedule(0.5, self.set_high)

    def set_low(self):
        self.state = 1

    def set_high(self):
        self.state = 2
'''


def test_src_tree_is_race_clean():
    """The audited source tree carries no SIM016-SIM018 findings."""
    analyzer = ProjectAnalyzer(cache=None, race=True)
    findings = [
        f
        for f in analyzer.analyze_paths(["src/repro"])
        if f.code in RACE_CODES
    ]
    assert findings == [], "\n".join(f.format() for f in findings)


def test_planted_write_write_is_flagged():
    findings = race_findings([("src/repro/x/cell.py", PLANTED_WW)])
    assert [f.code for f in findings] == ["SIM016"]
    assert "set_low" in findings[0].message
    assert "set_high" in findings[0].message


def test_distinct_receivers_do_not_conflict():
    """flow3.stop / flow4.stop at one instant touch different
    instances — textual receiver identity keeps them clean."""
    source = PLANTED_WW + '''

def stage(flow3, flow4, sim):
    sim.schedule(25.0, flow3.set_low)
    sim.schedule(25.0, flow4.set_high)
'''
    findings = race_findings([("src/repro/x/cell.py", source)])
    assert [f.code for f in findings] == ["SIM016"]  # only the self pair


def test_write_through_helper_is_closed_over():
    """A callback mutating state via a self helper still conflicts."""
    source = '''
class Cell:
    def __init__(self, sim):
        self.sim = sim
        self.state = 0

    def kick(self):
        self.sim.schedule(0.5, self.set_direct)
        self.sim.schedule(0.5, self.set_via_helper)

    def set_direct(self):
        self.state = 1

    def set_via_helper(self):
        self._store(2)

    def _store(self, value):
        self.state = value
'''
    findings = race_findings([("src/repro/x/cell.py", source)])
    assert [f.code for f in findings] == ["SIM016"]


def test_unknown_priority_is_never_guessed():
    """An unresolvable priority expression silences the pair checks."""
    source = '''
class Cell:
    def __init__(self, sim, prio):
        self.sim = sim
        self.state = 0
        self.prio = prio

    def kick(self):
        self.sim.schedule(0.5, self.set_low, priority=self.prio)
        self.sim.schedule(0.5, self.set_high, priority=self.prio)

    def set_low(self):
        self.state = 1

    def set_high(self):
        self.state = 2
'''
    assert race_findings([("src/repro/x/cell.py", source)]) == []


def test_periodic_detection_spans_schedule_and_post():
    """Self-rescheduling through either scheduler entry point at an
    unnamed tier is the SIM018 sampler-bug shape."""
    source = '''
class Ticker:
    def __init__(self, sim):
        self.sim = sim

    def tick(self):
        self.sim.post(0.01, self.tick)
'''
    findings = race_findings([("src/repro/x/ticker.py", source)])
    assert [f.code for f in findings] == ["SIM018"]
    assert "periodic" in findings[0].message


# ----------------------------------------------------------------------
# Runtime sanitizer
# ----------------------------------------------------------------------


class _Victim:
    def __init__(self):
        self.value = 0
        self.other = 0

    def write_one(self):
        self.value = 1

    def write_two(self):
        self.value = 2

    def write_other(self):
        self.other = 3

    def read_only(self):
        _ = self.value


def _run_monitored(schedule):
    """Build a sim with a monitor attached, apply ``schedule``, run."""
    monitor = RaceMonitor()
    sim = Simulator()
    monitor.attach(sim)
    victim = _Victim()
    schedule(sim, victim)
    sim.run()
    return monitor


def test_monitor_catches_same_instant_write_write():
    monitor = _run_monitored(lambda sim, v: (
        sim.schedule(0.5, v.write_one),
        sim.schedule(0.5, v.write_two),
    ))
    assert len(monitor.collisions) == 1
    record = monitor.collisions[0]
    assert record["kind"] == "collision"
    assert record["attr"] == "value"
    assert record["first"] == "_Victim.write_one"
    assert record["second"] == "_Victim.write_two"
    assert record["priority"] == 0


def test_monitor_ignores_distinct_instants():
    monitor = _run_monitored(lambda sim, v: (
        sim.schedule(0.5, v.write_one),
        sim.schedule(0.6, v.write_two),
    ))
    assert monitor.collisions == []
    assert monitor.batches >= 2


def test_monitor_ignores_distinct_priorities():
    """Different priorities are *ordered* — that is the fix, not a race."""
    monitor = _run_monitored(lambda sim, v: (
        sim.schedule(0.5, v.write_one),
        sim.schedule(0.5, v.write_two, priority=SAMPLE),
    ))
    assert monitor.collisions == []


def test_monitor_ignores_same_callback_repeats():
    """One callback firing twice in a batch is idempotent re-entry, not
    an ordering hazard between two writers."""
    monitor = _run_monitored(lambda sim, v: (
        sim.schedule(0.5, v.write_one),
        sim.schedule(0.5, v.write_one),
    ))
    assert monitor.collisions == []


def test_monitor_ignores_disjoint_attributes_and_reads():
    monitor = _run_monitored(lambda sim, v: (
        sim.schedule(0.5, v.write_one),
        sim.schedule(0.5, v.write_other),
        sim.schedule(0.5, v.read_only),
    ))
    assert monitor.collisions == []


def test_monitor_handles_slotted_receivers():
    class Slotted:
        __slots__ = ("field",)

        def __init__(self):
            self.field = 0

        def set_a(self):
            self.field = 1

        def set_b(self):
            self.field = 2

    monitor = RaceMonitor()
    sim = Simulator()
    monitor.attach(sim)
    victim = Slotted()
    sim.schedule(0.5, victim.set_a)
    sim.schedule(0.5, victim.set_b)
    sim.run()
    assert [r["attr"] for r in monitor.collisions] == ["field"]


def test_monitor_writes_jsonl_report(tmp_path):
    monitor = _run_monitored(lambda sim, v: (
        sim.schedule(0.5, v.write_one),
        sim.schedule(0.5, v.write_two),
    ))
    out = tmp_path / "race.jsonl"
    monitor.write_report(str(out))
    records = [
        json.loads(line) for line in out.read_text().splitlines()
    ]
    assert [r["kind"] for r in records] == ["collision", "summary"]
    assert records[1]["collisions"] == 1
    assert records[1]["events"] == monitor.events


def test_hooks_stack_discipline():
    monitor = RaceMonitor()
    assert not race_requested() or active_race_monitor() is not None
    activate(monitor)
    try:
        assert active_race_monitor() is monitor
        assert race_requested()
    finally:
        deactivate(monitor)
    with pytest.raises(RuntimeError):
        deactivate(monitor)


def test_env_activation(monkeypatch):
    import repro.lint.race.hooks as hooks

    monkeypatch.setattr(hooks, "_ENV_MONITOR", None)
    monkeypatch.setenv("REPRO_RACE", "1")
    assert race_requested()
    monitor = active_race_monitor()
    assert monitor is not None
    assert active_race_monitor() is monitor  # shared per process
    monkeypatch.setenv("REPRO_RACE", "0")
    monkeypatch.setattr(hooks, "_ENV_MONITOR", None)
    assert active_race_monitor() is None


def test_network_attaches_active_monitor():
    from repro.net.network import Network

    with race_monitoring() as monitor:
        net = Network()
    assert net.sim.race is monitor
    net2 = Network()
    assert net2.sim.race is None


# ----------------------------------------------------------------------
# Golden cross-check + static/dynamic agreement
# ----------------------------------------------------------------------


def test_sanitizer_leaves_golden_digest_bit_identical():
    """The monitor observes, never perturbs: the bottleneck golden is
    bit-identical with the sanitizer attached, with zero collisions."""
    from repro.validate.golden import check_digest
    from repro.validate.scenarios import run_scenario

    with race_monitoring() as monitor:
        digest, validator = run_scenario("bottleneck-xmp")
    assert monitor.collisions == []
    assert monitor.events > 0
    assert validator.violations == []
    assert check_digest("bottleneck-xmp", digest) == []


def test_static_and_dynamic_agree_on_planted_race():
    """The same planted shape trips both sides of the detector."""
    static = race_findings([("src/repro/x/cell.py", PLANTED_WW)])
    assert [f.code for f in static] == ["SIM016"]
    monitor = _run_monitored(lambda sim, v: (
        sim.schedule(0.5, v.write_one),
        sim.schedule(0.5, v.write_two),
    ))
    assert len(monitor.collisions) == 1


def test_race_module_cli_smoke(tmp_path, capsys):
    from repro.lint.race.__main__ import main as race_main

    out = tmp_path / "report.jsonl"
    assert race_main(
        ["--scenario", "bottleneck-xmp", "--out", str(out)]
    ) == 0
    records = [
        json.loads(line) for line in out.read_text().splitlines()
    ]
    assert records[-1]["kind"] == "summary"
    assert records[-1]["scenario"] == "bottleneck-xmp"
    assert records[-1]["collisions"] == 0
    assert "bottleneck-xmp" in capsys.readouterr().out
