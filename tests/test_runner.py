"""Tests for the campaign runner: spec contract, caching tiers, parallel
determinism, and the registry.

The determinism test is the load-bearing one: ``Campaign(jobs=4)`` must
produce results *equal* to ``jobs=1`` for the same grid — the merge is in
input order and every run function is pure, so parallelism may only
change wall-clock, never output.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.experiments.fattree_eval import FatTreeScenario
from repro.runner import (
    MISS,
    Campaign,
    DiskCache,
    MemoryCache,
    RunCache,
    RunSpec,
    kind_entry,
    registered_kinds,
    run_spec,
    spec_fingerprint,
)
from repro.runner.cache import _stable
from repro.runner.spec import SOURCE_DISK, SOURCE_MEMORY, SOURCE_RUN

#: Small enough that a four-cell grid simulates in a few seconds.
TINY = FatTreeScenario(
    duration=0.03,
    perm_size_min=50_000,
    perm_size_max=150_000,
    random_mean=100_000,
    random_max=300_000,
    seed=7,
)


def tiny_grid():
    """A small fat-tree grid: two schemes x two patterns."""
    return [
        RunSpec("fattree", dataclasses.replace(TINY, scheme=scheme,
                                               subflows=subflows,
                                               pattern=pattern))
        for scheme, subflows in (("dctcp", 1), ("xmp", 2))
        for pattern in ("permutation", "random")
    ]


class TestParallelDeterminism:
    def test_jobs4_equals_jobs1(self):
        specs = tiny_grid()
        serial = Campaign(jobs=1, use_cache=False).run(specs)
        fanned = Campaign(jobs=4, use_cache=False).run(specs)
        assert len(serial) == len(fanned) == len(specs)
        for one, four in zip(serial.results, fanned.results):
            assert one.spec == four.spec
            # FatTreeResult is a plain dataclass: == compares every flow
            # record, RTT sample and utilization reading.
            assert one.value == four.value
            assert one.metrics.events == four.metrics.events
            assert one.metrics.source == SOURCE_RUN


class TestCache:
    def spec(self):
        return RunSpec("fattree", TINY)

    def test_round_trip_through_disk(self, tmp_path):
        disk = DiskCache(tmp_path)
        first = run_spec(self.spec(), cache=RunCache(disk=disk))
        assert first.metrics.source == SOURCE_RUN
        # A fresh memory tier over the same directory: served from disk,
        # equal value (a new unpickled object, not the same one).
        reloaded = run_spec(self.spec(), cache=RunCache(disk=disk))
        assert reloaded.metrics.source == SOURCE_DISK
        assert reloaded.metrics.cached
        assert reloaded.value == first.value
        assert reloaded.value is not first.value

    def test_memory_tier_preserves_identity(self):
        cache = RunCache()
        first = run_spec(self.spec(), cache=cache)
        again = run_spec(self.spec(), cache=cache)
        assert again.metrics.source == SOURCE_MEMORY
        assert again.value is first.value

    def test_corrupted_file_recomputed(self, tmp_path):
        disk = DiskCache(tmp_path)
        first = run_spec(self.spec(), cache=RunCache(disk=disk))
        path = disk.path_for(spec_fingerprint(self.spec()))
        assert path.exists()
        path.write_bytes(b"not a pickle")
        rerun = run_spec(self.spec(), cache=RunCache(disk=disk))
        assert rerun.metrics.source == SOURCE_RUN
        assert rerun.value == first.value
        # The rewrite healed the entry.
        with open(path, "rb") as handle:
            assert pickle.load(handle) == first.value

    def test_truncated_file_recomputed(self, tmp_path):
        disk = DiskCache(tmp_path)
        run_spec(self.spec(), cache=RunCache(disk=disk))
        path = disk.path_for(spec_fingerprint(self.spec()))
        path.write_bytes(path.read_bytes()[:10])
        rerun = run_spec(self.spec(), cache=RunCache(disk=disk))
        assert rerun.metrics.source == SOURCE_RUN

    def test_no_cache_bypasses_everything(self, tmp_path):
        disk = DiskCache(tmp_path)
        cache = RunCache(disk=disk)
        run_spec(self.spec(), cache=cache)
        forced = run_spec(self.spec(), cache=cache, use_cache=False)
        assert forced.metrics.source == SOURCE_RUN
        assert not forced.metrics.cached

    def test_unwritable_directory_is_nonfatal(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the cache dir should be")
        result = run_spec(self.spec(), cache=RunCache(disk=DiskCache(blocked)))
        assert result.metrics.source == SOURCE_RUN

    def test_memory_cache_is_bounded(self):
        cache = MemoryCache(max_entries=3)
        specs = [RunSpec("fattree", dataclasses.replace(TINY, seed=i))
                 for i in range(5)]
        for i, spec in enumerate(specs):
            cache.put(spec, i)
        assert len(cache) == 3
        assert cache.get(specs[0]) is MISS
        assert cache.get(specs[4]) == 4

    def test_cached_none_is_a_hit_not_a_miss(self, tmp_path):
        """Regression: a legitimately cached ``None`` result must hit.

        The old tiers signalled misses with ``None``, so a spec whose run
        function returned ``None`` was silently re-simulated forever.
        """
        spec = self.spec()
        memory = MemoryCache()
        memory.put(spec, None)
        assert memory.get(spec) is None
        assert memory.get(spec) is not MISS

        disk = DiskCache(tmp_path)
        key = spec_fingerprint(spec)
        disk.put(key, None)
        assert disk.get(key) is None
        assert disk.get(key) is not MISS

        # Through both RunCache tiers: memory first, then disk promote.
        cache = RunCache(memory=memory, disk=disk)
        assert cache.lookup(spec) == (None, SOURCE_MEMORY)
        cache.clear_memory()
        assert cache.lookup(spec) == (None, SOURCE_DISK)
        # The disk hit was promoted back into the memory tier.
        assert cache.lookup(spec) == (None, SOURCE_MEMORY)

    def test_uncached_spec_still_misses(self, tmp_path):
        cache = RunCache(memory=MemoryCache(), disk=DiskCache(tmp_path))
        assert cache.lookup(self.spec()) is None

    def test_mixed_type_dict_keys_fingerprint(self):
        """Regression: sorting raw mixed-type keys raised TypeError."""
        mixed = {1: "a", "b": 2, (3, 4): "c", None: 0, 1.5: "d"}
        stable = _stable(mixed)
        # Insertion order must not matter: keys sort by (type name, repr).
        assert stable == _stable(dict(reversed(list(mixed.items()))))
        # End-to-end: a spec whose config carries such a dict fingerprints.
        fingerprint = spec_fingerprint(RunSpec("fattree", (("opts", mixed),)))
        assert len(fingerprint) == 64

    def test_fingerprint_is_content_addressed(self):
        same = spec_fingerprint(RunSpec("fattree", TINY))
        assert spec_fingerprint(RunSpec("fattree", dataclasses.replace(TINY))) == same
        assert spec_fingerprint(
            RunSpec("fattree", dataclasses.replace(TINY, seed=8))
        ) != same
        assert spec_fingerprint(RunSpec("fig1", TINY)) != same


class TestCampaignResult:
    def test_summary_and_cells(self):
        cache = RunCache()
        specs = [RunSpec("fattree", TINY)]
        cold = Campaign(cache=cache).run(specs)
        assert cold.cached_count == 0
        assert cold.total_events > 0
        assert "1 simulated" in cold.summary()
        warm = Campaign(cache=cache).run(specs)
        assert warm.cached_count == 1
        assert "all served from cache" in warm.summary()
        table = warm.format_cells()
        assert "memory" in table
        assert "fattree" in table

    def test_value_for(self):
        spec = RunSpec("fattree", TINY)
        outcome = Campaign(cache=RunCache()).run([spec])
        assert outcome.value_for(spec) is outcome.values[0]
        with pytest.raises(KeyError):
            outcome.value_for(RunSpec("fattree", dataclasses.replace(TINY, seed=9)))


class TestRegistry:
    def test_all_drivers_registered(self):
        assert {"fattree", "fig1", "fig4", "fig6", "fig7"} <= set(registered_kinds())

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="fattree"):
            kind_entry("nonsense")

    def test_entries_resolve(self):
        for name in registered_kinds():
            assert callable(kind_entry(name).resolve())
