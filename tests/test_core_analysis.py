"""Tests for the closed-form sawtooth analysis, incl. simulator agreement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    marking_period_seconds,
    predict_sawtooth,
    utilization_map,
)
from repro.metrics.collector import QueueMonitor
from repro.mptcp.connection import MptcpConnection
from repro.sim.units import bandwidth_delay_product_packets
from repro.topology.bottleneck import build_single_bottleneck


class TestClosedForm:
    def test_eq1_bound_gives_full_utilization(self):
        # K exactly at BDP/(beta-1): trough lands on BDP, utilization 1.
        bdp = 30.0
        for beta in (2.0, 3.0, 4.0):
            threshold = bdp / (beta - 1.0)
            prediction = predict_sawtooth(bdp, threshold, beta, delta=0.0001)
            assert prediction.utilization == pytest.approx(1.0, abs=0.01)

    def test_tiny_k_costs_utilization(self):
        prediction = predict_sawtooth(30.0, 1.0, 4.0)
        assert prediction.utilization < 0.95

    def test_peak_and_trough(self):
        prediction = predict_sawtooth(20.0, 10.0, 4.0)
        assert prediction.w_max == pytest.approx(31.0)
        assert prediction.w_min == pytest.approx(31.0 * 0.75)

    def test_larger_beta_lower_queue_at_eq1_bound(self):
        bdp = 30.0
        queues = []
        for beta in (2.0, 3.0, 4.0, 5.0, 6.0):
            threshold = bdp / (beta - 1.0)
            queues.append(predict_sawtooth(bdp, threshold, beta).mean_queue_packets)
        assert queues == sorted(queues, reverse=True)

    def test_meets_eq1_flag(self):
        assert predict_sawtooth(30.0, 15.0, 4.0).meets_eq1
        assert not predict_sawtooth(30.0, 5.0, 4.0).meets_eq1

    def test_marking_period(self):
        prediction = predict_sawtooth(20.0, 10.0, 4.0)
        period = marking_period_seconds(prediction, 300e-6)
        assert period == pytest.approx(prediction.cycle_rounds * 300e-6)
        with pytest.raises(ValueError):
            marking_period_seconds(prediction, 0.0)

    def test_utilization_map_grid(self):
        grid = utilization_map(30.0, betas=(2.0, 4.0), thresholds=(5, 10, 30))
        assert len(grid) == 6
        # Utilization is monotone in K for fixed beta.
        for beta in (2.0, 4.0):
            utils = [grid[(beta, k)].utilization for k in (5, 10, 30)]
            assert utils == sorted(utils)

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_sawtooth(0.0, 10, 4)
        with pytest.raises(ValueError):
            predict_sawtooth(30, -1, 4)
        with pytest.raises(ValueError):
            predict_sawtooth(30, 10, 1.0)
        with pytest.raises(ValueError):
            predict_sawtooth(30, 10, 4, delta=0)

    @given(
        bdp=st.floats(2.0, 200.0),
        threshold=st.floats(0.0, 100.0),
        beta=st.floats(2.0, 8.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounds_always_hold(self, bdp, threshold, beta):
        prediction = predict_sawtooth(bdp, threshold, beta)
        assert 0.0 < prediction.utilization <= 1.0
        assert prediction.mean_queue_packets >= 0.0
        assert prediction.w_min <= prediction.w_max
        # Mean queue can never exceed the peak standing queue (~K + delta).
        assert prediction.mean_queue_packets <= threshold + prediction.delta + 1e-9


class TestAgainstSimulator:
    @pytest.mark.parametrize(
        "beta,threshold", [(2.0, 20), (4.0, 10), (4.0, 20), (6.0, 10)]
    )
    def test_prediction_matches_packet_simulation(self, beta, threshold):
        rate, rtt = 1e9, 225e-6
        bdp = bandwidth_delay_product_packets(rate, rtt)
        prediction = predict_sawtooth(bdp, threshold, beta)

        net = build_single_bottleneck(
            num_pairs=1, bottleneck_rate_bps=rate, rtt=rtt,
            marking_threshold=threshold,
        )
        monitor = QueueMonitor(net.sim, [net.forward_bottleneck], 0.0005)
        monitor.start()
        conn = MptcpConnection(net, "S0", "D0", [net.flow_path(0)],
                               scheme="xmp", beta=beta)
        conn.start()
        net.sim.run(until=0.4)

        measured_util = net.forward_bottleneck.utilization(0.4)
        measured_queue = monitor.mean_occupancy(net.forward_bottleneck.name)
        # The closed form upper-bounds utilization near the Eq. 1 boundary
        # (see the module docstring); measured may sit up to ~9% below.
        assert measured_util <= prediction.utilization + 0.02
        assert measured_util == pytest.approx(prediction.utilization, abs=0.1)
        assert measured_queue == pytest.approx(
            prediction.mean_queue_packets, abs=4.0
        )
