"""simperf self-checks: static hot-path analysis, allocation sanitizer,
golden cross-check, and static/dynamic agreement.

The acceptance bar the pass is held to:

* the static pass is clean on ``src/repro`` — every allocation on a
  registered hot path is either hoisted or carries a reasoned
  ``# simperf: allow-alloc(...)`` waiver;
* ``REPRO_ALLOC``-style monitoring observes without perturbing — golden
  digests stay bit-identical with the sanitizer attached;
* every dynamically observed allocator has a static explanation
  (an allocation site reachable in its summary call graph), and the two
  sides agree in the positive direction: a planted per-event allocation
  is flagged by SIM019 *and* attributed by the monitor;
* the rule catalog, the CLI and LINTING.md agree on the full
  SIM001–SIM023 ladder.
"""

import json

import pytest

from repro.lint.perf import (
    activate,
    active_alloc_monitor,
    alloc_monitoring,
    alloc_requested,
    deactivate,
)
from repro.lint.perf.analyzer import check_perf, explained_hot_functions
from repro.lint.perf.hotpaths import HotPathError, HotPathRegistry
from repro.lint.perf.info import PERF_CODES
from repro.lint.perf.runtime import SCALAR_NOISE_BYTES, AllocMonitor
from repro.lint.registry import catalog, known_codes
from repro.lint.sem import ProjectAnalyzer
from repro.sim.engine import Simulator

pytestmark = pytest.mark.simperf


def perf_findings(sources, registry, telemetry=None):
    analyzer = ProjectAnalyzer(
        cache=None, perf=True, hotpaths=registry, telemetry=telemetry
    )
    return [
        f
        for f in analyzer.analyze_sources(sources)
        if f.code in PERF_CODES
    ]


# ----------------------------------------------------------------------
# The hot-path registry
# ----------------------------------------------------------------------


def test_checked_in_registry_loads_and_is_reasoned():
    registry = HotPathRegistry.load()
    assert len(registry) > 0
    for qname, reason in registry.items():
        assert qname.startswith("repro."), qname
        assert reason.strip(), f"{qname} has an empty reason"
    assert registry.digest() == HotPathRegistry.load().digest()


def test_registry_rejects_malformed_entries():
    with pytest.raises(HotPathError):
        HotPathRegistry.from_text('[not-a-dotted-name]\nreason = "x"\n')
    with pytest.raises(HotPathError):
        HotPathRegistry.from_text('[a.b]\n')  # missing reason
    with pytest.raises(HotPathError):
        HotPathRegistry.from_text('[a.b]\nreason = ""\n')
    with pytest.raises(HotPathError):
        HotPathRegistry.from_text(
            '[a.b]\nreason = "x"\n[a.b]\nreason = "y"\n'
        )


def test_registry_entries_resolve_to_real_functions():
    """Every registered hot path exists in the analyzed tree — a rename
    cannot silently detach the rules from the function they protect."""
    from repro.lint.perf.__main__ import _build_summaries

    known = set()
    for summary in _build_summaries("src/repro"):
        module = str(summary["module"])
        for qname in summary.get("functions", {}):
            known.add(f"{module}.{qname}")
    registry = HotPathRegistry.load()
    missing = [qname for qname, _reason in registry.items()
               if qname not in known]
    assert missing == [], f"hotpaths.toml names unknown functions: {missing}"


# ----------------------------------------------------------------------
# Static pass
# ----------------------------------------------------------------------


def test_src_tree_is_perf_clean():
    """The audited source tree carries no SIM019-SIM023 findings: every
    hot-path allocation is hoisted or carries a reasoned waiver."""
    analyzer = ProjectAnalyzer(cache=None, perf=True)
    findings = [
        f
        for f in analyzer.analyze_paths(["src/repro"])
        if f.code in PERF_CODES
    ]
    assert findings == [], "\n".join(f.format() for f in findings)


PLANTED_ALLOC = '''
class Pump:
    def __init__(self):
        self.log = []

    def on_event(self, seq):
        self.log.append([seq, seq + 1])

    def prime(self, sim):
        sim.schedule(0.0, self.on_event)
'''

PLANTED_REGISTRY = HotPathRegistry.from_text(
    '[repro.x.pump.Pump.on_event]\nreason = "planted hot path"\n'
)


def test_planted_hot_allocation_is_flagged():
    findings = perf_findings(
        [("src/repro/x/pump.py", PLANTED_ALLOC)], PLANTED_REGISTRY
    )
    assert [f.code for f in findings] == ["SIM019"]
    assert "repro.x.pump.Pump.on_event" in findings[0].message
    assert "planted hot path" in findings[0].message


def test_unregistered_function_is_not_held_hot():
    empty = HotPathRegistry.from_text("# no hot paths\n")
    assert perf_findings(
        [("src/repro/x/pump.py", PLANTED_ALLOC)], empty
    ) == []


def test_check_perf_defaults_to_checked_in_registry():
    """check_perf() with no explicit registry joins against the real
    hotpaths.toml — the planted module is outside it, hence clean."""
    from repro.lint.sem.summary import build_summary

    summary = build_summary("src/repro/x/pump.py", PLANTED_ALLOC)
    assert check_perf([summary]) == []


def test_explained_closure_is_generous():
    """The planted allocator is explained (for the dynamic cross-check)
    even though SIM019 flags it — explanation is about attribution, not
    approval."""
    from repro.lint.sem.summary import build_summary

    summary = build_summary("src/repro/x/pump.py", PLANTED_ALLOC)
    explained = explained_hot_functions([summary], PLANTED_REGISTRY)
    assert explained == {"repro.x.pump.Pump.on_event"}


# ----------------------------------------------------------------------
# Runtime sanitizer
# ----------------------------------------------------------------------


class _Victim:
    """Module-level so bound methods carry stable dotted qnames."""

    def __init__(self):
        self.log = []
        self.count = 10**9  # far outside the small-int cache

    def alloc_per_event(self):
        # 64 slots: the 512-byte item buffer is malloc'd (never
        # free-listed like a small list header), so every firing shows
        # a traced delta safely above the scalar noise floor.
        self.log.append([0] * 64)

    def scalar_only(self):
        self.count += 1

    def no_op(self):
        pass


def _victim_registry(*methods):
    text = "".join(
        f'[{_Victim.__module__}.{_Victim.__qualname__}.{name}]\n'
        f'reason = "test victim"\n'
        for name in methods
    )
    return HotPathRegistry.from_text(text)


def _run_monitored(monitor, schedule, events=200):
    sim = Simulator()
    monitor.attach(sim)
    victim = _Victim()
    for i in range(events):
        schedule(sim, victim, i)
    sim.run()
    monitor.close()
    return monitor


def _dotted(name):
    return f"{_Victim.__module__}.{_Victim.__qualname__}.{name}"


def test_monitor_attributes_structural_allocation():
    monitor = _run_monitored(
        AllocMonitor(registry=_victim_registry("alloc_per_event")),
        lambda sim, v, i: sim.schedule(i * 1e-3, v.alloc_per_event),
    )
    dotted = _dotted("alloc_per_event")
    assert monitor.allocators() == [dotted]
    entry = monitor.stats[dotted]
    assert entry["events"] == 200
    assert entry["alloc_events"] > 100
    assert entry["bytes"] > 0
    assert monitor.hot_events == 200


def test_scalar_boxing_is_below_the_noise_floor():
    """Pure counter arithmetic boxes one PyLong per event; the
    SCALAR_NOISE_BYTES floor keeps that from reading as allocation."""
    assert SCALAR_NOISE_BYTES == 32
    monitor = _run_monitored(
        AllocMonitor(registry=_victim_registry("scalar_only")),
        lambda sim, v, i: sim.schedule(i * 1e-3, v.scalar_only),
    )
    assert monitor.allocators() == []
    entry = monitor.stats[_dotted("scalar_only")]
    assert entry["events"] == 200


def test_unregistered_callbacks_are_not_traced():
    monitor = _run_monitored(
        AllocMonitor(registry=_victim_registry("no_op")),
        lambda sim, v, i: sim.schedule(i * 1e-3, v.alloc_per_event),
    )
    assert monitor.stats == {}
    assert monitor.hot_events == 0
    assert monitor.events == 200


def test_trace_all_covers_unregistered_callbacks():
    """Micro-cell mode: every callback is attributed, registry or not."""
    monitor = _run_monitored(
        AllocMonitor(
            registry=HotPathRegistry.from_text("# empty\n"), trace_all=True
        ),
        lambda sim, v, i: sim.schedule(i * 1e-3, v.no_op),
    )
    assert _dotted("no_op") in monitor.stats
    assert monitor.allocators() == []


def test_majority_ratio_separates_warmup_from_structural():
    monitor = AllocMonitor(registry=HotPathRegistry.from_text("# empty\n"))
    monitor.stats["a.warmup"] = {"events": 100, "alloc_events": 3,
                                 "bytes": 4096}
    monitor.stats["a.structural"] = {"events": 100, "alloc_events": 99,
                                     "bytes": 6400}
    assert monitor.allocators() == ["a.structural"]
    assert monitor.allocators(min_ratio=0.01) == [
        "a.structural", "a.warmup"
    ]
    monitor.close()


def test_monitor_writes_jsonl_report(tmp_path):
    monitor = _run_monitored(
        AllocMonitor(registry=_victim_registry("alloc_per_event")),
        lambda sim, v, i: sim.schedule(i * 1e-3, v.alloc_per_event),
    )
    out = tmp_path / "alloc.jsonl"
    monitor.write_report(str(out), extra={"scenario": "unit"})
    records = [
        json.loads(line) for line in out.read_text().splitlines()
    ]
    assert [r["kind"] for r in records] == ["function", "summary"]
    assert records[0]["function"] == _dotted("alloc_per_event")
    assert records[1]["scenario"] == "unit"
    assert records[1]["allocators"] == [_dotted("alloc_per_event")]


def test_alloc_log_streams_and_is_capped(tmp_path):
    log = tmp_path / "stream.jsonl"
    _run_monitored(
        AllocMonitor(
            registry=_victim_registry("alloc_per_event"),
            log_path=str(log),
        ),
        lambda sim, v, i: sim.schedule(i * 1e-3, v.alloc_per_event),
    )
    records = [
        json.loads(line) for line in log.read_text().splitlines()
    ]
    assert 0 < len(records) <= 50
    assert all(r["kind"] == "alloc" for r in records)
    assert all(r["bytes"] > SCALAR_NOISE_BYTES for r in records)


def test_hooks_stack_discipline():
    monitor = AllocMonitor(registry=HotPathRegistry.from_text("# empty\n"))
    assert not alloc_requested() or active_alloc_monitor() is not None
    activate(monitor)
    try:
        assert active_alloc_monitor() is monitor
        assert alloc_requested()
    finally:
        deactivate(monitor)
    with pytest.raises(RuntimeError):
        deactivate(monitor)
    monitor.close()


def test_env_activation(monkeypatch):
    import repro.lint.perf.hooks as hooks

    monkeypatch.setattr(hooks, "_ENV_MONITOR", None)
    monkeypatch.setenv("REPRO_ALLOC", "1")
    assert alloc_requested()
    monitor = active_alloc_monitor()
    assert monitor is not None
    assert active_alloc_monitor() is monitor  # shared per process
    monitor.close()
    monkeypatch.setenv("REPRO_ALLOC", "0")
    monkeypatch.setattr(hooks, "_ENV_MONITOR", None)
    assert active_alloc_monitor() is None
    assert not alloc_requested()


def test_network_attaches_active_monitor():
    from repro.net.network import Network

    with alloc_monitoring() as monitor:
        net = Network()
    assert net.sim.alloc is monitor
    net2 = Network()
    assert net2.sim.alloc is None


# ----------------------------------------------------------------------
# Golden cross-check + static/dynamic agreement
# ----------------------------------------------------------------------


def test_sanitizer_leaves_golden_digest_bit_identical():
    """The monitor observes, never perturbs: the bottleneck golden is
    bit-identical with the sanitizer attached, and every observed
    allocator has a static explanation."""
    from repro.lint.perf.__main__ import _explained
    from repro.validate.golden import check_digest
    from repro.validate.scenarios import run_scenario

    with alloc_monitoring() as monitor:
        digest, validator = run_scenario("bottleneck-xmp")
    assert validator.violations == []
    assert check_digest("bottleneck-xmp", digest) == []
    assert monitor.events > 0
    assert monitor.hot_events > 0
    unexplained = set(monitor.allocators()) - _explained(
        "src/repro", monitor.registry
    )
    assert unexplained == set()


def test_static_and_dynamic_agree_on_planted_allocation():
    """The same planted shape trips both sides: SIM019 statically, an
    attributed majority allocator dynamically."""
    static = perf_findings(
        [("src/repro/x/pump.py", PLANTED_ALLOC)], PLANTED_REGISTRY
    )
    assert [f.code for f in static] == ["SIM019"]
    monitor = _run_monitored(
        AllocMonitor(registry=_victim_registry("alloc_per_event")),
        lambda sim, v, i: sim.schedule(i * 1e-3, v.alloc_per_event),
    )
    assert monitor.allocators() == [_dotted("alloc_per_event")]


def test_perf_module_cli_smoke(tmp_path, capsys):
    from repro.lint.perf.__main__ import main as perf_main

    out = tmp_path / "report.jsonl"
    assert perf_main(
        ["--scenario", "bottleneck-xmp", "--out", str(out)]
    ) == 0
    records = [
        json.loads(line) for line in out.read_text().splitlines()
    ]
    assert records[-1]["kind"] == "summary"
    assert records[-1]["scenario"] == "bottleneck-xmp"
    assert records[-1]["unexplained"] == []
    assert "bottleneck-xmp" in capsys.readouterr().out


def test_perf_module_micro_cells(tmp_path, capsys):
    """The deterministic micro twins: zero unexplained allocations per
    event on both the schedule() and the hot-path post() cells."""
    from repro.lint.perf.__main__ import main as perf_main

    out = tmp_path / "micro.jsonl"
    assert perf_main(["--micro", "--out", str(out)]) == 0
    records = [
        json.loads(line) for line in out.read_text().splitlines()
    ]
    cells = {r["scenario"]: r for r in records if r["kind"] == "summary"}
    assert set(cells) == {"micro_schedule_fire", "micro_hotpath_fire"}
    for record in cells.values():
        assert record["allocators"] == []
    assert "micro_hotpath_fire" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Catalog sync: registry <-> SARIF <-> LINTING.md
# ----------------------------------------------------------------------


def test_catalog_spans_the_full_ladder():
    """SIM001-SIM023, contiguous, one entry per code, each mapped to
    its rung."""
    entries = catalog()
    codes = [entry.code for entry in entries]
    assert codes == [f"SIM{n:03d}" for n in range(1, 24)]
    assert known_codes() == frozenset(codes)
    rungs = {entry.code: entry.rung for entry in entries}
    for code in PERF_CODES:
        assert rungs[code] == "simperf"
    kinds = {entry.kind for entry in entries}
    assert kinds == {"syntactic", "semantic", "race", "perf"}


def test_sarif_driver_catalog_matches_registry(tmp_path, capsys):
    from repro.lint.cli import main as lint_main

    (tmp_path / "ok.py").write_text(
        "def helper(x):\n    return x + 1\n", encoding="utf-8"
    )
    assert lint_main(
        ["--sem", "--race", "--perf", "--format", "sarif", str(tmp_path)]
    ) == 0
    log = json.loads(capsys.readouterr().out)
    rules = log["runs"][0]["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == [e.code for e in catalog()]


def test_linting_doc_documents_every_rule():
    from pathlib import Path

    text = (Path(__file__).parent.parent / "LINTING.md").read_text(
        encoding="utf-8"
    )
    for entry in catalog():
        assert entry.code in text, f"LINTING.md is missing {entry.code}"
        assert entry.name in text, (
            f"LINTING.md is missing the name {entry.name!r} ({entry.code})"
        )
