"""Unit tests for RenoCC and DctcpCC window laws (driven via a stub sender)."""

import math

import pytest

from repro.transport.cc import MIN_CWND, NORMAL, REDUCED, RenoCC
from repro.transport.dctcp import DctcpCC


class StubSender:
    """Just the fields a congestion controller touches."""

    def __init__(self, cwnd=10.0, ssthresh=math.inf):
        self.cwnd = cwnd
        self.ssthresh = ssthresh
        self.snd_una = 0
        self.snd_nxt = int(cwnd)
        self.in_recovery = False
        self.running = True
        self.completed = False
        self.srtt = 100e-6

    @property
    def flight(self):
        return self.snd_nxt - self.snd_una

    @property
    def instant_rate(self):
        return self.cwnd / self.srtt if self.srtt else 0.0


def attach(cc, **kwargs):
    sender = StubSender(**kwargs)
    cc.attach(sender)
    return sender


def clean_ack(cc, newly=1, round_ended=False):
    cc.sender.snd_una += newly
    cc.on_ack(newly, 0, 100e-6, 0.0, round_ended)


class TestRenoBasics:
    def test_slow_start_grows_per_segment(self):
        cc = RenoCC()
        sender = attach(cc)
        clean_ack(cc, newly=3)
        assert sender.cwnd == 13.0

    def test_congestion_avoidance_grows_one_per_window(self):
        cc = RenoCC()
        sender = attach(cc, cwnd=10.0, ssthresh=5.0)
        for _ in range(10):
            clean_ack(cc, newly=1)
        assert sender.cwnd == pytest.approx(11.0, rel=0.01)

    def test_loss_event_halves(self):
        cc = RenoCC()
        sender = attach(cc, cwnd=20.0)
        sender.snd_nxt = 20
        cc.on_loss_event(0.0)
        assert sender.ssthresh == 10.0
        assert sender.cwnd == 10.0

    def test_loss_floor_at_min_cwnd(self):
        cc = RenoCC()
        sender = attach(cc, cwnd=2.0)
        sender.snd_nxt = 2
        cc.on_loss_event(0.0)
        assert sender.cwnd == MIN_CWND

    def test_timeout_collapses_to_one(self):
        cc = RenoCC()
        sender = attach(cc, cwnd=20.0)
        cc.on_timeout(0.0)
        assert sender.cwnd == 1.0

    def test_no_growth_during_recovery(self):
        cc = RenoCC()
        sender = attach(cc, cwnd=10.0, ssthresh=5.0)
        sender.in_recovery = True
        clean_ack(cc, newly=1)
        assert sender.cwnd == 10.0

    def test_attach_twice_rejected(self):
        cc = RenoCC()
        attach(cc)
        with pytest.raises(RuntimeError):
            cc.attach(StubSender())


class TestRenoEcn:
    def test_ignores_ece_when_not_ecn_capable(self):
        cc = RenoCC(ecn=False)
        sender = attach(cc, cwnd=10.0)
        cc.on_ack(1, 1, None, 0.0, False)
        assert sender.cwnd >= 10.0

    def test_halves_on_ece(self):
        cc = RenoCC(ecn=True)
        sender = attach(cc, cwnd=10.0, ssthresh=5.0)
        cc.on_ack(1, 1, None, 0.0, False)
        assert sender.cwnd == 5.0
        assert cc.state == REDUCED

    def test_only_once_per_window(self):
        cc = RenoCC(ecn=True)
        sender = attach(cc, cwnd=16.0, ssthresh=5.0)
        sender.snd_nxt = 16
        cc.on_ack(1, 1, None, 0.0, False)
        cc.on_ack(1, 1, None, 0.0, False)
        # Halved once (16 -> 8), not twice; the second ACK may still add
        # its ordinary CA growth.
        assert 8.0 <= sender.cwnd < 8.5

    def test_state_returns_to_normal_after_cwr_round(self):
        cc = RenoCC(ecn=True)
        sender = attach(cc, cwnd=10.0, ssthresh=5.0)
        sender.snd_nxt = 10
        cc.on_ack(1, 1, None, 0.0, False)
        assert cc.state == REDUCED
        sender.snd_una = 10  # reached cwr_seq
        cc.on_ack(1, 0, None, 0.0, False)
        assert cc.state == NORMAL


class TestDctcp:
    def test_alpha_starts_at_one(self):
        assert DctcpCC().alpha == 1.0

    def test_first_mark_halves(self):
        cc = DctcpCC()
        sender = attach(cc, cwnd=20.0, ssthresh=5.0)
        sender.snd_nxt = 20
        cc.on_ack(1, 1, None, 0.0, False)
        assert sender.cwnd == 10.0  # alpha=1 -> cut by half

    def test_alpha_decays_without_marks(self):
        cc = DctcpCC(gain=1 / 16)
        attach(cc, cwnd=10.0, ssthresh=5.0)
        for _ in range(10):
            clean_ack(cc, newly=10, round_ended=True)
        assert cc.alpha == pytest.approx((1 - 1 / 16) ** 10)

    def test_alpha_converges_to_marked_fraction(self):
        cc = DctcpCC(gain=0.5)
        sender = attach(cc, cwnd=10.0, ssthresh=5.0)
        for _ in range(40):
            # Half the segments marked each window; keep state NORMAL by
            # completing the reduction round immediately.
            sender.snd_una = sender.snd_nxt
            cc.on_ack(5, 0, None, 0.0, False)
            cc.on_ack(5, 5, None, 0.0, True)
        assert cc.alpha == pytest.approx(0.5, abs=0.1)

    def test_small_alpha_small_cut(self):
        cc = DctcpCC()
        cc.alpha = 0.1
        sender = attach(cc, cwnd=100.0, ssthresh=5.0)
        sender.snd_nxt = 100
        cc.on_ack(1, 1, None, 0.0, False)
        assert sender.cwnd == pytest.approx(95.0)

    def test_cut_at_most_once_per_window(self):
        cc = DctcpCC()
        cc.alpha = 0.5
        sender = attach(cc, cwnd=16.0, ssthresh=5.0)
        sender.snd_nxt = 16
        cc.on_ack(1, 1, None, 0.0, False)
        cc.on_ack(1, 1, None, 0.0, False)
        assert sender.cwnd == 12.0  # one 25% cut

    def test_floor_at_min_cwnd(self):
        cc = DctcpCC()
        sender = attach(cc, cwnd=2.0, ssthresh=1.0)
        sender.snd_nxt = 2
        cc.on_ack(1, 1, None, 0.0, False)
        assert sender.cwnd == MIN_CWND

    def test_timeout_resets_window_accounting(self):
        cc = DctcpCC()
        sender = attach(cc, cwnd=10.0)
        cc.on_ack(5, 2, None, 0.0, False)
        cc.on_timeout(0.0)
        assert cc._acked_window == 0
        assert cc._marked_window == 0
        assert sender.cwnd == 1.0

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            DctcpCC(gain=0.0)
        with pytest.raises(ValueError):
            DctcpCC(initial_alpha=1.5)

    def test_slow_start_exits_on_first_mark(self):
        cc = DctcpCC()
        sender = attach(cc, cwnd=8.0)  # ssthresh inf: slow start
        sender.snd_nxt = 8
        cc.on_ack(1, 1, None, 0.0, False)
        assert sender.ssthresh < math.inf
        # Growth now linear, not exponential.
        before = sender.cwnd
        sender.snd_una = sender.snd_nxt  # complete reduction round
        cc.on_ack(1, 0, None, 0.0, False)
        assert sender.cwnd - before < 1.0
