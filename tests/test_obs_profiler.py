"""Tests for the engine profiler (repro.obs): component bucketing, heap
counters, the activation hooks, and the zero-cost-when-disabled contract.
"""

from __future__ import annotations

import pickle

import pytest

from repro.net.network import Network
from repro.obs import (
    ProfileSnapshot,
    Profiler,
    component_of,
    hooks,
    profiling,
)
from repro.sim.engine import Simulator


def noop() -> None:
    pass


class Ticker:
    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.fired = 0

    def tick(self) -> None:
        self.fired += 1


class TestComponentOf:
    def test_module_function(self):
        assert component_of(noop) == "tests.test_obs_profiler.noop"

    def test_bound_method(self):
        ticker = Ticker(Simulator())
        assert component_of(ticker.tick) == "tests.test_obs_profiler.Ticker.tick"

    def test_repro_prefix_stripped(self):
        from repro.metrics.collector import PeriodicSampler

        name = component_of(PeriodicSampler._tick)
        assert name == "metrics.collector.PeriodicSampler._tick"
        assert not name.startswith("repro.")

    def test_callable_object_without_qualname(self):
        import functools

        # partial objects carry no __qualname__: fall back to the type.
        assert component_of(functools.partial(noop)) == "functools.partial"


class TestProfilerCounters:
    def test_events_bucketed_by_component(self, sim):
        profiler = Profiler()
        profiler.attach(sim)
        ticker_a, ticker_b = Ticker(sim), Ticker(sim)
        for i in range(3):
            sim.schedule(i * 0.1, ticker_a.tick)
        for i in range(2):
            sim.schedule(i * 0.1, ticker_b.tick)
        sim.schedule(0.0, noop)
        sim.run()
        snap = profiler.snapshot()
        by_name = {c.component: c for c in snap.components}
        # Both instances' bound methods share the class's bucket.
        assert by_name["tests.test_obs_profiler.Ticker.tick"].events == 5
        assert by_name["tests.test_obs_profiler.noop"].events == 1
        assert snap.events == sim.events_processed == 6
        assert snap.callback_wall_s >= 0.0

    def test_heap_counters(self, sim):
        profiler = Profiler()
        profiler.attach(sim)
        events = [sim.schedule(0.1 * i, noop) for i in range(4)]
        events[2].cancel()
        sim.run()
        snap = profiler.snapshot()
        assert snap.heap.pushes == 4
        assert snap.heap.pops == 4  # 3 fired + 1 cancelled discard
        assert snap.heap.peak_size == 4
        assert snap.heap.compactions == 0
        assert snap.events == 3  # the cancelled event never fired

    def test_cancelled_events_hit_no_bucket(self, sim):
        profiler = Profiler()
        profiler.attach(sim)
        sim.schedule(0.1, noop).cancel()
        sim.run()
        snap = profiler.snapshot()
        assert snap.components == ()
        assert snap.heap.pops == 1

    def test_compactions_surface_in_snapshot(self, sim):
        profiler = Profiler()
        profiler.attach(sim)
        keep = sim.schedule(1.0, noop)
        cancelled = [sim.schedule(0.5, noop)
                     for _ in range(Simulator.COMPACT_MIN_CANCELLED + 2)]
        for event in cancelled:
            event.cancel()
        assert sim.compactions >= 1
        assert profiler.snapshot().heap.compactions == sim.compactions
        keep.cancel()

    def test_detach_stops_counting(self, sim):
        profiler = Profiler()
        profiler.attach(sim)
        sim.schedule(0.0, noop)
        profiler.detach(sim)
        assert sim.profiler is None
        sim.run()
        snap = profiler.snapshot()
        assert snap.heap.pushes == 1
        assert snap.events == 0  # the fire happened unprofiled

    def test_multi_sim_aggregation(self):
        profiler = Profiler()
        sims = [Simulator(), Simulator()]
        for sim in sims:
            profiler.attach(sim)
            sim.schedule(0.0, noop)
            sim.run()
        snap = profiler.snapshot()
        assert snap.events == 2
        assert snap.heap.pushes == 2


class TestSnapshot:
    def run_profiled(self) -> ProfileSnapshot:
        sim = Simulator()
        profiler = Profiler()
        profiler.attach(sim)
        ticker = Ticker(sim)
        for i in range(10):
            sim.schedule(0.01 * i, ticker.tick)
            sim.schedule(0.01 * i, noop)
        sim.run()
        return profiler.snapshot()

    def test_components_name_sorted(self):
        snap = self.run_profiled()
        names = [c.component for c in snap.components]
        assert names == sorted(names)

    def test_deterministic_modulo_wall_time(self):
        one, two = self.run_profiled(), self.run_profiled()
        assert [(c.component, c.events) for c in one.components] == [
            (c.component, c.events) for c in two.components
        ]
        assert one.heap == two.heap
        assert one.events == two.events

    def test_hotspots_ranked_and_limited(self):
        snap = self.run_profiled()
        spots = snap.hotspots(1)
        assert len(spots) == 1
        walls = [c.wall_s for c in snap.hotspots(10)]
        assert walls == sorted(walls, reverse=True)

    def test_as_dict_and_format(self):
        snap = self.run_profiled()
        as_dict = snap.as_dict()
        assert as_dict["events"] == snap.events
        assert {c["component"] for c in as_dict["components"]} == {
            c.component for c in snap.components
        }
        assert set(as_dict["heap"]) == {"pushes", "pops", "compactions",
                                        "peak_size", "promotions",
                                        "far_spills", "max_run", "batches",
                                        "batched_packets"}
        text = snap.format()
        assert "Ticker.tick" in text
        assert "heap:" in text

    def test_snapshot_pickles(self):
        snap = self.run_profiled()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap


class TestHooks:
    def test_profiling_context_attaches_new_networks(self):
        with profiling() as profiler:
            net = Network()
            assert net.sim.profiler is profiler
        # Outside the block, new networks stay unprofiled.
        assert Network().sim.profiler is None

    def test_nesting_innermost_wins(self):
        with profiling() as outer:
            with profiling() as inner:
                assert hooks.active_profiler() is inner
            assert hooks.active_profiler() is outer
        assert hooks.active_profiler() is None

    def test_deactivate_out_of_order_raises(self):
        outer, inner = Profiler(), Profiler()
        hooks.activate(outer)
        hooks.activate(inner)
        try:
            with pytest.raises(RuntimeError, match="out of order"):
                hooks.deactivate(outer)
        finally:
            hooks.deactivate(inner)
            hooks.deactivate(outer)
        with pytest.raises(RuntimeError, match="no profiler"):
            hooks.deactivate()

    def test_profiling_requested_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert not hooks.profiling_requested()
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert hooks.profiling_requested()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not hooks.profiling_requested()
        monkeypatch.setenv("REPRO_TELEMETRY", "some/dir")
        assert hooks.profiling_requested()  # telemetry implies profiling
        assert hooks.telemetry_dir() == "some/dir"


class TestZeroCostContract:
    def test_disabled_simulator_has_no_profiler(self, sim):
        assert sim.profiler is None
        sim.schedule(0.0, noop)
        sim.run()
        assert sim.events_processed == 1

    def test_profiled_run_is_byte_identical(self):
        """Profiling must observe, never perturb, the simulation."""
        from repro.mptcp.connection import MptcpConnection
        from repro.net.queue import ThresholdECNQueue

        def run(profiled: bool):
            net = Network()
            a, b = net.add_host("A"), net.add_host("B")
            s = net.add_switch("SW")

            factory = lambda: ThresholdECNQueue(100, 10)  # noqa: E731
            net.connect(a, s, 1e9, 30e-6, queue_factory=factory)
            net.connect(s, b, 1e9, 30e-6, queue_factory=factory)
            profiler = Profiler()
            if profiled:
                profiler.attach(net.sim)
            conn = MptcpConnection(net, "A", "B", net.paths("A", "B"),
                                   scheme="xmp")
            conn.start()
            net.sim.run(until=0.05)
            return (net.sim.events_processed,
                    conn.subflows[0].sender.delivered_segments,
                    conn.subflows[0].sender.cwnd)

        assert run(profiled=False) == run(profiled=True)
