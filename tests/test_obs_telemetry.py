"""Telemetry tests (repro.obs): the JSONL sink, the record schema, the
drain helpers, and the determinism contract — records identical across
``--jobs 1`` / ``--jobs 4`` and cache hit / miss modulo the wall-clock
and provenance fields, and profiling never changing simulation output.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.fattree_eval import FatTreeScenario
from repro.metrics.collector import QueueMonitor, RateSampler, RttSampler
from repro.mptcp.connection import MptcpConnection
from repro.obs.records import (
    TELEMETRY_SCHEMA,
    deterministic_view,
    drain_link,
    drain_queue,
    drain_sampler,
    drain_sender,
    to_jsonl,
)
from repro.obs.telemetry import Telemetry, from_environment
from repro.runner import Campaign, MemoryCache, RunCache, RunSpec
from repro.runner.spec import SOURCE_MEMORY, SOURCE_RUN

TINY = FatTreeScenario(
    duration=0.02,
    perm_size_min=50_000,
    perm_size_max=150_000,
    random_mean=100_000,
    random_max=300_000,
    seed=11,
)


def grid():
    return [
        RunSpec("fattree", dataclasses.replace(TINY, scheme=scheme,
                                               subflows=subflows))
        for scheme, subflows in (("dctcp", 1), ("xmp", 2))
    ]


@pytest.fixture(autouse=True)
def _clean_obs_env(monkeypatch):
    """Telemetry/profiling must be off unless a test turns it on."""
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)


class TestTelemetrySink:
    def test_writes_valid_jsonl(self, tmp_path):
        telemetry = Telemetry(tmp_path / "telem")
        specs = grid()
        Campaign(jobs=1, use_cache=False, telemetry=telemetry).run(specs)
        assert telemetry.path.exists()
        lines = telemetry.path.read_text().splitlines()
        assert len(lines) == len(specs)
        for line, spec in zip(lines, specs):
            record = json.loads(line)
            assert record["schema"] == TELEMETRY_SCHEMA
            assert record["kind"] == "fattree"
            assert record["label"] == spec.label()
            assert len(record["fingerprint"]) == 64
            assert record["source"] == SOURCE_RUN
            assert record["cached"] is False
            assert record["events"] > 0
            assert record["sim_time_s"] == pytest.approx(0.02)
            assert record["wall_time_s"] > 0
            assert record["wall_sim_ratio"] > 0
            # A miss runs profiled under telemetry: the profile is there
            # and its event total matches the engine's.
            profile = record["profile"]
            assert profile is not None
            assert profile["events"] == record["events"]
            assert profile["hotspots"]
            assert profile["heap"]["pushes"] >= profile["heap"]["pops"] > 0

    def test_appends_across_campaigns(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        spec = grid()[:1]
        Campaign(jobs=1, use_cache=False, telemetry=telemetry).run(spec)
        Campaign(jobs=1, use_cache=False, telemetry=telemetry).run(spec)
        assert len(telemetry.read_records()) == 2

    def test_empty_batch_writes_nothing(self, tmp_path):
        telemetry = Telemetry(tmp_path / "never")
        assert telemetry.record_results([]) == []
        assert not telemetry.path.exists()
        assert telemetry.read_records() == []

    def test_from_environment(self, tmp_path, monkeypatch):
        assert from_environment() is None
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "t"))
        telemetry = from_environment()
        assert telemetry is not None
        assert telemetry.path == tmp_path / "t" / "runs.jsonl"
        # Campaigns pick the sink up without being handed one.
        assert Campaign(jobs=1, use_cache=False).telemetry is not None

    def test_jsonl_is_sorted_and_compact(self):
        text = to_jsonl([{"b": 1, "a": [2, None]}])
        assert text == '{"a":[2,null],"b":1}\n'


class TestDeterminism:
    def test_jobs1_equals_jobs4(self, tmp_path):
        """ISSUE contract: records identical across --jobs 1 / --jobs 4
        modulo wall-clock fields."""
        specs = grid()
        serial = Telemetry(tmp_path / "serial")
        fanned = Telemetry(tmp_path / "fanned")
        Campaign(jobs=1, use_cache=False, telemetry=serial).run(specs)
        Campaign(jobs=4, use_cache=False, telemetry=fanned).run(specs)
        serial_views = [deterministic_view(r) for r in serial.read_records()]
        fanned_views = [deterministic_view(r) for r in fanned.read_records()]
        assert serial_views == fanned_views
        # The stripped profile still pins per-component event counts.
        assert serial_views[0]["profile"]["components"]

    def test_cache_hit_equals_miss(self, tmp_path):
        """Hit and miss records agree on everything the spec determines.

        The hit's ``profile`` is null (nothing executed), so the
        comparison uses ``keep_profile=False``; provenance fields are the
        other intended difference and are stripped by the view.
        """
        spec = grid()[:1]
        cache = RunCache(memory=MemoryCache())
        cold = Telemetry(tmp_path / "cold")
        warm = Telemetry(tmp_path / "warm")
        Campaign(jobs=1, cache=cache, telemetry=cold).run(spec)
        Campaign(jobs=1, cache=cache, telemetry=warm).run(spec)
        [miss] = cold.read_records()
        [hit] = warm.read_records()
        assert miss["source"] == SOURCE_RUN and not miss["cached"]
        assert hit["source"] == SOURCE_MEMORY and hit["cached"]
        assert miss["profile"] is not None
        assert hit["profile"] is None
        assert hit["wall_sim_ratio"] is None
        assert deterministic_view(hit, keep_profile=False) == deterministic_view(
            miss, keep_profile=False
        )

    def test_profiling_does_not_change_results(self, monkeypatch):
        """Byte-identical experiment output with profiling on vs off."""
        specs = grid()
        plain = Campaign(jobs=1, use_cache=False).run(specs)
        monkeypatch.setenv("REPRO_PROFILE", "1")
        profiled = Campaign(jobs=1, use_cache=False).run(specs)
        for off, on in zip(plain.results, profiled.results):
            assert off.metrics.profile is None
            assert on.metrics.profile is not None
            assert off.value == on.value
            assert off.metrics.events == on.metrics.events


class TestDrainHelpers:
    @pytest.fixture
    def ran_net(self, two_host_net):
        net = two_host_net
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"),
                               scheme="xmp")
        rates = RateSampler(net.sim, {"f": conn.subflows[0].sender},
                            interval=0.005, until=0.03)
        queues = QueueMonitor(net.sim, net.links, interval=0.005, until=0.03)
        rates.start(0.005)
        queues.start(0.005)
        conn.start()
        net.sim.run(until=0.03)
        return net, conn, rates, queues

    def test_drain_link_and_queue(self, ran_net):
        net, _conn, _rates, _queues = ran_net
        link = next(link for link in net.links if link.src.name == "A")
        record = drain_link(link)
        assert record.name == link.name
        assert record.enqueued >= record.dequeued > 0
        assert record.max_occupancy >= record.occupancy >= 0
        assert drain_queue("other-name", link.queue).name == "other-name"
        payload = json.loads(to_jsonl([record.as_dict()]))
        assert payload["enqueued"] == record.enqueued

    def test_drain_sampler_shapes(self, ran_net, sim):
        _net, _conn, rates, queues = ran_net
        rate_record = drain_sampler(rates)
        assert rate_record.kind == "RateSampler"
        assert len(rate_record.times) == len(rate_record.series[0][1])
        assert rate_record.series[0][0] == "f"
        queue_record = drain_sampler(queues)
        assert queue_record.kind == "QueueMonitor"
        assert len(queue_record.series) == len(queues.occupancy)
        # RttSampler has samples but no times attribute: drains empty-timed.
        rtt_record = drain_sampler(RttSampler(sim, interval=0.01))
        assert rtt_record.times == ()
        with pytest.raises(TypeError, match="cannot drain"):
            drain_sampler(object())

    def test_drain_sender(self, ran_net):
        _net, conn, _rates, _queues = ran_net
        record = drain_sender("f", conn.subflows[0].sender)
        assert record.delivered_segments > 0
        assert record.cwnd > 0
        as_dict = record.as_dict()
        assert as_dict["name"] == "f"
        assert json.loads(to_jsonl([as_dict]))["running"] == record.running
