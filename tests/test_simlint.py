"""simlint integration: tree self-check, CLI, --fix round-trip.

The load-bearing test is :func:`test_src_tree_lints_clean` — it is what
makes simlint a *gate*: any future PR that reintroduces an unseeded RNG,
a wall-clock read, or a mutable default into ``src/repro`` fails tier-1.
"""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import Analyzer, all_rules, iter_python_files
from repro.lint.cli import main as lint_main
from repro.lint.fixes import apply_fixes

pytestmark = pytest.mark.simlint

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
FIXTURES = Path(__file__).parent / "lint_fixtures"


# ----------------------------------------------------------------------
# The gate: the shipped tree is clean, file by file.
# ----------------------------------------------------------------------


def test_src_tree_lints_clean():
    findings = Analyzer().lint_paths([SRC])
    assert findings == [], "simlint findings in src/repro:\n" + "\n".join(
        f.format() for f in findings
    )


@pytest.mark.parametrize(
    "path",
    sorted(SRC.rglob("*.py"), key=lambda p: p.as_posix()),
    ids=lambda p: p.relative_to(REPO).as_posix(),
)
def test_each_src_file_lints_clean(path):
    """Property-style: zero findings for every file in src/repro."""
    assert Analyzer().lint_file(path) == []


def test_linter_covers_whole_tree():
    """The directory walk sees every committed module exactly once."""
    walked = list(iter_python_files([SRC]))
    assert len(walked) == len(set(walked))
    assert set(walked) == set(SRC.rglob("*.py"))


# ----------------------------------------------------------------------
# Negative control: a deliberately hazardous module trips the rules at
# the exact lines the hazards sit on.
# ----------------------------------------------------------------------


def test_hazardous_module_trips_rules_with_line_numbers(tmp_path):
    hazardous = textwrap.dedent(
        """\
        import random
        import time


        def pick(items):
            return random.choice(items)


        def stamp():
            return time.time()


        def record(sample, sink=[]):
            sink.append(sample)
            return sink
        """
    )
    module = tmp_path / "hazard.py"
    module.write_text(hazardous, encoding="utf-8")
    findings = Analyzer().lint_file(module)
    assert [(f.code, f.line) for f in findings] == [
        ("SIM001", 6),
        ("SIM002", 10),
        ("SIM007", 13),
    ]


# ----------------------------------------------------------------------
# --fix round-trip
# ----------------------------------------------------------------------


def _copy_fixable(tmp_path) -> Path:
    target = tmp_path / "fixable.py"
    shutil.copy(FIXTURES / "fixable.py", target)
    return target


def test_fix_round_trip(tmp_path):
    """--fix rewrites random.Random() and bare except, after which the
    file lints clean and still parses; a second --fix is a no-op."""
    target = _copy_fixable(tmp_path)
    assert lint_main([str(target), "-q"]) == 1
    assert lint_main(["--fix", str(target), "-q"]) == 0
    fixed = target.read_text(encoding="utf-8")
    assert "random.Random(0)" in fixed
    assert "except Exception:" in fixed
    assert "except:" not in fixed.replace("except Exception:", "")
    compile(fixed, str(target), "exec")  # still valid Python
    # Idempotent: nothing left to fix, content unchanged.
    assert lint_main(["--fix", str(target), "-q"]) == 0
    assert target.read_text(encoding="utf-8") == fixed


def test_apply_fixes_refuses_stale_spans():
    """A fix whose expected text no longer matches is skipped, not guessed."""
    source = "rng = random.Random()\n"
    findings = Analyzer().lint_source(source, path="src/repro/x.py")
    assert [f.code for f in findings] == ["SIM001"]
    drifted = "rng = other.Random()  # edited since the lint ran\n"
    fixed, applied = apply_fixes(drifted, findings)
    assert applied == 0
    assert fixed == drifted


def test_fix_only_touches_fixable_rules(tmp_path):
    """Findings without a fix (e.g. SIM002) survive --fix and keep the
    exit code at 1."""
    module = tmp_path / "mixed.py"
    module.write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n",
        encoding="utf-8",
    )
    assert lint_main(["--fix", str(module), "-q"]) == 1
    assert "time.time()" in module.read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


def test_cli_json_format(tmp_path, capsys):
    module = tmp_path / "bad.py"
    module.write_text("import random\nx = random.random()\n", encoding="utf-8")
    assert lint_main(["--format", "json", str(module)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["checked_files"] == 1
    (finding,) = payload["findings"]
    assert finding["code"] == "SIM001"
    assert finding["line"] == 2
    assert finding["severity"] == "error"
    assert finding["fixable"] is False


def test_cli_select_and_ignore(tmp_path):
    module = tmp_path / "bad.py"
    module.write_text(
        "import random\nimport time\nx = random.random()\ny = time.time()\n",
        encoding="utf-8",
    )
    assert lint_main(["--select", "SIM002", str(module), "-q"]) == 1
    assert lint_main(["--select", "SIM003", str(module), "-q"]) == 0
    assert lint_main(["--ignore", "SIM001,SIM002", str(module), "-q"]) == 0
    with pytest.raises(SystemExit) as excinfo:
        lint_main(["--select", "SIM999", str(module)])
    assert excinfo.value.code == 2


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out
    assert len(all_rules()) >= 10


def test_cli_clean_directory_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(tmp_path)]) == 0
    assert capsys.readouterr().out == ""


def test_syntax_error_is_reported_not_raised(tmp_path):
    module = tmp_path / "broken.py"
    module.write_text("def broken(:\n", encoding="utf-8")
    findings = Analyzer().lint_file(module)
    assert [f.code for f in findings] == ["SIM000"]
    assert "syntax error" in findings[0].message


def test_repro_cli_lint_subcommand(tmp_path, capsys):
    """`python -m repro lint` forwards to the simlint CLI verbatim."""
    module = tmp_path / "bad.py"
    module.write_text("import random\nx = random.random()\n", encoding="utf-8")
    assert repro_main(["lint", "--", str(module), "-q"]) == 1
    assert "SIM001" in capsys.readouterr().out
    assert repro_main(["lint", "--", "--list-rules"]) == 0
