"""Tests for the Fig. 1 convergence-time metric."""

import pytest

from repro.experiments.fig1_convergence import Fig1Config, Fig1Result


def synthetic_result(rates_by_flow, interval=1.0, sample=0.1, capacity=1e9):
    config = Fig1Config(interval=interval, bottleneck_rate_bps=capacity,
                        sample_interval=sample)
    result = Fig1Result(config=config)
    n_samples = len(next(iter(rates_by_flow.values())))
    result.times = [sample * (i + 1) for i in range(n_samples)]
    result.rates = dict(rates_by_flow)
    return result


class TestConvergenceTime:
    def test_instant_convergence(self):
        # Two flows at exactly fair share from the very first sample.
        result = synthetic_result(
            {"flow1": [0.5e9] * 10, "flow2": [0.5e9] * 10}
        )
        result.segments = [(0.0, 1.0, 2, 1.0)]
        result.segment_flows = [[0, 1]]
        assert result.convergence_time(0) == pytest.approx(0.1)

    def test_late_convergence(self):
        # Flow 2 only reaches its share from sample 6 onward.
        f2 = [0.1e9] * 5 + [0.5e9] * 5
        f1 = [0.9e9] * 5 + [0.5e9] * 5
        result = synthetic_result({"flow1": f1, "flow2": f2})
        result.segments = [(0.0, 1.0, 2, 0.9)]
        result.segment_flows = [[0, 1]]
        assert result.convergence_time(0) == pytest.approx(0.6)

    def test_never_converges_returns_segment_length(self):
        result = synthetic_result(
            {"flow1": [0.9e9] * 10, "flow2": [0.1e9] * 10}
        )
        result.segments = [(0.0, 1.0, 2, 0.6)]
        result.segment_flows = [[0, 1]]
        assert result.convergence_time(0) == pytest.approx(1.0)

    def test_transient_excursion_resets(self):
        # Converged early, blips out at sample 7, back at 8: convergence
        # point is the last re-entry.
        f1 = [0.5e9] * 6 + [0.9e9] + [0.5e9] * 3
        f2 = [0.5e9] * 6 + [0.1e9] + [0.5e9] * 3
        result = synthetic_result({"flow1": f1, "flow2": f2})
        result.segments = [(0.0, 1.0, 2, 0.95)]
        result.segment_flows = [[0, 1]]
        assert result.convergence_time(0) == pytest.approx(0.8)

    def test_tolerance_widens_acceptance(self):
        f1 = [0.65e9] * 10
        f2 = [0.35e9] * 10
        result = synthetic_result({"flow1": f1, "flow2": f2})
        result.segments = [(0.0, 1.0, 2, 0.9)]
        result.segment_flows = [[0, 1]]
        assert result.convergence_time(0, tolerance=0.2) == pytest.approx(1.0)
        assert result.convergence_time(0, tolerance=0.4) == pytest.approx(0.1)

    def test_mean_skips_single_flow_segments(self):
        result = synthetic_result(
            {"flow1": [1e9] * 10, "flow2": [0.0] * 10}
        )
        result.segments = [(0.0, 1.0, 1, 1.0)]
        result.segment_flows = [[0]]
        assert result.mean_convergence_time() == 0.0
