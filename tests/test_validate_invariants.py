"""The runtime invariant checker: hooks, observers, clean validated runs."""

from __future__ import annotations

import pytest

from repro.mptcp.connection import MptcpConnection
from repro.net.network import Network
from repro.net.queue import DropTailQueue, ThresholdECNQueue
from repro.sim.engine import Simulator
from repro.transport.cc import RenoCC
from repro.transport.flow import SinglePathFlow
from repro.validate import (
    InvariantError,
    Validator,
    activate,
    active_validator,
    deactivate,
    validating,
    validation_requested,
)

pytestmark = pytest.mark.invariants


def _queue_factory():
    return ThresholdECNQueue(100, 10)


def _two_host_net() -> Network:
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    s = net.add_switch("SW")
    net.connect(a, s, 1e9, 30e-6, queue_factory=_queue_factory)
    net.connect(s, b, 1e9, 30e-6, queue_factory=_queue_factory)
    return net


# ----------------------------------------------------------------------
# The registry (hooks.py)
# ----------------------------------------------------------------------


class TestHooks:
    def test_no_validator_by_default(self):
        assert active_validator() is None
        assert not validation_requested()

    def test_activate_deactivate_stack(self):
        outer, inner = Validator(), Validator()
        activate(outer)
        try:
            assert active_validator() is outer
            activate(inner)
            assert active_validator() is inner
            deactivate(inner)
            assert active_validator() is outer
        finally:
            deactivate(outer)
        assert active_validator() is None

    def test_deactivate_out_of_order_raises(self):
        outer, inner = Validator(), Validator()
        activate(outer)
        activate(inner)
        try:
            with pytest.raises(RuntimeError, match="out of order"):
                deactivate(outer)
            assert active_validator() is inner  # stack unchanged
        finally:
            deactivate(inner)
            deactivate(outer)

    def test_deactivate_empty_raises(self):
        with pytest.raises(RuntimeError, match="no validator is active"):
            deactivate()

    def test_validating_context_manager(self):
        with validating() as validator:
            assert active_validator() is validator
        assert active_validator() is None
        assert validator.finished

    def test_validation_requested_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert validation_requested()
        monkeypatch.setenv("REPRO_VALIDATE", "0")
        assert not validation_requested()
        monkeypatch.delenv("REPRO_VALIDATE")
        assert not validation_requested()


# ----------------------------------------------------------------------
# Zero-cost default: nothing is observed unless a validator is active
# ----------------------------------------------------------------------


class TestDisabledByDefault:
    def test_observer_slots_default_none(self):
        net = _two_host_net()
        assert net.sim.observer is None
        assert all(link.observer is None for link in net.links)
        assert all(link.queue.observer is None for link in net.links)
        flow = SinglePathFlow(net, "A", "B", net.paths("A", "B")[0],
                              RenoCC(ecn=True), size_bytes=10_000)
        assert flow.sender.observer is None
        assert flow.sender.cc.observer is None


# ----------------------------------------------------------------------
# Registration and clean runs
# ----------------------------------------------------------------------


class TestValidatedRuns:
    def test_clean_single_path_run(self):
        with validating() as validator:
            net = _two_host_net()
            flow = SinglePathFlow(net, "A", "B", net.paths("A", "B")[0],
                                  RenoCC(ecn=True), size_bytes=100_000)
            flow.start()
            net.sim.run(until=0.2)
        assert flow.sender.completed
        assert not validator.violations
        assert validator.checks > 0
        assert validator.watched_objects >= 1 + 4 + 4 + 1  # sim+links+queues+sender

    def test_clean_xmp_connection_run(self):
        with validating() as validator:
            net = _two_host_net()
            conn = MptcpConnection(
                net, "A", "B", [net.paths("A", "B")[0]],
                scheme="xmp", size_bytes=200_000,
            )
            conn.start()
            net.sim.run(until=0.3)
        assert conn.completed
        assert not validator.violations
        # The BOS controller was recognised and law-checked.
        assert validator._bos_observers

    def test_watch_idempotent(self):
        validator = Validator()
        sim = Simulator()
        validator.watch_sim(sim)
        validator.watch_sim(sim)
        queue = DropTailQueue(10)
        validator.watch_queue(queue)
        validator.watch_queue(queue)
        assert len(validator._sim_observers) == 1
        assert len(validator._queue_observers) == 1

    def test_nested_validators_get_their_own_objects(self):
        with validating() as outer:
            Simulator_outer = Network()  # registered with outer
            with validating() as inner:
                net_inner = Network()  # registered with inner only
            assert net_inner.sim.observer in inner._sim_observers
        assert Simulator_outer.sim.observer in outer._sim_observers
        assert len(outer._sim_observers) == 1

    def test_summary_and_report(self):
        with validating() as validator:
            net = _two_host_net()
            flow = SinglePathFlow(net, "A", "B", net.paths("A", "B")[0],
                                  RenoCC(ecn=True), size_bytes=20_000)
            flow.start()
            net.sim.run(until=0.1)
        summary = validator.summary()
        assert "objects watched" in summary
        assert "0 violations" in summary
        assert validator.report() == ""


# ----------------------------------------------------------------------
# Violation plumbing
# ----------------------------------------------------------------------


class TestViolationPlumbing:
    def test_validating_raises_on_violation(self):
        with pytest.raises(InvariantError, match=r"boom"):
            with validating() as validator:
                validator.record("unit-test", "widget", "boom")

    def test_raise_lists_every_violation_with_context(self):
        validator = Validator()
        validator.record("inv-a", "x", "first")
        validator.record("inv-b", "y", "second")
        with pytest.raises(InvariantError) as excinfo:
            validator.raise_if_violations(context="cell foo/bar")
        message = str(excinfo.value)
        assert "2 invariant violations in cell foo/bar" in message
        assert "[inv-a] x: first" in message
        assert "[inv-b] y: second" in message

    def test_fail_fast(self):
        validator = Validator(fail_fast=True)
        with pytest.raises(InvariantError, match=r"\[unit-test\] widget: boom"):
            validator.record("unit-test", "widget", "boom")

    def test_raise_on_violation_false_collects(self):
        with validating(raise_on_violation=False) as validator:
            validator.record("unit-test", "widget", "boom")
        assert len(validator.violations) == 1


# ----------------------------------------------------------------------
# The campaign runner integration
# ----------------------------------------------------------------------


class TestRunnerIntegration:
    def _spec(self):
        from repro.experiments.fattree_eval import FatTreeScenario
        from repro.runner import RunSpec

        return RunSpec(
            "fattree", FatTreeScenario(duration=0.005, k=4, seed=1)
        )

    def test_execute_unvalidated_by_default(self):
        from repro.runner.registry import execute

        result = execute(self._spec())
        assert result.metrics.invariant_checks == 0

    def test_execute_validates_under_env(self, monkeypatch):
        from repro.runner.registry import execute

        monkeypatch.setenv("REPRO_VALIDATE", "1")
        result = execute(self._spec())
        assert result.metrics.invariant_checks > 0
