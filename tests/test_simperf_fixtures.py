"""Fixture-corpus tests for simperf's static side (SIM019–SIM023).

Same contract as the simrace corpus (see ``test_simrace_fixtures.py``):
each direct subdirectory of ``tests/lint_fixtures/perf/`` is one
mini-project analyzed as a unit through
``ProjectAnalyzer(perf=True).analyze_sources``, with virtual paths from
each file's ``# simlint-path:`` header.  Two sidecars parameterize the
pass: ``hotpaths.toml`` (the project's hot-path registry) and an
optional ``telemetry.jsonl`` (recorded profiles for SIM022).  ``_bad``
projects must produce exactly the findings their ``# EXPECT:`` comments
announce (code, line and multiplicity); ``_good`` twins must be clean —
of perf *and* semantic findings, so a fixture can never hide a sem
regression.
"""

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.lint.perf.hotpaths import HotPathRegistry
from repro.lint.sem import ProjectAnalyzer

pytestmark = pytest.mark.simperf

PERF_FIXTURES = Path(__file__).parent / "lint_fixtures" / "perf"
PERF_CODES = ("SIM019", "SIM020", "SIM021", "SIM022", "SIM023")

_PATH_RE = re.compile(r"#\s*simlint-path:\s*(\S+)")
_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*([A-Z0-9 ,]+)")

#: Every message must contain at least one of its code's anchor phrases,
#: so a rule cannot silently degenerate into a generic complaint.
MESSAGE_PHRASES = {
    "SIM019": ("allow-alloc",),
    "SIM020": ("pre-bind it to a local",),
    "SIM021": ("register the callee in hotpaths.toml",),
    "SIM022": ("hotpaths.toml does not register it",),
    "SIM023": ("in hot function",),
}


def project_dirs():
    return sorted(path for path in PERF_FIXTURES.iterdir() if path.is_dir())


def load_project(project: Path):
    """(virtual-path, source) pairs plus the EXPECTed finding multiset."""
    items = []
    expected: Counter = Counter()
    for path in sorted(project.glob("*.py")):
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        match = _PATH_RE.match(lines[0]) if lines else None
        assert match, f"{path} is missing its '# simlint-path:' header"
        virtual = match.group(1)
        items.append((virtual, text))
        for lineno, line in enumerate(lines, start=1):
            expect = _EXPECT_RE.search(line)
            if expect:
                for code in expect.group(1).split(","):
                    expected[(virtual, code.strip(), lineno)] += 1
    return items, expected


def make_analyzer(project: Path) -> ProjectAnalyzer:
    registry = HotPathRegistry.load(project / "hotpaths.toml")
    telemetry = project / "telemetry.jsonl"
    return ProjectAnalyzer(
        cache=None,
        perf=True,
        hotpaths=registry,
        telemetry=telemetry if telemetry.is_file() else None,
    )


def analyze_project(project: Path):
    items, expected = load_project(project)
    return make_analyzer(project).analyze_sources(items), expected


@pytest.mark.parametrize("project", project_dirs(), ids=lambda p: p.name)
def test_fixture_findings_exact(project):
    """Bad twins produce exactly their EXPECTed (path, code, line)
    multiset; good twins produce nothing at all."""
    findings, expected = analyze_project(project)
    actual = Counter((f.path, f.code, f.line) for f in findings)
    assert actual == expected, (
        f"{project.name}: findings diverge from EXPECT comments\n"
        + "\n".join(f.format() for f in findings)
    )
    if project.name.endswith("_good"):
        assert not findings
    if project.name.endswith("_bad"):
        assert findings, f"{project.name} found nothing"


@pytest.mark.parametrize("project", project_dirs(), ids=lambda p: p.name)
def test_fixture_messages_anchor_phrases(project):
    """Messages stay explanatory — each carries its rule's anchor."""
    findings, _expected = analyze_project(project)
    for finding in findings:
        phrases = MESSAGE_PHRASES[finding.code]
        assert any(phrase in finding.message for phrase in phrases), (
            f"{finding.code} message lost its anchor phrase: "
            f"{finding.message!r}"
        )


@pytest.mark.parametrize("code", PERF_CODES)
def test_every_perf_rule_has_bad_and_good_twin(code):
    """Each perf rule keeps a failing and a passing fixture."""
    suffix = code[3:].lstrip("0")
    bad = PERF_FIXTURES / f"sim0{suffix}_bad"
    good = PERF_FIXTURES / f"sim0{suffix}_good"
    assert bad.is_dir(), f"no bad twin for {code}"
    assert good.is_dir(), f"no good twin for {code}"
    bad_findings, _ = analyze_project(bad)
    assert any(f.code == code for f in bad_findings), (
        f"{bad.name} never triggers {code}"
    )


def test_perf_off_by_default():
    """Without perf=True the same bad twins produce no perf findings."""
    for project in project_dirs():
        if not project.name.endswith("_bad"):
            continue
        items, _expected = load_project(project)
        findings = ProjectAnalyzer(cache=None).analyze_sources(items)
        assert not any(f.code in PERF_CODES for f in findings), project.name


def test_finding_order_is_deterministic():
    """Same project, any input order, twice — identical finding lists."""
    project = PERF_FIXTURES / "sim023_bad"
    items, _expected = load_project(project)
    runs = []
    for ordered in (items, list(reversed(items)), items):
        runs.append(
            [f.format() for f in make_analyzer(project).analyze_sources(ordered)]
        )
    assert runs[0] == runs[1] == runs[2]


def test_allow_alloc_pragma_waives_sim019():
    """Adding the pragma to the flagged line silences SIM019 — the
    same mechanism the real tree's waivers use."""
    project = PERF_FIXTURES / "sim019_bad"
    items, _expected = load_project(project)
    waived = [
        (
            path,
            text.replace(
                "# EXPECT: SIM019",
                "# simperf: allow-alloc(fixture waiver)",
            ),
        )
        for path, text in items
    ]
    findings = make_analyzer(project).analyze_sources(waived)
    assert not any(f.code == "SIM019" for f in findings)


def test_empty_pragma_reason_does_not_waive():
    """``allow-alloc()`` without a reason is not a waiver."""
    project = PERF_FIXTURES / "sim019_bad"
    items, _expected = load_project(project)
    hollow = [
        (
            path,
            text.replace(
                "# EXPECT: SIM019", "# simperf: allow-alloc()"
            ),
        )
        for path, text in items
    ]
    findings = make_analyzer(project).analyze_sources(hollow)
    assert any(f.code == "SIM019" for f in findings)


def test_perf_findings_are_suppressible():
    """`# simlint: disable=` pragmas silence perf codes like any other
    (the SIM020 escape hatch — that rule has no allow-alloc waiver)."""
    project = PERF_FIXTURES / "sim020_bad"
    items, _expected = load_project(project)
    suppressed = [
        (
            path,
            text.replace(
                "# EXPECT: SIM020", "# simlint: disable=SIM020"
            ),
        )
        for path, text in items
    ]
    findings = make_analyzer(project).analyze_sources(suppressed)
    assert not any(f.code == "SIM020" for f in findings)
