"""Unit tests for the BOS window law (paper Algorithm 1)."""

import math

import pytest

from repro.core.bos import BosCC
from repro.transport.cc import MIN_CWND, NORMAL, REDUCED


class StubSender:
    def __init__(self, cwnd=10.0, ssthresh=math.inf):
        self.cwnd = cwnd
        self.ssthresh = ssthresh
        self.snd_una = 0
        self.snd_nxt = int(cwnd)
        self.in_recovery = False
        self.running = True
        self.completed = False
        self.srtt = 100e-6

    @property
    def flight(self):
        return self.snd_nxt - self.snd_una

    @property
    def instant_rate(self):
        return self.cwnd / self.srtt if self.srtt else 0.0


def attach(cc, **kwargs):
    sender = StubSender(**kwargs)
    cc.attach(sender)
    return sender


class TestSlowStart:
    def test_grows_one_per_clean_ack(self):
        cc = BosCC(beta=4)
        sender = attach(cc)
        cc.on_ack(2, 0, None, 0.0, False)
        assert sender.cwnd == 11.0  # +1 per ACK, not per segment

    def test_first_echo_ends_slow_start_without_cut(self):
        cc = BosCC(beta=4)
        sender = attach(cc, cwnd=10.0)  # ssthresh inf
        cc.on_ack(1, 1, None, 0.0, False)
        # cwnd <= ssthresh: the reduction body skips the cut but pins
        # ssthresh = cwnd - 1, which is the slow-start exit.
        assert sender.cwnd == 10.0
        assert sender.ssthresh == 9.0
        assert cc.state == REDUCED

    def test_no_growth_while_reduced(self):
        cc = BosCC(beta=4)
        sender = attach(cc, cwnd=10.0)
        cc.on_ack(1, 1, None, 0.0, False)
        cc.on_ack(1, 0, None, 0.0, False)  # still below cwr_seq
        assert sender.cwnd == 10.0


class TestReduction:
    def test_cut_by_one_over_beta(self):
        cc = BosCC(beta=4)
        sender = attach(cc, cwnd=20.0, ssthresh=5.0)
        cc.on_ack(1, 1, None, 0.0, False)
        assert sender.cwnd == 15.0  # 20 - 20/4
        assert sender.ssthresh == 14.0

    def test_cut_at_least_one_packet(self):
        cc = BosCC(beta=8)
        sender = attach(cc, cwnd=6.0, ssthresh=3.0)
        cc.on_ack(1, 1, None, 0.0, False)
        assert sender.cwnd == 5.0  # max(6/8, 1) = 1

    def test_floor_at_two_packets(self):
        cc = BosCC(beta=4)
        sender = attach(cc, cwnd=2.5, ssthresh=1.0)
        cc.on_ack(1, 1, None, 0.0, False)
        assert sender.cwnd == MIN_CWND

    def test_once_per_round(self):
        cc = BosCC(beta=4)
        sender = attach(cc, cwnd=16.0, ssthresh=5.0)
        sender.snd_nxt = 16
        cc.on_ack(1, 1, None, 0.0, False)
        cc.on_ack(1, 1, None, 0.0, False)
        cc.on_ack(1, 3, None, 0.0, False)
        assert sender.cwnd == 12.0  # exactly one 1/4 cut
        assert cc.reductions == 1

    def test_new_round_allows_new_cut(self):
        cc = BosCC(beta=4)
        sender = attach(cc, cwnd=16.0, ssthresh=5.0)
        sender.snd_nxt = 16
        cc.on_ack(1, 1, None, 0.0, False)
        sender.snd_una = 16  # cwr round fully acknowledged
        cc.on_ack(1, 1, None, 0.0, False)
        assert cc.reductions == 2

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            BosCC(beta=1.5)


class TestCongestionAvoidance:
    def test_grows_delta_per_round(self):
        cc = BosCC(beta=4)
        sender = attach(cc, cwnd=10.0, ssthresh=5.0)
        cc.on_ack(1, 0, None, 0.0, True)  # round end, delta = 1
        assert sender.cwnd == 11.0

    def test_no_growth_mid_round(self):
        cc = BosCC(beta=4)
        sender = attach(cc, cwnd=10.0, ssthresh=5.0)
        cc.on_ack(1, 0, None, 0.0, False)
        assert sender.cwnd == 10.0

    def test_fractional_delta_accumulates(self):
        cc = BosCC(beta=4, delta_provider=lambda c, now: 0.4)
        sender = attach(cc, cwnd=10.0, ssthresh=5.0)
        for _ in range(5):
            cc.on_ack(1, 0, None, 0.0, True)
        # 5 rounds x 0.4 = 2.0 whole packets.
        assert sender.cwnd == 12.0
        assert cc.adder == pytest.approx(0.0)

    def test_delta_provider_called_per_round(self):
        calls = []

        def provider(controller, now):
            calls.append(now)
            return 1.0

        cc = BosCC(beta=4, delta_provider=provider)
        attach(cc, cwnd=10.0, ssthresh=5.0)
        cc.on_ack(1, 0, None, 1.0, True)
        cc.on_ack(1, 0, None, 2.0, False)
        cc.on_ack(1, 0, None, 3.0, True)
        assert calls == [1.0, 3.0]

    def test_timeout_clears_adder(self):
        cc = BosCC(beta=4, delta_provider=lambda c, n: 0.7)
        sender = attach(cc, cwnd=10.0, ssthresh=5.0)
        cc.on_ack(1, 0, None, 0.0, True)
        assert cc.adder > 0
        cc.on_timeout(0.0)
        assert cc.adder == 0.0
        assert sender.cwnd == 1.0


class TestEquilibrium:
    def test_matches_eq3_fixed_point(self):
        """Drive BOS with marks at exactly the Eq. 3 probability and check
        the window oscillates around the analytic equilibrium."""
        from repro.core.utility import equilibrium_window

        beta, delta = 4.0, 1.0
        p = 0.2
        target = equilibrium_window(p, delta, beta)
        cc = BosCC(beta=beta)
        sender = attach(cc, cwnd=target, ssthresh=2.0)
        # One marked round per 1/p rounds; windows should stay near target.
        windows = []
        rounds_per_mark = int(1 / p)
        for i in range(200):
            sender.snd_una = sender.snd_nxt
            sender.snd_nxt += int(sender.cwnd)
            ece = 1 if i % rounds_per_mark == 0 else 0
            cc.on_ack(int(sender.cwnd), ece, None, float(i), True)
            windows.append(sender.cwnd)
        average = sum(windows[50:]) / len(windows[50:])
        assert average == pytest.approx(target, rel=0.35)
