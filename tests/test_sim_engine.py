"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_same_time_events_fire_fifo(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_priority_breaks_ties(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "low", priority=1)
        sim.schedule(1.0, fired.append, "high", priority=0)
        sim.run()
        assert fired == ["high", "low"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_callback_args_passed(self, sim):
        seen = []
        sim.schedule(0.1, lambda a, b: seen.append((a, b)), 1, "x")
        sim.run()
        assert seen == [(1, "x")]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancelled_events_not_counted_as_processed(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1

    def test_cancel_from_inside_callback(self, sim):
        fired = []
        later = sim.schedule(2.0, fired.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []


class TestRunControl:
    def test_run_until_stops_clock_at_until(self, sim):
        sim.schedule(5.0, lambda: None)
        end = sim.run(until=2.0)
        assert end == 2.0
        assert sim.now == 2.0

    def test_run_until_fires_events_at_exactly_until(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "edge")
        sim.run(until=2.0)
        assert fired == ["edge"]

    def test_event_after_until_survives_for_next_run(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=2.0)
        assert fired == []
        sim.run()
        assert fired == ["late"]

    def test_run_with_empty_heap_advances_to_until(self, sim):
        end = sim.run(until=4.0)
        assert end == 4.0

    def test_stop_inside_callback(self, sim):
        fired = []

        def stop_now():
            fired.append(1)
            sim.stop()

        sim.schedule(1.0, stop_now)
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1]
        assert sim.now == 1.0

    def test_max_events_limits_firing(self, sim):
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3
        assert sim.now == 3.0

    def test_run_not_reentrant(self, sim):
        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, reenter)
        sim.run()

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_pending_events_counter(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2

    def test_multiple_sequential_runs(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(3.0, fired.append, 2)
        sim.run(until=2.0)
        assert fired == [1]
        sim.run(until=4.0)
        assert fired == [1, 2]


class TestReset:
    def test_reset_clears_pending_and_clock(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.events_processed == 0

    def test_reset_drops_unfired_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.reset()
        sim.run()
        assert fired == []


class TestHeapCompaction:
    def test_compaction_bounds_dead_fraction(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(5000)]
        for event in events[:4000]:
            event.cancel()
        # Compaction triggered mid-cancellation: live events all survive,
        # and the dead tail left after the last rebuild stays bounded by
        # the trigger thresholds.
        assert sim.pending_events < 5000
        assert sim.pending_events >= 1000
        live = sum(
            1
            for record in sim.iter_pending()
            if record[3] is None or not record[3].cancelled
        )
        assert live == 1000
        assert sim.cancelled_pending == sim.pending_events - live

    def test_below_threshold_no_compaction(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        for event in events:
            event.cancel()
        # 100 < COMPACT_MIN_CANCELLED: lazy deletion only.
        assert sim.pending_events == 100
        assert sim.cancelled_pending == 100

    def test_compaction_preserves_firing_order(self, sim):
        fired = []
        keep = []
        cancel = []
        for i in range(4000):
            delay = float(i + 1)
            if i % 4 == 0:
                keep.append((delay, sim.schedule(delay, fired.append, delay)))
            else:
                cancel.append(sim.schedule(delay, fired.append, -delay))
        for event in cancel:
            event.cancel()
        sim.run()
        assert fired == [delay for delay, _ in keep]

    def test_cancel_after_compaction_still_safe(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(3000)]
        for event in events[:2500]:
            event.cancel()
        # Cancel events already dropped from the heap by a compaction:
        # their sim backref is gone, so this must be a quiet no-op.
        for event in events[:2500]:
            event.cancel()
        sim.run()
        assert sim.events_processed == 500
