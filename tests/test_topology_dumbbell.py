"""Tests for the dumbbell topology and RTT-(un)fairness behaviour."""

import pytest

from repro.mptcp.connection import MptcpConnection
from repro.topology.dumbbell import build_dumbbell


class TestConstruction:
    def test_per_pair_rtts(self):
        rtts = [200e-6, 400e-6, 800e-6]
        net = build_dumbbell(rtts)
        for index, rtt in enumerate(rtts):
            path = net.flow_path(index)
            total = sum(l.delay for l in path) + sum(
                l.delay for l in net.reverse_path(path)
            )
            assert total == pytest.approx(rtt)

    def test_all_pairs_share_one_bottleneck(self):
        net = build_dumbbell([200e-6, 400e-6])
        for index in range(2):
            assert net.forward_bottleneck in net.flow_path(index)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_dumbbell([])
        with pytest.raises(ValueError):
            build_dumbbell([0.0])
        with pytest.raises(ValueError):
            build_dumbbell([100e-6], bottleneck_delay=60e-6)


class TestRttFairness:
    def run_pair(self, rtts, scheme="xmp", duration=0.6):
        net = build_dumbbell(rtts, marking_threshold=10)
        connections = []
        for index in range(len(rtts)):
            conn = MptcpConnection(
                net, f"S{index}", f"D{index}", [net.flow_path(index)],
                scheme=scheme, ack_jitter=30e-6,
            )
            conn.start()
            connections.append(conn)
        net.sim.run(until=duration / 2)
        base = [c.delivered_bytes for c in connections]
        net.sim.run(until=duration)
        return [c.delivered_bytes - b for c, b in zip(connections, base)]

    def test_equal_rtts_fair(self):
        short, long_ = self.run_pair([300e-6, 300e-6])
        assert short / long_ == pytest.approx(1.0, rel=0.25)

    def test_rtt_bias_favors_short_flows(self):
        """BOS grows delta per *round*, so a 2x RTT flow updates half as
        often — the classic window-AIMD RTT bias, inherited by BOS."""
        short, long_ = self.run_pair([200e-6, 400e-6])
        assert short > long_
        # The bias is bounded (roughly linear in the RTT ratio).
        assert short / long_ < 5.0

    def test_multipath_flow_with_mismatched_rtts_uses_both(self):
        """An XMP flow whose subflows traverse different-RTT access legs
        still keeps both subflows active (min-rtt normalization in
        Eq. 9 prevents starvation of the long path)."""
        net = build_dumbbell([200e-6, 600e-6], marking_threshold=10)
        conn = MptcpConnection(
            net, "S0", "D0",
            [net.flow_path(0)], scheme="xmp",
        )
        # Second subflow via the long pair's access links is not possible
        # in a dumbbell (each pair is disjoint), so emulate mismatch by
        # running one flow per RTT class and verifying neither starves.
        other = MptcpConnection(
            net, "S1", "D1", [net.flow_path(1)], scheme="xmp",
        )
        conn.start()
        other.start()
        net.sim.run(until=0.4)
        assert conn.delivered_bytes > 0
        assert other.delivered_bytes > 100_000  # long-RTT flow not starved
