"""Tests for RTT estimation / RTO computation (RFC 6298)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.rto import DEFAULT_RTO_MIN, RttEstimator


class TestFirstSample:
    def test_srtt_equals_first_sample(self):
        est = RttEstimator()
        est.update(0.001)
        assert est.srtt == 0.001
        assert est.rttvar == 0.0005

    def test_rto_floors_at_rto_min(self):
        est = RttEstimator()
        est.update(0.0003)  # srtt+4var = 0.9 ms << 200 ms floor
        assert est.rto == DEFAULT_RTO_MIN

    def test_initial_rto_one_second(self):
        assert RttEstimator().rto == 1.0


class TestSmoothing:
    def test_constant_samples_converge(self):
        est = RttEstimator(rto_min=1e-6)
        for _ in range(100):
            est.update(0.002)
        assert est.srtt == pytest.approx(0.002)
        assert est.rttvar == pytest.approx(0.0, abs=1e-5)
        assert est.rto == pytest.approx(0.002, rel=0.05)

    def test_variance_grows_with_jitter(self):
        est = RttEstimator(rto_min=1e-6)
        for i in range(100):
            est.update(0.002 if i % 2 == 0 else 0.004)
        assert est.rttvar > 0.0005

    def test_rfc_constants(self):
        est = RttEstimator(rto_min=1e-6)
        est.update(0.001)
        est.update(0.002)
        # srtt = 0.001 + (0.002-0.001)/8 ; rttvar = 0.0005 + (0.001-0.0005)/4
        assert est.srtt == pytest.approx(0.001125)
        assert est.rttvar == pytest.approx(0.000625)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().update(-0.001)

    def test_sample_counter(self):
        est = RttEstimator()
        for _ in range(7):
            est.update(0.001)
        assert est.samples == 7


class TestBackoff:
    def test_backoff_doubles(self):
        est = RttEstimator()
        est.update(0.001)
        rto = est.rto
        est.backoff()
        assert est.rto == 2 * rto

    def test_backoff_caps_at_max(self):
        est = RttEstimator(rto_max=1.0)
        for _ in range(20):
            est.backoff()
        assert est.rto == 1.0

    def test_update_after_backoff_recomputes(self):
        est = RttEstimator()
        est.update(0.001)
        est.backoff()
        est.backoff()
        est.update(0.001)
        assert est.rto == DEFAULT_RTO_MIN


class TestValidation:
    def test_rto_min_positive(self):
        with pytest.raises(ValueError):
            RttEstimator(rto_min=0)

    def test_rto_max_at_least_min(self):
        with pytest.raises(ValueError):
            RttEstimator(rto_min=1.0, rto_max=0.5)

    @given(samples=st.lists(st.floats(1e-6, 1.0), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_rto_always_within_bounds(self, samples):
        est = RttEstimator()
        for sample in samples:
            est.update(sample)
        assert est.rto_min <= est.rto <= est.rto_max

    @given(samples=st.lists(st.floats(1e-6, 1.0), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_srtt_within_sample_range(self, samples):
        est = RttEstimator()
        for sample in samples:
            est.update(sample)
        assert min(samples) <= est.srtt <= max(samples)
