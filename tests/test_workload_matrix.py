"""The workload/incast experiment kinds: cells, campaigns, CLI, caching.

Cells here run with tiny horizons (a few milliseconds) — enough traffic
to exercise the open-loop launcher, the partition-aggregate pattern and
the reducers, while keeping the whole module in seconds.
"""

from __future__ import annotations

import pytest

from repro.experiments.workload_matrix import (
    IncastSweepScenario,
    WorkloadScenario,
    _simulate_incast,
    _simulate_workload,
    parse_scheme_spec,
    run_incast_sweep,
    run_workload_matrix,
)
from repro.runner import Campaign, RunSpec, registered_kinds
from repro.runner.cache import DiskCache, MemoryCache, RunCache
from repro.validate.golden import digest_incast_sweep, digest_workload

TINY = WorkloadScenario(duration=0.008, load=0.4, queue_sample_interval=0.002)
TINY_INCAST = IncastSweepScenario(
    duration=0.008, fan_in=4, queue_sample_interval=0.002
)


class TestWorkloadCell:
    def test_registered_kinds(self):
        kinds = registered_kinds()
        assert "workload" in kinds
        assert "incast_sweep" in kinds

    def test_cell_accounting_is_consistent(self):
        result = _simulate_workload(TINY)
        assert result.scheduled_flows > 0
        assert result.launched_flows == result.scheduled_flows
        assert len(result.records) + len(result.unfinished) == result.launched_flows
        assert result.offered_bytes > 0
        assert result.capacity_bps == pytest.approx(16e9)
        assert result.events > 0

    def test_fct_records_satisfy_invariants(self):
        result = _simulate_workload(TINY)
        for rec in result.records:
            fct = rec.complete_time - rec.start_time
            assert 0 < fct <= TINY.duration
        table = result.fct_table()
        assert set(table) == {"mice", "medium", "elephant"}
        assert result.queue_p99() >= 0.0
        assert 0.0 < result.achieved_load() <= 1.5

    def test_queue_samples_cover_every_layer(self):
        result = _simulate_workload(TINY)
        assert set(result.queue_samples) == {"rack", "aggregation", "core"}

    def test_elephant_background_runs_alongside(self):
        scenario = WorkloadScenario(
            duration=0.008, load=0.2, background_elephants=2,
            queue_sample_interval=0.002,
        )
        result = _simulate_workload(scenario)
        assert len(result.elephants) == 2
        # Sized to outlive the horizon: none of them may have finished.
        assert all(e.complete_time is None for e in result.elephants)

    def test_seed_changes_cell(self):
        a = digest_workload(_simulate_workload(TINY))
        b = digest_workload(
            _simulate_workload(WorkloadScenario(
                duration=0.008, load=0.4, queue_sample_interval=0.002, seed=2,
            ))
        )
        assert a != b

    def test_load_changes_schedule(self):
        low = _simulate_workload(TINY)
        high = _simulate_workload(
            WorkloadScenario(
                duration=0.008, load=0.8, queue_sample_interval=0.002
            )
        )
        assert high.scheduled_flows > low.scheduled_flows


class TestIncastCell:
    def test_rounds_complete_and_collapse_bounded(self):
        result = _simulate_incast(TINY_INCAST)
        assert result.jobs_started >= len(result.jcts) > 0
        assert all(0 < jct <= TINY_INCAST.duration for jct in result.jcts)
        assert 0.0 < result.collapse_ratio() <= 1.0
        assert result.access_rate_bps == pytest.approx(1e9)
        assert len(result.responses) >= TINY_INCAST.fan_in

    def test_larger_fan_in_starts_fewer_rounds(self):
        small = _simulate_incast(TINY_INCAST)
        big = _simulate_incast(
            IncastSweepScenario(
                duration=0.008, fan_in=12, queue_sample_interval=0.002
            )
        )
        assert big.jobs_started <= small.jobs_started


class TestDeterminismAndCache:
    SCHEMES = (("xmp", 2), ("dctcp", 1))
    LOADS = (0.3, 0.6)

    def test_jobs_1_equals_jobs_4(self):
        serial = run_workload_matrix(
            TINY, schemes=self.SCHEMES, loads=self.LOADS,
            jobs=1, use_cache=False,
        )
        parallel = run_workload_matrix(
            TINY, schemes=self.SCHEMES, loads=self.LOADS,
            jobs=4, use_cache=False,
        )
        assert list(serial.cells) == list(parallel.cells)
        for key in serial.cells:
            assert digest_workload(serial.cells[key]) == digest_workload(
                parallel.cells[key]
            ), f"jobs=4 diverged from jobs=1 at cell {key}"

    def test_cache_hit_equals_cache_miss(self, tmp_path):
        cache = RunCache(memory=MemoryCache(), disk=DiskCache(tmp_path))
        cold = run_incast_sweep(
            TINY_INCAST, schemes=(("xmp", 2),), fan_ins=(2, 4),
            cache=cache, use_cache=True,
        )
        assert cold.campaign.cached_count == 0
        warm = run_incast_sweep(
            TINY_INCAST, schemes=(("xmp", 2),), fan_ins=(2, 4),
            cache=cache, use_cache=True,
        )
        assert warm.campaign.cached_count == 2
        for key in cold.cells:
            assert digest_incast_sweep(cold.cells[key]) == digest_incast_sweep(
                warm.cells[key]
            )

    def test_spec_roundtrips_through_runner(self):
        outcome = Campaign(jobs=1, use_cache=False).run(
            [RunSpec("workload", TINY)]
        )
        result = outcome.results[0].value
        assert result.scenario == TINY


class TestDriversAndFormat:
    def test_workload_matrix_format(self):
        result = run_workload_matrix(
            TINY, schemes=(("xmp", 2),), loads=(0.3,), use_cache=False
        )
        text = result.format()
        assert "Workload matrix" in text
        assert "websearch" in text
        assert "mice p50 (ms)" in text
        assert "99p queue (pkt)" in text
        assert "XMP-2" in text
        assert result.labels() == ["XMP-2/websearch@0.3"]

    def test_incast_sweep_format(self):
        result = run_incast_sweep(
            TINY_INCAST, schemes=(("dctcp", 1),), fan_ins=(4,), use_cache=False
        )
        text = result.format()
        assert "Incast fan-in sweep" in text
        assert "collapse" in text
        assert "DCTCP" in text

    def test_parse_scheme_spec(self):
        assert parse_scheme_spec("xmp-2") == ("xmp", 2)
        assert parse_scheme_spec("dctcp") == ("dctcp", 1)
        assert parse_scheme_spec("LIA-4") == ("lia", 4)
        assert parse_scheme_spec("reno-ecn") == ("reno-ecn", 1)


class TestCli:
    def test_workload_subcommand(self, capsys):
        from repro.cli import main

        code = main([
            "workload", "--loads", "0.3", "--schemes", "xmp-2",
            "--duration", "0.006", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Workload matrix" in out
        assert "[runner]" in out

    def test_incast_subcommand(self, capsys):
        from repro.cli import main

        code = main([
            "incast", "--fan-ins", "4", "--schemes", "xmp-2",
            "--duration", "0.006", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Incast fan-in sweep" in out

    def test_list_mentions_new_experiments(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "workload" in out
        assert "incast" in out
