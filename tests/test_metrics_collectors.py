"""Tests for the periodic samplers and link utilization helpers."""

import pytest

from repro.metrics.collector import (
    SAMPLE_PRIORITY,
    PeriodicSampler,
    QueueMonitor,
    RateSampler,
    RttSampler,
)
from repro.metrics.utilization import link_utilizations, utilization_by_layer
from repro.mptcp.connection import MptcpConnection
from repro.net.packet import MSS_BYTES


class TestSamplePriority:
    """Regression: samplers must fire *after* model events at an instant.

    Ticks used to run at the default priority 0, so whether a sample at
    time t saw the effects of a model event at time t depended on the
    insertion-order tiebreak — a race on scheduling order.
    """

    def test_tick_observes_post_event_state(self, sim):
        seen = []
        state = {"counter": 0}

        class CounterSampler(PeriodicSampler):
            def sample(self):
                seen.append(state["counter"])

        sampler = CounterSampler(sim, interval=0.01, until=0.05)
        sampler.start()  # the t=0 tick enters the heap first...

        def bump():
            state["counter"] += 1

        # ...and these model events (priority 0) are scheduled *after*
        # it for the same instants.  Under the old insertion-order race
        # the t=0 sample would read 0; fire-last priority guarantees
        # every sample sees the settled end-of-instant state.
        for i in range(6):
            sim.schedule(i * 0.01, bump)
        sim.run()
        assert seen[0] == 1
        assert seen == [1, 2, 3, 4, 5, 6]

    def test_ticks_scheduled_at_sample_priority(self, sim):
        monitor = QueueMonitor(sim, [], interval=0.01)
        monitor.start()
        (record,) = sim.iter_pending()
        assert record[1] == SAMPLE_PRIORITY

    def test_stop_keeps_the_pending_sample(self, sim):
        """``stop()`` promises "after the current tick": the already-
        scheduled tick still takes its sample, then doesn't reschedule.
        The old ``_tick`` checked the flag *before* sampling and dropped
        the window's final data point.
        """
        monitor = QueueMonitor(sim, [], interval=0.01)
        monitor.start()
        sim.schedule(0.03, monitor.stop)
        sim.run(until=0.2)
        assert monitor.times == pytest.approx([0.0, 0.01, 0.02, 0.03])


class TestRateSampler:
    def test_measures_delivery_rate(self, two_host_net):
        net = two_host_net
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        sampler = RateSampler(
            net.sim, {"f": conn.subflows[0].sender}, interval=0.01, until=0.1
        )
        sampler.start(0.01)
        conn.start()
        net.sim.run(until=0.1)
        # Steady samples should sit near line rate (1 Gbps payload-scaled).
        steady = sampler.rates["f"][3:]
        assert all(rate > 0.5e9 for rate in steady)

    def test_rate_times_interval_matches_delivery(self, two_host_net):
        net = two_host_net
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        sampler = RateSampler(
            net.sim, {"f": conn.subflows[0].sender}, interval=0.01, until=0.2
        )
        sampler.start(0.01)
        conn.start()
        net.sim.run(until=0.2)
        total_from_rates = sum(sampler.rates["f"]) * 0.01 / 8.0
        delivered = conn.subflows[0].sender.delivered_segments * MSS_BYTES
        assert total_from_rates == pytest.approx(delivered, rel=0.1)

    def test_add_sender_pads_history(self, sim):
        sampler = RateSampler(sim, {}, interval=0.1)
        sampler.start()
        sim.run(until=0.35)

        class FakeSender:
            delivered_segments = 0

        sampler.add_sender("late", FakeSender())
        assert len(sampler.rates["late"]) == len(sampler.times)

    def test_duplicate_name_rejected(self, sim):
        class FakeSender:
            delivered_segments = 0

        sampler = RateSampler(sim, {"a": FakeSender()}, interval=0.1)
        with pytest.raises(ValueError):
            sampler.add_sender("a", FakeSender())

    def test_mean_rate_window(self, sim):
        class FakeSender:
            delivered_segments = 0

        sender = FakeSender()
        sampler = RateSampler(sim, {"a": sender}, interval=0.1)
        sampler.start()

        def bump():
            sender.delivered_segments += 100

        for i in range(1, 6):
            sim.schedule(i * 0.1 - 0.05, bump)
        sim.run(until=0.55)
        expected = 100 * MSS_BYTES * 8 / 0.1
        assert sampler.mean_rate("a", 0.05, 0.55) == pytest.approx(expected)

    def test_interval_validation(self, sim):
        with pytest.raises(ValueError):
            RateSampler(sim, {}, interval=0.0)


class TestQueueMonitor:
    def test_tracks_occupancy(self, two_host_net):
        net = two_host_net
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        links = [link for link in net.links if link.src.name == "SW"]
        monitor = QueueMonitor(net.sim, links, interval=0.001, until=0.05)
        monitor.start()
        conn.start()
        net.sim.run(until=0.05)
        name = links[0].name
        assert monitor.max_occupancy(name) >= 0
        assert len(monitor.times) > 10

    def test_stop_halts_sampling(self, sim):
        monitor = QueueMonitor(sim, [], interval=0.01)
        monitor.start()
        sim.schedule(0.05, monitor.stop)
        sim.run(until=0.2)
        assert len(monitor.times) <= 7

    def test_empty_stats(self, sim):
        monitor = QueueMonitor(sim, [], interval=0.01)
        assert monitor.times == []


class TestRttSampler:
    def test_collects_by_group(self, two_host_net):
        net = two_host_net
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        sampler = RttSampler(net.sim, interval=0.005, until=0.1)
        sampler.watch("inter-pod", conn.subflows[0].sender)
        sampler.start(0.005)
        conn.start()
        net.sim.run(until=0.1)
        samples = sampler.samples["inter-pod"]
        assert samples
        assert all(sample > 0 for sample in samples)

    def test_completed_sender_not_sampled(self, two_host_net):
        net = two_host_net
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"),
                               scheme="xmp", size_bytes=100_000)
        sampler = RttSampler(net.sim, interval=0.01, until=1.0)
        sampler.watch("g", conn.subflows[0].sender)
        sampler.start(0.01)
        conn.start()
        net.sim.run(until=1.0)
        count = len(sampler.samples["g"])
        assert count < 10  # flow finished in a few ms


class TestUtilization:
    def test_utilization_by_layer_shapes(self, two_host_net):
        net = two_host_net
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        conn.start()
        net.sim.run(until=0.05)
        result = utilization_by_layer(net.links, 0.05, layers=("",))
        assert "" in result
        assert 0.0 <= result[""]["max"] <= 1.0

    def test_busy_link_near_one(self, two_host_net):
        net = two_host_net
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        conn.start()
        net.sim.run(until=0.1)
        values = link_utilizations(net.links, 0.1)
        assert max(values) > 0.8

    def test_duration_validation(self, two_host_net):
        with pytest.raises(ValueError):
            link_utilizations(two_host_net.links, 0.0)
