"""Negative tests: deliberately break an invariant, assert the checker fires.

Each test corrupts one mechanism in a toy harness — a queue counter, a
congestion window, the ECN contract, the BOS state machine — and asserts
the validator reports it with an actionable message.  These prove the
checker detects real defects rather than merely passing on healthy code.
"""

from __future__ import annotations

import pytest

from repro.core.bos import BosCC
from repro.mptcp.connection import MptcpConnection
from repro.net.network import Network
from repro.net.packet import make_data_packet
from repro.net.queue import DropTailQueue, ThresholdECNQueue
from repro.transport.cc import NORMAL
from repro.validate import Validator, validating

pytestmark = pytest.mark.invariants


def _queue_factory():
    return ThresholdECNQueue(100, 10)


def _bottleneck_net() -> Network:
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    s = net.add_switch("SW")
    net.connect(a, s, 1e9, 30e-6, queue_factory=_queue_factory)
    net.connect(s, b, 1e9, 30e-6, queue_factory=_queue_factory)
    return net


def _violations(validator: Validator, invariant: str):
    return [v for v in validator.violations if v.invariant == invariant]


class TestCorruptedQueueCounter:
    def test_enqueued_counter_corruption_detected(self):
        with validating(raise_on_violation=False) as validator:
            net = _bottleneck_net()
            conn = MptcpConnection(
                net, "A", "B", [net.paths("A", "B")[0]],
                scheme="tcp", size_bytes=50_000,
            )
            conn.start()
            net.sim.run(until=0.2)
            # Corrupt one queue's enqueued counter behind the queue's back.
            net.links[0].queue.stats.enqueued += 5
        found = _violations(validator, "queue-conservation")
        assert found, validator.report()
        assert any("counter corrupted" in v.message for v in found)
        assert any("conservation broken" in v.message for v in found)

    def test_dropped_counter_rollback_detected(self):
        queue = DropTailQueue(capacity=1)
        validator = Validator()
        validator.watch_queue(queue, label="toy")
        pkt = make_data_packet(0, 0, 0, 0.0, (), False)
        assert queue.accept(pkt)
        assert not queue.accept(make_data_packet(0, 0, 1, 0.0, (), False))  # drop
        queue.stats.dropped = 0  # roll the counter back
        validator.finish()
        found = _violations(validator, "queue-conservation")
        assert any("fell behind observed drops" in v.message for v in found)


class TestTamperedCwnd:
    def test_cwnd_overgrowth_detected(self):
        with validating(raise_on_violation=False) as validator:
            net = _bottleneck_net()
            conn = MptcpConnection(
                net, "A", "B", [net.paths("A", "B")[0]],
                scheme="xmp", size_bytes=None,  # long-running
            )
            conn.start()
            sender = conn.subflows[0].sender
            # Mid-run, grow the window outside any congestion-control hook
            # (the bug class: an experiment script "helping" a flow along).
            net.sim.schedule(
                0.020, lambda: setattr(sender, "cwnd", sender.cwnd + 50.0)
            )
            net.sim.run(until=0.060)
            conn.stop()
        found = _violations(validator, "cwnd-provenance")
        assert found, validator.report()
        assert any(
            "outside the congestion-control hooks" in v.message for v in found
        )

    def test_untampered_long_run_is_clean(self):
        # Control for the test above: same harness, no tampering.
        with validating(raise_on_violation=False) as validator:
            net = _bottleneck_net()
            conn = MptcpConnection(
                net, "A", "B", [net.paths("A", "B")[0]],
                scheme="xmp", size_bytes=None,
            )
            conn.start()
            net.sim.run(until=0.060)
            conn.stop()
        assert not validator.violations, validator.report()


class TestEcnContract:
    def test_ce_on_non_ect_packet_detected(self):
        queue = ThresholdECNQueue(capacity=10, threshold=5)
        validator = Validator()
        validator.watch_queue(queue, label="toy")
        pkt = make_data_packet(0, 0, 0, 0.0, (), False)
        pkt.ce = True  # a marker that ignored the ECT bit
        queue.accept(pkt)
        found = _violations(validator, "ce-marking")
        assert any("non-ECT" in v.message for v in found)

    def test_unmarked_over_threshold_detected(self, monkeypatch):
        # Break the marking rule itself: _mark does nothing.
        monkeypatch.setattr(
            ThresholdECNQueue, "_mark", DropTailQueue._mark
        )
        queue = ThresholdECNQueue(capacity=10, threshold=0)
        validator = Validator()
        validator.watch_queue(queue, label="toy")
        queue.accept(make_data_packet(0, 0, 0, 0.0, (), True))
        found = _violations(validator, "ce-marking")
        assert any("without a CE mark" in v.message for v in found)
        assert any("§2.1" in v.message for v in found)

    def test_over_admission_detected(self):
        queue = DropTailQueue(capacity=2)
        validator = Validator()
        validator.watch_queue(queue, label="toy")
        queue.capacity = 1  # shrink under the resident packets
        queue.accept(make_data_packet(0, 0, 0, 0.0, (), False))
        queue.capacity = 0
        validator.finish()
        found = _violations(validator, "queue-admission")
        assert found, validator.report()


class TestBrokenBosStateMachine:
    def test_double_cut_per_round_detected(self, monkeypatch):
        # Sabotage Fig. 2: the REDUCED state clears on every ACK instead
        # of waiting for cwr_seq to be acknowledged, so every ECE-carrying
        # ACK cuts — multiple cuts per RTT.
        def always_normal(self, ack):
            self.state = NORMAL

        monkeypatch.setattr(BosCC, "update_cwr_state", always_normal)
        with validating(raise_on_violation=False) as validator:
            net = _bottleneck_net()
            conn = MptcpConnection(
                net, "A", "B", [net.paths("A", "B")[0]],
                scheme="xmp", size_bytes=400_000,
            )
            conn.start()
            net.sim.run(until=0.3)
        found = _violations(validator, "bos-once-per-round")
        assert found, validator.report()
        assert any("at most one" in v.message for v in found)

    def test_reductions_counter_corruption_detected(self):
        with validating(raise_on_violation=False) as validator:
            net = _bottleneck_net()
            conn = MptcpConnection(
                net, "A", "B", [net.paths("A", "B")[0]],
                scheme="xmp", size_bytes=400_000,
            )
            conn.start()
            net.sim.run(until=0.3)
            cc = conn.subflows[0].sender.cc
            assert cc.reductions > 0, "scenario produced no reductions"
            cc.reductions += 1  # corrupt the public counter
        found = _violations(validator, "bos-once-per-round")
        assert any("observer saw" in v.message for v in found)


class TestFlowConservation:
    def test_delivered_count_corruption_detected(self):
        with validating(raise_on_violation=False) as validator:
            net = _bottleneck_net()
            conn = MptcpConnection(
                net, "A", "B", [net.paths("A", "B")[0]],
                scheme="dctcp", size_bytes=50_000,
            )
            conn.start()
            net.sim.run(until=0.2)
            conn.delivered_segments += 3  # double-counted delivery
        found = _violations(validator, "flow-conservation")
        assert found, validator.report()
        assert any("sum of" in v.message for v in found)

    def test_sim_event_counter_corruption_detected(self):
        with validating(raise_on_violation=False) as validator:
            net = _bottleneck_net()
            conn = MptcpConnection(
                net, "A", "B", [net.paths("A", "B")[0]],
                scheme="tcp", size_bytes=20_000,
            )
            conn.start()
            net.sim.run(until=0.1)
            net.sim._events_processed += 2  # corrupt the loop counter
        found = _violations(validator, "sim-event-counter")
        assert any("bypassed the loop" in v.message for v in found)
