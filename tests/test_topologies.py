"""Tests for the topology builders."""

import pytest

from repro.net.queue import DropTailQueue, ThresholdECNQueue
from repro.topology.bottleneck import build_single_bottleneck
from repro.topology.fattree import build_fattree
from repro.topology.testbed import build_shifting_testbed
from repro.topology.torus import DEFAULT_CAPACITIES, build_torus


class TestBottleneck:
    def test_pair_paths_exist_and_cross_bottleneck(self):
        net = build_single_bottleneck(num_pairs=3)
        for i in range(3):
            path = net.flow_path(i)
            assert net.forward_bottleneck in path

    def test_bottleneck_is_marking_queue(self):
        net = build_single_bottleneck(marking_threshold=10)
        assert isinstance(net.forward_bottleneck.queue, ThresholdECNQueue)
        assert net.forward_bottleneck.queue.threshold == 10

    def test_droptail_mode(self):
        net = build_single_bottleneck(marking_threshold=None)
        assert type(net.forward_bottleneck.queue) is DropTailQueue

    def test_access_links_do_not_mark(self):
        net = build_single_bottleneck()
        for link in net.links_by_layer("access"):
            assert type(link.queue) is DropTailQueue

    def test_access_faster_than_bottleneck(self):
        net = build_single_bottleneck(bottleneck_rate_bps=1e9)
        for link in net.links_by_layer("access"):
            assert link.rate_bps > 1e9

    def test_propagation_rtt_matches_request(self):
        rtt = 300e-6
        net = build_single_bottleneck(rtt=rtt)
        path = net.flow_path(0)
        one_way = sum(link.delay for link in path)
        back = sum(link.delay for link in net.reverse_path(path))
        assert one_way + back == pytest.approx(rtt)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_single_bottleneck(num_pairs=0)
        with pytest.raises(ValueError):
            build_single_bottleneck(rtt=0)


class TestShiftingTestbed:
    def test_flow2_has_two_disjoint_paths(self):
        net = build_shifting_testbed()
        paths = net.paths_flow2()
        assert len(paths) == 2
        assert set(paths[0]).isdisjoint(set(paths[1]))

    def test_flow2_paths_cross_different_bottlenecks(self):
        net = build_shifting_testbed()
        p1, p2 = net.paths_flow2()
        names1 = {link.name for link in p1}
        names2 = {link.name for link in p2}
        assert "A1->B1" in names1
        assert "A2->B2" in names2

    def test_single_path_flows(self):
        net = build_shifting_testbed()
        assert len(net.paths("S1", "D1")) == 1
        assert len(net.paths("S3", "D3")) == 1

    def test_background_paths_use_their_bottleneck(self):
        net = build_shifting_testbed()
        assert any(l.name == "A1->B1" for l in net.path_background(1))
        assert any(l.name == "A2->B2" for l in net.path_background(2))

    def test_bottleneck_parameters(self):
        net = build_shifting_testbed(bottleneck_rate_bps=300e6, marking_threshold=15)
        bottlenecks = net.links_by_layer("bottleneck")
        assert len(bottlenecks) == 4  # two pairs, both directions
        for link in bottlenecks:
            assert link.rate_bps == 300e6
            assert link.queue.threshold == 15


class TestTorus:
    def test_default_capacities(self):
        net = build_torus()
        assert [l.rate_bps for l in net.bottlenecks] == list(DEFAULT_CAPACITIES)

    def test_flow_paths_cross_adjacent_bottlenecks(self):
        net = build_torus()
        for i in range(1, 6):
            first, second = net.flow_paths(i)
            assert net.bottleneck(i) in first
            wrap = i % 5 + 1
            assert net.bottleneck(wrap) in second

    def test_flow5_wraps_to_l1(self):
        net = build_torus()
        _, second = net.flow_paths(5)
        assert net.bottleneck(1) in second

    def test_background_flows_cross_l3(self):
        net = build_torus(num_background=4)
        for b in range(1, 5):
            assert net.bottleneck(3) in net.background_path(b)

    def test_rtt_of_each_path(self):
        rtt = 350e-6
        net = build_torus(rtt=rtt)
        for i in range(1, 6):
            for path in net.flow_paths(i):
                total = sum(l.delay for l in path) + sum(
                    l.delay for l in net.reverse_path(path)
                )
                assert total == pytest.approx(rtt)

    def test_needs_two_bottlenecks(self):
        with pytest.raises(ValueError):
            build_torus(capacities=[1e9])


class TestFatTree:
    def test_k4_counts(self):
        net = build_fattree(k=4)
        assert len(net.hosts) == 16
        assert len(net.switches) == 20  # 4 cores + 8 agg + 8 edge

    def test_k8_counts(self):
        net = build_fattree(k=8)
        assert len(net.hosts) == 128
        assert len(net.switches) == 80

    def test_interpod_path_count_is_half_k_squared(self):
        net = build_fattree(k=4)
        paths = net.paths("h_0_0_0", "h_1_0_0")
        assert len(paths) == 4  # (k/2)^2

    def test_interrack_path_count(self):
        net = build_fattree(k=4)
        paths = net.paths("h_0_0_0", "h_0_1_0")
        assert len(paths) == 2  # k/2 (one per aggregation switch)

    def test_innerrack_single_path(self):
        net = build_fattree(k=4)
        assert len(net.paths("h_0_0_0", "h_0_0_1")) == 1

    def test_categories(self):
        net = build_fattree(k=4)
        assert net.category("h_0_0_0", "h_1_0_0") == "inter-pod"
        assert net.category("h_0_0_0", "h_0_1_0") == "inter-rack"
        assert net.category("h_0_0_0", "h_0_0_1") == "inner-rack"

    def test_layer_link_counts_k4(self):
        net = build_fattree(k=4)
        assert len(net.links_by_layer("core")) == 16 * 2
        assert len(net.links_by_layer("aggregation")) == 16 * 2
        assert len(net.links_by_layer("rack")) == 16 * 2

    def test_interpod_rtt_within_paper_range(self):
        # "RTT with no queuing delay is between 105 us and 435 us."
        net = build_fattree(k=4)
        path = net.paths("h_0_0_0", "h_1_0_0")[0]
        rtt = sum(l.delay for l in path) + sum(
            l.delay for l in net.reverse_path(path)
        )
        assert 300e-6 < rtt < 435e-6

    def test_innerrack_rtt(self):
        net = build_fattree(k=4)
        path = net.paths("h_0_0_0", "h_0_0_1")[0]
        rtt = sum(l.delay for l in path) + sum(
            l.delay for l in net.reverse_path(path)
        )
        assert rtt == pytest.approx(80e-6)

    def test_marking_threshold_everywhere(self):
        net = build_fattree(k=4, marking_threshold=10)
        for link in net.links:
            assert link.queue.threshold == 10

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            build_fattree(k=3)

    def test_host_name_parsing(self):
        net = build_fattree(k=4)
        assert net.parse_host("h_2_1_0") == (2, 1, 0)
        assert "h_2_1_0" in net.host_names
