"""Determinism smoke tests: digests are invariant to parallelism and caching.

The golden harness only works because the simulator is bit-deterministic;
these tests pin the two ways nondeterminism could sneak back in — the
process-pool execution path (jobs > 1) and the run cache (a stale or
corrupted cached result replacing a fresh simulation).
"""

from __future__ import annotations

import pytest

from repro.experiments.fattree_eval import FatTreeScenario
from repro.runner import Campaign, RunCache, RunSpec
from repro.validate.golden import digest_fattree, digest_hash
from repro.validate.scenarios import run_scenario

pytestmark = pytest.mark.invariants


def _specs():
    return [
        RunSpec(
            "fattree",
            FatTreeScenario(pattern=pattern, duration=0.008, k=4, seed=1),
        )
        for pattern in ("permutation", "incast")
    ]


def _hashes(campaign_result):
    return [digest_hash(digest_fattree(r.value)) for r in campaign_result.results]


class TestParallelismDeterminism:
    def test_jobs_1_equals_jobs_4(self):
        serial = Campaign(jobs=1, use_cache=False).run(_specs())
        parallel = Campaign(jobs=4, use_cache=False).run(_specs())
        assert _hashes(serial) == _hashes(parallel)

    def test_repeat_run_identical(self):
        first = Campaign(jobs=1, use_cache=False).run(_specs())
        second = Campaign(jobs=1, use_cache=False).run(_specs())
        assert _hashes(first) == _hashes(second)


class TestCacheDeterminism:
    def test_cache_hit_equals_cache_miss(self):
        cache = RunCache()  # fresh memory tier, no disk
        miss = Campaign(jobs=1, cache=cache, use_cache=True).run(_specs())
        hit = Campaign(jobs=1, cache=cache, use_cache=True).run(_specs())
        assert all(not r.metrics.cached for r in miss.results)
        assert all(r.metrics.cached for r in hit.results)
        assert _hashes(miss) == _hashes(hit)


class TestScenarioDeterminism:
    @pytest.mark.parametrize("name", ["bottleneck-xmp", "fattree-incast"])
    def test_scenario_digest_repeatable(self, name):
        first, _ = run_scenario(name)
        second, _ = run_scenario(name)
        assert digest_hash(first) == digest_hash(second)

    def test_validation_does_not_change_behaviour(self):
        # A validated and an unvalidated run of the same scenario must
        # produce identical digests: observers only read, never steer.
        from repro.experiments.fattree_eval import _simulate
        from repro.validate.golden import digest_fattree as digest
        from repro.validate.hooks import validating

        scenario = FatTreeScenario(duration=0.008, k=4, seed=1)
        bare = digest(_simulate(scenario))
        with validating() as validator:
            observed = digest(_simulate(scenario))
        assert validator.checks > 0
        assert digest_hash(bare) == digest_hash(observed)
