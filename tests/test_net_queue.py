"""Tests for queue disciplines and marking rules."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import Packet, DATA
from repro.net.queue import DropTailQueue, REDQueue, ThresholdECNQueue


def packet(ect: bool = True) -> Packet:
    return Packet(DATA, 1500, 0, 0, ect=ect)


class TestDropTail:
    def test_fifo_order(self):
        queue = DropTailQueue(10)
        packets = [packet() for _ in range(3)]
        for p in packets:
            queue.accept(p)
        assert [queue.pop() for _ in range(3)] == packets

    def test_pop_empty_returns_none(self):
        assert DropTailQueue(10).pop() is None

    def test_drops_when_full(self):
        queue = DropTailQueue(2)
        assert queue.accept(packet())
        assert queue.accept(packet())
        assert not queue.accept(packet())
        assert queue.stats.dropped == 1

    def test_never_marks(self):
        queue = DropTailQueue(100)
        for _ in range(50):
            p = packet()
            queue.accept(p)
            assert not p.ce
        assert queue.stats.marked == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    def test_occupancy_tracks_contents(self):
        queue = DropTailQueue(10)
        queue.accept(packet())
        queue.accept(packet())
        assert queue.occupancy == 2
        queue.pop()
        assert queue.occupancy == 1

    def test_stats_counters(self):
        queue = DropTailQueue(10)
        queue.accept(packet())
        queue.pop()
        snap = queue.stats.snapshot()
        assert snap["enqueued"] == 1
        assert snap["dequeued"] == 1
        assert snap["max_occupancy"] == 1


class TestThresholdECN:
    def test_no_marking_below_threshold(self):
        queue = ThresholdECNQueue(100, threshold=10)
        for _ in range(10):
            p = packet()
            queue.accept(p)
            assert not p.ce

    def test_marks_at_threshold(self):
        # The paper's rule: arriving packet marked when the instantaneous
        # queue is larger than K, i.e. the (K+1)-th waiting packet is marked.
        queue = ThresholdECNQueue(100, threshold=10)
        marked = []
        for i in range(15):
            p = packet()
            queue.accept(p)
            marked.append(p.ce)
        assert marked[:10] == [False] * 10
        assert marked[10:] == [True] * 5

    def test_never_marks_non_ect(self):
        queue = ThresholdECNQueue(100, threshold=0)
        p = packet(ect=False)
        queue.accept(p)
        assert not p.ce
        assert queue.stats.marked == 0

    def test_non_ect_still_dropped_on_overflow(self):
        queue = ThresholdECNQueue(1, threshold=0)
        queue.accept(packet(ect=False))
        assert not queue.accept(packet(ect=False))

    def test_marking_resumes_after_drain(self):
        queue = ThresholdECNQueue(100, threshold=2)
        for _ in range(3):
            queue.accept(packet())
        while queue.pop():
            pass
        p = packet()
        queue.accept(p)
        assert not p.ce

    def test_threshold_zero_marks_everything_ect(self):
        queue = ThresholdECNQueue(10, threshold=0)
        p = packet()
        queue.accept(p)
        assert p.ce

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ThresholdECNQueue(10, threshold=-1)

    @given(
        threshold=st.integers(0, 30),
        arrivals=st.integers(1, 80),
    )
    @settings(max_examples=60, deadline=None)
    def test_marked_count_matches_rule(self, threshold, arrivals):
        """Property: with no dequeues, exactly max(0, n-K) packets marked
        (up to capacity), and drops begin only at capacity."""
        capacity = 100
        queue = ThresholdECNQueue(capacity, threshold)
        marked = 0
        accepted = 0
        for _ in range(arrivals):
            p = packet()
            if queue.accept(p):
                accepted += 1
                marked += p.ce
        assert accepted == min(arrivals, capacity)
        assert marked == max(0, accepted - threshold)


class TestRED:
    def test_ewma_tracks_occupancy(self):
        queue = REDQueue(100, 5, 15, weight=1.0, rng=random.Random(0))
        for _ in range(10):
            queue.accept(packet())
        # weight=1.0 -> avg equals instantaneous occupancy before arrival.
        assert queue.avg == 9

    def test_instantaneous_config_mimics_threshold_rule(self):
        # The paper's DummyNet trick: Wq=1, minth=maxth=K.
        queue = REDQueue(100, 10, 10, weight=1.0, rng=random.Random(0))
        marked = []
        for _ in range(15):
            p = packet()
            queue.accept(p)
            marked.append(p.ce)
        assert marked[:10] == [False] * 10
        assert all(marked[11:])  # above K: always marked

    def test_slow_ewma_delays_marking(self):
        # With a small weight the average lags: a short burst above maxth
        # is NOT marked — the §2.1 argument against averaged marking.
        queue = REDQueue(100, 5, 15, weight=0.002, rng=random.Random(0))
        burst_marked = 0
        for _ in range(30):
            p = packet()
            queue.accept(p)
            burst_marked += p.ce
        assert burst_marked == 0

    def test_no_marking_below_min_threshold(self):
        queue = REDQueue(100, 5, 15, weight=1.0, rng=random.Random(0))
        for _ in range(5):
            p = packet()
            queue.accept(p)
            assert not p.ce

    def test_probabilistic_region_marks_some(self):
        rng = random.Random(1)
        queue = REDQueue(200, 5, 100, max_probability=0.5, weight=1.0, rng=rng)
        marked = 0
        for _ in range(80):
            p = packet()
            queue.accept(p)
            marked += p.ce
        assert 0 < marked < 80

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            REDQueue(100, 5, 15, weight=0.0)

    def test_threshold_order_validation(self):
        with pytest.raises(ValueError):
            REDQueue(100, 20, 10)

    def test_never_marks_non_ect(self):
        queue = REDQueue(100, 0, 0, weight=1.0, rng=random.Random(0))
        for _ in range(10):
            p = packet(ect=False)
            queue.accept(p)
            assert not p.ce
