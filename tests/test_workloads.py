"""Statistical and determinism properties of the workload layer.

The satellites the production-traffic issue pins:

* the empirical CDF of many draws matches the source CDF at every knot
  (a KS-style sup bound) and the sample mean matches the analytic mean;
* the mean interarrival gap matches the requested rate;
* identical seeds give byte-identical flow schedules (the schedule is a
  pure function of its inputs — no simulation needed for the proof).
"""

from __future__ import annotations

import random

import pytest

from repro.topology.fattree import build_fattree
from repro.workloads.arrivals import (
    LognormalArrivals,
    PoissonArrivals,
    make_arrivals,
    offered_flow_rate,
    workload_capacity_bps,
)
from repro.workloads.cdf import (
    CDF_PACKET_BYTES,
    DATAMINING_POINTS,
    WEBSEARCH_POINTS,
    WORKLOAD_NAMES,
    FixedSizes,
    LognormalSizes,
    SizeCDF,
    UniformSizes,
    make_sampler,
)
from repro.workloads.schedule import build_schedule, offered_bytes

#: Draws for the distributional checks.  The KS critical value at
#: alpha=0.001 is 1.95/sqrt(N) ~ 0.0062; the seeds are fixed, so the
#: checks are deterministic and the bound below is comfortably loose
#: without being vacuous.
N_DRAWS = 100_000
KS_BOUND = 0.01


def _empirical_cdf_at(draws, x):
    return sum(1 for d in draws if d <= x) / len(draws)


class TestEmpiricalCdfs:
    @pytest.mark.parametrize(
        "name,points",
        [("websearch", WEBSEARCH_POINTS), ("datamining", DATAMINING_POINTS)],
    )
    def test_draws_match_source_cdf_at_every_knot(self, name, points):
        cdf = SizeCDF(name, points)
        rng = random.Random(12345)
        draws = [cdf.sample(rng) for _ in range(N_DRAWS)]
        for size, prob in cdf.knots():
            gap = abs(_empirical_cdf_at(draws, size) - cdf.cdf_at(size))
            assert gap < KS_BOUND, (
                f"{name}: empirical CDF off by {gap:.4f} at {size:.0f} B "
                f"(knot p={prob})"
            )

    def test_websearch_sample_mean_matches_analytic(self):
        cdf = SizeCDF("websearch", WEBSEARCH_POINTS)
        rng = random.Random(7)
        draws = [cdf.sample(rng) for _ in range(N_DRAWS)]
        sample_mean = sum(draws) / len(draws)
        assert sample_mean == pytest.approx(cdf.mean_bytes(), rel=0.05)

    def test_knots_are_packet_table_times_1460(self):
        assert WEBSEARCH_POINTS[0][0] == CDF_PACKET_BYTES
        assert WEBSEARCH_POINTS[-1] == (20000 * CDF_PACKET_BYTES, 1.0)

    def test_datamining_atom_at_one_packet(self):
        # Half the datamining flows are a single packet: a vertical step
        # in the CDF, which both sampling and forward evaluation honour.
        cdf = SizeCDF("datamining", DATAMINING_POINTS)
        assert cdf.cdf_at(CDF_PACKET_BYTES) == pytest.approx(0.5)
        rng = random.Random(3)
        draws = [cdf.sample(rng) for _ in range(N_DRAWS)]
        single = sum(1 for d in draws if d <= CDF_PACKET_BYTES) / len(draws)
        assert single == pytest.approx(0.5, abs=KS_BOUND)

    def test_cdf_at_is_monotone(self):
        cdf = SizeCDF("websearch", WEBSEARCH_POINTS)
        xs = [1, 1460, 10_000, 100_000, 1_000_000, 10_000_000, 1e9]
        values = [cdf.cdf_at(x) for x in xs]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_scale_multiplies_sizes_not_probabilities(self):
        base = SizeCDF("websearch", WEBSEARCH_POINTS)
        scaled = SizeCDF("websearch", WEBSEARCH_POINTS, scale=0.5)
        assert scaled.mean_bytes() == pytest.approx(base.mean_bytes() / 2)
        rng_a, rng_b = random.Random(9), random.Random(9)
        for _ in range(100):
            assert scaled.sample(rng_a) == pytest.approx(
                base.sample(rng_b) / 2, abs=1.0
            )

    def test_rejects_malformed_tables(self):
        with pytest.raises(ValueError):
            SizeCDF("bad", [(100, 0.5)])  # one point
        with pytest.raises(ValueError):
            SizeCDF("bad", [(100, 0.5), (200, 0.4), (300, 1.0)])  # non-monotone p
        with pytest.raises(ValueError):
            SizeCDF("bad", [(100, 0.5), (200, 0.9)])  # doesn't reach 1.0
        with pytest.raises(ValueError):
            SizeCDF("bad", [(0, 0.0), (200, 1.0)])  # non-positive size
        with pytest.raises(ValueError):
            SizeCDF("bad", WEBSEARCH_POINTS, scale=0.0)


class TestSyntheticSamplers:
    def test_uniform_bounds_and_mean(self):
        sampler = UniformSizes(1_000, 3_000)
        rng = random.Random(1)
        draws = [sampler.sample(rng) for _ in range(20_000)]
        assert min(draws) >= 1_000 and max(draws) <= 3_000
        assert sum(draws) / len(draws) == pytest.approx(2_000, rel=0.02)
        assert sampler.mean_bytes() == 2_000

    def test_lognormal_mean_calibration(self):
        sampler = LognormalSizes(50_000, sigma=1.0)
        rng = random.Random(2)
        draws = [sampler.sample(rng) for _ in range(N_DRAWS)]
        assert sum(draws) / len(draws) == pytest.approx(50_000, rel=0.05)

    def test_fixed_is_constant(self):
        sampler = FixedSizes(1234)
        rng = random.Random(0)
        assert {sampler.sample(rng) for _ in range(10)} == {1234}
        assert sampler.mean_bytes() == 1234.0

    def test_sampler_validation(self):
        with pytest.raises(ValueError):
            UniformSizes(10, 5)
        with pytest.raises(ValueError):
            LognormalSizes(0)
        with pytest.raises(ValueError):
            LognormalSizes(100, sigma=0)
        with pytest.raises(ValueError):
            FixedSizes(0)

    def test_make_sampler_every_name(self):
        for name in WORKLOAD_NAMES:
            sampler = make_sampler(name)
            assert sampler.name == name
            assert sampler.mean_bytes() > 0
            assert sampler.sample(random.Random(0)) >= 1

    def test_make_sampler_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_sampler("pareto")
        with pytest.raises(ValueError):
            make_sampler("websearch", size_scale=-1)

    def test_make_sampler_params_override(self):
        sampler = make_sampler("fixed", params={"size_bytes": 42})
        assert sampler.sample(random.Random(0)) == 42
        uniform = make_sampler(
            "uniform", params={"min_bytes": 5, "max_bytes": 6}
        )
        assert uniform.mean_bytes() == 5.5


class TestArrivalProcesses:
    def test_poisson_mean_gap_matches_rate(self):
        process = PoissonArrivals(2_000.0)
        rng = random.Random(11)
        gaps = [process.next_gap(rng) for _ in range(N_DRAWS)]
        assert sum(gaps) / len(gaps) == pytest.approx(
            process.mean_gap_s(), rel=0.02
        )

    def test_lognormal_mean_gap_matches_rate(self):
        # The mu calibration must preserve E[gap] = 1/rate, or the
        # "same load, burstier arrivals" comparison would be meaningless.
        process = LognormalArrivals(2_000.0, sigma=1.0)
        rng = random.Random(13)
        gaps = [process.next_gap(rng) for _ in range(N_DRAWS)]
        assert sum(gaps) / len(gaps) == pytest.approx(
            1.0 / 2_000.0, rel=0.03
        )

    def test_gaps_strictly_positive(self):
        for process in (PoissonArrivals(500.0), LognormalArrivals(500.0)):
            rng = random.Random(4)
            assert all(process.next_gap(rng) > 0 for _ in range(10_000))

    def test_make_arrivals(self):
        assert make_arrivals("poisson", 10.0).name == "poisson"
        assert make_arrivals("lognormal", 10.0, sigma=2.0).sigma == 2.0
        with pytest.raises(ValueError, match="unknown arrival"):
            make_arrivals("weibull", 10.0)
        with pytest.raises(ValueError):
            make_arrivals("poisson", 0.0)
        with pytest.raises(ValueError):
            make_arrivals("lognormal", 10.0, sigma=0.0)


class TestLoadCalibration:
    def test_offered_flow_rate_formula(self):
        # load 0.5 of 16 Gbps at mean 1 MB: 0.5 * 16e9 / 8e6 = 1000/s.
        assert offered_flow_rate(0.5, 16e9, 1_000_000) == pytest.approx(1000.0)

    def test_offered_flow_rate_validation(self):
        with pytest.raises(ValueError):
            offered_flow_rate(0.0, 1e9, 1000)
        with pytest.raises(ValueError):
            offered_flow_rate(0.5, 0.0, 1000)
        with pytest.raises(ValueError):
            offered_flow_rate(0.5, 1e9, 0)

    def test_fattree_capacity_is_aggregate_access_bandwidth(self):
        net = build_fattree(k=4)
        # k=4: bisection (k^3/8)*rate = 8 Gbps; capacity doubles it back
        # to the 16 hosts' aggregate 1 Gbps access bandwidth.
        assert net.bisection_bandwidth_bps() == pytest.approx(8e9)
        assert workload_capacity_bps(net) == pytest.approx(16e9)

    def test_capacity_fallback_sums_host_links(self, two_host_net):
        # A plain Network has no bisection helper; the fallback sums the
        # two hosts' 1 Gbps access links.
        assert workload_capacity_bps(two_host_net) == pytest.approx(2e9)


class TestScheduleDeterminism:
    HOSTS = [f"h{i}" for i in range(8)]

    def _schedule(self, seed: int, duration: float = 0.5):
        return build_schedule(
            self.HOSTS,
            make_sampler("websearch"),
            PoissonArrivals(200.0),
            random.Random(seed),
            duration,
        )

    def test_identical_seeds_identical_schedules(self):
        assert self._schedule(42) == self._schedule(42)

    def test_different_seeds_differ(self):
        assert self._schedule(42) != self._schedule(43)

    def test_schedule_well_formed(self):
        schedule = self._schedule(1)
        assert schedule, "expected a non-empty schedule"
        times = [a.time for a in schedule]
        assert times == sorted(times)
        assert all(0 < a.time < 0.5 for a in schedule)
        assert all(a.src != a.dst for a in schedule)
        assert all(a.size_bytes >= 1 for a in schedule)
        assert offered_bytes(schedule) == sum(a.size_bytes for a in schedule)

    def test_all_hosts_participate(self):
        schedule = self._schedule(5, duration=5.0)
        assert {a.src for a in schedule} == set(self.HOSTS)
        assert {a.dst for a in schedule} == set(self.HOSTS)

    def test_max_flows_backstop(self):
        schedule = build_schedule(
            self.HOSTS,
            FixedSizes(1000),
            PoissonArrivals(1e6),
            random.Random(0),
            10.0,
            max_flows=25,
        )
        assert len(schedule) == 25

    def test_input_validation(self):
        with pytest.raises(ValueError):
            build_schedule(
                ["only-one"], FixedSizes(1), PoissonArrivals(1.0),
                random.Random(0), 1.0,
            )
        with pytest.raises(ValueError):
            build_schedule(
                self.HOSTS, FixedSizes(1), PoissonArrivals(1.0),
                random.Random(0), 0.0,
            )
