"""Tests for path enumeration and ECMP/distinct selectors."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.network import Network
from repro.net.routing import DistinctPathSelector, EcmpSelector, enumerate_paths


def diamond_net():
    """A -> {U, V} -> B : two equal-cost 2-hop paths."""
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    u = net.add_switch("U")
    v = net.add_switch("V")
    for mid in (u, v):
        net.connect(a, mid, 1e9, 1e-6)
        net.connect(mid, b, 1e9, 1e-6)
    return net


class TestEnumeration:
    def test_two_equal_cost_paths(self):
        net = diamond_net()
        paths = net.paths("A", "B")
        assert len(paths) == 2
        assert all(len(path) == 2 for path in paths)

    def test_paths_end_at_destination(self):
        net = diamond_net()
        for path in net.paths("A", "B"):
            assert path[-1].dst is net.host("B")
            assert path[0].src is net.host("A")

    def test_only_shortest_paths_returned(self):
        # Add a longer detour; it must not appear.
        net = diamond_net()
        w = net.add_switch("W")
        net.connect(net.switch("U"), w, 1e9, 1e-6)
        net.connect(w, net.host("B"), 1e9, 1e-6)
        paths = net.paths("A", "B")
        assert len(paths) == 2
        assert all(len(path) == 2 for path in paths)

    def test_no_path_returns_empty(self):
        net = Network()
        net.add_host("A")
        net.add_host("B")
        assert net.paths("A", "B") == []

    def test_self_path_is_empty_tuple(self):
        net = diamond_net()
        paths = enumerate_paths(net.adjacency, net.host("A"), net.host("A"))
        assert paths == [()]

    def test_max_paths_bounds_result(self):
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        for i in range(8):
            mid = net.add_switch(f"M{i}")
            net.connect(a, mid, 1e9, 1e-6)
            net.connect(mid, b, 1e9, 1e-6)
        assert len(net.paths("A", "B", max_paths=3)) == 3
        net2 = diamond_net()
        assert len(net2.paths("A", "B", max_paths=64)) == 2

    def test_paths_are_cached(self):
        net = diamond_net()
        assert net.paths("A", "B") is net.paths("A", "B")


class TestSelectors:
    def test_ecmp_picks_from_given_paths(self):
        net = diamond_net()
        paths = net.paths("A", "B")
        selector = EcmpSelector(random.Random(0))
        for _ in range(20):
            chosen = selector.select(paths, 0, 1)
            assert len(chosen) == 1
            assert chosen[0] in paths

    def test_ecmp_uses_both_paths_across_flows(self):
        net = diamond_net()
        paths = net.paths("A", "B")
        selector = EcmpSelector(random.Random(0))
        seen = {selector.select(paths, flow, 1)[0] for flow in range(50)}
        assert len(seen) == 2

    def test_ecmp_rejects_empty(self):
        with pytest.raises(ValueError):
            EcmpSelector(random.Random(0)).select([], 0, 1)

    def test_distinct_gives_different_paths(self):
        net = diamond_net()
        paths = net.paths("A", "B")
        selector = DistinctPathSelector(random.Random(0))
        chosen = selector.select(paths, 0, 2)
        assert chosen[0] != chosen[1]

    def test_distinct_wraps_when_paths_exhausted(self):
        net = diamond_net()
        paths = net.paths("A", "B")
        selector = DistinctPathSelector(random.Random(0))
        chosen = selector.select(paths, 0, 5)
        assert len(chosen) == 5
        assert set(chosen) == set(paths)

    def test_distinct_single_path_topology(self):
        selector = DistinctPathSelector(random.Random(0))
        fake_path = ("only",)
        chosen = selector.select([fake_path], 0, 3)
        assert chosen == [fake_path] * 3

    @given(n_paths=st.integers(1, 8), n_subflows=st.integers(1, 8), seed=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_distinct_property_no_reuse_until_wrap(self, n_paths, n_subflows, seed):
        paths = [(f"p{i}",) for i in range(n_paths)]
        selector = DistinctPathSelector(random.Random(seed))
        chosen = selector.select(paths, 0, n_subflows)
        head = chosen[: min(n_paths, n_subflows)]
        assert len(set(head)) == len(head)  # distinct until wrap-around
