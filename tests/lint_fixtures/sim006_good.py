# simlint-path: src/repro/transport/fixture_sim006_ok.py
"""Known-good twin: forward-only scheduling from the live clock."""


def rearm(sim, now, callback):
    sim.schedule(0.0, callback)
    sim.schedule_at(now + 0.5, callback)


def defer(sim, delay, callback):
    sim.schedule(max(0.0, delay), callback)
