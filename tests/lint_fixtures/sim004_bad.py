# simlint-path: src/repro/topology/fixture_sim004.py
"""Known-bad: raw numeric literals where a units conversion exists."""


def build(net, a, b, queue):
    net.connect(a, b, 1e9, 30e-6, queue_factory=queue)  # EXPECT: SIM004 SIM004
    net.add_link(a, b, rate=10e9)  # EXPECT: SIM004
    return make_profile(rtt=0.000225, delay=5e-6)  # EXPECT: SIM004 SIM004


def make_profile(**kwargs):
    return kwargs
