# simlint-path: src/repro/metrics/fixture_sim002.py
"""Known-bad: wall-clock reads in model code."""
import time
from datetime import datetime

from time import perf_counter  # EXPECT: SIM002


def stamp():
    return time.time()  # EXPECT: SIM002


def tick():
    return time.monotonic()  # EXPECT: SIM002


def bench():
    return time.perf_counter_ns()  # EXPECT: SIM002


def label():
    return datetime.now().isoformat()  # EXPECT: SIM002
