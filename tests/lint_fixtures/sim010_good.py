# simlint-path: src/repro/runner/fixture_sim010_ok.py
"""Known-good twin: narrow handlers, or broad handlers that actually
handle (log, clean up, re-raise)."""


def load(path):
    try:
        return open(path).read()
    except OSError:
        return None


def best_effort_unlink(path):
    try:
        path.unlink()
    except OSError:
        pass  # narrow best-effort cleanup is fine


def guarded(fn, log):
    try:
        fn()
    except Exception as exc:
        log.append(exc)
        raise
