# simlint-path: src/repro/traffic/fixture_sim001.py
"""Known-bad: process-global and unseeded randomness."""
import random

from random import shuffle  # EXPECT: SIM001


def pick(items):
    return random.choice(items)  # EXPECT: SIM001


def jitter():
    return random.random() * 1e-6  # EXPECT: SIM001


def reseed():
    random.seed(42)  # EXPECT: SIM001


def make_rng():
    return random.Random()  # EXPECT: SIM001


def numpy_draw(np):
    return np.random.uniform(0.0, 1.0)  # EXPECT: SIM001
