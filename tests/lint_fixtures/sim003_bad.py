# simlint-path: src/repro/sim/fixture_sim003.py
"""Known-bad: exact float equality on simulation times."""


def collides(event, other):
    return event.time == other.time  # EXPECT: SIM003


def expired(sim, deadline):
    if sim.now == deadline:  # EXPECT: SIM003
        return True
    return sim.now != deadline  # EXPECT: SIM003


def fresh_flow(flow):
    return flow.start_time == 0.0  # EXPECT: SIM003
