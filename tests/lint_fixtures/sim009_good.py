# simlint-path: src/repro/experiments/fixture_sim009_ok.py
"""Known-good twin: picklable members; lambdas that are never stored on
a RunSpec-reachable class are fine."""
import functools


def _first_column(row):
    return row[0]


def _scaled(value, factor):
    return value * factor


class FixtureScenario:
    def __init__(self):
        self.keyfn = _first_column
        self.scale = functools.partial(_scaled, factor=2.0)

    def ordered(self, rows):
        # A transient sort key is not a stored member.
        return sorted(rows, key=lambda row: row[0])


class FixtureHelper:  # not RunSpec-reachable by naming convention
    def __init__(self):
        self.thunk = lambda: 0.0
