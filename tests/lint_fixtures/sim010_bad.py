# simlint-path: src/repro/runner/fixture_sim010.py
"""Known-bad: bare and silently-swallowing exception handlers."""


def load(path):
    try:
        return open(path).read()
    except:  # EXPECT: SIM010
        return None


def ignore_errors(fn):
    try:
        fn()
    except Exception:  # EXPECT: SIM010
        pass


def ignore_everything(fn):
    try:
        fn()
    except (OSError, BaseException):  # EXPECT: SIM010
        pass
