# simlint-path: src/repro/traffic/fixture_sim001_ok.py
"""Known-good twin: every RNG is seed-constructed or injected."""
import random

from repro.sim.random import RandomStreams


def make_rng(seed):
    return random.Random(seed)


def default_rng():
    return random.Random(0)


def pick(rng, items):
    return rng.choice(items)


def stream_draw():
    streams = RandomStreams(7)
    return streams.stream("flow-sizes").random()
