# simlint-path: src/repro/sim/fixture_sim003_ok.py
"""Known-good twin: ordering comparisons, tolerances, and None checks."""


def collides(event, other, tolerance=1e-12):
    return abs(event.time - other.time) < tolerance


def expired(sim, deadline):
    return sim.now >= deadline


def unset(deadline):
    return deadline is None or deadline == None  # noqa: E711
