# simlint-path: src/repro/experiments/fixture_sim009.py
"""Known-bad: pickle-unsafe members on RunSpec-reachable classes."""


class FixtureScenario:
    summarize = lambda self: 0.0  # EXPECT: SIM009

    def __init__(self):
        self.score = lambda rates: sum(rates)  # EXPECT: SIM009

    def attach(self):
        def local_callback():
            return 1.0

        self.callback = local_callback  # EXPECT: SIM009


class FixtureResult:
    def __init__(self, rows):
        self.rows = rows
        self.keyfn = lambda row: row[0]  # EXPECT: SIM009
