# simlint-path: src/repro/traffic/fixture_suppressed_partial.py
"""A suppression only waives the codes it names: the SIM002 waiver below
does not cover the SIM001 hazard on the same line."""
import random
import time


def jitter():
    return random.random() * time.time()  # simlint: disable=SIM002  # EXPECT: SIM001
