# simlint-path: src/repro/fixture_perf/s22b/pump.py
"""Telemetry-hot function missing from the registry (SIM022 bad twin).

The sibling ``telemetry.jsonl`` shows ``Pump.on_event`` at 50% of
callback wall-time; the registry does not mention it.
"""


class Pump:
    def on_event(self, seq):  # EXPECT: SIM022
        self.seen = seq

    def prime(self, sim):
        sim.schedule(0.0, self.on_event)
