# simlint-path: src/repro/fixture_perf/s23g/dispatch.py
"""The same dispatch with static call shapes (SIM023 good twin)."""


class Dispatch:
    def __init__(self, handler):
        self.handler = handler

    def on_event(self, when, seq):
        self.handler(when, seq)

    def size(self, buf):
        return len(buf)

    def prime(self, sim):
        sim.schedule(0.0, self.on_event)
