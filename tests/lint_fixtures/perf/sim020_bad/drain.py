# simlint-path: src/repro/fixture_perf/s20b/drain.py
"""Unhoisted attribute chain in a hot loop (SIM020 bad twin)."""


class Drain:
    def __init__(self, queue):
        self.queue = queue

    def flush(self, items):
        for item in items:
            self.queue.push(item)  # EXPECT: SIM020
