# simlint-path: src/repro/fixture_perf/s19b/engine.py
"""Hot function allocating per event (SIM019 bad twin)."""


class Pump:
    def __init__(self):
        self.seen = 0
        self.log = []

    def on_event(self, seq):
        self.seen += 1
        entry = [seq, self.seen]  # EXPECT: SIM019
        self.log.append(entry)

    def prime(self, sim):
        sim.schedule(0.0, self.on_event)
