# simlint-path: src/repro/fixture_perf/s19g/engine.py
"""Allocation hoisted off the per-event path (SIM019 good twin).

``on_event`` mutates preallocated state; ``snapshot`` still allocates
but is waived with an explicit reason, the escape hatch for allocation
that *is* the function's purpose.
"""


class Pump:
    def __init__(self):
        self.seen = 0
        self.last_seq = 0

    def on_event(self, seq):
        self.seen += 1
        self.last_seq = seq

    def snapshot(self):
        return [self.seen, self.last_seq]  # simperf: allow-alloc(debug snapshot, off the per-event path)

    def prime(self, sim):
        sim.schedule(0.0, self.on_event)
