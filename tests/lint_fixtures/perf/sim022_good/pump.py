# simlint-path: src/repro/fixture_perf/s22g/pump.py
"""The telemetry-hot function is registered (SIM022 good twin)."""


class Pump:
    def on_event(self, seq):
        self.seen = seq

    def prime(self, sim):
        sim.schedule(0.0, self.on_event)
