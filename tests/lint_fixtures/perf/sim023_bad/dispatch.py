# simlint-path: src/repro/fixture_perf/s23b/dispatch.py
"""Dynamic call shapes in hot functions (SIM023 bad twin): **kwargs
unpacking, *-unpacking of a freshly built sequence, and an explicit
dunder call."""


class Dispatch:
    def __init__(self, handler):
        self.handler = handler

    def on_event(self, options):
        self.handler(**options)  # EXPECT: SIM023

    def replay(self, args):
        self.handler(*args)  # EXPECT: SIM023

    def size(self, buf):
        return buf.__len__()  # EXPECT: SIM023

    def prime(self, sim):
        sim.schedule(0.0, self.on_event)
