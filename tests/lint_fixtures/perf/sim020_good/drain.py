# simlint-path: src/repro/fixture_perf/s20g/drain.py
"""The chain pre-bound to a local before the loop (SIM020 good twin)."""


class Drain:
    def __init__(self, queue):
        self.queue = queue

    def flush(self, items):
        push = self.queue.push
        for item in items:
            push(item)
