# simlint-path: src/repro/fixture_perf/s21b/pump.py
"""Hot function calling an allocating non-hot callee (SIM021 bad twin)."""


def fresh_frame(seq):
    return {"seq": seq}


class Pump:
    def on_event(self, seq):
        return fresh_frame(seq)  # EXPECT: SIM021

    def prime(self, sim):
        sim.schedule(0.0, self.on_event)
