# simlint-path: src/repro/fixture_perf/s21g/pump.py
"""The callee reuses a preallocated frame (SIM021 good twin)."""


def frame_seq(frame):
    return frame["seq"]


class Pump:
    def __init__(self):
        self.frame = {"seq": 0}

    def on_event(self, seq):
        self.frame["seq"] = seq
        return frame_seq(self.frame)

    def prime(self, sim):
        sim.schedule(0.0, self.on_event)
