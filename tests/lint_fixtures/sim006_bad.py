# simlint-path: src/repro/transport/fixture_sim006.py
"""Known-bad: statically-past scheduling."""


def rearm(sim, now, callback):
    sim.schedule(-0.001, callback)  # EXPECT: SIM006
    sim.schedule_at(now - 0.5, callback)  # EXPECT: SIM006


def backdate(sim, callback):
    start_time = sim.now
    sim.schedule_at(start_time - 1e-6, callback)  # EXPECT: SIM006
