# simlint-path: src/repro/traffic/fixture_suppressed.py
"""Suppression corpus: every hazard here is explicitly waived, so the
file must lint clean."""
import random
import time


def pick(items):
    return random.choice(items)  # simlint: disable=SIM001


def stamp():
    return time.time()  # simlint: disable=SIM002


def record(sample, sink=[]):  # simlint: disable=SIM007
    sink.append(sample)
    return sink


def chaos(sim, hosts):
    for host in set(hosts):  # simlint: disable=all
        sim.schedule(0.0, host.start)


def multi(event, other, counts={}):  # simlint: disable=SIM003,SIM007
    return event.time == other.time or counts  # simlint: disable=SIM003
