# simlint-path: src/repro/metrics/fixture_sim002_ok.py
"""Known-good twin: all timing comes from the simulation clock."""


def stamp(sim):
    return sim.now


def window(sim, start):
    return sim.now - start


def deadline_passed(sim, deadline):
    return sim.now >= deadline
