# simlint-path: src/repro/metrics/fixture_sim007.py
"""Known-bad: mutable default arguments."""


def record(sample, sink=[]):  # EXPECT: SIM007
    sink.append(sample)
    return sink


def tally(counts={}):  # EXPECT: SIM007
    return counts


def gather(*, seen=set()):  # EXPECT: SIM007
    return seen


def collect(samples=list()):  # EXPECT: SIM007
    return samples
