# simlint-path: src/repro/fixture_race/s18g/sampler.py
"""Periodic callback at the named SAMPLE tier (SIM018 good twin)."""

from repro.sim.priorities import SAMPLE


class Sampler:
    def __init__(self, sim):
        self.sim = sim
        self.count = 0

    def tick(self):
        self.count = self.count + 1
        self.sim.schedule(0.001, self.tick, priority=SAMPLE)
