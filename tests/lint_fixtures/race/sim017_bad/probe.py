# simlint-path: src/repro/fixture_race/s17b/probe.py
"""Same-instant read-write ordering dependence (SIM017 bad twin)."""


class Probe:
    def __init__(self, sim):
        self.sim = sim
        self.phase = 0
        self.snapshot = 0

    def arm(self):
        self.sim.schedule(1.0, self.observe)
        self.sim.schedule(1.0, self.advance)  # EXPECT: SIM017

    def observe(self):
        self.snapshot = self.phase

    def advance(self):
        self.phase = self.phase + 1
