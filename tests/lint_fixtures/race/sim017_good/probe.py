# simlint-path: src/repro/fixture_race/s17g/probe.py
"""The same pair at distinct instants: well ordered (SIM017 good twin)."""


class Probe:
    def __init__(self, sim):
        self.sim = sim
        self.phase = 0
        self.snapshot = 0

    def arm(self):
        self.sim.schedule(1.0, self.observe)
        self.sim.schedule(2.0, self.advance)

    def observe(self):
        self.snapshot = self.phase

    def advance(self):
        self.phase = self.phase + 1
