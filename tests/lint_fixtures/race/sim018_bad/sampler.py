# simlint-path: src/repro/fixture_race/s18b/sampler.py
"""Periodic callbacks at unnamed priorities (SIM018 bad twin)."""


class Sampler:
    def __init__(self, sim):
        self.sim = sim
        self.count = 0

    def tick(self):
        self.count = self.count + 1
        self.sim.schedule(0.001, self.tick)  # EXPECT: SIM018

    def probe(self):
        self.sim.schedule(0.001, self.probe, priority=1000000)  # EXPECT: SIM018
