# simlint-path: src/repro/fixture_race/s16b/cell.py
"""Same-instant write-write hazard (SIM016 bad twin)."""


class Cell:
    def __init__(self, sim):
        self.sim = sim
        self.state = 0

    def kick(self):
        self.sim.schedule(0.5, self.set_low)
        self.sim.schedule(0.5, self.set_high)  # EXPECT: SIM016

    def set_low(self):
        self.state = 1

    def set_high(self):
        self.state = 2
