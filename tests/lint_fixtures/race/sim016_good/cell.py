# simlint-path: src/repro/fixture_race/s16g/cell.py
"""Same instant, disjoint attributes: no hazard (SIM016 good twin)."""


class Cell:
    def __init__(self, sim):
        self.sim = sim
        self.low = 0
        self.high = 0

    def kick(self):
        self.sim.schedule(0.5, self.set_low)
        self.sim.schedule(0.5, self.set_high)

    def set_low(self):
        self.low = 1

    def set_high(self):
        self.high = 2
