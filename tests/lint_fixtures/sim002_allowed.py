# simlint-path: src/repro/runner/registry.py
"""Known-good: the runner's cell-timing choke point is allowlisted."""
import time


def timed_run(run, config):
    started = time.perf_counter()
    value = run(config)
    return value, time.perf_counter() - started
