# simlint-path: src/repro/experiments/fixture_sim008.py
"""Known-bad: a public driver that bypasses the campaign runner."""
from repro.topology.bottleneck import build_single_bottleneck


def run_fixture(config):  # EXPECT: SIM008
    net = build_single_bottleneck(num_pairs=2)
    net.sim.run(until=config.duration)
    return net


def run_direct(config):  # EXPECT: SIM008
    sim = Simulator()
    sim.run(until=config.duration)
    return sim


class Simulator:
    def run(self, until):
        return until
