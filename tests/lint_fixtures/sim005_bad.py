# simlint-path: src/repro/traffic/fixture_sim005.py
"""Known-bad: set iteration feeding event scheduling and RNG draws."""


def start_all(sim, hosts):
    for host in set(hosts):  # EXPECT: SIM005
        sim.schedule(0.0, host.start)


def jittered(sim, rng, flows):
    for flow in {f for f in flows if f.active}:  # EXPECT: SIM005
        flow.start_at(rng.uniform(0.0, 1.0))


def sizes(rng, peers):
    return [rng.choice((1, 2, 3)) for peer in set(peers)]  # EXPECT: SIM005
