# simlint-path: src/repro/fixture_sem/s15/handlers.py
"""Dead event handlers (SIM015 bad twin): handler-shaped names no
identifier anywhere in the analyzed tree references."""


class Worker:
    def start(self) -> None:
        self.active = True

    def _finish_transmission(self) -> None:  # EXPECT: SIM015
        self.active = False


def _handle_orphan_timeout() -> None:  # EXPECT: SIM015
    pass
