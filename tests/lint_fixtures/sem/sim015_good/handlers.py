# simlint-path: src/repro/fixture_sem/s15/handlers.py
"""Live event handlers (SIM015 good twin): every handler-shaped def is
referenced — as a schedule() callback or through a dispatch table."""


class Worker:
    def __init__(self, sim: object) -> None:
        self.sim = sim
        self.active = False

    def start(self) -> None:
        self.sim.schedule(0.0, self._finish_transmission)

    def _finish_transmission(self) -> None:
        self.active = False


def _handle_orphan_timeout() -> None:
    pass


HANDLERS = {"orphan": _handle_orphan_timeout}
