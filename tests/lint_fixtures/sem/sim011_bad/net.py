# simlint-path: src/repro/fixture_sem/s11/net.py
"""Attribute-call sink: the receiver type is never resolved, but every
candidate named ``attach`` agrees on the parameter dimensions."""

from repro.sim.units import Seconds


class Net:
    def attach(self, delay: Seconds) -> None:
        """Annotated method sink."""


class Builder:
    def __init__(self, net: Net) -> None:
        self.net = net

    def run(self) -> None:
        self.net.attach(0.25)  # EXPECT: SIM011
