# simlint-path: src/repro/fixture_sem/s11/config.py
"""Constants for the SIM011 bad twin: a bare literal, imported elsewhere."""

LINK_RATE = 1e9
