# simlint-path: src/repro/fixture_sem/s11/topo.py
"""Annotated sinks and their misuses (SIM011 bad twin)."""

from repro.fixture_sem.s11.config import LINK_RATE
from repro.sim.units import (
    BitsPerSecond,
    Seconds,
    gigabits_per_second,
    megabits_per_second,
)


def make_link(rate_bps: BitsPerSecond, delay: Seconds) -> None:
    """Alias annotations make both parameters declared sinks."""


def wire(rate_bps: BitsPerSecond, hop: float) -> None:
    make_link(rate_bps, hop)


def build() -> None:
    delay = 0.00002
    make_link(megabits_per_second(300), megabits_per_second(1))  # EXPECT: SIM011
    make_link(LINK_RATE, delay)  # EXPECT: SIM011, SIM011
    wire(gigabits_per_second(1), 0.003)  # EXPECT: SIM011
