# simlint-path: src/repro/fixture_sem/s11/ext.py
"""Registry-declared sink (see sinks.toml) misused both ways."""

from repro.fixture_sem.s11.topo import make_link
from repro.sim.units import megabits_per_second


def install(rto: float) -> None:
    make_link(rto, 0)  # EXPECT: SIM011


def deploy() -> None:
    install(megabits_per_second(5))  # EXPECT: SIM011
