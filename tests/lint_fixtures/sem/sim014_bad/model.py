# simlint-path: src/repro/fixture_sem/s14/model.py
"""Instrumented model that fires one hook no observer defines."""


class Queue:
    def __init__(self, observer: object) -> None:
        self.observer = observer

    def push(self, packet: object) -> None:
        self.observer.on_enqueue(packet)
        self.observer.on_push_back(packet)  # EXPECT: SIM014
