# simlint-path: src/repro/fixture_sem/s14/model.py
"""Instrumented model that fires hooks no observer defines."""


class Queue:
    def __init__(self, observer: object) -> None:
        self.observer = observer
        self.items: list = []

    def push(self, packet: object) -> None:
        self.observer.on_enqueue(packet)
        self.observer.on_push_back(packet)  # EXPECT: SIM014

    def drain(self) -> int:
        # Aliased receivers are call sites too: hoisting the observer
        # into a local must not hide a protocol mismatch.
        obs = self.observer
        count = len(self.items)
        self.items.clear()
        obs.on_bulk_vanish(count)  # EXPECT: SIM014
        return count
