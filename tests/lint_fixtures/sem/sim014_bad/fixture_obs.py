# simlint-path: src/repro/validate/fixture_obs.py
"""Observer protocol for the SIM014 bad twin.

The virtual path places this file under repro.validate, making its
on_* methods the protocol side of the hook-conformance check.
"""


class FixtureObserver:
    def on_enqueue(self, packet: object) -> None:
        """Fired by the model module."""

    def on_vanish(self, packet: object) -> None:  # EXPECT: SIM014
        """Defined, but no instrumented site ever fires it."""
