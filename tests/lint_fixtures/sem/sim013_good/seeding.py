# simlint-path: src/repro/fixture_sem/s13/seeding.py
"""Deterministic seed provenance (SIM013 good twin): every seed
descends from a literal, a seed-named value, or a pure hash of one."""

import random
import zlib

from repro.sim.random import RandomStreams


def root_rng() -> random.Random:
    return random.Random(0)


def per_flow_rng(seed: int, flow_id: str) -> random.Random:
    return random.Random(seed ^ zlib.crc32(flow_id.encode()))


def streams(component_seed: int) -> RandomStreams:
    return RandomStreams(seed=component_seed)
