# simlint-path: src/repro/fixture_sem/s12/arithmetic.py
"""Dimensionally unsafe arithmetic (SIM012 bad twin)."""

from repro.sim.units import bytes_, megabits_per_second, microseconds


def slack() -> float:
    return microseconds(50) + bytes_(1500)  # EXPECT: SIM012


def headroom() -> float:
    gap = megabits_per_second(100) - microseconds(10)  # EXPECT: SIM012
    return gap


def nonsense_capacity() -> float:
    return megabits_per_second(10) * megabits_per_second(5)  # EXPECT: SIM012
