# simlint-path: src/repro/fixture_sem/s11/topo.py
"""The same sinks as the bad twin, used correctly everywhere.

The last call in build() passes a raw kwarg that simlint's SIM004
already owns — simsem must not double-report it. The zero literal is
dimensionless by convention and exempt.
"""

from repro.fixture_sem.s11.config import LINK_RATE
from repro.sim.units import (
    BitsPerSecond,
    Seconds,
    gigabits_per_second,
    megabits_per_second,
    microseconds,
)


def make_link(rate_bps: BitsPerSecond, delay: Seconds) -> None:
    """Alias annotations make both parameters declared sinks."""


def wire(rate_bps: BitsPerSecond, hop: float) -> None:
    make_link(rate_bps, hop)


def build() -> None:
    delay = microseconds(20)
    make_link(megabits_per_second(300), delay)
    make_link(LINK_RATE, microseconds(20))
    make_link(gigabits_per_second(1), 0)
    wire(gigabits_per_second(1), microseconds(5))
    make_link(gigabits_per_second(1), delay=0.002)
