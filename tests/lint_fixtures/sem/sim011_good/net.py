# simlint-path: src/repro/fixture_sem/s11/net.py
"""Attribute-call sink fed a value of the declared dimension."""

from repro.sim.units import Seconds, microseconds


class Net:
    def attach(self, delay: Seconds) -> None:
        """Annotated method sink."""


class Builder:
    def __init__(self, net: Net) -> None:
        self.net = net

    def run(self) -> None:
        self.net.attach(microseconds(250))
