# simlint-path: src/repro/fixture_sem/s11/ext.py
"""Registry-declared sink (see sinks.toml) used consistently."""

from repro.fixture_sem.s11.topo import make_link
from repro.sim.units import megabits_per_second, milliseconds


def install(rto: float) -> None:
    make_link(megabits_per_second(40), rto)


def deploy() -> None:
    install(milliseconds(200))
