# simlint-path: src/repro/fixture_sem/s11/config.py
"""Constants for the SIM011 good twin: unit-constructed at origin."""

from repro.sim.units import gigabits_per_second

LINK_RATE = gigabits_per_second(1)
