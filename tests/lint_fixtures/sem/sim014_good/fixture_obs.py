# simlint-path: src/repro/validate/fixture_obs.py
"""Observer protocol for the SIM014 good twin: every hook is fired."""


class FixtureObserver:
    def on_enqueue(self, packet: object) -> None:
        """Fired by Queue.push."""

    def on_drop(self, packet: object) -> None:
        """Fired by Queue.drop."""

    def on_batch_drain(self, count: int) -> None:
        """Fired only through Queue.drain's hoisted local alias."""
