# simlint-path: src/repro/fixture_sem/s14/model.py
"""Instrumented model whose hook calls all match defined hooks."""


class Queue:
    def __init__(self, observer: object) -> None:
        self.observer = observer
        self.items: list = []

    def push(self, packet: object) -> None:
        self.observer.on_enqueue(packet)

    def drop(self, packet: object) -> None:
        self.observer.on_drop(packet)

    def drain(self) -> int:
        # Batched-drain idiom: the receiver is hoisted out of the hot
        # loop, so the call site fires through a local alias.
        obs = self.observer
        count = len(self.items)
        self.items.clear()
        if obs is not None:
            obs.on_batch_drain(count)
        return count
