# simlint-path: src/repro/fixture_sem/s14/model.py
"""Instrumented model whose hook calls all match defined hooks."""


class Queue:
    def __init__(self, observer: object) -> None:
        self.observer = observer

    def push(self, packet: object) -> None:
        self.observer.on_enqueue(packet)

    def drop(self, packet: object) -> None:
        self.observer.on_drop(packet)
