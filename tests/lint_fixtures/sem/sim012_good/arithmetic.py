# simlint-path: src/repro/fixture_sem/s12/arithmetic.py
"""Dimensionally consistent arithmetic (SIM012 good twin)."""

from repro.sim.units import (
    Seconds,
    megabits_per_second,
    microseconds,
    milliseconds,
)


def slack() -> float:
    return microseconds(50) + milliseconds(1)


def scaled() -> float:
    return megabits_per_second(10) * 4


def budget() -> float:
    return milliseconds(5) - microseconds(50)


def per_packet(total: Seconds) -> float:
    return total / 2
