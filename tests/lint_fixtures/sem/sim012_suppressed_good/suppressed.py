# simlint-path: src/repro/fixture_sem/s12s/suppressed.py
"""An acknowledged unit mix, suppressed in place — the sem pass honours
the same ``# simlint: disable=...`` syntax as the syntactic rules."""

from repro.sim.units import bytes_, microseconds


def slack() -> float:
    return microseconds(50) + bytes_(1500)  # simlint: disable=SIM012
