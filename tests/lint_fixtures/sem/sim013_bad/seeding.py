# simlint-path: src/repro/fixture_sem/s13/seeding.py
"""Nondeterministic seed provenance (SIM013 bad twin)."""

import os
import random
import time

from repro.sim.random import RandomStreams


def per_flow_rng(flow_id: str) -> random.Random:
    return random.Random(hash(flow_id))  # EXPECT: SIM013


def per_process_rng() -> random.Random:
    return random.Random(os.getpid())  # EXPECT: SIM013


def wall_clock_streams() -> RandomStreams:
    return RandomStreams(seed=int(time.time()))  # EXPECT: SIM013
