# simlint-path: src/repro/topology/fixture_sim004_ok.py
"""Known-good twin: every unit-carrying argument names its unit."""
from repro.sim.units import gigabits_per_second, microseconds


def build(net, a, b, queue, access_rate_bps):
    net.connect(a, b, gigabits_per_second(1), microseconds(30),
                queue_factory=queue)
    net.add_link(a, b, rate=access_rate_bps)
    return make_profile(rtt=microseconds(225), delay=microseconds(5))


def make_profile(**kwargs):
    return kwargs
