# simlint-path: src/repro/runner/fixture_fixable.py
"""--fix corpus: every finding in this file carries a mechanically safe
fix, and the fixed file must lint completely clean."""
import random


def make_rng():
    return random.Random()  # EXPECT: SIM001


def read_optional(path):
    try:
        with open(path) as handle:
            return handle.read()
    except:  # EXPECT: SIM010
        return None
