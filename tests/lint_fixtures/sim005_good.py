# simlint-path: src/repro/traffic/fixture_sim005_ok.py
"""Known-good twin: iteration order is made deterministic first."""


def start_all(sim, hosts):
    for host in sorted(set(hosts), key=lambda h: h.name):
        sim.schedule(0.0, host.start)


def jittered(sim, rng, flows):
    for flow in [f for f in flows if f.active]:
        flow.start_at(rng.uniform(0.0, 1.0))


def collect(hosts):
    # Iterating a set is fine when nothing order-sensitive happens.
    return {host.name for host in set(hosts)}
