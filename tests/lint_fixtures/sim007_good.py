# simlint-path: src/repro/metrics/fixture_sim007_ok.py
"""Known-good twin: None defaults, immutable defaults."""


def record(sample, sink=None):
    sink = [] if sink is None else sink
    sink.append(sample)
    return sink


def tally(counts=None):
    return {} if counts is None else counts


def gather(*, seen=()):
    return set(seen)
