# simlint-path: src/repro/experiments/fixture_sim008_ok.py
"""Known-good twin: drivers route through repro.runner; cell functions
and helpers may build simulations directly."""


def run_fixture(config, use_cache=False, cache=None):
    from repro.runner import RunSpec, run_spec

    return run_spec(RunSpec("fixture", config),
                    cache=cache, use_cache=use_cache).value


def _simulate(config):
    # The registered cell function is the one place that builds directly.
    from repro.topology.bottleneck import build_single_bottleneck

    net = build_single_bottleneck(num_pairs=2)
    net.sim.run(until=config.duration)
    return net
