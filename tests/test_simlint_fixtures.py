"""The simlint fixture corpus: every rule proves both halves.

Each ``simNNN_bad.py`` fixture must produce *exactly* the findings its
``# EXPECT:`` comments declare (code and line), and each
``simNNN_good.py`` twin must lint clean.  Fixtures carry a
``# simlint-path:`` header naming the virtual path they are linted as,
which exercises the per-rule path scoping (allowlists, driver-only
rules).  See tests/lint_fixtures/README.md.
"""

from __future__ import annotations

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.lint import Analyzer, all_rules, rules_by_code

pytestmark = pytest.mark.simlint

FIXTURES = Path(__file__).parent / "lint_fixtures"

_PATH_RE = re.compile(r"#\s*simlint-path:\s*(\S+)")
_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*([A-Z0-9 ,]+)")

#: Distinctive phrases (any-of) each rule's message must contain, so the
#: corpus pins messages (not just codes) without being brittle about
#: per-variant wording.
MESSAGE_PHRASES = {
    "SIM001": ("RNG", "seed"),
    "SIM002": ("host clock", "wall clock"),
    "SIM003": ("simulation-time float",),
    "SIM004": ("units",),
    "SIM005": ("set",),
    "SIM006": ("past", "delays are relative to now"),
    "SIM007": ("mutable default",),
    "SIM008": ("repro.runner",),
    "SIM009": ("pickled",),
    "SIM010": ("except", "exception"),
}


def fixture_files() -> list:
    return sorted(FIXTURES.glob("*.py"))


def virtual_path(text: str, fixture: Path) -> str:
    match = _PATH_RE.search(text.splitlines()[0])
    assert match, f"{fixture.name} is missing its '# simlint-path:' header"
    return match.group(1)


def expected_findings(text: str) -> Counter:
    """Multiset of (code, line) declared by # EXPECT: comments."""
    expected: Counter = Counter()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for code in match.group(1).replace(",", " ").split():
                expected[(code, lineno)] += 1
    return expected


@pytest.mark.parametrize(
    "fixture", fixture_files(), ids=lambda p: p.stem
)
def test_fixture_matches_expectations(fixture):
    """Bad fixtures trip exactly their declared (code, line) findings;
    good fixtures (no EXPECT comments) stay silent."""
    text = fixture.read_text(encoding="utf-8")
    findings = Analyzer().lint_source(text, path=virtual_path(text, fixture))
    actual = Counter((f.code, f.line) for f in findings)
    assert actual == expected_findings(text), (
        f"{fixture.name}: findings diverge from EXPECT comments:\n"
        + "\n".join(f.format() for f in findings)
    )


@pytest.mark.parametrize(
    "fixture", [p for p in fixture_files() if p.stem.endswith("_bad")],
    ids=lambda p: p.stem,
)
def test_bad_fixture_messages(fixture):
    """Every finding carries its rule's code, severity, and a message
    containing the rule's distinctive phrase."""
    text = fixture.read_text(encoding="utf-8")
    findings = Analyzer().lint_source(text, path=virtual_path(text, fixture))
    assert findings, f"{fixture.name} is a bad fixture but linted clean"
    by_code = rules_by_code()
    for finding in findings:
        rule = by_code[finding.code]
        assert finding.severity is rule.severity
        assert any(
            phrase in finding.message
            for phrase in MESSAGE_PHRASES[finding.code]
        ), (
            f"{finding.code} message lost its anchor phrase: "
            f"{finding.message!r}"
        )
        assert finding.line >= 1 and finding.col >= 0


def test_every_rule_has_bad_and_good_fixture():
    """The corpus covers all >= 10 rules in both directions."""
    stems = {p.stem for p in fixture_files()}
    codes = [rule.code for rule in all_rules()]
    assert len(codes) >= 10
    for code in codes:
        number = code[3:].lstrip("0")
        name = f"sim{int(number):03d}"
        assert f"{name}_bad" in stems, f"no known-bad fixture for {code}"
        assert f"{name}_good" in stems, f"no known-good fixture for {code}"


def test_good_twin_of_allowlisted_path():
    """SIM002's benchmark/CLI-timing allowlist: the same wall-clock code
    is a finding in model code but silent at the runner's timing path."""
    text = (FIXTURES / "sim002_allowed.py").read_text(encoding="utf-8")
    assert "perf_counter" in text
    allowed = Analyzer().lint_source(text, path="src/repro/runner/registry.py")
    assert allowed == []
    moved = Analyzer().lint_source(text, path="src/repro/net/link.py")
    assert {f.code for f in moved} == {"SIM002"}


def test_suppressions_cover_all_hazards():
    """suppressed.py packs SIM001/2/3/5/7 hazards, all waived inline."""
    text = (FIXTURES / "suppressed.py").read_text(encoding="utf-8")
    findings = Analyzer().lint_source(
        text, path="src/repro/traffic/fixture_suppressed.py"
    )
    assert findings == []
    # Strip the suppression comments and the same file must light up.
    stripped = re.sub(r"#\s*simlint:\s*disable=[^\n#]*", "", text)
    refound = Analyzer().lint_source(
        stripped, path="src/repro/traffic/fixture_suppressed.py"
    )
    assert {f.code for f in refound} >= {
        "SIM001", "SIM002", "SIM003", "SIM005", "SIM007",
    }
