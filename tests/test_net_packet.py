"""Tests for packet construction."""

from repro.net.packet import (
    ACK,
    ACK_PACKET_BYTES,
    DATA,
    DATA_PACKET_BYTES,
    MSS_BYTES,
    Packet,
    make_ack_packet,
    make_data_packet,
)


class TestConstants:
    def test_mss_fits_in_wire_packet(self):
        assert MSS_BYTES < DATA_PACKET_BYTES

    def test_ack_smaller_than_data(self):
        assert ACK_PACKET_BYTES < DATA_PACKET_BYTES


class TestDataPacket:
    def test_fields(self):
        packet = make_data_packet(7, 1, 42, 1.5, (), ect=True)
        assert packet.kind == DATA
        assert packet.flow == 7
        assert packet.subflow == 1
        assert packet.seq == 42
        assert packet.ts == 1.5
        assert packet.ect is True
        assert packet.ce is False
        assert packet.size == DATA_PACKET_BYTES
        assert packet.hop == 0

    def test_non_ecn_sender_marks_not_ect(self):
        packet = make_data_packet(0, 0, 0, 0.0, (), ect=False)
        assert packet.ect is False

    def test_custom_size(self):
        packet = make_data_packet(0, 0, 0, 0.0, (), ect=False, size=600)
        assert packet.size == 600


class TestAckPacket:
    def test_fields(self):
        ack = make_ack_packet(3, 0, 99, 2.0, ts_echo=1.9, path=(), ece_count=2)
        assert ack.kind == ACK
        assert ack.ack == 99
        assert ack.ts_echo == 1.9
        assert ack.ece_count == 2
        assert ack.size == ACK_PACKET_BYTES

    def test_acks_are_never_ect(self):
        ack = make_ack_packet(0, 0, 0, 0.0, 0.0, ())
        assert ack.ect is False

    def test_default_ece_zero(self):
        ack = make_ack_packet(0, 0, 0, 0.0, 0.0, ())
        assert ack.ece_count == 0


class TestSlots:
    def test_packet_has_no_dict(self):
        packet = Packet(DATA, 1500, 0, 0)
        assert not hasattr(packet, "__dict__")

    def test_repr_mentions_kind(self):
        packet = Packet(DATA, 1500, 1, 2, seq=5)
        assert "DATA" in repr(packet)
        packet.ce = True
        assert "+CE" in repr(packet)
