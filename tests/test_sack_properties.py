"""Property tests for SACK block computation and scoreboard behaviour."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.network import Network
from repro.net.packet import DATA, Packet
from repro.transport.receiver import EchoMode, Receiver


def make_receiver(sack=True):
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    net.connect(a, b, 1e9, 1e-6)
    acks = []
    net.host("A").register(0, 0, acks.append)
    receiver = Receiver(
        net.sim, b, 0, 0, net.reverse_path(net.paths("A", "B")[0]),
        echo_mode=EchoMode.XMP, sack_enabled=sack,
    )
    return net, receiver, acks


def reference_blocks(out_of_order):
    """Independent (naive) computation of contiguous ranges."""
    blocks = []
    for seq in sorted(out_of_order):
        if blocks and blocks[-1][1] == seq:
            blocks[-1][1] = seq + 1
        else:
            blocks.append([seq, seq + 1])
    return [tuple(block) for block in blocks]


class TestSackBlockProperties:
    @given(
        received=st.sets(st.integers(1, 60), min_size=0, max_size=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_blocks_match_reference(self, received):
        net, receiver, acks = make_receiver()
        # Deliver segment 0 first so everything in `received` is buffered
        # out of order (unless it extends 0 contiguously).
        packet = Packet(DATA, 1500, 0, 0, seq=0)
        packet.hop = 1
        receiver.receive(packet)
        for seq in sorted(received, key=lambda s: (s % 7, s)):  # jumbled
            p = Packet(DATA, 1500, 0, 0, seq=seq)
            p.hop = 1
            receiver.receive(p)
        blocks = receiver._sack_blocks()
        expected = reference_blocks(receiver._out_of_order)
        # The receiver reports the highest <=3 blocks, highest first.
        assert list(blocks) == list(reversed(expected[-3:]))
        # Blocks never include delivered data.
        for start, end in blocks:
            assert start >= receiver.rcv_nxt
            assert end > start

    @given(
        order_seed=st.integers(0, 10_000),
        n=st.integers(2, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_blocks_empty_once_stream_complete(self, order_seed, n):
        net, receiver, acks = make_receiver()
        order = list(range(n))
        random.Random(order_seed).shuffle(order)
        for seq in order:
            p = Packet(DATA, 1500, 0, 0, seq=seq)
            p.hop = 1
            receiver.receive(p)
        assert receiver._sack_blocks() == ()
        assert receiver.rcv_nxt == n

    def test_disabled_receiver_sends_no_blocks(self):
        net, receiver, acks = make_receiver(sack=False)
        for seq in (0, 5, 9):
            p = Packet(DATA, 1500, 0, 0, seq=seq)
            p.hop = 1
            receiver.receive(p)
        net.sim.run()
        assert all(a.sack == () for a in acks)
