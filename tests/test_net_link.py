"""Tests for link serialization, propagation and failure behaviour."""

import pytest

from repro.net.link import Link
from repro.net.node import Host, Node
from repro.net.packet import Packet, DATA
from repro.net.queue import DropTailQueue


class Sink(Node):
    """Records packet arrivals with timestamps."""

    __slots__ = ("arrivals",)

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet))


def make_link(sim, rate=1e9, delay=10e-6, capacity=100):
    src = Sink(sim, "src")
    dst = Sink(sim, "dst")
    return Link(sim, "L", src, dst, rate, delay, DropTailQueue(capacity)), dst


def data(size=1500):
    return Packet(DATA, size, 0, 0)


class TestTiming:
    def test_single_packet_arrival_time(self, sim):
        # serialization (12 us at 1 Gbps for 1500 B) + propagation (10 us).
        link, dst = make_link(sim)
        link.enqueue(data())
        sim.run()
        assert len(dst.arrivals) == 1
        assert dst.arrivals[0][0] == pytest.approx(22e-6)

    def test_back_to_back_packets_serialize(self, sim):
        link, dst = make_link(sim)
        link.enqueue(data())
        link.enqueue(data())
        sim.run()
        t1, t2 = dst.arrivals[0][0], dst.arrivals[1][0]
        assert t2 - t1 == pytest.approx(12e-6)  # one serialization time apart

    def test_rate_determines_serialization(self, sim):
        link, dst = make_link(sim, rate=100e6)  # 10x slower
        link.enqueue(data())
        sim.run()
        assert dst.arrivals[0][0] == pytest.approx(120e-6 + 10e-6)

    def test_small_packet_serializes_faster(self, sim):
        link, dst = make_link(sim)
        link.enqueue(data(size=40))
        sim.run()
        assert dst.arrivals[0][0] == pytest.approx(40 * 8 / 1e9 + 10e-6)

    def test_fifo_delivery_order(self, sim):
        link, dst = make_link(sim)
        packets = [data() for _ in range(5)]
        for p in packets:
            link.enqueue(p)
        sim.run()
        assert [p for _, p in dst.arrivals] == packets


class TestQueueInteraction:
    def test_queue_holds_only_waiting_packets(self, sim):
        link, _ = make_link(sim)
        link.enqueue(data())  # goes straight to the transmitter
        assert link.occupancy == 0
        link.enqueue(data())
        assert link.occupancy == 1

    def test_overflow_drops(self, sim):
        link, dst = make_link(sim, capacity=2)
        for _ in range(5):
            link.enqueue(data())
        sim.run()
        # 1 in flight + 2 queued survive.
        assert len(dst.arrivals) == 3
        assert link.queue.stats.dropped == 2

    def test_counters(self, sim):
        link, _ = make_link(sim)
        for _ in range(3):
            link.enqueue(data())
        sim.run()
        assert link.packets_transmitted == 3
        assert link.bytes_transmitted == 4500
        assert link.bytes_offered == 4500


class TestUtilization:
    def test_full_utilization(self, sim):
        link, _ = make_link(sim)
        # 1000 packets back to back = 12 ms of airtime.
        for _ in range(100):
            link.enqueue(data())

        def refill():
            if link.occupancy < 50:
                for _ in range(50):
                    link.enqueue(data())
            if sim.now < 0.012:
                sim.schedule(1e-4, refill)

        sim.schedule(1e-4, refill)
        sim.run(until=0.012)
        assert link.utilization(0.012) > 0.95

    def test_idle_utilization_zero(self, sim):
        link, _ = make_link(sim)
        assert link.utilization(1.0) == 0.0

    def test_zero_duration(self, sim):
        link, _ = make_link(sim)
        assert link.utilization(0.0) == 0.0


class TestFailure:
    def test_down_link_discards(self, sim):
        link, dst = make_link(sim)
        link.set_down()
        link.enqueue(data())
        sim.run()
        assert dst.arrivals == []
        assert link.queue.stats.dropped == 1

    def test_down_flushes_queue(self, sim):
        link, dst = make_link(sim)
        for _ in range(5):
            link.enqueue(data())
        link.set_down()
        sim.run()
        assert dst.arrivals == []

    def test_in_flight_packet_lost_when_down(self, sim):
        link, dst = make_link(sim)
        link.enqueue(data())
        sim.schedule(1e-6, link.set_down)  # mid-serialization
        sim.run()
        assert dst.arrivals == []

    def test_recovers_after_set_up(self, sim):
        link, dst = make_link(sim)
        link.set_down()
        link.enqueue(data())
        link.set_up()
        link.enqueue(data())
        sim.run()
        assert len(dst.arrivals) == 1

    def test_validation(self, sim):
        src, dst = Sink(sim, "a"), Sink(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, "L", src, dst, 0.0, 1e-6)
        with pytest.raises(ValueError):
            Link(sim, "L", src, dst, 1e9, -1.0)
