"""Fluid-vs-packet cross-validation (the tentpole's acceptance gate).

These run both backends on the paper's golden scenarios and assert
agreement within the documented tolerances of
:mod:`repro.fluid.crosscheck`.  Deliberately few and chunky: each test
is a real packet simulation plus a real ODE integration."""

import pytest

from repro.fluid.crosscheck import (
    CrossCheck,
    crosscheck_bottleneck,
    crosscheck_fattree,
    run_crosschecks,
)
from repro.sim.units import seconds


class TestCrossCheckArithmetic:
    def test_relative_error(self):
        check = CrossCheck("x", fluid=110.0, packet=100.0,
                           tolerance=0.2, mode="relative")
        assert check.error == pytest.approx(0.1)
        assert check.ok

    def test_absolute_error(self):
        check = CrossCheck("x", fluid=12.0, packet=8.0,
                           tolerance=3.0, mode="absolute")
        assert check.error == pytest.approx(4.0)
        assert not check.ok

    def test_format_names_verdict(self):
        check = CrossCheck("x", 1.0, 1.0, 0.1, "relative")
        assert "ok" in check.format()

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            run_crosschecks("torus")


class TestBottleneckCrossCheck:
    @pytest.mark.parametrize("scheme", ["xmp", "dctcp"])
    def test_golden_dumbbell_agrees(self, scheme):
        """Fig. 1 dumbbell: windows, queue and goodput agree between the
        packet engine and the fluid ODE within documented tolerance."""
        checks = crosscheck_bottleneck(scheme=scheme, duration=seconds(0.15))
        assert len(checks) == 3
        for check in checks:
            assert check.ok, check.format()

    def test_catches_wrong_equilibrium(self):
        """The tolerance is tight enough to catch a beta-factor error:
        doubling fluid beta moves the window equilibrium outside it."""
        good = crosscheck_bottleneck(scheme="xmp", duration=seconds(0.15))
        bad = crosscheck_bottleneck(
            scheme="xmp", duration=seconds(0.15), beta=16.0
        )
        window_good = next(c for c in good if c.name.endswith("window"))
        window_bad = next(c for c in bad if c.name.endswith("window"))
        assert window_good.ok
        assert window_bad.error > window_good.error


class TestFatTreeCrossCheck:
    def test_table1_permutation_agrees(self):
        """Table 1's k=4 XMP-2 permutation cell: mean per-flow goodput
        from the fluid permutation matches the packet engine's.  Runs
        the full 0.3 s horizon: shorter runs leave slow start in the
        packet side's tail window and the comparison is not yet
        steady-state vs steady-state."""
        checks = crosscheck_fattree()
        for check in checks:
            assert check.ok, check.format()
