"""Property-based tests for the event heap and Timer.

Random interleavings of schedule/cancel (with heap compaction forced via
a tiny ``COMPACT_MIN_CANCELLED``) and of Timer start/restart/cancel are
checked against straightforward reference models.  Uses ``hypothesis``
when available and falls back to a seeded fuzzer otherwise, so the suite
exercises the same properties on machines without the dependency.

All times are multiples of 1/1024 s: sums and comparisons of such floats
are exact, so the models can use ``==`` on times without tolerance.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import Timer

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on minimal images
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.invariants

TICK = 1.0 / 1024.0


# ----------------------------------------------------------------------
# Model 1: schedule/cancel interleavings + forced heap compaction
# ----------------------------------------------------------------------


def run_schedule_cancel(ops, compact_min=4):
    """Apply (kind, a, b) ops to a simulator; return (fired, expected).

    * ``("schedule", delay_ticks, priority)`` schedules a recording
      callback;
    * ``("cancel", index, _)`` cancels the index-th scheduled event
      (modulo the number scheduled so far; no-op when none).

    ``compact_min`` shrinks the compaction threshold so these small
    heaps actually compact (the default 1024 would never trigger).
    """
    sim = Simulator()
    sim.COMPACT_MIN_CANCELLED = compact_min  # instance attr shadows class
    fired = []
    scheduled = []
    for kind, a, b in ops:
        if kind == "schedule":
            delay, priority = a * TICK, b
            label = len(scheduled)
            event = sim.schedule(
                delay, fired.append, (delay, priority, label), priority=priority
            )
            scheduled.append((delay, priority, label, event))
        else:
            if scheduled:
                scheduled[a % len(scheduled)][3].cancel()
    sim.run()
    expected = sorted(
        (delay, priority, label)
        for delay, priority, label, event in scheduled
        if not event.cancelled
    )
    return fired, expected


def check_schedule_cancel(ops):
    fired, expected = run_schedule_cancel(ops)
    assert fired == expected


def test_compaction_drops_only_cancelled():
    sim = Simulator()
    events = [sim.schedule(i * TICK, lambda: None) for i in range(100)]
    for event in events[::2]:
        event.cancel()
    assert sim.pending_events == 100
    sim._compact()
    assert sim.pending_events == 50
    assert sim.cancelled_pending == 0
    assert sim.run() == pytest.approx(99 * TICK)
    assert sim.events_processed == 50


def test_compaction_triggers_automatically():
    sim = Simulator()
    sim.COMPACT_MIN_CANCELLED = 8
    events = [sim.schedule(i * TICK, lambda: None) for i in range(64)]
    for event in events[:33]:
        event.cancel()
    # 33 cancelled: > 8 and 66 > 64 pending -> the last cancel compacted.
    assert sim.pending_events == 31
    assert sim.cancelled_pending == 0


def test_cancelled_event_never_fires_and_cancel_is_idempotent():
    sim = Simulator()
    fired = []
    event = sim.schedule(TICK, fired.append, 1)
    event.cancel()
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_processed == 0


# ----------------------------------------------------------------------
# Model 2: Timer start/restart/cancel interleavings
# ----------------------------------------------------------------------


def run_timer_ops(ops):
    """Apply timed Timer ops; return (fires, expected_fires).

    ``ops`` is a list of (at_ticks, action, delay_ticks) with strictly
    increasing ``at_ticks``; actions are "start", "restart", "cancel".
    The reference model tracks only the deadline contract: a timer set
    at t to delay d fires at t+d unless re-armed or cancelled first.
    """
    sim = Simulator()
    fires = []
    timer = Timer(sim, lambda: fires.append(sim.now))
    actions = {
        "start": timer.start,
        "restart": timer.restart,
        "cancel": lambda _delay: timer.cancel(),
    }
    for at, action, delay in ops:
        sim.schedule_at(
            at * TICK, actions[action], delay * TICK, priority=-1
        )
    sim.run()

    expected = []
    deadline = None
    for at, action, delay in ops:
        time = at * TICK
        while deadline is not None and deadline <= time:
            # Deadline passed (or fires at this exact instant: the timer
            # event has priority 0, the op priority -1 runs first only at
            # strictly equal times — model fires first when strictly less).
            if deadline < time:
                expected.append(deadline)
                deadline = None
            else:
                break
        if action in ("start", "restart"):
            deadline = time + delay * TICK
        else:
            deadline = None
    if deadline is not None:
        expected.append(deadline)
    return fires, expected


def check_timer(ops):
    fires, expected = run_timer_ops(ops)
    assert fires == expected


def test_timer_restart_later_keeps_heap_entry():
    sim = Simulator()
    fires = []
    timer = Timer(sim, lambda: fires.append(sim.now))
    timer.start(10 * TICK)
    first_pending = sim.pending_events
    timer.restart(20 * TICK)  # moves the deadline later: no new event
    assert sim.pending_events == first_pending
    sim.run()
    assert fires == [20 * TICK]


def test_timer_restart_earlier_cancels_and_reschedules():
    sim = Simulator()
    fires = []
    timer = Timer(sim, lambda: fires.append(sim.now))
    timer.start(20 * TICK)
    timer.restart(5 * TICK)
    sim.run()
    assert fires == [5 * TICK]


def test_timer_cancel_before_expiry():
    sim = Simulator()
    fires = []
    timer = Timer(sim, lambda: fires.append(sim.now))
    timer.start(10 * TICK)
    sim.schedule(5 * TICK, timer.cancel)
    sim.run()
    assert fires == []
    assert not timer.armed


# ----------------------------------------------------------------------
# Drivers: hypothesis when present, seeded fuzz otherwise
# ----------------------------------------------------------------------

if HAVE_HYPOTHESIS:
    sched_ops = st.lists(
        st.one_of(
            st.tuples(
                st.just("schedule"),
                st.integers(min_value=0, max_value=64),
                st.integers(min_value=-2, max_value=2),
            ),
            st.tuples(
                st.just("cancel"),
                st.integers(min_value=0, max_value=127),
                st.just(0),
            ),
        ),
        max_size=80,
    )

    @given(sched_ops)
    @settings(max_examples=150, deadline=None)
    def test_schedule_cancel_property(ops):
        check_schedule_cancel(ops)

    @st.composite
    def timer_ops(draw):
        count = draw(st.integers(min_value=0, max_value=12))
        times = draw(
            st.lists(
                st.integers(min_value=0, max_value=400),
                min_size=count, max_size=count, unique=True,
            )
        )
        ops = []
        for at in sorted(times):
            action = draw(st.sampled_from(["start", "restart", "cancel"]))
            delay = draw(st.integers(min_value=1, max_value=100))
            ops.append((at, action, delay))
        return ops

    @given(timer_ops())
    @settings(max_examples=150, deadline=None)
    def test_timer_property(ops):
        check_timer(ops)

else:  # pragma: no cover - minimal images only

    def test_schedule_cancel_property():
        rng = random.Random(0xC0FFEE)
        for _ in range(300):
            ops = []
            for _ in range(rng.randrange(0, 80)):
                if rng.random() < 0.7:
                    ops.append(
                        ("schedule", rng.randrange(0, 65), rng.randrange(-2, 3))
                    )
                else:
                    ops.append(("cancel", rng.randrange(0, 128), 0))
            check_schedule_cancel(ops)

    def test_timer_property():
        rng = random.Random(0xBEEF)
        for _ in range(300):
            times = rng.sample(range(401), rng.randrange(0, 13))
            ops = [
                (
                    at,
                    rng.choice(["start", "restart", "cancel"]),
                    rng.randrange(1, 101),
                )
                for at in sorted(times)
            ]
            check_timer(ops)
