"""CLI-mode tests for ``python -m repro.lint``: flag interactions.

Covers the gating matrix (``--select`` × ``--sem`` × ``--race`` ×
``--perf``), exit codes, ``--list-rules`` in both formats, SARIF
output, ``--changed-only`` git scoping, the baseline ratchet over race
findings, and corrupt-cache-is-miss for the extended (v3) summary
schema.
"""

import json
import subprocess

import pytest

from repro.lint.cli import main as lint_main
from repro.lint.sem import ProjectAnalyzer
from repro.lint.sem.cache import SummaryCache

pytestmark = pytest.mark.simrace

RACY_SOURCE = '''\
class Cell:
    def __init__(self, sim):
        self.sim = sim
        self.state = 0

    def kick(self):
        self.sim.schedule(0.5, self.set_low)
        self.sim.schedule(0.5, self.set_high)

    def set_low(self):
        self.state = 1

    def set_high(self):
        self.state = 2
'''

CLEAN_SOURCE = "def helper(x):\n    return x + 1\n"

WALLCLOCK_SOURCE = "import time\n\n\ndef stamp():\n    return time.time()\n"


@pytest.fixture
def racy_project(tmp_path):
    (tmp_path / "cell.py").write_text(RACY_SOURCE, encoding="utf-8")
    return tmp_path


# ----------------------------------------------------------------------
# Gating matrix and exit codes
# ----------------------------------------------------------------------


def test_race_codes_gated_behind_race_flag(racy_project):
    target = str(racy_project)
    assert lint_main([target, "-q"]) == 0
    assert lint_main(["--sem", target, "-q"]) == 0
    assert lint_main(["--race", target, "-q"]) == 1
    assert lint_main(["--sem", "--race", target, "-q"]) == 1


def test_select_race_code_requires_race_flag(racy_project):
    target = str(racy_project)
    with pytest.raises(SystemExit) as excinfo:
        lint_main(["--select", "SIM016", target, "-q"])
    assert excinfo.value.code == 2
    assert lint_main(["--select", "SIM016", "--race", target, "-q"]) == 1
    # Selecting one race code mutes the others but keeps the pass on.
    assert lint_main(["--select", "SIM018", "--race", target, "-q"]) == 0


def test_select_interacts_across_passes(tmp_path):
    (tmp_path / "cell.py").write_text(RACY_SOURCE, encoding="utf-8")
    (tmp_path / "stamp.py").write_text(WALLCLOCK_SOURCE, encoding="utf-8")
    target = str(tmp_path)
    # Syntactic finding only, race pass muted by --select:
    assert lint_main(["--select", "SIM002", "--race", target, "-q"]) == 1
    # --ignore drops the race finding, syntactic SIM002 remains:
    assert lint_main(["--race", "--ignore", "SIM016", target, "-q"]) == 1
    assert lint_main(
        ["--race", "--ignore", "SIM002,SIM016", target, "-q"]
    ) == 0


HOT_ALLOC_SOURCE = '''\
class Pump:
    def __init__(self):
        self.log = []

    def on_event(self, seq):
        self.log.append([seq, seq + 1])

    def prime(self, sim):
        sim.schedule(0.0, self.on_event)
'''


def test_perf_codes_gated_behind_perf_flag(tmp_path, monkeypatch):
    """A hot-path allocation only reports under --perf — and only when
    the file lands on a registered hot path, which needs the virtual
    module to match hotpaths.toml; here we just pin the gating."""
    (tmp_path / "pump.py").write_text(HOT_ALLOC_SOURCE, encoding="utf-8")
    target = str(tmp_path)
    assert lint_main([target, "-q"]) == 0
    assert lint_main(["--sem", target, "-q"]) == 0
    assert lint_main(["--perf", target, "-q"]) == 0  # not registered hot
    with pytest.raises(SystemExit) as excinfo:
        lint_main(["--select", "SIM019", target, "-q"])
    assert excinfo.value.code == 2
    assert lint_main(["--select", "SIM019", "--perf", target, "-q"]) == 0


def test_from_telemetry_requires_perf_flag(tmp_path):
    telemetry = tmp_path / "runs.jsonl"
    telemetry.write_text("", encoding="utf-8")
    (tmp_path / "ok.py").write_text(CLEAN_SOURCE, encoding="utf-8")
    with pytest.raises(SystemExit) as excinfo:
        lint_main(
            ["--from-telemetry", str(telemetry), str(tmp_path), "-q"]
        )
    assert excinfo.value.code == 2
    assert lint_main(
        ["--perf", "--from-telemetry", str(telemetry), str(tmp_path), "-q"]
    ) == 0


# ----------------------------------------------------------------------
# --list-rules
# ----------------------------------------------------------------------


def test_list_rules_text_spans_the_ladder(capsys):
    from repro.lint.registry import catalog

    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for entry in catalog():
        assert entry.code in out
        assert entry.name in out
    # Each whole-program rule advertises the flag that enables it.
    assert "(--sem)" in out
    assert "(--race)" in out
    assert "(--perf)" in out
    assert "[--fix]" in out


def test_list_rules_json_is_machine_readable(capsys):
    from repro.lint.registry import catalog

    assert lint_main(["--list-rules", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    rules = payload["rules"]
    assert [r["code"] for r in rules] == [e.code for e in catalog()]
    by_code = {r["code"]: r for r in rules}
    assert by_code["SIM001"]["kind"] == "syntactic"
    assert by_code["SIM011"]["kind"] == "semantic"
    assert by_code["SIM016"]["kind"] == "race"
    assert by_code["SIM019"]["kind"] == "perf"
    assert by_code["SIM019"]["rung"] == "simperf"
    for rule in rules:
        assert set(rule) == {
            "code", "name", "rung", "kind", "severity", "fixable",
            "rationale",
        }
        assert rule["severity"] in ("error", "warning")
        assert rule["rationale"].strip()


def test_race_findings_in_json_payload(racy_project, capsys):
    assert lint_main(
        ["--race", "--format", "json", str(racy_project)]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    codes = [f["code"] for f in payload["findings"]]
    assert codes == ["SIM016"]


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------


def test_sarif_output_is_valid_and_complete(racy_project, capsys):
    assert lint_main(
        ["--race", "--format", "sarif", str(racy_project)]
    ) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    # The driver catalog spans every pass, SIM001 through SIM018.
    for code in ("SIM001", "SIM011", "SIM016", "SIM017", "SIM018"):
        assert code in rule_ids
    results = run["results"]
    assert [r["ruleId"] for r in results] == ["SIM016"]
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1
    assert region["startColumn"] >= 1  # SARIF columns are 1-based
    assert results[0]["level"] == "error"


def test_sarif_empty_run_still_valid(tmp_path, capsys):
    (tmp_path / "ok.py").write_text(CLEAN_SOURCE, encoding="utf-8")
    assert lint_main(["--format", "sarif", str(tmp_path)]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["results"] == []


# ----------------------------------------------------------------------
# --changed-only
# ----------------------------------------------------------------------


def _git(cwd, *argv):
    subprocess.run(
        ["git", "-c", "user.email=t@example.invalid", "-c", "user.name=t",
         *argv],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


def test_changed_only_narrows_per_file_rules(tmp_path, monkeypatch):
    repo = tmp_path / "repo"
    repo.mkdir()
    _git(repo, "init", "-q")
    (repo / "old.py").write_text(WALLCLOCK_SOURCE, encoding="utf-8")
    (repo / "cell.py").write_text(RACY_SOURCE, encoding="utf-8")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-q", "-m", "seed")
    (repo / "new.py").write_text(WALLCLOCK_SOURCE, encoding="utf-8")
    monkeypatch.chdir(repo)

    # Full run sees both wall-clock findings; changed-only sees only
    # the uncommitted file's.
    assert lint_main(["--select", "SIM002", ".", "-q"]) == 1
    assert lint_main(
        ["--select", "SIM002", "--changed-only", ".", "-q"]
    ) == 1
    # With old.py also clean at HEAD there is nothing changed to flag.
    _git(repo, "add", "-A")
    _git(repo, "commit", "-q", "-m", "second")
    assert lint_main(
        ["--select", "SIM002", "--changed-only", ".", "-q"]
    ) == 0
    # Whole-tree run still reports: --changed-only narrowed, not fixed.
    assert lint_main(["--select", "SIM002", ".", "-q"]) == 1


def test_changed_only_keeps_race_pass_whole_tree(tmp_path, monkeypatch):
    """SIM016-SIM018 stay whole-tree under --changed-only: cross-module
    properties are only meaningful on whole trees."""
    repo = tmp_path / "repo"
    repo.mkdir()
    _git(repo, "init", "-q")
    (repo / "cell.py").write_text(RACY_SOURCE, encoding="utf-8")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(repo)
    # cell.py is unchanged vs HEAD, yet the race finding still reports.
    assert lint_main(
        ["--race", "--changed-only", "--no-sem-cache", ".", "-q"]
    ) == 1


# ----------------------------------------------------------------------
# Baseline ratchet over race findings
# ----------------------------------------------------------------------


def test_baseline_round_trip_with_race(racy_project, tmp_path):
    target = str(racy_project)
    baseline = str(tmp_path / "baseline.json")
    assert lint_main(
        ["--race", "--write-baseline", baseline, target, "-q"]
    ) == 0
    # Ratcheted: the legacy finding is suppressed.
    assert lint_main(["--race", "--baseline", baseline, target, "-q"]) == 0
    # A new race elsewhere still fails.
    (racy_project / "sampler.py").write_text(
        "class S:\n"
        "    def tick(self):\n"
        "        self.sim.schedule(0.01, self.tick)\n",
        encoding="utf-8",
    )
    assert lint_main(["--race", "--baseline", baseline, target, "-q"]) == 1


def test_baseline_requires_a_project_pass(racy_project, tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        lint_main(
            ["--baseline", str(tmp_path / "b.json"), str(racy_project)]
        )
    assert excinfo.value.code == 2


# ----------------------------------------------------------------------
# Summary cache under the extended (v3) schema
# ----------------------------------------------------------------------


def test_corrupt_cache_entry_is_miss_for_race_facts(tmp_path):
    project = tmp_path / "proj"
    project.mkdir()
    (project / "cell.py").write_text(RACY_SOURCE, encoding="utf-8")
    cache_dir = tmp_path / "cache"

    cold = ProjectAnalyzer(cache=SummaryCache(cache_dir), race=True)
    cold_findings = [f.format() for f in cold.analyze_paths([str(project)])]
    assert cold.stats.computed == 1

    warm = ProjectAnalyzer(cache=SummaryCache(cache_dir), race=True)
    warm_findings = [f.format() for f in warm.analyze_paths([str(project)])]
    assert warm.stats.cached == 1
    assert warm_findings == cold_findings

    # Truncate every entry: the next run recomputes, same findings.
    entries = sorted(cache_dir.rglob("*.json"))
    assert entries
    for entry in entries:
        entry.write_text("{not json", encoding="utf-8")
    rebuilt = ProjectAnalyzer(cache=SummaryCache(cache_dir), race=True)
    rebuilt_findings = [
        f.format() for f in rebuilt.analyze_paths([str(project)])
    ]
    assert rebuilt.stats.cached == 0
    assert rebuilt_findings == cold_findings


def test_stale_schema_version_is_miss(tmp_path):
    """An entry stamped with an older schema version never replays —
    the v2->v3 bump invalidates by construction."""
    project = tmp_path / "proj"
    project.mkdir()
    (project / "cell.py").write_text(RACY_SOURCE, encoding="utf-8")
    cache_dir = tmp_path / "cache"
    first = ProjectAnalyzer(cache=SummaryCache(cache_dir), race=True)
    first.analyze_paths([str(project)])
    entries = sorted(cache_dir.rglob("*.json"))
    assert entries
    for entry in entries:
        blob = json.loads(entry.read_text(encoding="utf-8"))
        blob["version"] = 2
        entry.write_text(json.dumps(blob), encoding="utf-8")
    second = ProjectAnalyzer(cache=SummaryCache(cache_dir), race=True)
    second.analyze_paths([str(project)])
    assert second.stats.cached == 0
