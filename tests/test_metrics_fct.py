"""FCT/queue-depth/collapse reducers against hand-computed fixtures."""

from __future__ import annotations

import pytest

from repro.metrics.fct import (
    DEFAULT_BIN_EDGES,
    DEFAULT_BIN_LABELS,
    check_fct_invariants,
    completion_times,
    fct_by_size_bin,
    fct_summary,
    goodput_collapse_ratio,
    queue_depth_p99,
    size_bin_label,
)
from repro.metrics.goodput import FlowRecord


def record(size_bytes, start, complete, flow_id=0):
    return FlowRecord(
        flow_id=flow_id,
        scheme="XMP-2",
        src="h_0_0_0",
        dst="h_1_0_0",
        category="inter-pod",
        size_bytes=size_bytes,
        start_time=start,
        complete_time=complete,
        delivered_bytes=size_bytes,
    )


class TestSizeBins:
    def test_edges_are_inclusive_upper_bounds(self):
        assert size_bin_label(1) == "mice"
        assert size_bin_label(100_000) == "mice"
        assert size_bin_label(100_001) == "medium"
        assert size_bin_label(10_000_000) == "medium"
        assert size_bin_label(10_000_001) == "elephant"

    def test_custom_edges(self):
        assert size_bin_label(5, edges=(10,), labels=("s", "l")) == "s"
        assert size_bin_label(11, edges=(10,), labels=("s", "l")) == "l"

    def test_label_count_must_match(self):
        with pytest.raises(ValueError, match="labels"):
            size_bin_label(1, edges=(10, 20), labels=("a", "b"))


class TestFctBySizeBin:
    def test_hand_computed_fixture(self):
        # Five mice with FCTs 1..5 ms and one elephant at 80 ms.
        records = [
            record(10_000, 0.0, 0.001 * (i + 1), flow_id=i) for i in range(5)
        ]
        records.append(record(20_000_000, 0.1, 0.18, flow_id=9))
        table = fct_by_size_bin(records)
        mice = table["mice"]
        assert mice["count"] == 5.0
        assert mice["mean_s"] == pytest.approx(0.003)
        assert mice["p50_s"] == pytest.approx(0.003)
        # linear p99 over [1..5] ms: rank 3.96 -> 4 ms + 0.96 * 1 ms.
        assert mice["p99_s"] == pytest.approx(0.00496)
        assert table["elephant"]["count"] == 1.0
        assert table["elephant"]["p99_s"] == pytest.approx(0.08)

    def test_p99_with_ties_is_the_tied_value(self):
        records = [record(1_000, 0.0, 0.002, flow_id=i) for i in range(10)]
        table = fct_by_size_bin(records)
        assert table["mice"]["p99_s"] == pytest.approx(0.002)
        assert table["mice"]["p50_s"] == pytest.approx(0.002)

    def test_empty_bins_keep_table_shape(self):
        records = [record(1_000, 0.0, 0.001)]
        table = fct_by_size_bin(records)
        assert set(table) == set(DEFAULT_BIN_LABELS)
        assert table["medium"] == {
            "count": 0.0, "mean_s": 0.0, "p50_s": 0.0, "p99_s": 0.0
        }
        assert table["elephant"]["count"] == 0.0

    def test_no_records_at_all(self):
        table = fct_by_size_bin([])
        assert all(table[label]["count"] == 0.0 for label in DEFAULT_BIN_LABELS)

    def test_unfinished_records_excluded(self):
        records = [
            record(1_000, 0.0, 0.001),
            record(1_000, 0.0, None),
        ]
        assert fct_by_size_bin(records)["mice"]["count"] == 1.0
        assert completion_times(records) == [pytest.approx(0.001)]

    def test_bin_edges_route_sizes(self):
        records = [
            record(DEFAULT_BIN_EDGES[0], 0.0, 0.001),
            record(DEFAULT_BIN_EDGES[0] + 1, 0.0, 0.002),
        ]
        table = fct_by_size_bin(records)
        assert table["mice"]["count"] == 1.0
        assert table["medium"]["count"] == 1.0


class TestQueueDepth:
    def test_empty_is_zero(self):
        assert queue_depth_p99([]) == 0.0

    def test_hand_computed_p99(self):
        # 99 samples of 5 and one of 50: linear rank 98.01 interpolates
        # between the last 5 and the 50.
        samples = [5] * 99 + [50]
        assert queue_depth_p99(samples) == pytest.approx(5.45)

    def test_constant_samples(self):
        assert queue_depth_p99([7] * 20) == 7.0


class TestCollapseRatio:
    RATE = 1e9

    def test_hand_computed(self):
        ideal = 8 * 64_000 * 8.0 / self.RATE  # 4.096 ms
        ratio = goodput_collapse_ratio(
            [ideal, 2 * ideal], 8, 64_000, self.RATE
        )
        assert ratio == pytest.approx(0.75)

    def test_capped_at_one(self):
        ideal = 8 * 64_000 * 8.0 / self.RATE
        # A JCT faster than "ideal" (same-rack shortcut) must not push
        # the ratio above 1.
        assert goodput_collapse_ratio([ideal / 2], 8, 64_000, self.RATE) == 1.0

    def test_empty_jcts(self):
        assert goodput_collapse_ratio([], 8, 64_000, self.RATE) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            goodput_collapse_ratio([0.01], 0, 64_000, self.RATE)
        with pytest.raises(ValueError):
            goodput_collapse_ratio([0.01], 8, 0, self.RATE)
        with pytest.raises(ValueError):
            goodput_collapse_ratio([0.01], 8, 64_000, 0.0)


class TestFctInvariants:
    def test_ok_records_return_count(self):
        records = [record(1_000, 0.0, 0.01), record(1_000, 0.0, None)]
        assert check_fct_invariants(records, duration=0.1) == 1

    def test_non_positive_fct_raises(self):
        with pytest.raises(ValueError, match="non-positive FCT"):
            check_fct_invariants([record(1_000, 0.01, 0.01)], duration=0.1)
        with pytest.raises(ValueError, match="non-positive FCT"):
            check_fct_invariants([record(1_000, 0.02, 0.01)], duration=0.1)

    def test_fct_beyond_horizon_raises(self):
        with pytest.raises(ValueError, match="exceeds simulation horizon"):
            check_fct_invariants([record(1_000, 0.0, 0.2)], duration=0.1)

    def test_context_lands_in_message(self):
        with pytest.raises(ValueError, match="XMP/websearch@0.4"):
            check_fct_invariants(
                [record(1_000, 0.01, 0.01)], duration=0.1,
                context="XMP/websearch@0.4",
            )

    def test_fct_summary_checks_when_given_duration(self):
        assert fct_summary([], duration=0.1)["count"] == 0.0
        summary = fct_summary([record(1_000, 0.0, 0.01)], duration=0.1)
        assert summary["count"] == 1.0
        assert summary["mean_s"] == pytest.approx(0.01)
        with pytest.raises(ValueError):
            fct_summary([record(1_000, 0.0, 0.2)], duration=0.1)
