"""Drift control for the ``REPRO_*`` environment-variable registry.

``repro.core.env`` declares every environment knob in one table; these
tests grep the tree from both directions so neither the code nor the
docs can drift from it:

* an AST scan over ``src/repro`` collects every ``REPRO_*`` literal the
  code actually *reads or writes through the environment* (``os.environ``
  subscripts, ``os.environ.get`` / ``os.getenv`` calls, and the
  ``_ENV*`` module-constant idiom the hook modules use).  Every
  collected name must be registered with ``process`` scope, and every
  ``process`` row must be collected — a row nothing reads is as stale
  as a read nothing documents;
* ``shell`` rows must appear in ``scripts/check.sh`` or the CI
  workflow, and must NOT be read by library code;
* the environment table in OBSERVABILITY.md must be byte-identical to
  ``repro.core.env.render_table()``.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Set

from repro.core.env import ENV_VARS, by_name, render_table

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

_NAME_RE = re.compile(r"^REPRO_[A-Z_]+$")


def _is_environ(node: ast.AST) -> bool:
    """True for ``os.environ`` or a bare ``environ`` name."""
    if isinstance(node, ast.Attribute) and node.attr == "environ":
        return True
    return isinstance(node, ast.Name) and node.id == "environ"


def _literal(node: ast.AST) -> str:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return ""


class _EnvReads(ast.NodeVisitor):
    """Collect REPRO_* names the module touches through the environment."""

    def __init__(self) -> None:
        self.names: Set[str] = set()
        #: value of every ``_ENV*``-style module constant, so indirect
        #: reads (``os.environ.get(_ENV_RACE)``) still count.
        self._consts: Set[str] = set()

    def _note(self, value: str) -> None:
        if _NAME_RE.match(value):
            self.names.add(value)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = _literal(node.value)
        if value and any(
            isinstance(t, ast.Name) and "_ENV" in t.id for t in node.targets
        ):
            self._note(value)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if _is_environ(node.value):
            self._note(_literal(node.slice))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        getenv = isinstance(func, ast.Attribute) and func.attr == "getenv"
        environ_get = (
            isinstance(func, ast.Attribute)
            and func.attr in ("get", "pop", "setdefault")
            and _is_environ(func.value)
        )
        if (getenv or environ_get) and node.args:
            self._note(_literal(node.args[0]))
        self.generic_visit(node)


def _scan_src() -> Set[str]:
    names: Set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        visitor = _EnvReads()
        visitor.visit(tree)
        names |= visitor.names
    return names


def _shell_text() -> str:
    chunks = [(REPO / "scripts" / "check.sh").read_text(encoding="utf-8")]
    workflows = REPO / ".github" / "workflows"
    if workflows.is_dir():
        for path in sorted(workflows.glob("*.yml")):
            chunks.append(path.read_text(encoding="utf-8"))
    return "\n".join(chunks)


class TestRegistryShape:
    def test_names_well_formed_and_unique(self):
        names = [var.name for var in ENV_VARS]
        assert len(names) == len(set(names))
        for var in ENV_VARS:
            assert _NAME_RE.match(var.name), var.name
            assert var.scope in ("process", "shell"), var.name
            assert var.consumer
            assert var.meaning.endswith(".")

    def test_by_name_round_trips(self):
        assert set(by_name()) == {var.name for var in ENV_VARS}


class TestCodeAgreement:
    def test_every_code_read_is_registered_as_process(self):
        registry = by_name()
        for name in sorted(_scan_src()):
            assert name in registry, (
                f"{name} is read under src/repro but not declared in "
                "repro.core.env.ENV_VARS"
            )
            assert registry[name].scope == "process", (
                f"{name} is read by library code but registered with "
                f"scope {registry[name].scope!r}"
            )

    def test_every_process_row_is_actually_read(self):
        touched = _scan_src()
        for var in ENV_VARS:
            if var.scope == "process":
                assert var.name in touched, (
                    f"{var.name} is registered as process-scope but "
                    "nothing under src/repro touches it"
                )

    def test_shell_rows_live_in_scripts_not_library(self):
        shell = _shell_text()
        touched = _scan_src()
        for var in ENV_VARS:
            if var.scope == "shell":
                assert var.name in shell, (
                    f"{var.name} is registered as shell-scope but "
                    "appears in neither scripts/check.sh nor CI"
                )
                assert var.name not in touched, (
                    f"{var.name} is registered as shell-scope but "
                    "library code reads it"
                )


class TestDocAgreement:
    def test_observability_table_matches_registry(self):
        doc = (REPO / "OBSERVABILITY.md").read_text(encoding="utf-8")
        table = render_table()
        assert table in doc, (
            "OBSERVABILITY.md's environment table is stale: regenerate "
            "it with repro.core.env.render_table()"
        )
