"""Edge-case tests for the experiment view modules (empty inputs, formats)."""

import dataclasses

import pytest

from repro.experiments.fattree_eval import FatTreeResult, FatTreeScenario
from repro.experiments.fig8_goodput_dist import Fig8Result
from repro.experiments.fig9_jct_cdf import DEADLINE, JctResult
from repro.experiments.fig10_rtt import Fig10Result
from repro.experiments.fig11_utilization import Fig11Result
from repro.experiments.table1_goodput import Table1Result, scenarios_for
from repro.experiments.table2_coexistence import Table2Result
from repro.metrics.goodput import FlowRecord


class TestFatTreeResultHelpers:
    def empty(self):
        return FatTreeResult(scenario=FatTreeScenario(), duration=1.0)

    def test_empty_mean_goodput(self):
        assert self.empty().mean_goodput_bps() == 0.0

    def test_all_records_label_filter(self):
        result = self.empty()
        record = FlowRecord(0, "XMP-2", "a", "b", "any", 100, 0.0, 0.5, 100)
        result.records["XMP-2"] = [record]
        result.records["TCP"] = []
        assert result.all_records("XMP-2") == [record]
        assert result.all_records("TCP") == []
        assert result.all_records() == [record]

    def test_utilization_values_filters_layer(self):
        result = self.empty()
        result.link_utilization = [("a", "core", 0.5), ("b", "rack", 0.2)]
        assert result.utilization_values("core") == [0.5]

    def test_label_derivation(self):
        assert FatTreeScenario(scheme="xmp", subflows=2).label() == "XMP-2"
        assert FatTreeScenario(scheme="dctcp", subflows=1).label() == "DCTCP"


class TestScenarioGrid:
    def test_scenarios_for_cartesian(self):
        base = FatTreeScenario()
        grid = scenarios_for(base, schemes=(("xmp", 2), ("dctcp", 1)),
                             patterns=("permutation", "incast"))
        assert len(grid) == 4
        assert {s.pattern for s in grid} == {"permutation", "incast"}

    def test_scenarios_preserve_base_fields(self):
        base = FatTreeScenario(seed=77, duration=0.25)
        grid = scenarios_for(base, schemes=(("xmp", 2),), patterns=("random",))
        assert grid[0].seed == 77
        assert grid[0].duration == 0.25


class TestJctResultEdge:
    def test_empty_fraction_zero(self):
        result = JctResult()
        result.jcts["X"] = []
        result.jobs_started["X"] = 0
        assert result.fraction_over("X") == 0.0

    def test_truncated_jobs_not_counted_as_misses(self):
        result = JctResult()
        result.jcts["X"] = [0.01, 0.02]
        result.jobs_started["X"] = 10
        # Eight jobs still running, but all younger than the deadline.
        result.unfinished_ages["X"] = [0.05] * 8
        assert result.fraction_over("X") == 0.0

    def test_overdue_unfinished_count_as_misses(self):
        result = JctResult()
        result.jcts["X"] = [0.01]
        result.jobs_started["X"] = 3
        result.unfinished_ages["X"] = [DEADLINE * 2]
        assert result.fraction_over("X") == pytest.approx(0.5)

    def test_completed_misses_counted(self):
        result = JctResult()
        result.jcts["X"] = [0.01, DEADLINE * 2]
        result.jobs_started["X"] = 2
        result.unfinished_ages["X"] = []
        assert result.fraction_over("X") == pytest.approx(0.5)

    def test_format_table3_lists_all(self):
        result = JctResult()
        result.jcts = {"A": [0.01], "B": [0.5]}
        result.jobs_started = {"A": 1, "B": 1}
        text = result.format_table3()
        assert "A" in text and "B" in text


class TestFig8ResultEdge:
    def test_median_of_empty_cdf(self):
        result = Fig8Result(pattern="permutation")
        result.cdfs["X"] = []
        assert result.median("X") == 0.0

    def test_median_picks_middle(self):
        result = Fig8Result(pattern="permutation")
        result.cdfs["X"] = [(0.1, 0.33), (0.5, 0.66), (0.9, 1.0)]
        assert result.median("X") == 0.5


class TestFormatters:
    def test_table1_format_contains_cells(self):
        result = Table1Result()
        result.goodput_mbps = {"XMP-2": {"permutation": 123.4}}
        result.patterns = ("permutation",)
        assert "123.4" in result.format()

    def test_table2_format_handles_partial_grid(self):
        result = Table2Result()
        result.cells[("tcp", 100)] = (500.0, 250.0)
        text = result.format()
        assert "XMP : TCP" in text
        assert "500.0 : 250.0" in text

    def test_fig10_format_handles_missing_category(self):
        result = Fig10Result(pattern="random")
        result.rtt = {"XMP-2": {"inter-pod": {"p50": 0.001, "mean": 0.001,
                                              "min": 0, "p10": 0, "p90": 0,
                                              "max": 0.002}}}
        text = result.format()
        assert "XMP-2" in text
        assert "-" in text  # placeholders for missing categories

    def test_fig11_spread_and_mean(self):
        result = Fig11Result(pattern="random")
        summary = {"min": 0.1, "p10": 0.2, "p50": 0.3, "p90": 0.4,
                   "max": 0.5, "mean": 0.3}
        result.utilization = {
            "XMP-2": {"core": dict(summary), "aggregation": dict(summary),
                      "rack": dict(summary)}
        }
        assert result.spread("XMP-2", "core") == pytest.approx(0.4)
        assert result.mean_utilization("XMP-2") == pytest.approx(0.3)
        assert "XMP-2" in result.format()
