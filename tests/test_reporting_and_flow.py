"""Tests for text reporting helpers, SinglePathFlow and the shared pool."""

import pytest

from repro.experiments.reporting import (
    format_cdf,
    format_series,
    format_summary,
    format_table,
)
from repro.mptcp.scheduler import SharedSegmentPool
from repro.transport.cc import RenoCC
from repro.transport.dctcp import DctcpCC
from repro.transport.flow import SinglePathFlow, echo_mode_for
from repro.transport.receiver import EchoMode
from repro.core.bos import BosCC


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["A", "Blong"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert all("  " in line for line in lines[3:])

    def test_numbers_coerced(self):
        text = format_table(["x"], [[1.5]])
        assert "1.5" in text


class TestFormatCdf:
    def test_quantiles_shown(self):
        text = format_cdf([1, 2, 3, 4, 5], quantiles=(50,), unit="ms")
        assert "p50=3" in text
        assert "n=5" in text

    def test_empty(self):
        assert format_cdf([]) == "(no samples)"

    def test_scaling(self):
        text = format_cdf([0.001], quantiles=(50,), unit="ms", scale=1e3)
        assert "p50=1" in text


class TestFormatSummaryAndSeries:
    def test_summary_keys_rendered(self):
        summary = {"min": 0.0, "p10": 0.1, "p50": 0.5, "p90": 0.9, "max": 1.0}
        text = format_summary(summary)
        assert "p50=0.5" in text

    def test_series_bars(self):
        text = format_series([(0.0, 1.0), (1.0, 2.0)])
        assert "#" in text

    def test_empty_series(self):
        assert format_series([]) == "(empty series)"

    def test_all_zero_series(self):
        assert "0.000" in format_series([(0.0, 0.0)])


class TestEchoModeMapping:
    def test_mapping(self):
        assert echo_mode_for(BosCC()) is EchoMode.XMP
        assert echo_mode_for(DctcpCC()) is EchoMode.DCTCP
        assert echo_mode_for(RenoCC()) is EchoMode.CLASSIC


class TestSinglePathFlow:
    def test_infinite_flow(self, two_host_net):
        flow = SinglePathFlow(
            two_host_net, "A", "B", two_host_net.paths("A", "B")[0], BosCC()
        )
        flow.start()
        two_host_net.sim.run(until=0.05)
        assert not flow.completed
        assert flow.delivered_bytes > 0
        assert flow.total_segments is None

    def test_completion_callback(self, two_host_net):
        seen = []
        flow = SinglePathFlow(
            two_host_net, "A", "B", two_host_net.paths("A", "B")[0],
            BosCC(), size_bytes=100_000, on_complete=seen.append,
        )
        flow.start()
        two_host_net.sim.run(until=0.5)
        assert seen
        assert flow.complete_time == seen[0]

    def test_stop(self, two_host_net):
        flow = SinglePathFlow(
            two_host_net, "A", "B", two_host_net.paths("A", "B")[0], BosCC()
        )
        flow.start()
        two_host_net.sim.run(until=0.01)
        flow.stop()
        delivered = flow.delivered_bytes
        two_host_net.sim.run(until=0.05)
        assert flow.delivered_bytes == delivered


class TestSharedPool:
    def test_remaining_tracks_grants(self):
        pool = SharedSegmentPool(100)
        pool.take(30)
        assert pool.remaining == 70
        pool.take(100)
        assert pool.remaining == 0
        assert pool.exhausted

    def test_multiple_consumers_never_over_grant(self):
        pool = SharedSegmentPool(50)
        granted = 0
        for _ in range(10):
            granted += pool.take(16)
        assert granted == 50
