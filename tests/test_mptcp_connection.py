"""Tests for MptcpConnection: striping, completion, lifecycle."""

import pytest

from repro.mptcp.connection import MptcpConnection
from repro.net.network import Network
from repro.net.packet import MSS_BYTES
from repro.net.queue import ThresholdECNQueue


def diamond_net():
    """Two equal-cost paths A -> {U,V} -> B at 1 Gbps."""
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    queue = lambda: ThresholdECNQueue(100, 10)
    for name in ("U", "V"):
        mid = net.add_switch(name)
        net.connect(a, mid, 1e9, 20e-6, queue_factory=queue)
        net.connect(mid, b, 1e9, 20e-6, queue_factory=queue)
    return net


class TestConstruction:
    def test_needs_a_path(self):
        net = diamond_net()
        with pytest.raises(ValueError):
            MptcpConnection(net, "A", "B", [], scheme="xmp")

    def test_one_subflow_per_path(self):
        net = diamond_net()
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        assert len(conn.subflows) == 2
        assert [s.index for s in conn.subflows] == [0, 1]

    def test_subflows_share_flow_id(self):
        net = diamond_net()
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        assert all(s.sender.flow == conn.flow_id for s in conn.subflows)

    def test_distinct_flow_ids_across_connections(self):
        net = diamond_net()
        c1 = MptcpConnection(net, "A", "B", net.paths("A", "B")[:1], scheme="tcp")
        c2 = MptcpConnection(net, "A", "B", net.paths("A", "B")[1:], scheme="tcp")
        assert c1.flow_id != c2.flow_id


class TestTransfer:
    def test_completes_and_counts_all_bytes(self):
        net = diamond_net()
        size = 3_000_000
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"),
                               scheme="xmp", size_bytes=size)
        conn.start()
        net.sim.run(until=2.0)
        assert conn.completed
        assert conn.delivered_bytes >= size
        assert conn.complete_time is not None

    def test_both_subflows_carry_traffic(self):
        net = diamond_net()
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"),
                               scheme="xmp", size_bytes=10_000_000)
        conn.start()
        net.sim.run(until=2.0)
        for subflow in conn.subflows:
            assert subflow.sender.delivered_segments > 0

    def test_delivered_equals_sum_of_subflows(self):
        net = diamond_net()
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"),
                               scheme="xmp", size_bytes=2_000_000)
        conn.start()
        net.sim.run(until=2.0)
        total = sum(s.sender.delivered_segments for s in conn.subflows)
        assert conn.delivered_segments == total

    def test_two_paths_beat_one_when_disjoint(self):
        # With both 1 Gbps paths usable, 2 subflows should outrun 1 by a
        # wide margin... but here both paths share A's single attachment?
        # No: A has separate links to U and V, so capacity truly doubles.
        net1 = diamond_net()
        c1 = MptcpConnection(net1, "A", "B", net1.paths("A", "B")[:1],
                             scheme="xmp", size_bytes=20_000_000)
        c1.start()
        net1.sim.run(until=2.0)
        net2 = diamond_net()
        c2 = MptcpConnection(net2, "A", "B", net2.paths("A", "B"),
                             scheme="xmp", size_bytes=20_000_000)
        c2.start()
        net2.sim.run(until=2.0)
        assert c2.goodput_bps() > 1.5 * c1.goodput_bps()

    def test_goodput_accounts_whole_lifetime(self):
        net = diamond_net()
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"),
                               scheme="xmp", size_bytes=1_000_000)
        conn.start()
        net.sim.run(until=2.0)
        duration = conn.complete_time - conn.start_time
        assert conn.goodput_bps() == pytest.approx(
            conn.delivered_bytes * 8 / duration
        )

    def test_on_complete_callback(self):
        net = diamond_net()
        seen = []
        conn = MptcpConnection(
            net, "A", "B", net.paths("A", "B"), scheme="xmp",
            size_bytes=500_000,
            on_complete=lambda c, now: seen.append((c, now)),
        )
        conn.start()
        net.sim.run(until=2.0)
        assert seen and seen[0][0] is conn

    def test_infinite_connection_never_completes(self):
        net = diamond_net()
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        conn.start()
        net.sim.run(until=0.05)
        assert not conn.completed
        assert conn.delivered_segments > 0


class TestLifecycle:
    def test_add_subflow_while_running(self):
        net = diamond_net()
        paths = net.paths("A", "B")
        conn = MptcpConnection(net, "A", "B", paths[:1], scheme="xmp")
        conn.start()
        net.sim.run(until=0.01)
        before = conn.subflows[0].sender.delivered_segments
        subflow = conn.add_subflow(paths[1], start=True)
        net.sim.run(until=0.05)
        assert subflow.sender.delivered_segments > 0
        assert conn.subflows[0].sender.delivered_segments > before

    def test_start_is_idempotent_for_started_subflows(self):
        net = diamond_net()
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        conn.start()
        conn.add_subflow(net.paths("A", "B")[0])
        conn.start()  # only starts the new subflow
        assert all(s.sender.running for s in conn.subflows)

    def test_stop_halts_transmission(self):
        net = diamond_net()
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        conn.start()
        net.sim.run(until=0.01)
        conn.stop()
        delivered = conn.delivered_segments
        net.sim.run(until=0.05)
        assert conn.delivered_segments == delivered

    def test_close_unregisters_endpoints(self):
        net = diamond_net()
        conn = MptcpConnection(net, "A", "B", net.paths("A", "B"), scheme="xmp")
        conn.start()
        net.sim.run(until=0.01)
        conn.close()
        conn2 = MptcpConnection(net, "A", "B", net.paths("A", "B"),
                                scheme="xmp", flow_id=conn.flow_id)
        assert conn2 is not None  # same flow id re-registrable after close


class TestSchemes:
    @pytest.mark.parametrize("scheme", ["xmp", "lia", "olia", "dctcp", "tcp"])
    def test_every_scheme_transfers(self, scheme):
        net = diamond_net()
        paths = net.paths("A", "B")
        count = 2 if scheme in ("xmp", "lia", "olia") else 1
        conn = MptcpConnection(net, "A", "B", paths[:count],
                               scheme=scheme, size_bytes=1_000_000)
        conn.start()
        net.sim.run(until=2.0)
        assert conn.completed, scheme
