"""Unit and integration tests for simsem (repro.lint.sem).

Covers the pieces the fixture corpus does not: the sink-registry parser,
phase-1 summary extraction, the content-addressed summary cache
(hit / invalidation / corruption), the baseline ratchet, the CLI
surface (``--sem``, ``--baseline``, ``--write-baseline``, cache flags),
the SIM004 ``--fix`` round trip, and the acceptance gate that the real
tree analyzes clean.
"""

import json
from pathlib import Path

import pytest

from repro.lint import Analyzer, catalog, known_codes
from repro.lint.cli import main as lint_main
from repro.lint.core import Finding, Severity
from repro.lint.sem import (
    ProjectAnalyzer,
    SinkRegistry,
    SinkRegistryError,
    SummaryCache,
    apply_baseline,
    build_summary,
    load_baseline,
    summary_key,
    write_baseline,
)
from repro.lint.sem.baseline import BaselineError
from repro.lint.sem.registry import parse_sinks_toml
from repro.lint.sem.summary import module_name_for_path
from repro.sim import units

pytestmark = pytest.mark.simsem

REPO = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# Sink registry
# ----------------------------------------------------------------------


def test_parse_sinks_toml_happy_path():
    sinks = parse_sinks_toml(
        """
        # a comment
        [repro.net.link.Link.__init__]
        rate_bps = "bits_per_second"  # trailing comment
        delay = "seconds"

        [repro.sim.units.transmission_delay]
        size_bytes = "bytes"
        """
    )
    assert sinks["repro.net.link.Link.__init__"] == {
        "rate_bps": "bits_per_second",
        "delay": "seconds",
    }
    assert sinks["repro.sim.units.transmission_delay"] == {"size_bytes": "bytes"}


@pytest.mark.parametrize(
    "text, fragment",
    [
        ("[a]\nx = \"seconds\"\n[a]\ny = \"seconds\"", "duplicate section"),
        ("[a.b]\nx = \"fortnights\"", "unknown dimension"),
        ("x = \"seconds\"", "outside any [section]"),
        ("[a.b]\nx = seconds", "quoted string"),
        ("[a..b]\nx = \"seconds\"", "malformed section"),
        ("[a.b]\n2x = \"seconds\"", "not an identifier"),
        ("[a.b]\nx = \"seconds\"\nx = \"bytes\"", "duplicate parameter"),
        ("[a.b]\njust some words", "expected"),
    ],
)
def test_parse_sinks_toml_rejects(text, fragment):
    with pytest.raises(SinkRegistryError) as excinfo:
        parse_sinks_toml(text)
    assert fragment in str(excinfo.value)


def test_registry_lookup_and_digest():
    registry = SinkRegistry({"repro.net.link.Link.__init__": {"delay": "seconds"}})
    digest_before = registry.digest()
    # A constructor sink answers to the class name at attribute calls.
    assert registry.by_callable_name("Link") == [
        ("repro.net.link.Link.__init__", {"delay": "seconds"})
    ]
    assert registry.by_qname("repro.net.link.Link.__init__") == {"delay": "seconds"}
    registry.add("repro.net.network.Network.connect", "rate_bps", "bits_per_second")
    assert registry.digest() != digest_before
    # Conflicting redeclaration is a hard error, agreement is idempotent.
    registry.add("repro.net.network.Network.connect", "rate_bps", "bits_per_second")
    with pytest.raises(SinkRegistryError):
        registry.add("repro.net.network.Network.connect", "rate_bps", "seconds")


def test_checked_in_registry_loads_and_covers_link():
    registry = SinkRegistry.load()
    assert registry.by_qname("repro.net.link.Link.__init__") == {
        "rate_bps": "bits_per_second",
        "delay": "seconds",
    }


# ----------------------------------------------------------------------
# Phase-1 summaries
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "path, module",
    [
        ("src/repro/net/link.py", "repro.net.link"),
        ("src/repro/lint/__init__.py", "repro.lint"),
        ("repro/sim/engine.py", "repro.sim.engine"),
        ("/tmp/whatever/mod.py", "mod"),
    ],
)
def test_module_name_for_path(path, module):
    assert module_name_for_path(path) == module


def test_build_summary_extracts_facts():
    source = (
        "from repro.sim.units import Seconds, milliseconds\n"
        "\n"
        "TIMEOUT = 0.2\n"
        "\n"
        "def set_rto(rto: Seconds) -> None:\n"
        "    pass\n"
        "\n"
        "def run() -> None:\n"
        "    set_rto(milliseconds(200))\n"
    )
    summary = build_summary("src/repro/transport/demo.py", source)
    assert summary["module"] == "repro.transport.demo"
    assert not summary["parse_error"]
    assert summary["functions"]["set_rto"]["param_dims"] == {"rto": "seconds"}
    assert summary["module_constants"]["TIMEOUT"] == {
        "k": "raw", "via": 1, "zero": False,
    }
    # Both the outer local call and the inner units call are recorded.
    (call,) = [
        c for c in summary["functions"]["run"]["calls"]
        if c["callee"]["kind"] == "local"
    ]
    assert call["callee"] == {"kind": "local", "name": "set_rto"}
    assert call["args"] == [{"k": "dim", "d": "seconds"}]
    assert summary_key(source, "d") == summary_key(source, "d")
    assert summary_key(source, "d") != summary_key(source + "#", "d")


def test_build_summary_syntax_error_degrades_to_sim000():
    summary = build_summary("src/repro/broken.py", "def broken(:\n")
    assert summary["parse_error"]
    (finding,) = summary["local_findings"]
    assert finding[0] == "SIM000"


# ----------------------------------------------------------------------
# Summary cache
# ----------------------------------------------------------------------


def _write_tree(root: Path) -> None:
    root.mkdir(parents=True, exist_ok=True)
    (root / "arith.py").write_text(
        "from repro.sim.units import bytes_, microseconds\n"
        "\n"
        "def slack():\n"
        "    return microseconds(50) + bytes_(1500)\n",
        encoding="utf-8",
    )
    (root / "clean_a.py").write_text("def ok():\n    return 1\n", encoding="utf-8")
    (root / "clean_b.py").write_text("VALUE = 3\n", encoding="utf-8")


def test_cache_warm_run_reuses_every_summary(tmp_path):
    """The acceptance property: an unchanged tree replays entirely from
    cache, with identical findings (including cached local findings)."""
    tree = tmp_path / "tree"
    _write_tree(tree)
    cache_dir = tmp_path / "cache"

    cold = ProjectAnalyzer(registry=SinkRegistry(), cache=SummaryCache(cache_dir))
    cold_findings = [f.format() for f in cold.analyze_paths([tree])]
    assert cold.stats.files == 3
    assert cold.stats.computed == 3
    assert cold.stats.cached == 0
    assert len(cold_findings) == 1 and "SIM012" in cold_findings[0]

    warm = ProjectAnalyzer(registry=SinkRegistry(), cache=SummaryCache(cache_dir))
    warm_findings = [f.format() for f in warm.analyze_paths([tree])]
    assert warm.stats.files == 3
    assert warm.stats.cached == warm.stats.files  # every file reused
    assert warm.stats.computed == 0
    assert warm_findings == cold_findings


def test_cache_invalidates_on_edit_registry_and_corruption(tmp_path):
    tree = tmp_path / "tree"
    _write_tree(tree)
    cache_dir = tmp_path / "cache"
    ProjectAnalyzer(
        registry=SinkRegistry(), cache=SummaryCache(cache_dir)
    ).analyze_paths([tree])

    # Edit one file: exactly that file is recomputed.
    (tree / "clean_b.py").write_text("VALUE = 4\n", encoding="utf-8")
    edited = ProjectAnalyzer(registry=SinkRegistry(), cache=SummaryCache(cache_dir))
    edited.analyze_paths([tree])
    assert edited.stats.computed == 1
    assert edited.stats.cached == 2

    # A different sink registry changes every key: full recompute.
    other = SinkRegistry({"repro.x.f": {"t": "seconds"}})
    rekeyed = ProjectAnalyzer(registry=other, cache=SummaryCache(cache_dir))
    rekeyed.analyze_paths([tree])
    assert rekeyed.stats.computed == 3

    # A corrupt cache entry is a miss, never a crash.
    entries = sorted(cache_dir.rglob("*.json"))
    assert entries
    entries[0].write_text("not json{", encoding="utf-8")
    recovered = ProjectAnalyzer(
        registry=SinkRegistry(), cache=SummaryCache(cache_dir)
    )
    findings = recovered.analyze_paths([tree])
    assert recovered.stats.files == 3
    assert [f.code for f in findings] == ["SIM012"]


def test_cache_does_not_replay_across_renames(tmp_path):
    """A byte-identical file at a NEW path must re-report at that path."""
    cache = SummaryCache(tmp_path / "cache")
    source = (
        "from repro.sim.units import bytes_, microseconds\n"
        "def slack():\n"
        "    return microseconds(1) + bytes_(1)\n"
    )
    first = ProjectAnalyzer(registry=SinkRegistry(), cache=cache)
    (finding,) = first.analyze_sources([("src/repro/old.py", source)])
    assert finding.path == "src/repro/old.py"
    second = ProjectAnalyzer(registry=SinkRegistry(), cache=cache)
    (finding,) = second.analyze_sources([("src/repro/new.py", source)])
    assert finding.path == "src/repro/new.py"
    assert second.stats.computed == 1  # the cached summary was not reused


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------


def _finding(path: str, line: int, code: str = "SIM011") -> Finding:
    return Finding(
        path=path, line=line, col=0, code=code,
        message="m", severity=Severity.ERROR,
    )


def test_baseline_round_trip_absorbs_earliest(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    old = [_finding("a.py", 3), _finding("a.py", 9), _finding("b.py", 1, "SIM013")]
    write_baseline(baseline_file, old)
    loaded = load_baseline(baseline_file)
    assert loaded == {"a.py:SIM011": 2, "b.py:SIM013": 1}
    # Same findings: everything absorbed.
    assert apply_baseline(old, loaded) == []
    # One extra finding in an existing group: only the excess reports,
    # and it is the latest by position.
    grown = old + [_finding("a.py", 40)]
    (excess,) = apply_baseline(grown, loaded)
    assert (excess.path, excess.line) == ("a.py", 40)
    # A new (path, code) group has no allowance at all.
    moved = [_finding("c.py", 2)]
    assert apply_baseline(moved, loaded) == moved
    # Ratchet: fixing findings and rewriting can only shrink the counts.
    write_baseline(baseline_file, old[:1])
    assert load_baseline(baseline_file) == {"a.py:SIM011": 1}


@pytest.mark.parametrize(
    "payload",
    [
        "not json{",
        json.dumps({"version": 99, "counts": {}}),
        json.dumps({"version": 1}),
        json.dumps({"version": 1, "counts": {"a.py:SIM011": 0}}),
        json.dumps({"version": 1, "counts": {"a.py:SIM011": "two"}}),
    ],
)
def test_baseline_rejects_malformed(tmp_path, payload):
    target = tmp_path / "baseline.json"
    target.write_text(payload, encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(target)
    with pytest.raises(BaselineError):
        load_baseline(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


def _write_bad_module(tree: Path) -> Path:
    tree.mkdir(parents=True, exist_ok=True)
    target = tree / "mod.py"
    target.write_text(
        "from repro.sim.units import Seconds, megabits_per_second\n"
        "\n"
        "def set_timeout(timeout: Seconds) -> None:\n"
        "    pass\n"
        "\n"
        "def run() -> None:\n"
        "    set_timeout(megabits_per_second(1))\n",
        encoding="utf-8",
    )
    return target


def test_cli_sem_exit_codes(tmp_path, capsys):
    tree = tmp_path / "proj"
    target = _write_bad_module(tree)
    cache = str(tmp_path / "cache")
    assert lint_main(["--sem", "--sem-cache", cache, str(tree), "-q"]) == 1
    out = capsys.readouterr().out
    assert "SIM011" in out and "seconds" in out
    # Fix the dimension: clean exit, warm cache for the unchanged file.
    target.write_text(
        target.read_text(encoding="utf-8").replace(
            "megabits_per_second(1)", "milliseconds(200)"
        ),
        encoding="utf-8",
    )
    assert lint_main(["--sem", "--sem-cache", cache, str(tree), "-q"]) == 0
    assert lint_main(["--sem", "--no-sem-cache", str(tree), "-q"]) == 0


def test_cli_sem_select_filters_sem_codes(tmp_path):
    tree = tmp_path / "proj"
    _write_bad_module(tree)
    args = ["--sem", "--no-sem-cache", str(tree), "-q"]
    assert lint_main(["--select", "SIM011", *args]) == 1
    assert lint_main(["--select", "SIM013", *args]) == 0
    assert lint_main(["--ignore", "SIM011", *args]) == 0
    # Without --sem the semantic pass does not run at all.
    assert lint_main([str(tree), "-q"]) == 0


def test_cli_sem_json_payload(tmp_path, capsys):
    tree = tmp_path / "proj"
    _write_bad_module(tree)
    assert lint_main(
        ["--sem", "--no-sem-cache", "--format", "json", str(tree)]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["sem"]["files"] == 1
    assert payload["sem"]["findings"] == 1
    (finding,) = payload["findings"]
    assert finding["code"] == "SIM011"


def test_cli_baseline_ratchet_round_trip(tmp_path, capsys):
    tree = tmp_path / "proj"
    _write_bad_module(tree)
    baseline = str(tmp_path / "baseline.json")
    cache = str(tmp_path / "cache")
    base_args = ["--sem", "--sem-cache", cache, str(tree), "-q"]
    assert lint_main(["--write-baseline", baseline, *base_args]) == 0
    capsys.readouterr()
    # Ratcheted: the legacy finding is absorbed.
    assert lint_main(["--baseline", baseline, *base_args]) == 0
    # A NEW violation still fails even under the baseline.
    extra = tree / "extra.py"
    extra.write_text(
        "import random\n"
        "\n"
        "def rng(name: str) -> random.Random:\n"
        "    return random.Random(hash(name))\n",
        encoding="utf-8",
    )
    assert lint_main(["--baseline", baseline, *base_args]) == 1
    out = capsys.readouterr().out
    assert "SIM013" in out and "SIM011" not in out


def test_cli_baseline_requires_sem(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        lint_main(["--baseline", str(tmp_path / "b.json"), str(tmp_path)])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit) as excinfo:
        lint_main(
            ["--sem", "--baseline", str(tmp_path / "missing.json"), str(tmp_path)]
        )
    assert excinfo.value.code == 2  # unreadable baseline is a usage error


def test_cli_list_rules_includes_semantic_catalog(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SIM011", "SIM012", "SIM013", "SIM014", "SIM015"):
        assert code in out
        assert code in known_codes()
    assert "(--sem)" in out
    kinds = {entry.code: entry.kind for entry in catalog()}
    assert kinds["SIM004"] == "syntactic"
    assert kinds["SIM011"] == "semantic"


# ----------------------------------------------------------------------
# SIM004 --fix round trip
# ----------------------------------------------------------------------


def test_sim004_fix_round_trip(tmp_path):
    """--fix rewrites bare unit literals to constructor calls that are
    bit-identical to the original floats, adds the import, and leaves a
    file that lints clean and parses."""
    target = tmp_path / "build_topo.py"
    target.write_text(
        "def build(net):\n"
        "    net.connect(0, 1, 1e9, 20e-6)\n"
        "    net.add_link(rate_bps=300e6, delay=0.005)\n"
        "    net.add_link(rate_bps=2.5e9, delay=1.8e-3)\n",
        encoding="utf-8",
    )
    assert lint_main([str(target), "-q"]) == 1
    assert lint_main(["--fix", str(target), "-q"]) == 0
    fixed = target.read_text(encoding="utf-8")
    # Exact conversions use the named constructor; values a named
    # conversion cannot reproduce bit-identically (20e-6, 2.5e9, 1.8e-3)
    # fall back to the identity constructor wrapping the literal.
    assert "gigabits_per_second(1)" in fixed
    assert "seconds(20e-6)" in fixed
    assert "megabits_per_second(300)" in fixed
    assert "milliseconds(5)" in fixed
    assert "bits_per_second(2.5e9)" in fixed
    assert "seconds(1.8e-3)" in fixed
    assert fixed.startswith("from repro.sim.units import ")
    compile(fixed, str(target), "exec")
    # Bit-identity of every rewritten value.
    assert units.gigabits_per_second(1) == 1e9
    assert units.seconds(20e-6) == 20e-6
    assert units.megabits_per_second(300) == 300e6
    assert units.milliseconds(5) == 0.005
    assert units.bits_per_second(2.5e9) == 2.5e9
    assert units.seconds(1.8e-3) == 1.8e-3
    # Idempotent.
    assert lint_main(["--fix", str(target), "-q"]) == 0
    assert target.read_text(encoding="utf-8") == fixed


def test_sim004_fix_extends_existing_units_import(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "from repro.sim.units import seconds\n"
        "\n"
        "def build(net):\n"
        "    net.add_link(rate_bps=1e9, delay=seconds(0.001))\n",
        encoding="utf-8",
    )
    assert lint_main(["--fix", str(target), "-q"]) == 0
    fixed = target.read_text(encoding="utf-8")
    assert fixed.splitlines()[0] == (
        "from repro.sim.units import gigabits_per_second, seconds"
    )
    assert "gigabits_per_second(1)" in fixed


def test_sim004_findings_are_marked_fixable():
    source = "def f(net):\n    net.add_link(rate_bps=1e9, delay=0.25)\n"
    findings = Analyzer().lint_source(source, path="src/repro/x.py")
    sim004 = [f for f in findings if f.code == "SIM004"]
    assert len(sim004) == 2
    assert all(f.fix is not None for f in sim004)


# ----------------------------------------------------------------------
# Acceptance gate: the real tree is clean
# ----------------------------------------------------------------------


def test_real_tree_analyzes_clean():
    """src/repro carries zero semantic findings — the empty-baseline
    acceptance criterion, kept as a permanent regression gate (the
    access_rate literals in topology/{testbed,torus}.py once violated
    it; see VALIDATION.md)."""
    analyzer = ProjectAnalyzer(cache=None)
    findings = analyzer.analyze_paths([REPO / "src" / "repro"])
    assert findings == [], "\n".join(f.format() for f in findings)
    assert analyzer.stats.files > 90
