"""Tests for the D2TCP extension (deadline-aware DCTCP)."""

import math

import pytest

from repro.transport.d2tcp import D_MAX, D_MIN, D2tcpCC
from repro.transport.tcp import FiniteSource


class StubSender:
    def __init__(self, cwnd=10.0, ssthresh=5.0, srtt=100e-6, total=1000):
        self.cwnd = cwnd
        self.ssthresh = ssthresh
        self.snd_una = 0
        self.snd_nxt = int(cwnd)
        self.in_recovery = False
        self.running = True
        self.completed = False
        self.srtt = srtt
        self.source = FiniteSource(total)

    @property
    def flight(self):
        return self.snd_nxt - self.snd_una

    @property
    def instant_rate(self):
        if self.srtt is None or self.srtt <= 0:
            return 0.0
        return self.cwnd / self.srtt


def attach(cc, **kwargs):
    sender = StubSender(**kwargs)
    cc.attach(sender)
    return sender


class TestImminence:
    def test_no_deadline_is_dctcp(self):
        cc = D2tcpCC(deadline=None)
        attach(cc)
        assert cc.imminence(0.0) == 1.0

    def test_tight_deadline_raises_d(self):
        # Needs 1000 segments at 1e5 seg/s = 10 ms; has 5 ms.
        cc = D2tcpCC(deadline=0.005)
        attach(cc, total=1000)
        assert cc.imminence(0.0) == pytest.approx(2.0)

    def test_loose_deadline_lowers_d(self):
        # Needs 10 ms; has 1 s: d clamps at the floor.
        cc = D2tcpCC(deadline=1.0)
        attach(cc, total=1000)
        assert cc.imminence(0.0) == D_MIN

    def test_missed_deadline_maximally_aggressive(self):
        cc = D2tcpCC(deadline=0.5)
        attach(cc)
        assert cc.imminence(1.0) == D_MAX

    def test_clamped_between_bounds(self):
        for deadline in (1e-6, 1e-3, 0.1, 10.0):
            cc = D2tcpCC(deadline=deadline)
            attach(cc)
            assert D_MIN <= cc.imminence(0.0) <= D_MAX

    def test_no_rate_estimate_is_aggressive(self):
        cc = D2tcpCC(deadline=0.1)
        attach(cc, srtt=None)
        assert cc.imminence(0.0) == D_MAX

    def test_exact_fit_is_one(self):
        # Needs exactly as long as it has.
        cc = D2tcpCC(deadline=0.01)
        attach(cc, total=1000)  # 1000/1e5 = 10 ms needed, 10 ms left
        assert cc.imminence(0.0) == pytest.approx(1.0)


class TestReduction:
    def reduction_for(self, deadline, now=0.0, alpha=0.5, total=1000):
        cc = D2tcpCC(deadline=deadline)
        cc.alpha = alpha
        sender = attach(cc, cwnd=100.0, total=total)
        sender.snd_nxt = 100
        cc.on_ack(1, 1, None, now, False)
        return 100.0 - sender.cwnd

    def test_neutral_matches_dctcp(self):
        # d = 1: cut = cwnd * alpha/2 = 25.
        assert self.reduction_for(deadline=None) == pytest.approx(25.0)

    def test_tight_deadline_cuts_less(self):
        # cwnd=100 at srtt=100us -> 1e6 seg/s -> needs 1 ms for 1000 segs;
        # only 0.8 ms left -> d = 1.25 -> smaller penalty than DCTCP's.
        tight = self.reduction_for(deadline=0.0008)
        neutral = self.reduction_for(deadline=None)
        assert tight < neutral

    def test_loose_deadline_cuts_more(self):
        loose = self.reduction_for(deadline=10.0)
        neutral = self.reduction_for(deadline=None)
        assert loose > neutral

    def test_penalty_formula(self):
        # d = 2 (late): penalty = alpha^2 = 0.25 -> cut = 12.5.
        cut = self.reduction_for(deadline=0.0001)
        assert cut == pytest.approx(100.0 * (0.5**2) / 2.0)


class TestEndToEnd:
    def test_tight_deadline_flow_outruns_loose_one(self, two_host_net):
        """Two D2TCP flows share one bottleneck; the tight-deadline flow
        should deliver more in the contested period."""
        from repro.mptcp.connection import MptcpConnection
        from repro.topology.bottleneck import build_single_bottleneck
        from repro.transport.flow import SinglePathFlow

        net = build_single_bottleneck(num_pairs=2, marking_threshold=10)
        size = 12_000_000
        tight = SinglePathFlow(
            net, "S0", "D0", net.flow_path(0),
            D2tcpCC(deadline=0.08), size_bytes=size,
        )
        loose = SinglePathFlow(
            net, "S1", "D1", net.flow_path(1),
            D2tcpCC(deadline=5.0), size_bytes=size,
        )
        tight.start()
        loose.start()
        net.sim.run(until=0.08)
        assert tight.delivered_bytes > 1.2 * loose.delivered_bytes
