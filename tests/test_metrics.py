"""Tests for statistics, fairness, goodput records and utilization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.fairness import jain_index, max_min_ratio
from repro.metrics.goodput import (
    FlowRecord,
    goodput_by_category,
    goodput_cdf,
    goodput_table,
    goodputs_bps,
)
from repro.metrics.stats import (
    PERCENTILE_METHOD,
    cdf_points,
    mean,
    percentile,
    stddev,
    summarize,
)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_value(self):
        assert percentile([7], 33) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(
        values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
        q=st.floats(0, 100),
    )
    @settings(max_examples=80, deadline=None)
    def test_percentile_within_range_and_monotone(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)
        assert percentile(values, 0) <= p <= percentile(values, 100)

    def test_matches_numpy_linear(self):
        numpy = pytest.importorskip("numpy")
        data = [0.3, 1.7, 2.2, 9.9, 4.4, 4.5]
        for q in (10, 25, 50, 75, 90, 99):
            assert percentile(data, q) == pytest.approx(
                float(numpy.percentile(data, q))
            )


class TestPercentileLock:
    """The repo-wide percentile interpolation is locked to 'linear'.

    Every reported number (EXPERIMENTS.md tables, golden digests, the
    workload FCT/queue-depth matrix) flows through the default method;
    flipping it silently would shift p99s without any code "bug".  If
    this class fails, either restore the default or treat the change as
    a reportable behaviour change: re-bless the goldens and update the
    stats docstring and EXPERIMENTS.md together.
    """

    def test_locked_method_is_linear(self):
        assert PERCENTILE_METHOD == "linear"

    def test_default_call_uses_locked_method(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 50) == percentile(data, 50, method="linear")
        # The linear signature: interpolated median, not an observed
        # sample.  nearest-rank would return 2.0 here.
        assert percentile(data, 50) == 2.5

    def test_nearest_rank_differs_and_is_an_observed_sample(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 50, method="nearest-rank") == 2.0
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 99, method="nearest-rank") == 99.0
        assert percentile(values, 99) == pytest.approx(99.01)
        assert percentile(data, 0, method="nearest-rank") == 1.0
        assert percentile(data, 100, method="nearest-rank") == 4.0

    def test_nearest_rank_always_in_sample(self):
        data = [0.7, 1.9, 3.1, 4.2, 8.8]
        for q in (1, 10, 33, 50, 75, 99):
            assert percentile(data, q, method="nearest-rank") in data

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown percentile method"):
            percentile([1.0], 50, method="hazen")


class TestCdfAndSummary:
    def test_cdf_points_sorted_and_complete(self):
        points = cdf_points([3, 1, 2])
        assert points == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]

    def test_summarize_keys(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary["min"] == 1
        assert summary["max"] == 5
        assert summary["p50"] == 3
        assert summary["mean"] == 3

    def test_summarize_empty(self):
        assert summarize([])["p50"] == 0.0

    def test_mean_and_stddev(self):
        assert mean([2, 4]) == 3
        assert mean([]) == 0.0
        assert stddev([2, 2, 2]) == 0.0
        assert stddev([1]) == 0.0
        assert stddev([0, 2]) == 1.0


class TestJain:
    def test_perfect_fairness(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_maximal_unfairness(self):
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 0.0
        assert jain_index([0, 0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1, -1])

    @given(
        st.lists(
            st.one_of(st.just(0.0), st.floats(1e-3, 1e9)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_bounds(self, rates):
        index = jain_index(rates)
        assert 0.0 <= index <= 1.0 + 1e-9
        if any(r > 0 for r in rates):
            assert index >= 1.0 / len(rates) - 1e-9

    @given(
        rates=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=20),
        scale=st.floats(0.1, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_scale_invariance(self, rates, scale):
        assert jain_index(rates) == pytest.approx(
            jain_index([r * scale for r in rates])
        )

    def test_max_min_ratio(self):
        assert max_min_ratio([1, 2, 4]) == 4.0
        assert max_min_ratio([0, 1]) == float("inf")
        assert max_min_ratio([0, 0]) == 1.0
        with pytest.raises(ValueError):
            max_min_ratio([])


def record(goodput_mbps, duration=1.0, scheme="XMP-2", category="inter-pod"):
    size = int(goodput_mbps * 1e6 / 8 * duration)
    return FlowRecord(
        flow_id=0, scheme=scheme, src="a", dst="b", category=category,
        size_bytes=size, start_time=0.0, complete_time=duration,
        delivered_bytes=size,
    )


class TestFlowRecord:
    def test_goodput_of_finished_flow(self):
        r = record(100.0)
        assert r.goodput_bps() == pytest.approx(100e6)

    def test_unfinished_requires_now(self):
        r = FlowRecord(0, "X", "a", "b", "any", 100, 0.0, None, 50)
        with pytest.raises(ValueError):
            r.goodput_bps()
        assert r.goodput_bps(now=1.0) == pytest.approx(400.0)

    def test_completion_time(self):
        assert record(1.0, duration=2.5).completion_time() == 2.5
        unfinished = FlowRecord(0, "X", "a", "b", "any", 1, 0.0, None, 0)
        assert unfinished.completion_time() is None

    def test_goodput_table(self):
        table = goodput_table({"A": [record(100), record(200)], "B": [record(50)]})
        assert table["A"] == pytest.approx(150e6)
        assert table["B"] == pytest.approx(50e6)

    def test_goodput_cdf(self):
        points = goodput_cdf([record(100), record(300)])
        assert len(points) == 2
        assert points[0][0] == pytest.approx(100e6)

    def test_by_category(self):
        records = [
            record(100, category="inner-rack"),
            record(300, category="inner-rack"),
            record(50, category="inter-pod"),
        ]
        summary = goodput_by_category(records)
        assert summary["inner-rack"]["mean"] == pytest.approx(200e6)
        assert summary["inter-pod"]["max"] == pytest.approx(50e6)

    def test_goodputs_handles_mixture(self):
        finished = record(100)
        running = FlowRecord(0, "X", "a", "b", "any", 1000, 0.5, None, 1460)
        values = goodputs_bps([finished, running], now=1.0)
        assert values[0] == pytest.approx(100e6)
        assert values[1] == pytest.approx(1460 * 8 / 0.5)
