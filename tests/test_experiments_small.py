"""Integration tests for the small-topology experiment drivers.

These run heavily compressed versions of Figs. 1/4/6/7 and assert the
*qualitative* claims of the paper hold: convergence to fairness, traffic
shifting away from congested paths, flow-level fairness regardless of
subflow count, and rate compensation with attenuation.
"""

import pytest

from repro.experiments.fig1_convergence import Fig1Config, run_fig1
from repro.experiments.fig4_traffic_shifting import Fig4Config, run_fig4
from repro.experiments.fig6_fairness import Fig6Config, run_fig6
from repro.experiments.fig7_rate_compensation import Fig7Config, run_fig7


@pytest.fixture(scope="module")
def fig1_bos():
    return run_fig1(Fig1Config(scheme="bos", beta=2.0, marking_threshold=20,
                               interval=0.4, sample_interval=0.02))


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4(Fig4Config(beta=4.0, time_scale=0.1))


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(Fig6Config(beta=4.0, time_scale=0.1))


@pytest.fixture(scope="module")
def fig7_result():
    return run_fig7(Fig7Config(beta=4.0, marking_threshold=20,
                               time_scale=0.02, sample_interval=5.0))


class TestFig1:
    def test_series_cover_run(self, fig1_bos):
        assert fig1_bos.times
        assert set(fig1_bos.rates) == {f"flow{i}" for i in range(1, 5)}

    def test_halving_converges_to_fairness(self, fig1_bos):
        assert fig1_bos.worst_jain() > 0.85

    def test_flows_respect_start_stop_schedule(self, fig1_bos):
        # Flow 4 joins at step 3: it must be silent before that.
        interval = fig1_bos.config.interval
        early = [
            rate
            for time, rate in zip(fig1_bos.times, fig1_bos.rates["flow4"])
            if time < 2.9 * interval
        ]
        assert max(early, default=0.0) == 0.0

    def test_single_flow_gets_full_link(self, fig1_bos):
        # Step 6: only flow 4 remains; it should fill ~1 Gbps.
        interval = fig1_bos.config.interval
        tail = [
            rate
            for time, rate in zip(fig1_bos.times, fig1_bos.rates["flow4"])
            if time > 6.5 * interval
        ]
        assert sum(tail) / len(tail) > 0.8e9

    def test_segments_account_active_flows(self, fig1_bos):
        counts = [n for _, _, n, _ in fig1_bos.segments]
        assert counts == [1, 2, 3, 4, 3, 2, 1]


class TestFig4:
    def test_shifts_away_from_congested_path(self, fig4_result):
        phases = fig4_result.phases()
        baseline = fig4_result.mean_normalized("flow2-1", *phases["baseline"])
        congested = fig4_result.mean_normalized("flow2-1", *phases["bg_on_dn1"])
        assert congested < 0.6 * baseline

    def test_sibling_compensates(self, fig4_result):
        phases = fig4_result.phases()
        baseline = fig4_result.mean_normalized("flow2-2", *phases["baseline"])
        compensating = fig4_result.mean_normalized("flow2-2", *phases["bg_on_dn1"])
        assert compensating > baseline

    def test_roles_swap_when_background_moves(self, fig4_result):
        phases = fig4_result.phases()
        sub1 = fig4_result.mean_normalized("flow2-1", *phases["bg_on_dn2"])
        sub2 = fig4_result.mean_normalized("flow2-2", *phases["bg_on_dn2"])
        assert sub1 > sub2

    def test_recovers_after_background_leaves(self, fig4_result):
        phases = fig4_result.phases()
        r1 = fig4_result.mean_normalized("flow2-1", *phases["recovered"])
        r2 = fig4_result.mean_normalized("flow2-2", *phases["recovered"])
        assert r1 > 0.1 and r2 > 0.1


class TestFig6:
    def test_flow_level_fairness_despite_subflow_counts(self, fig6_result):
        assert fig6_result.fairness_all_flows() > 0.9

    def test_all_subflow_series_present(self, fig6_result):
        expected = {
            "flow1-1", "flow1-2", "flow1-3",
            "flow2-1", "flow2-2", "flow3-1", "flow4-1",
        }
        assert expected == set(fig6_result.rates)

    def test_stopped_flows_release_bandwidth(self, fig6_result):
        # After 25 s (scaled) flows 3 and 4 leave; flows 1-2 split the link.
        s = fig6_result.config.time_scale
        f1 = fig6_result.flow_rate_between(1, 26 * s, 30 * s)
        f2 = fig6_result.flow_rate_between(2, 26 * s, 30 * s)
        assert f1 + f2 > 0.8 * 300e6

    def test_three_subflow_flow_not_advantaged(self, fig6_result):
        s = fig6_result.config.time_scale
        f1 = fig6_result.flow_rate_between(1, 21 * s, 25 * s)
        f3 = fig6_result.flow_rate_between(3, 21 * s, 25 * s)
        assert f1 < 2.0 * f3  # nowhere near the 3x an uncoupled trio takes


class TestFig7:
    def scaled(self, result, name, start, end):
        s = result.config.time_scale
        return result.mean_rate(name, start * s, end * s)

    def test_l3_subflows_collapse_under_background(self, fig7_result):
        pre = self.scaled(fig7_result, "flow3-1", 20, 25)
        congested = self.scaled(fig7_result, "flow3-1", 40, 45)
        assert congested < 0.5 * pre

    def test_siblings_compensate(self, fig7_result):
        pre = self.scaled(fig7_result, "flow3-2", 20, 25)
        congested = self.scaled(fig7_result, "flow3-2", 40, 45)
        assert congested > pre

    def test_link_closure_zeroes_l3_subflows(self, fig7_result):
        closed_21 = self.scaled(fig7_result, "flow2-2", 65, 70)
        closed_31 = self.scaled(fig7_result, "flow3-1", 65, 70)
        assert closed_21 < 1e7
        assert closed_31 < 1e7

    def test_far_flows_barely_move(self, fig7_result):
        # Attenuation: flow 5 shares no link with L3's neighbours' siblings.
        pre = self.scaled(fig7_result, "flow5-1", 20, 25)
        during = self.scaled(fig7_result, "flow5-1", 40, 45)
        assert during > 0.4 * pre

    def test_capacities_recorded(self, fig7_result):
        assert fig7_result.capacities == [0.8e9, 1.2e9, 2.0e9, 1.5e9, 0.5e9]
