"""Property-based equivalence tests for the calendar-queue scheduler.

The calendar/ladder structure (sorted run / near bucket / far heap) must
fire events in *exactly* the order a single reference binary heap would:
ascending ``(time, priority, seq)``, where ``seq`` is allocation order.
These tests run every random workload twice — once on the real
:class:`Simulator`, once on :class:`ReferenceSimulator`, a deliberately
naive seed-style binary-heap scheduler defined below — and assert the
fired sequences are identical, across dynamic (in-run) scheduling,
``post`` fast-path records, cancellations, same-instant priority ties,
forced compaction, and ``run(until)`` / ``max_events`` interleavings.
(A flat "sort the creation log" oracle is *not* equivalent: an event
created by a same-instant firing necessarily runs after its creator,
which only an actual scheduler models.)

Times are multiples of 1/1024 s so float sums are exact (PR 2's
convention), and the scripts shrink the compaction threshold and lean on
the engine's adaptive bucket width so small workloads still cross tier
boundaries.  Uses ``hypothesis`` when available, with a seeded-fuzz
fallback exercising the same properties otherwise.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush

import pytest

from repro.sim.engine import Simulator

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on minimal images
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.invariants

TICK = 1.0 / 1024.0


class _RefEvent:
    """Cancellation handle for :class:`ReferenceSimulator` entries."""

    __slots__ = ("entry",)

    def __init__(self, entry):
        self.entry = entry

    def cancel(self):
        self.entry[3] = True


class ReferenceSimulator:
    """The seed engine, reduced to its ordering semantics: one binary
    heap of ``(time, priority, seq, cancelled, callback, args)`` entries,
    lazy cancellation, events at exactly ``until`` fire, the clock
    advances to ``until`` on a timed stop."""

    def __init__(self):
        self._heap = []
        self._seq = 0
        self.now = 0.0

    def schedule(self, delay, callback, *args, priority=0):
        self._seq += 1
        entry = [self.now + delay, priority, self._seq, False, callback, args]
        heappush(self._heap, entry)
        return _RefEvent(entry)

    def post(self, delay, callback, *args, priority=0):
        # Same sequence counter, no handle — mirrors Simulator.post.
        self._seq += 1
        heappush(
            self._heap,
            [self.now + delay, priority, self._seq, False, callback, args],
        )

    def run(self, until=None, max_events=None):
        remaining = float("inf") if max_events is None else max_events
        while self._heap and remaining > 0:
            entry = self._heap[0]
            if entry[3]:
                heappop(self._heap)
                continue
            if until is not None and entry[0] > until:
                break
            heappop(self._heap)
            self.now = entry[0]
            entry[4](*entry[5])
            remaining -= 1
        if until is not None and until > self.now:
            self.now = until
        return self.now


def interpret(sim, script, until_ticks=None, max_events=None):
    """Interpret ``script`` on any scheduler; return the fired list.

    ``script[0]`` is the setup program executed before ``run``;
    program ``k + 1`` runs when the event labelled ``k`` fires.  Ops:

    * ``("schedule", delay_ticks, priority, _)`` — cancellable record;
    * ``("post", delay_ticks, priority, _)`` — fast-path record;
    * ``("cancel", _, _, ref)`` — cancel the ``ref % created``-th record
      (a no-op on ``post`` records, exactly as at the engine API).
    """
    fired = []
    priorities = []  # label -> priority, creation order == seq order
    handles = []  # label -> handle | None (post records have none)

    def execute(ops):
        for kind, dticks, priority, ref in ops:
            if kind == "schedule":
                label = len(handles)
                priorities.append(priority)
                handles.append(
                    sim.schedule(dticks * TICK, fire, label, priority=priority)
                )
            elif kind == "post":
                label = len(handles)
                priorities.append(priority)
                handles.append(None)
                sim.post(dticks * TICK, fire, label, priority=priority)
            else:  # cancel
                if handles:
                    handle = handles[ref % len(handles)]
                    if handle is not None:
                        handle.cancel()

    def fire(label):
        fired.append((sim.now, priorities[label], label))
        if label + 1 < len(script):
            execute(script[label + 1])

    execute(script[0] if script else [])
    if until_ticks is not None:
        sim.run(until=until_ticks * TICK)
    if max_events is not None:
        sim.run(max_events=max_events)
    sim.run()  # drain whatever remains after the partial runs
    return fired


def check_workload(script, until_ticks=None, max_events=None):
    real = Simulator()
    real.COMPACT_MIN_CANCELLED = 4  # instance attr shadows class default
    fired = interpret(real, script, until_ticks, max_events)
    reference = interpret(
        ReferenceSimulator(), script, until_ticks, max_events
    )
    assert fired == reference
    assert real.pending_events - real.cancelled_pending == 0


# ----------------------------------------------------------------------
# Deterministic spot checks of tier-boundary semantics
# ----------------------------------------------------------------------


def test_same_instant_priority_tie_across_promotion():
    """A later-scheduled higher-priority record at an instant already in
    the active run must still fire first at that instant."""
    sim = Simulator()
    fired = []
    # Force multiple promotions: events far enough apart that the initial
    # bucket width (256 us) separates them into distinct runs.
    for i in range(64):
        sim.schedule(i * TICK, fired.append, ("base", i))

    def inject():
        # Now inside the run containing t=32*TICK: schedule a same-time,
        # higher-priority event at t=33*TICK, which the run already holds.
        sim.schedule(TICK, fired.append, ("vip", 33), priority=-1)

    sim.schedule(32 * TICK, inject, priority=-2)
    sim.run()
    i_vip = fired.index(("vip", 33))
    i_base = fired.index(("base", 33))
    assert i_vip == i_base - 1, "higher priority must precede at the instant"
    assert [x for x in fired if x[0] == "base"] == [
        ("base", i) for i in range(64)
    ]


def test_fifo_among_equal_priority_across_tiers():
    sim = Simulator()
    fired = []
    # Same instant, scheduled in two phases: first up-front (far heap),
    # then from inside an earlier event (active run).  FIFO by seq must
    # hold across both origins.
    for i in range(4):
        sim.schedule(TICK, fired.append, i)
    sim.schedule(0.0, lambda: [sim.schedule(TICK, fired.append, 4 + i) for i in range(4)])
    sim.run()
    assert fired == list(range(8))


def test_post_and_schedule_share_one_sequence():
    sim = Simulator()
    fired = []
    sim.schedule(TICK, fired.append, "a")
    sim.post(TICK, fired.append, "b")
    sim.schedule(TICK, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_nonfinite_delays_rejected():
    from repro.sim.engine import SimulationError

    sim = Simulator()
    for bad in (float("nan"), float("inf"), -float("inf"), -1e-9):
        with pytest.raises(SimulationError):
            sim.schedule(bad, lambda: None)
        with pytest.raises(SimulationError):
            sim.post(bad, lambda: None)
    assert sim.pending_events == 0


def test_until_boundary_inside_active_run():
    """run(until) must stop cleanly even when the boundary falls inside
    a promoted run, and the next run() must resume in order."""
    sim = Simulator()
    fired = []
    for i in range(100):
        sim.schedule(i * TICK, fired.append, i)
    sim.run(until=37 * TICK)
    assert fired == list(range(38))  # events at exactly until fire
    assert sim.now == 37 * TICK
    sim.run()
    assert fired == list(range(100))


def test_counters_track_promotions_and_spills():
    sim = Simulator()
    for i in range(512):
        sim.schedule(i * TICK, lambda: None)
    sim.run()
    assert sim.promotions > 0
    assert sim.far_spills > 0
    assert sim.max_run >= 1
    assert sim.pending_events == 0


# ----------------------------------------------------------------------
# Drivers: hypothesis when present, seeded fuzz otherwise
# ----------------------------------------------------------------------

_op = st.one_of(
    st.tuples(
        st.just("schedule"),
        st.integers(min_value=0, max_value=48),
        st.integers(min_value=-2, max_value=2),
        st.just(0),
    ),
    st.tuples(
        st.just("post"),
        st.integers(min_value=0, max_value=48),
        st.integers(min_value=-2, max_value=2),
        st.just(0),
    ),
    st.tuples(
        st.just("cancel"),
        st.just(0),
        st.just(0),
        st.integers(min_value=0, max_value=255),
    ),
) if HAVE_HYPOTHESIS else None

if HAVE_HYPOTHESIS:
    scripts = st.lists(
        st.lists(_op, max_size=6), min_size=1, max_size=24
    )

    @given(scripts)
    @settings(max_examples=120, deadline=None)
    def test_calendar_matches_reference_order(script):
        check_workload(script)

    @given(
        scripts,
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=120, deadline=None)
    def test_calendar_matches_reference_with_partial_runs(
        script, until_ticks, max_events
    ):
        check_workload(script, until_ticks=until_ticks, max_events=max_events)

else:  # pragma: no cover - minimal images only

    def _random_script(rng):
        script = []
        for _ in range(rng.randrange(1, 25)):
            ops = []
            for _ in range(rng.randrange(0, 7)):
                roll = rng.random()
                if roll < 0.45:
                    ops.append(
                        ("schedule", rng.randrange(0, 49),
                         rng.randrange(-2, 3), 0)
                    )
                elif roll < 0.8:
                    ops.append(
                        ("post", rng.randrange(0, 49),
                         rng.randrange(-2, 3), 0)
                    )
                else:
                    ops.append(("cancel", 0, 0, rng.randrange(0, 256)))
            script.append(ops)
        return script

    def test_calendar_matches_reference_order():
        rng = random.Random(0x5EED)
        for _ in range(250):
            check_workload(_random_script(rng))

    def test_calendar_matches_reference_with_partial_runs():
        rng = random.Random(0xCA1E)
        for _ in range(250):
            check_workload(
                _random_script(rng),
                until_ticks=rng.randrange(0, 65),
                max_events=rng.randrange(1, 41),
            )
