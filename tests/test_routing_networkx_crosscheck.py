"""Cross-validate path enumeration against networkx.

``enumerate_paths`` is hand-rolled BFS+DFS; networkx's
``all_shortest_paths`` is an independent implementation.  Agreement on
the fat tree (counts and the path sets themselves) is strong evidence
the routing substrate is correct.
"""

import random

import networkx as nx
import pytest

from repro.topology.fattree import build_fattree
from repro.topology.torus import build_torus


def to_networkx(net) -> nx.DiGraph:
    graph = nx.DiGraph()
    for links in net.adjacency.values():
        for link in links:
            graph.add_edge(link.src.name, link.dst.name)
    return graph


def node_sequence(path, src_name):
    return tuple([src_name] + [link.dst.name for link in path])


class TestFatTreeAgainstNetworkx:
    @pytest.mark.parametrize("k", [4, 6])
    def test_shortest_path_sets_match(self, k):
        net = build_fattree(k=k)
        graph = to_networkx(net)
        rng = random.Random(k)
        for _ in range(8):
            src, dst = rng.sample(net.host_names, 2)
            ours = {
                node_sequence(path, src) for path in net.paths(src, dst)
            }
            theirs = {
                tuple(p) for p in nx.all_shortest_paths(graph, src, dst)
            }
            assert ours == theirs, (src, dst)

    def test_interpod_count_formula(self):
        net = build_fattree(k=4)
        graph = to_networkx(net)
        count = len(list(nx.all_shortest_paths(graph, "h_0_0_0", "h_2_0_0")))
        assert count == 4  # (k/2)^2
        assert len(net.paths("h_0_0_0", "h_2_0_0")) == count


class TestTorusAgainstNetworkx:
    def test_flow_paths_are_shortest(self):
        net = build_torus()
        graph = to_networkx(net)
        for i in range(1, 6):
            ours = {
                node_sequence(path, f"S{i}") for path in net.flow_paths(i)
            }
            theirs = {
                tuple(p)
                for p in nx.all_shortest_paths(graph, f"S{i}", f"D{i}")
            }
            assert ours == theirs
