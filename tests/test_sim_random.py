"""Tests for seeded random streams and the bounded Pareto sampler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import RandomStreams, pareto_bounded


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_deterministic_across_instances(self):
        a = RandomStreams(7).stream("flows")
        b = RandomStreams(7).stream("flows")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        xs = [streams.stream("a").random() for _ in range(5)]
        ys = [streams.stream("b").random() for _ in range(5)]
        assert xs != ys

    def test_different_seeds_differ(self):
        xs = [RandomStreams(1).stream("a").random() for _ in range(5)]
        ys = [RandomStreams(2).stream("a").random() for _ in range(5)]
        assert xs != ys

    def test_spawn_derives_child_family(self):
        parent = RandomStreams(3)
        child1 = parent.spawn("rep1")
        child2 = parent.spawn("rep2")
        assert child1.seed != child2.seed
        assert parent.spawn("rep1").seed == child1.seed


class TestParetoBounded:
    def test_respects_upper_bound(self):
        streams = RandomStreams(0)
        rng = streams.stream("sizes")
        for _ in range(1000):
            value = pareto_bounded(rng, 1.5, 192e6, 768e6)
            assert value <= 768e6

    def test_positive(self):
        rng = RandomStreams(0).stream("sizes")
        for _ in range(100):
            assert pareto_bounded(rng, 1.5, 192e6, 768e6) > 0

    def test_mean_in_plausible_range(self):
        # Truncation pulls the sample mean below the nominal mean.
        rng = RandomStreams(42).stream("sizes")
        values = [pareto_bounded(rng, 1.5, 192e6, 768e6) for _ in range(20000)]
        mean = sum(values) / len(values)
        assert 0.4 * 192e6 < mean < 192e6

    def test_rejects_shape_at_most_one(self):
        rng = RandomStreams(0).stream("s")
        with pytest.raises(ValueError):
            pareto_bounded(rng, 1.0, 10, 100)

    def test_rejects_nonpositive_mean(self):
        rng = RandomStreams(0).stream("s")
        with pytest.raises(ValueError):
            pareto_bounded(rng, 1.5, 0, 100)

    @given(
        seed=st.integers(0, 2**20),
        shape=st.floats(1.1, 5.0),
        mean=st.floats(1.0, 1e9),
    )
    @settings(max_examples=50, deadline=None)
    def test_sample_always_within_scale_and_bound(self, seed, shape, mean):
        rng = RandomStreams(seed).stream("p")
        upper = mean * 4
        value = pareto_bounded(rng, shape, mean, upper)
        scale = mean * (shape - 1.0) / shape
        assert scale * 0.999 <= value <= upper

    def test_distribution_matches_analytic_cdf(self):
        """Kolmogorov-Smirnov against the truncated-Pareto CDF."""
        scipy_stats = pytest.importorskip("scipy.stats")
        shape, mean = 1.5, 192.0
        upper = 768.0
        scale = mean * (shape - 1.0) / shape
        rng = RandomStreams(99).stream("ks")
        samples = [
            pareto_bounded(rng, shape, mean, upper) for _ in range(5000)
        ]
        # Interior samples (below the truncation atom) should follow the
        # plain Pareto CDF conditioned on being below `upper`.
        interior = [s for s in samples if s < upper * 0.999]
        mass_below = 1.0 - (scale / upper) ** shape

        def conditional_cdf(x):
            import numpy as np

            raw = 1.0 - (scale / np.maximum(x, scale)) ** shape
            return raw / mass_below

        statistic, pvalue = scipy_stats.kstest(interior, conditional_cdf)
        assert pvalue > 0.01, (statistic, pvalue)
        # The atom at the bound carries the remaining mass.
        atom = 1.0 - len(interior) / len(samples)
        assert atom == pytest.approx(1.0 - mass_below, abs=0.02)
