"""The golden-trace harness: digests, diffs, blessing, and the goldens."""

from __future__ import annotations

import pytest

from repro.validate.golden import (
    canonical,
    check_digest,
    diff_digests,
    digest_hash,
    digest_to_json,
    format_diff,
    golden_dir,
    load_golden,
    save_golden,
)
from repro.validate.scenarios import run_scenario, scenario_names

pytestmark = pytest.mark.invariants


# ----------------------------------------------------------------------
# Digest mechanics
# ----------------------------------------------------------------------


class TestDigestMechanics:
    def test_canonical_rounds_and_sorts(self):
        value = {"b": 0.1 + 0.2, "a": [1, (2, 3)], "nested": {"y": 1, "x": 2}}
        out = canonical(value)
        assert list(out) == ["a", "b", "nested"]
        assert out["a"] == [1, [2, 3]]
        assert out["b"] == 0.3
        assert list(out["nested"]) == ["x", "y"]

    def test_digest_to_json_stable(self):
        d = {"z": 1.0000000000000002, "a": {"k": [3, 2]}}
        assert digest_to_json(d) == digest_to_json(canonical(d))

    def test_diff_empty_on_match(self):
        d = {"events": 100, "flows": [{"goodput": 1.25}]}
        assert diff_digests(d, d) == []

    def test_diff_reports_each_difference(self):
        golden = {"events": 100, "flows": [{"delivered": 10}], "gone": 1}
        actual = {"events": 101, "flows": [{"delivered": 12}], "new": 2}
        lines = diff_digests(golden, actual)
        text = "\n".join(lines)
        assert "events: golden=100 actual=101" in text
        assert "flows[0].delivered: golden=10 actual=12" in text
        assert "gone" in text and "new" in text

    def test_diff_list_length(self):
        lines = diff_digests({"f": [1, 2]}, {"f": [1]})
        assert any("length golden=2 actual=1" in line for line in lines)

    def test_save_load_roundtrip(self, tmp_path):
        digest = {"events": 5, "t": 0.125}
        save_golden("unit", digest, directory=tmp_path)
        assert load_golden("unit", directory=tmp_path) == canonical(digest)

    def test_load_missing_returns_none(self, tmp_path):
        assert load_golden("never-blessed", directory=tmp_path) is None

    def test_check_digest_unblessed(self, tmp_path):
        lines = check_digest("fresh", {"events": 1}, directory=tmp_path)
        assert lines and "--bless" in lines[0]

    def test_check_digest_bless_then_match(self, tmp_path):
        digest = {"events": 7}
        assert check_digest("s", digest, bless=True, directory=tmp_path) == []
        assert check_digest("s", digest, directory=tmp_path) == []
        lines = check_digest("s", {"events": 8}, directory=tmp_path)
        assert lines == ["events: golden=7 actual=8"]

    def test_format_diff_is_actionable(self):
        message = format_diff("bottleneck-xmp", ["events: golden=1 actual=2"])
        assert "bottleneck-xmp" in message
        assert "--bless" in message
        assert "events: golden=1 actual=2" in message

    def test_digest_hash_stable_and_sensitive(self):
        a = {"events": 1, "x": 0.5}
        assert digest_hash(a) == digest_hash({"x": 0.5, "events": 1})
        assert digest_hash(a) != digest_hash({"events": 2, "x": 0.5})


# ----------------------------------------------------------------------
# The checked-in goldens
# ----------------------------------------------------------------------


class TestGoldenScenarios:
    def test_all_scenarios_have_goldens(self):
        for name in scenario_names():
            assert (golden_dir() / f"{name}.json").exists(), (
                f"golden for {name!r} missing; run "
                "PYTHONPATH=src python -m repro validate --bless"
            )

    @pytest.mark.parametrize("name", scenario_names())
    def test_scenario_matches_golden(self, name, bless):
        digest, validator = run_scenario(name)
        assert not validator.violations, validator.report()
        differences = check_digest(name, digest, bless=bless)
        assert not differences, format_diff(name, differences)

    def test_run_golden_suite_ok(self):
        from repro.validate.scenarios import run_golden_suite

        report, ok = run_golden_suite(names=["bottleneck-xmp"])
        assert ok
        assert "bottleneck-xmp" in report
        assert "0 violations" in report


# ----------------------------------------------------------------------
# Sensitivity: perturbing a transport constant must trip the harness
# ----------------------------------------------------------------------


class TestPerturbation:
    def test_beta_perturbation_trips_bottleneck_golden(self):
        digest, _ = run_scenario("bottleneck-xmp", beta=8.0)
        golden = load_golden("bottleneck-xmp")
        assert golden is not None
        differences = diff_digests(golden, digest)
        assert differences, (
            "perturbing BOS beta 4 -> 8 left the bottleneck digest "
            "unchanged; the golden is not sensitive to the window law"
        )
        message = format_diff("bottleneck-xmp", differences)
        assert "--bless" in message  # loud and actionable

    def test_marking_threshold_perturbation_trips_golden(self):
        digest, _ = run_scenario("bottleneck-xmp", marking_threshold=40)
        golden = load_golden("bottleneck-xmp")
        assert diff_digests(golden, digest)

    def test_beta_perturbation_trips_fattree_golden(self):
        digest, _ = run_scenario("fattree-xmp-permutation", beta=2.0)
        golden = load_golden("fattree-xmp-permutation")
        assert golden is not None
        assert diff_digests(golden, digest)

    def test_unknown_override_rejected(self):
        with pytest.raises(KeyError, match="no overrides"):
            run_scenario("bottleneck-mixed", beta=8.0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_scenario("no-such-scenario")
