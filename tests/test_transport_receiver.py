"""Tests for the receiver: reordering, delayed ACKs, ECN echo modes."""

import pytest

from repro.net.packet import Packet, DATA
from repro.transport.receiver import (
    DELAYED_ACK_EVERY,
    XMP_MAX_CE_PER_ACK,
    EchoMode,
    Receiver,
)


class Harness:
    """A receiver on host B whose ACKs are captured at host A."""

    def __init__(self, net, echo_mode=EchoMode.XMP, delack_timeout=500e-6):
        self.net = net
        self.acks = []
        forward = net.paths("A", "B")[0]
        reverse = net.reverse_path(forward)
        net.host("A").register(0, 0, self.acks.append)
        self.receiver = Receiver(
            net.sim,
            net.host("B"),
            0,
            0,
            reverse,
            echo_mode=echo_mode,
            delack_timeout=delack_timeout,
        )

    def deliver(self, seq, ce=False, ts=None):
        """Hand a data packet directly to the receiver."""
        packet = Packet(
            DATA, 1500, 0, 0, seq=seq,
            ts=self.net.sim.now if ts is None else ts, ect=True, ce=ce,
        )
        packet.hop = 99  # pretend it traversed its path
        self.receiver.receive(packet)

    def run(self):
        self.net.sim.run()
        return self.acks


class TestCumulativeAck:
    def test_in_order_delivery_advances_rcv_nxt(self, two_host_net):
        h = Harness(two_host_net)
        for seq in range(4):
            h.deliver(seq)
        acks = h.run()
        assert acks[-1].ack == 4

    def test_acks_every_second_packet(self, two_host_net):
        h = Harness(two_host_net)
        for seq in range(6):
            h.deliver(seq)
        acks = h.run()
        assert [a.ack for a in acks] == [2, 4, 6]

    def test_delack_timer_flushes_odd_packet(self, two_host_net):
        h = Harness(two_host_net, delack_timeout=1e-4)
        h.deliver(0)
        acks = h.run()
        assert [a.ack for a in acks] == [1]

    def test_out_of_order_acks_immediately_with_old_ack(self, two_host_net):
        h = Harness(two_host_net)
        h.deliver(0)
        h.deliver(2)  # hole at 1 -> immediate dup-style ACK
        acks = h.run()
        assert acks[0].ack == 1

    def test_hole_fill_jumps_cumulative_ack(self, two_host_net):
        h = Harness(two_host_net)
        h.deliver(0)
        h.deliver(2)
        h.deliver(3)
        h.deliver(1)  # fills the hole
        acks = h.run()
        assert acks[-1].ack == 4

    def test_duplicate_segment_triggers_immediate_ack(self, two_host_net):
        h = Harness(two_host_net)
        h.deliver(0)
        h.deliver(1)
        h.deliver(0)  # spurious retransmission
        acks = h.run()
        assert len(acks) >= 2
        assert acks[-1].ack == 2
        assert h.receiver.duplicates_received == 1

    def test_on_segment_callback_reports_progress(self, two_host_net):
        progress = []
        h = Harness(two_host_net)
        h.receiver.on_segment = progress.append
        for seq in range(3):
            h.deliver(seq)
        assert progress == [1, 2, 3]


class TestTimestampEcho:
    def test_echoes_earliest_unacked_timestamp(self, two_host_net):
        h = Harness(two_host_net)
        h.deliver(0, ts=1.25)
        h.deliver(1, ts=1.5)
        acks = h.run()
        assert acks[0].ts_echo == 1.25


class TestXmpEcho:
    def test_ce_count_returned_exactly(self, two_host_net):
        h = Harness(two_host_net, echo_mode=EchoMode.XMP)
        h.deliver(0, ce=True)
        h.deliver(1, ce=True)
        acks = h.run()
        assert acks[0].ece_count == 2

    def test_clean_packets_echo_zero(self, two_host_net):
        h = Harness(two_host_net, echo_mode=EchoMode.XMP)
        h.deliver(0)
        h.deliver(1)
        acks = h.run()
        assert acks[0].ece_count == 0

    def test_delayed_ack_pairs_carry_two_ces(self, two_host_net):
        # With one ACK per two packets, four straight CE marks ride out as
        # two ACKs of two CEs each — no marks lost, none over the cap.
        h = Harness(two_host_net, echo_mode=EchoMode.XMP)
        for seq in range(4):
            h.deliver(seq, ce=True)
        acks = h.run()
        assert [a.ece_count for a in acks] == [2, 2]

    def test_encoding_caps_at_three(self, two_host_net):
        # If CEs ever pile up past 3 (deep reordering), the two-bit field
        # carries 3 and the rest spill into the next ACK.
        h = Harness(two_host_net, echo_mode=EchoMode.XMP)
        h.receiver._pending_ce = 5
        h.deliver(0)
        h.deliver(1)  # forces an ACK
        h.deliver(2)
        h.deliver(3)
        acks = h.run()
        assert acks[0].ece_count == XMP_MAX_CE_PER_ACK
        assert sum(a.ece_count for a in acks) == 5

    def test_no_ce_lost_across_many_packets(self, two_host_net):
        h = Harness(two_host_net, echo_mode=EchoMode.XMP)
        for seq in range(20):
            h.deliver(seq, ce=True)
        acks = h.run()
        assert sum(a.ece_count for a in acks) == 20
        assert max(a.ece_count for a in acks) <= XMP_MAX_CE_PER_ACK


class TestDctcpEcho:
    def test_ce_state_change_forces_ack(self, two_host_net):
        h = Harness(two_host_net, echo_mode=EchoMode.DCTCP)
        h.deliver(0, ce=True)  # state change False -> True: immediate ACK
        acks = h.run()
        assert acks[0].ece_count == 1

    def test_exact_marked_count_carried(self, two_host_net):
        h = Harness(two_host_net, echo_mode=EchoMode.DCTCP)
        h.deliver(0, ce=True)
        h.deliver(1, ce=True)  # no state change; delayed-ack pair
        acks = h.run()
        assert sum(a.ece_count for a in acks) == 2


class TestClassicEcho:
    def test_single_bit_semantics(self, two_host_net):
        h = Harness(two_host_net, echo_mode=EchoMode.CLASSIC)
        h.deliver(0, ce=True)
        h.deliver(1, ce=True)
        acks = h.run()
        assert acks[0].ece_count == 1  # "congestion seen", not a count


class TestLifecycle:
    def test_close_unregisters(self, two_host_net):
        h = Harness(two_host_net)
        h.receiver.close()
        # A late data packet is now unclaimed rather than crashing.
        packet = Packet(DATA, 1500, 0, 0, seq=0, path=two_host_net.paths("A", "B")[0])
        two_host_net.host("A").send(packet)
        two_host_net.sim.run()
        assert two_host_net.host("B").packets_unclaimed == 1

    def test_counters(self, two_host_net):
        h = Harness(two_host_net)
        h.deliver(0, ce=True)
        h.deliver(1)
        h.run()
        assert h.receiver.segments_received == 2
        assert h.receiver.ce_received == 1
        assert h.receiver.acks_sent >= 1
