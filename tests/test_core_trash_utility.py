"""Tests for TraSh coupling and the paper's model equations (Eqs. 1-9)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import utility
from repro.core.bos import BosCC
from repro.core.trash import TraSh


class StubSender:
    def __init__(self, cwnd, srtt, running=True):
        self.cwnd = cwnd
        self.srtt = srtt
        self.running = running
        self.completed = False
        self.snd_una = 0
        self.snd_nxt = 0
        self.ssthresh = math.inf
        self.in_recovery = False

    @property
    def flight(self):
        return 0

    @property
    def instant_rate(self):
        if self.srtt is None or self.srtt <= 0:
            return 0.0
        return self.cwnd / self.srtt


def coupled(windows_and_rtts):
    trash = TraSh()
    controllers = []
    for cwnd, srtt in windows_and_rtts:
        controller = trash.make_controller(beta=4)
        controller.attach(StubSender(cwnd, srtt))
        controllers.append(controller)
    return trash, controllers


class TestTraShDelta:
    def test_single_subflow_delta_is_one(self):
        trash, (c,) = coupled([(10.0, 100e-6)])
        assert trash.delta(c, 0.0) == pytest.approx(1.0)

    def test_symmetric_subflows_get_half(self):
        trash, (c1, c2) = coupled([(10.0, 100e-6), (10.0, 100e-6)])
        assert trash.delta(c1, 0.0) == pytest.approx(0.5)
        assert trash.delta(c2, 0.0) == pytest.approx(0.5)

    def test_deltas_sum_to_one_for_equal_rtts(self):
        trash, controllers = coupled(
            [(5.0, 100e-6), (20.0, 100e-6), (10.0, 100e-6)]
        )
        total = sum(trash.delta(c, 0.0) for c in controllers)
        assert total == pytest.approx(1.0)

    def test_smaller_window_smaller_delta(self):
        trash, (small, big) = coupled([(5.0, 100e-6), (20.0, 100e-6)])
        assert trash.delta(small, 0.0) < trash.delta(big, 0.0)

    def test_matches_eq9(self):
        trash, (c1, c2) = coupled([(8.0, 200e-6), (24.0, 100e-6)])
        x1, x2 = 8.0 / 200e-6, 24.0 / 100e-6
        expected = utility.trash_delta(x1, 200e-6, x1 + x2, 100e-6)
        assert trash.delta(c1, 0.0) == pytest.approx(expected)

    def test_falls_back_to_one_without_rtt(self):
        trash, (c,) = coupled([(10.0, None)])
        assert trash.delta(c, 0.0) == 1.0

    def test_completed_subflow_excluded(self):
        trash, (c1, c2) = coupled([(10.0, 100e-6), (10.0, 100e-6)])
        c2.sender.completed = True
        assert trash.delta(c1, 0.0) == pytest.approx(1.0)

    def test_min_rtt_selected(self):
        trash, _ = coupled([(10.0, 300e-6), (10.0, 100e-6)])
        assert trash.min_rtt() == 100e-6

    def test_make_controller_returns_coupled_bos(self):
        trash = TraSh()
        controller = trash.make_controller(beta=5)
        assert isinstance(controller, BosCC)
        assert controller.beta == 5
        assert controller.delta_provider is not None


class TestCongestionEqualityPrinciple:
    """Proposition 1: delta rises exactly on under-congested paths."""

    def test_proposition1(self):
        # Path 1 lightly congested (low p), path 2 heavily congested.
        beta = 4.0
        rtts = [100e-6, 100e-6]
        deltas = [1.0, 1.0]
        rates = [
            utility.equilibrium_window(0.05, deltas[0], beta) / rtts[0],
            utility.equilibrium_window(0.4, deltas[1], beta) / rtts[1],
        ]
        new_deltas = utility.trash_step(rates, rtts)
        # The less congested path gets more aggressive, the more congested
        # one backs off.
        assert new_deltas[0] > new_deltas[1]

    def test_fixed_point_stability(self):
        # At equal congestion with equal RTTs, the update is stationary.
        rates = [50.0, 50.0]
        rtts = [100e-6, 100e-6]
        deltas = utility.trash_step(rates, rtts)
        assert deltas == pytest.approx([0.5, 0.5])
        # Applying the equilibrium rates derived from those deltas again
        # reproduces them (a fixed point).
        again = utility.trash_step(rates, rtts)
        assert again == pytest.approx(deltas)

    @given(
        rates=st.lists(st.floats(1.0, 1e6), min_size=2, max_size=6),
        rtt_us=st.lists(st.floats(50, 5000), min_size=2, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_deltas_scale_invariant_and_bounded(self, rates, rtt_us):
        n = min(len(rates), len(rtt_us))
        rates, rtts = rates[:n], [u * 1e-6 for u in rtt_us[:n]]
        deltas = utility.trash_step(rates, rtts)
        assert all(d >= 0 for d in deltas)
        # Scaling all rates by a constant leaves deltas unchanged.
        scaled = utility.trash_step([r * 7 for r in rates], rtts)
        for a, b in zip(deltas, scaled):
            assert a == pytest.approx(b)

    @given(rates=st.lists(st.floats(1.0, 1e6), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_equal_rtt_deltas_sum_to_one(self, rates):
        rtts = [100e-6] * len(rates)
        deltas = utility.trash_step(rates, rtts)
        assert sum(deltas) == pytest.approx(1.0)


class TestEquation1:
    def test_paper_example_beta4(self):
        # §2.1: BDP 33 packets, beta=4 -> K >= 11; the paper picks K=10
        # for BDP ~ 30 (1 Gbps, RTT < 400 us, MTU 1500).
        assert utility.min_marking_threshold(30, 4) == 10.0

    def test_beta2_needs_full_bdp(self):
        assert utility.min_marking_threshold(19, 2) == 19.0

    def test_larger_beta_smaller_k(self):
        ks = [utility.min_marking_threshold(33, beta) for beta in (2, 3, 4, 5, 6)]
        assert ks == sorted(ks, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            utility.min_marking_threshold(30, 1.5)
        with pytest.raises(ValueError):
            utility.min_marking_threshold(-1, 4)


class TestEquation3:
    def test_probability_window_roundtrip(self):
        for p in (0.01, 0.1, 0.5, 0.9):
            w = utility.equilibrium_window(p, 1.0, 4.0)
            assert utility.equilibrium_marking_probability(w, 1.0, 4.0) == pytest.approx(p)

    def test_larger_window_lower_probability(self):
        p1 = utility.equilibrium_marking_probability(10, 1.0, 4.0)
        p2 = utility.equilibrium_marking_probability(100, 1.0, 4.0)
        assert p2 < p1

    @given(
        w=st.floats(0.0, 1e4),
        delta=st.floats(0.01, 10),
        beta=st.floats(2, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_probability_in_unit_interval(self, w, delta, beta):
        p = utility.equilibrium_marking_probability(w, delta, beta)
        assert 0.0 < p <= 1.0


class TestUtilityFunctions:
    def test_eq4_increasing(self):
        values = [utility.bos_utility(x, 1e-4, 4.0) for x in (1, 10, 100, 1000)]
        assert values == sorted(values)

    def test_eq4_strictly_concave(self):
        # Second differences negative.
        xs = [10.0 * i for i in range(1, 30)]
        us = [utility.bos_utility(x, 1e-4, 4.0) for x in xs]
        diffs = [b - a for a, b in zip(us, us[1:])]
        assert all(d2 < d1 for d1, d2 in zip(diffs, diffs[1:]))

    @given(x=st.floats(0.0, 1e9), rtt=st.floats(1e-6, 1.0), beta=st.floats(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_eq4_nonnegative(self, x, rtt, beta):
        assert utility.bos_utility(x, rtt, beta) >= 0.0

    def test_eq7_is_derivative_of_eq6(self):
        beta, rtt = 4.0, 1e-4
        y = 1e5
        h = 1.0
        numeric = (
            utility.xmp_utility(y + h, rtt, beta) - utility.xmp_utility(y - h, rtt, beta)
        ) / (2 * h)
        analytic = utility.xmp_expected_congestion(y, rtt, beta)
        assert numeric == pytest.approx(analytic, rel=1e-4)

    def test_eq7_interpretation_as_congestion(self):
        # At zero rate the expected congestion is 1, decaying toward 0.
        assert utility.xmp_expected_congestion(0.0, 1e-4, 4.0) == 1.0
        assert utility.xmp_expected_congestion(1e9, 1e-4, 4.0) < 1e-3

    def test_eq8_matches_eq3_shape(self):
        # Eq. 8 is Eq. 3 with x = w/T substituted.
        w, rtt, delta, beta = 20.0, 1e-4, 1.0, 4.0
        assert utility.subflow_equilibrium_probability(
            w / rtt, rtt, delta, beta
        ) == pytest.approx(utility.equilibrium_marking_probability(w, delta, beta))

    def test_validation(self):
        with pytest.raises(ValueError):
            utility.equilibrium_window(0.0, 1.0, 4.0)
        with pytest.raises(ValueError):
            utility.bos_utility(-1.0, 1e-4, 4.0)
        with pytest.raises(ValueError):
            utility.trash_delta(1.0, 1e-4, 0.0, 1e-4)
        with pytest.raises(ValueError):
            utility.trash_step([1.0], [1.0, 2.0])
