"""Tests for unit conversions."""

import pytest

from repro.sim import units


class TestTime:
    def test_milliseconds(self):
        assert units.milliseconds(200) == pytest.approx(0.2)

    def test_microseconds(self):
        assert units.microseconds(225) == pytest.approx(225e-6)

    def test_nanoseconds(self):
        assert units.nanoseconds(500) == pytest.approx(5e-7)

    def test_seconds_identity(self):
        assert units.seconds(1.5) == 1.5


class TestRates:
    def test_gigabit(self):
        assert units.gigabits_per_second(1) == 1e9

    def test_megabit(self):
        assert units.megabits_per_second(300) == 300e6

    def test_kilobit(self):
        assert units.kilobits_per_second(56) == 56e3


class TestSizes:
    def test_kilobytes(self):
        assert units.kilobytes(64) == 64_000

    def test_kibibytes(self):
        assert units.kibibytes(64) == 65_536

    def test_megabytes(self):
        assert units.megabytes(192) == 192_000_000

    def test_gigabytes(self):
        assert units.gigabytes(1) == 1_000_000_000

    def test_bytes_rounds_down(self):
        assert units.bytes_(10.9) == 10


class TestDerived:
    def test_transmission_delay_1500B_gigabit(self):
        # The paper's "one buffered packet will increase RTT by 12 us".
        assert units.transmission_delay(1500, 1e9) == pytest.approx(12e-6)

    def test_transmission_delay_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            units.transmission_delay(1500, 0)

    def test_bdp_matches_paper_example(self):
        # §2.1: 1 Gbps x 225 us / (8 x 1500) ~= 19 packets.
        bdp = units.bandwidth_delay_product_packets(1e9, 225e-6)
        assert bdp == pytest.approx(18.75)

    def test_bdp_fattree_bound(self):
        # §3: 1 Gbps, RTT < 400 us  =>  BDP ~ 33 packets.
        bdp = units.bandwidth_delay_product_packets(1e9, 400e-6)
        assert bdp == pytest.approx(33.3, abs=0.1)

    def test_bdp_rejects_bad_packet_size(self):
        with pytest.raises(ValueError):
            units.bandwidth_delay_product_packets(1e9, 1e-3, 0)
