"""Determinism of experiment drivers: same config, bit-identical results.

Reproducibility is a headline property for a simulation release; these
tests pin it at the driver level (the engine-level test lives in
test_behavior_invariants).
"""

import dataclasses

from repro.experiments.fattree_eval import FatTreeScenario, run_fattree
from repro.experiments.fig4_traffic_shifting import Fig4Config, run_fig4
from repro.experiments.fig6_fairness import Fig6Config, run_fig6

TINY = FatTreeScenario(
    duration=0.05,
    perm_size_min=50_000,
    perm_size_max=150_000,
    seed=9,
)


class TestFatTreeDeterminism:
    def fingerprint(self, result):
        return (
            tuple(
                (r.flow_id, r.src, r.dst, r.delivered_bytes, r.complete_time)
                for label in sorted(result.records)
                for r in result.records[label]
            ),
            result.total_marked,
            result.total_dropped,
            result.events,
        )

    def test_same_seed_identical(self):
        a = run_fattree(TINY, use_cache=False)
        b = run_fattree(TINY, use_cache=False)
        assert self.fingerprint(a) == self.fingerprint(b)

    def test_different_seed_differs(self):
        a = run_fattree(TINY, use_cache=False)
        b = run_fattree(dataclasses.replace(TINY, seed=10), use_cache=False)
        assert self.fingerprint(a) != self.fingerprint(b)

    def test_scenario_hashable_and_equal(self):
        assert TINY == dataclasses.replace(TINY)
        assert hash(TINY) == hash(dataclasses.replace(TINY))
        assert TINY != dataclasses.replace(TINY, seed=10)


class TestSmallDriverDeterminism:
    def test_fig4_repeatable(self):
        config = Fig4Config(time_scale=0.02)
        a = run_fig4(config)
        b = run_fig4(config)
        assert a.times == b.times
        assert a.rates == b.rates

    def test_fig6_repeatable(self):
        config = Fig6Config(time_scale=0.02)
        a = run_fig6(config)
        b = run_fig6(config)
        assert a.rates == b.rates

    def test_fig4_series_shapes(self):
        result = run_fig4(Fig4Config(time_scale=0.02))
        for series in result.rates.values():
            assert len(series) == len(result.times)
