"""Tests for result export (JSON/CSV artifacts)."""

import csv
import json

from repro.experiments.export import export_fattree_result, export_rate_result
from repro.experiments.fattree_eval import FatTreeScenario, run_fattree
from repro.experiments.fig4_traffic_shifting import Fig4Config, run_fig4

TINY = FatTreeScenario(
    duration=0.06,
    perm_size_min=50_000,
    perm_size_max=150_000,
    seed=5,
)


class TestFatTreeExport:
    def test_files_created(self, tmp_path):
        result = run_fattree(TINY)
        out = export_fattree_result(result, tmp_path / "run")
        for name in ("summary.json", "flows.csv", "jct.csv",
                     "rtt_samples.csv", "links.csv"):
            assert (out / name).exists(), name

    def test_summary_contents(self, tmp_path):
        result = run_fattree(TINY)
        out = export_fattree_result(result, tmp_path)
        summary = json.loads((out / "summary.json").read_text())
        assert summary["scenario"]["scheme"] == "xmp"
        assert summary["duration"] == TINY.duration
        assert summary["mean_goodput_bps"] > 0
        assert summary["events"] > 0

    def test_flows_csv_rows(self, tmp_path):
        result = run_fattree(TINY)
        out = export_fattree_result(result, tmp_path)
        rows = list(csv.DictReader(open(out / "flows.csv")))
        expected = sum(
            len(records) for records in result.records.values()
        ) + sum(len(records) for records in result.unfinished.values())
        assert len(rows) == expected
        for row in rows:
            assert float(row["goodput_bps"]) >= 0

    def test_links_csv_covers_all_links(self, tmp_path):
        result = run_fattree(TINY)
        out = export_fattree_result(result, tmp_path)
        rows = list(csv.DictReader(open(out / "links.csv")))
        assert len(rows) == len(result.link_utilization)

    def test_rtt_samples_tagged(self, tmp_path):
        result = run_fattree(TINY)
        out = export_fattree_result(result, tmp_path)
        rows = list(csv.DictReader(open(out / "rtt_samples.csv")))
        categories = {row["category"] for row in rows}
        assert categories <= {"inter-pod", "inter-rack", "inner-rack"}


class TestRateExport:
    def test_fig4_export(self, tmp_path):
        result = run_fig4(Fig4Config(time_scale=0.02))
        out = export_rate_result(result, tmp_path, name="fig4")
        rows = list(csv.reader(open(out / "fig4.csv")))
        assert rows[0][0] == "time"
        assert "flow2-1" in rows[0]
        assert len(rows) == len(result.times) + 1
        config = json.loads((out / "config.json").read_text())
        assert config["beta"] == 4.0
