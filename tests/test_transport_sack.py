"""Tests for the (optional, simplified) SACK implementation."""

import pytest

from repro.mptcp.connection import MptcpConnection
from repro.net.packet import Packet, DATA, make_ack_packet
from repro.topology.bottleneck import build_single_bottleneck
from repro.transport.cc import RenoCC
from repro.transport.receiver import EchoMode, Receiver
from repro.transport.tcp import FiniteSource, TcpSender


class ReceiverHarness:
    def __init__(self, net):
        self.net = net
        self.acks = []
        forward = net.paths("A", "B")[0]
        net.host("A").register(0, 0, self.acks.append)
        self.receiver = Receiver(
            net.sim, net.host("B"), 0, 0, net.reverse_path(forward),
            echo_mode=EchoMode.CLASSIC, sack_enabled=True,
        )

    def deliver(self, seq):
        packet = Packet(DATA, 1500, 0, 0, seq=seq, ts=self.net.sim.now)
        packet.hop = 99
        self.receiver.receive(packet)

    def run(self):
        self.net.sim.run()
        return self.acks


class TestReceiverSackBlocks:
    def test_no_blocks_when_in_order(self, two_host_net):
        h = ReceiverHarness(two_host_net)
        h.deliver(0)
        h.deliver(1)
        acks = h.run()
        assert all(a.sack == () for a in acks)

    def test_single_block_reported(self, two_host_net):
        h = ReceiverHarness(two_host_net)
        h.deliver(0)
        h.deliver(2)
        h.deliver(3)
        acks = h.run()
        assert acks[-1].sack == ((2, 4),)

    def test_multiple_blocks_highest_first(self, two_host_net):
        h = ReceiverHarness(two_host_net)
        h.deliver(0)
        for seq in (2, 5, 6, 9):
            h.deliver(seq)
        acks = h.run()
        blocks = acks[-1].sack
        assert blocks == ((9, 10), (5, 7), (2, 3))

    def test_at_most_three_blocks(self, two_host_net):
        h = ReceiverHarness(two_host_net)
        h.deliver(0)
        for seq in (2, 4, 6, 8, 10):
            h.deliver(seq)
        acks = h.run()
        assert len(acks[-1].sack) == 3

    def test_blocks_cleared_once_holes_fill(self, two_host_net):
        h = ReceiverHarness(two_host_net)
        h.deliver(0)
        h.deliver(2)
        h.deliver(1)
        acks = h.run()
        assert acks[-1].sack == ()
        assert acks[-1].ack == 3


class SenderHarness:
    def __init__(self, net, total=10_000, initial_cwnd=10):
        self.net = net
        self.sent = []
        forward = net.paths("A", "B")[0]
        self.reverse = net.reverse_path(forward)
        net.host("B").register(0, 0, self.sent.append)
        self.sender = TcpSender(
            net.sim, net.host("A"), 0, 0, forward, RenoCC(),
            FiniteSource(total), initial_cwnd=initial_cwnd, sack_enabled=True,
        )

    def start(self):
        self.sender.start()
        self.net.sim.run(until=self.net.sim.now + 0.01)

    def ack(self, ack_no, sack=()):
        packet = make_ack_packet(0, 0, ack_no, self.net.sim.now,
                                 ts_echo=-1.0, path=self.reverse, sack=sack)
        self.net.host("B").send(packet)
        self.net.sim.run(until=self.net.sim.now + 0.01)


class TestSenderSackRecovery:
    def test_scoreboard_updates(self, two_host_net):
        h = SenderHarness(two_host_net)
        h.start()
        h.ack(1, sack=((3, 5),))
        assert h.sender._sacked == {3, 4}

    def test_repairs_multiple_holes_per_window(self, two_host_net):
        # Segments 1, 3, 5 lost; 2, 4, 6.. sacked.  NewReno repairs one
        # hole per RTT; SACK one per dupack.
        h = SenderHarness(two_host_net, initial_cwnd=8)
        h.start()
        h.ack(1)
        h.ack(1, sack=((2, 3),))
        h.ack(1, sack=((2, 3), (4, 5),))
        h.ack(1, sack=((2, 3), (4, 5), (6, 7)))  # third dup: fast rtx of 1
        assert h.sender.in_recovery
        h.ack(1, sack=((2, 3), (4, 5), (6, 7)))  # dup: repairs hole 3
        h.ack(1, sack=((2, 3), (4, 5), (6, 7)))  # dup: repairs hole 5
        retransmitted = [p.seq for p in h.sent[8:]]
        assert 1 in retransmitted
        assert 3 in retransmitted
        assert 5 in retransmitted

    def test_each_hole_retransmitted_once(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=8)
        h.start()
        h.ack(1)
        for _ in range(6):
            h.ack(1, sack=((2, 3),))
        retransmissions = [p.seq for p in h.sent[8:]]
        assert retransmissions.count(1) == 1

    def test_scoreboard_cleared_on_recovery_exit(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=8)
        h.start()
        h.ack(1)
        for _ in range(3):
            h.ack(1, sack=((2, 3),))
        assert h.sender.in_recovery
        h.ack(h.sender.recover)
        assert not h.sender.in_recovery
        assert h.sender._sacked == set()

    def test_scoreboard_cleared_on_rto(self, two_host_net):
        h = SenderHarness(two_host_net, initial_cwnd=4)
        h.sender.start()
        h.net.sim.run(until=0.001)
        h.ack(0, sack=((2, 3),))
        two = h.sender
        h.net.sim.run(until=1.5)  # initial RTO
        assert two.timeouts >= 1
        assert two._sacked == set()


class TestSackEndToEnd:
    def test_sack_speeds_up_lossy_transfer(self):
        """TCP over a DropTail bottleneck with slow-start overshoot: the
        SACK flow recovers burst losses in far fewer RTTs."""

        def run(sack):
            net = build_single_bottleneck(
                num_pairs=1, marking_threshold=None, queue_capacity=40
            )
            conn = MptcpConnection(
                net, "S0", "D0", [net.flow_path(0)],
                scheme="tcp", size_bytes=10_000_000, sack=sack,
            )
            conn.start()
            net.sim.run(until=0.5)
            return conn.delivered_bytes, conn.subflows[0].sender.timeouts

        without_bytes, _ = run(False)
        with_bytes, _ = run(True)
        assert with_bytes >= without_bytes
