"""Tests for the experiment CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig4", "table1", "jct"):
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_fig4_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.beta == 4.0
        assert args.time_scale == 0.2

    def test_fig7_options(self):
        args = build_parser().parse_args(
            ["fig7", "--beta", "5", "--threshold", "15"]
        )
        assert args.beta == 5.0
        assert args.threshold == 15

    def test_table1_patterns(self):
        args = build_parser().parse_args(
            ["table1", "--patterns", "permutation"]
        )
        assert args.patterns == ["permutation"]

    def test_telemetry_flag_on_every_experiment(self):
        args = build_parser().parse_args(["table1", "--telemetry", "t/"])
        assert args.telemetry == "t/"
        assert build_parser().parse_args(["fig1"]).telemetry is None

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "fattree"])
        assert args.experiment == "fattree"
        assert args.scheme == "xmp"
        assert args.top == 12
        assert args.telemetry == "telemetry"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "table1"])


class TestExecution:
    """Each runner executes end-to-end at a tiny scale."""

    def test_fig1(self, capsys):
        assert main(["fig1", "--interval", "0.1", "--scheme", "bos"]) == 0
        out = capsys.readouterr().out
        assert "Jain" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--time-scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "subflow 1" in out

    def test_fig6(self, capsys):
        assert main(["fig6", "--time-scale", "0.05"]) == 0
        assert "Jain index" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7", "--time-scale", "0.01"]) == 0
        assert "flow3-1" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main([
            "table1", "--duration", "0.05", "--patterns", "permutation",
        ]) == 0
        assert "XMP-2" in capsys.readouterr().out

    def test_jct(self, capsys):
        assert main(["jct", "--duration", "0.2"]) == 0
        assert "Job Completion Time" in capsys.readouterr().out

    def test_rtt(self, capsys):
        assert main(["rtt", "--duration", "0.05"]) == 0
        assert "RTT by category" in capsys.readouterr().out

    def test_utilization(self, capsys):
        assert main(["utilization", "--duration", "0.05"]) == 0
        assert "utilization by layer" in capsys.readouterr().out

    def test_profile(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        out_dir = tmp_path / "telem"
        assert main([
            "profile", "fattree", "--duration", "0.02",
            "--telemetry", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "profile: fattree/XMP-2/permutation" in out
        assert "events" in out and "heap:" in out
        assert "x real time" in out
        lines = (out_dir / "runs.jsonl").read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["kind"] == "fattree"
        assert record["profile"]["hotspots"]

    def test_experiment_with_telemetry(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        # --telemetry exports $REPRO_TELEMETRY (like --validate's
        # $REPRO_VALIDATE); setenv first so teardown restores this state.
        monkeypatch.setenv("REPRO_TELEMETRY", "")
        out_dir = tmp_path / "telem"
        assert main([
            "fig4", "--time-scale", "0.02", "--no-cache",
            "--telemetry", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "[telemetry] appended to" in out
        [record] = [json.loads(line) for line in
                    (out_dir / "runs.jsonl").read_text().splitlines()]
        assert record["kind"] == "fig4"
        assert record["profile"] is not None
