"""Tests for the Network container."""

import pytest

from repro.net.network import Network
from repro.net.queue import ThresholdECNQueue


class TestConstruction:
    def test_duplicate_host_name_rejected(self):
        net = Network()
        net.add_host("A")
        with pytest.raises(ValueError):
            net.add_host("A")

    def test_host_switch_name_collision_rejected(self):
        net = Network()
        net.add_host("X")
        with pytest.raises(ValueError):
            net.add_switch("X")

    def test_connect_creates_two_links(self):
        net = Network()
        a, b = net.add_host("A"), net.add_host("B")
        net.connect(a, b, 1e9, 1e-6)
        assert len(net.links) == 2
        assert {link.name for link in net.links} == {"A->B", "B->A"}

    def test_each_direction_gets_its_own_queue(self):
        net = Network()
        a, b = net.add_host("A"), net.add_host("B")
        fwd, bwd = net.connect(a, b, 1e9, 1e-6)
        assert fwd.queue is not bwd.queue

    def test_queue_factory_applied(self):
        net = Network()
        a, b = net.add_host("A"), net.add_host("B")
        fwd, _ = net.connect(
            a, b, 1e9, 1e-6, queue_factory=lambda: ThresholdECNQueue(50, 7)
        )
        assert fwd.queue.capacity == 50
        assert fwd.queue.threshold == 7

    def test_layer_tagging(self):
        net = Network()
        a, b = net.add_host("A"), net.add_host("B")
        net.connect(a, b, 1e9, 1e-6, layer="core")
        assert len(net.links_by_layer("core")) == 2
        assert net.links_by_layer("rack") == []

    def test_flow_ids_unique_and_increasing(self):
        net = Network()
        ids = [net.next_flow_id() for _ in range(5)]
        assert ids == sorted(set(ids))


class TestReversePaths:
    def test_reverse_of_connected_link(self):
        net = Network()
        a, b = net.add_host("A"), net.add_host("B")
        fwd, bwd = net.connect(a, b, 1e9, 1e-6)
        assert net.reverse_of(fwd) is bwd
        assert net.reverse_of(bwd) is fwd

    def test_reverse_path_retraces_hops(self):
        net = Network()
        a, b = net.add_host("A"), net.add_host("B")
        s = net.add_switch("S")
        net.connect(a, s, 1e9, 1e-6)
        net.connect(s, b, 1e9, 1e-6)
        path = net.paths("A", "B")[0]
        reverse = net.reverse_path(path)
        assert len(reverse) == len(path)
        assert reverse[0].src is b
        assert reverse[-1].dst is a

    def test_reverse_of_unpaired_link_raises(self):
        net = Network()
        a, b = net.add_host("A"), net.add_host("B")
        only = net.add_link(a, b, 1e9, 1e-6)
        with pytest.raises(ValueError):
            net.reverse_of(only)

    def test_link_pair_down_and_up(self):
        net = Network()
        a, b = net.add_host("A"), net.add_host("B")
        fwd, bwd = net.connect(a, b, 1e9, 1e-6)
        net.set_link_pair_down(fwd)
        assert not fwd.up and not bwd.up
        net.set_link_pair_up(fwd)
        assert fwd.up and bwd.up


class TestAggregates:
    def test_total_counters_start_zero(self):
        net = Network()
        a, b = net.add_host("A"), net.add_host("B")
        net.connect(a, b, 1e9, 1e-6)
        assert net.total_dropped() == 0
        assert net.total_marked() == 0

    def test_path_cache_invalidated_by_new_link(self):
        net = Network()
        a, b = net.add_host("A"), net.add_host("B")
        s1 = net.add_switch("S1")
        net.connect(a, s1, 1e9, 1e-6)
        net.connect(s1, b, 1e9, 1e-6)
        assert len(net.paths("A", "B")) == 1
        s2 = net.add_switch("S2")
        net.connect(a, s2, 1e9, 1e-6)
        net.connect(s2, b, 1e9, 1e-6)
        assert len(net.paths("A", "B")) == 2
