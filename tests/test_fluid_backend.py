"""Tests for the fluid backend package (repro.fluid) and the integrator
fixes in repro.core.fluid it depends on: exact step counts, final-state
sampling, tail-fraction validation, Eq. 2/3 equilibrium properties, the
reference/vector solver equivalence, combinatorial fat-tree paths, and
the runner/telemetry backend plumbing."""

import math

import pytest

from repro.core import fluid, utility
from repro.fluid import (
    FluidScenario,
    integrate_model,
    model_from_network,
    run_fluid,
    vector_available,
)
from repro.fluid.backend import _simulate
from repro.fluid.laws import FLUID_SCHEMES
from repro.net.network import Network
from repro.sim.units import seconds
from repro.topology.bottleneck import build_single_bottleneck
from repro.topology.fattree import build_fattree


# ----------------------------------------------------------------------
# Satellite 1: float-truncated step counts
# ----------------------------------------------------------------------


class TestStepCount:
    def test_exact_multiple_not_truncated(self):
        # The original bug: int(0.3 / 1e-4) == 2999 silently shortens
        # the horizon by one step.
        assert int(0.3 / 1e-4) == 2999
        assert fluid.step_count(0.3, 1e-4) == 3000

    @pytest.mark.parametrize(
        "duration, dt, expected",
        [
            (0.2, 2e-5, 10000),
            (0.1, 1e-4, 1000),
            (1.0, 1e-3, 1000),
            (0.3, 1e-4, 3000),
            (3e-4, 1e-4, 3),
        ],
    )
    def test_near_multiples(self, duration, dt, expected):
        assert fluid.step_count(duration, dt) == expected

    def test_at_least_one_step(self):
        assert fluid.step_count(1e-6, 1e-4) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            fluid.step_count(0.0, 1e-4)
        with pytest.raises(ValueError):
            fluid.step_count(0.1, 0.0)
        with pytest.raises(ValueError):
            fluid.step_count(-0.1, 1e-4)

    def test_single_flow_integrator_full_horizon(self):
        # duration/dt = 0.3/1e-4: the truncating form would return 2999
        # samples; the fixed integrator covers all 3000 steps.
        trajectory = fluid.integrate_single_flow(
            lambda t: 0.0, duration=0.3, dt=1e-4
        )
        assert len(trajectory) == 3000


# ----------------------------------------------------------------------
# Satellite 2: sampling stride always records the final state
# ----------------------------------------------------------------------


class TestSampling:
    def test_final_state_recorded_when_stride_misses(self):
        # 30 steps, stride 16 -> raw strides hit i=0 and 16 only; the
        # final step (i=29) must be recorded anyway.
        dt = 1e-4
        result = fluid.integrate_shared_link(
            num_flows=1, capacity_bps=1e9, base_rtt=225e-6,
            threshold=10, duration=30 * dt, dt=dt, sample_stride=16,
        )
        assert result.times == pytest.approx([0.0, 16 * dt, 29 * dt])

    def test_stride_one_samples_every_step(self):
        result = fluid.integrate_shared_link(
            num_flows=1, capacity_bps=1e9, base_rtt=225e-6,
            threshold=10, duration=0.001, dt=1e-4, sample_stride=1,
        )
        assert len(result.times) == 10

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            fluid.integrate_shared_link(
                num_flows=1, capacity_bps=1e9, base_rtt=225e-6,
                threshold=10, duration=0.001, sample_stride=0,
            )

    def test_default_stride_is_named_constant(self):
        assert fluid.SAMPLE_STRIDE == 16

    def test_trajectory_final_state_recorded(self):
        net = build_single_bottleneck(num_pairs=1)
        model = model_from_network(net, [[net.flow_path(0)]])
        dt = 1e-4
        trajectory = integrate_model(
            model, "xmp", duration=30 * dt, dt=dt, sample_stride=16
        )
        assert trajectory.times[-1] == pytest.approx(29 * dt)
        assert trajectory.steps == 30


# ----------------------------------------------------------------------
# Satellite 3: tail_fraction validation
# ----------------------------------------------------------------------


class TestTailFraction:
    def _result(self):
        return fluid.integrate_shared_link(
            num_flows=2, capacity_bps=1e9, base_rtt=225e-6,
            threshold=10, duration=0.01,
        )

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5, 2.0])
    def test_out_of_range_raises(self, bad):
        result = self._result()
        with pytest.raises(ValueError):
            result.steady_state_windows(tail_fraction=bad)
        with pytest.raises(ValueError):
            result.steady_state_queue(tail_fraction=bad)
        with pytest.raises(ValueError):
            fluid.tail_mean([1.0, 2.0], tail_fraction=bad)

    def test_full_fraction_is_plain_mean(self):
        assert fluid.tail_mean([1.0, 2.0, 3.0], 1.0) == pytest.approx(2.0)

    def test_tiny_fraction_keeps_final_sample(self):
        assert fluid.tail_mean([1.0, 2.0, 3.0], 1e-9) == pytest.approx(3.0)

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            fluid.tail_mean([], 0.3)

    def test_single_sample(self):
        assert fluid.tail_mean([7.0], 0.3) == pytest.approx(7.0)


# ----------------------------------------------------------------------
# Satellite 4: equilibrium property tests (Eq. 3, conservation)
# ----------------------------------------------------------------------


class TestEquilibriumProperties:
    @pytest.mark.parametrize("delta", [0.5, 1.0, 2.0])
    @pytest.mark.parametrize("beta", [2.0, 4.0, 8.0])
    @pytest.mark.parametrize("p", [0.05, 0.2, 0.5])
    def test_eq3_fixed_point_grid(self, delta, beta, p):
        """Eq. 2 converges to w* = delta*beta*(1-p)/p across the knob grid."""
        expected = utility.equilibrium_window(p, delta, beta)
        trajectory = fluid.integrate_single_flow(
            lambda t: p, duration=0.4, dt=2e-5, beta=beta, delta=delta
        )
        assert trajectory[-1] == pytest.approx(max(expected, 1.0), rel=0.03)

    @pytest.mark.parametrize("num_flows", [1, 2, 4, 8])
    def test_aggregate_rate_matches_capacity(self, num_flows):
        """Conservation: N flows sharing one link fill it, never exceed it
        beyond integration tolerance."""
        capacity = 1e9
        base_rtt = 225e-6
        result = fluid.integrate_shared_link(
            num_flows=num_flows, capacity_bps=capacity, base_rtt=base_rtt,
            threshold=10, duration=0.3,
        )
        capacity_pps = capacity / fluid.PACKET_BITS
        rtt = base_rtt + result.steady_state_queue() / capacity_pps
        total_pps = sum(result.steady_state_windows()) / rtt
        assert total_pps == pytest.approx(capacity_pps, rel=0.05)

    @pytest.mark.parametrize("scheme", FLUID_SCHEMES)
    def test_backend_aggregate_matches_capacity(self, scheme):
        """Same conservation through the full backend, for every scheme."""
        scenario = FluidScenario(
            scheme=scheme, topology="bottleneck", flows=4,
            duration=seconds(0.2),
        )
        result = _simulate(scenario)
        total = sum(result.flow_goodputs_bps())
        assert total == pytest.approx(1e9, rel=0.05)

    def test_equal_flows_get_equal_goodput(self):
        result = _simulate(FluidScenario(flows=4, duration=seconds(0.2)))
        goodputs = result.flow_goodputs_bps()
        assert max(goodputs) - min(goodputs) < 0.02 * max(goodputs)


# ----------------------------------------------------------------------
# Tentpole: the fluid backend proper
# ----------------------------------------------------------------------


class TestFluidBackend:
    def test_queue_settles_near_threshold(self):
        result = _simulate(FluidScenario(flows=4, duration=seconds(0.2)))
        queue = result.steady_state_queue("SWL->SWR")
        assert 5 < queue < 15

    def test_unknown_link_raises(self):
        result = _simulate(FluidScenario(flows=1, duration=seconds(0.01)))
        with pytest.raises(KeyError):
            result.steady_state_queue("nope->nowhere")

    def test_events_counts_state_updates(self):
        scenario = FluidScenario(flows=2, duration=seconds(0.01))
        result = _simulate(scenario)
        steps = fluid.step_count(scenario.duration, scenario.dt)
        # 2 flows x 1 subflow + bottleneck topology links.
        expected = steps * (2 + result.num_links)
        assert result.events == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            _simulate(FluidScenario(scheme="cubic"))
        with pytest.raises(ValueError):
            _simulate(FluidScenario(topology="torus"))
        with pytest.raises(ValueError):
            _simulate(FluidScenario(flows=0))
        with pytest.raises(ValueError):
            _simulate(FluidScenario(subflows=0))

    def test_label(self):
        assert FluidScenario().label() == "XMP/bottleneck-f4"
        assert (
            FluidScenario(scheme="lia", topology="fattree",
                          flows=16, subflows=2).label()
            == "LIA-2/fattree-f16"
        )

    def test_runs_through_runner_and_cache(self):
        from repro.runner import RunCache

        cache = RunCache()
        scenario = FluidScenario(flows=2, duration=seconds(0.01))
        first = run_fluid(scenario, cache=cache)
        second = run_fluid(scenario, cache=cache)
        assert first.steady_state_windows() == second.steady_state_windows()

    def test_fattree_scenario_subflows_spread_paths(self):
        result = _simulate(FluidScenario(
            topology="fattree", flows=16, subflows=2,
            duration=seconds(0.02),
        ))
        assert len(result.flow_of_subflow) == 32
        assert result.num_flows == 16

    def test_deterministic_across_seeded_runs(self):
        scenario = FluidScenario(
            topology="fattree", flows=8, subflows=2,
            duration=seconds(0.01), seed=7,
        )
        a = _simulate(scenario)
        b = _simulate(scenario)
        assert a.trajectory.windows == b.trajectory.windows
        assert a.trajectory.queues == b.trajectory.queues


# ----------------------------------------------------------------------
# Reference vs vector solver equivalence
# ----------------------------------------------------------------------


@pytest.mark.skipif(not vector_available(), reason="numpy not installed")
class TestSolverEquivalence:
    @pytest.mark.parametrize("scheme", FLUID_SCHEMES)
    def test_solvers_agree(self, scheme):
        """The numpy solver is a vectorization, not a reinterpretation:
        trajectories match the pure-Python reference to float tolerance."""
        base = FluidScenario(
            scheme=scheme, topology="fattree", flows=8, subflows=2,
            duration=seconds(0.01),
        )
        ref = _simulate(base)
        vec = _simulate(FluidScenario(
            scheme=scheme, topology="fattree", flows=8, subflows=2,
            duration=seconds(0.01), solver="vector",
        ))
        for r_series, v_series in zip(
            ref.trajectory.windows, vec.trajectory.windows
        ):
            for r, v in zip(r_series, v_series):
                assert math.isclose(r, v, rel_tol=1e-9)
        for r_series, v_series in zip(
            ref.trajectory.queues, vec.trajectory.queues
        ):
            for r, v in zip(r_series, v_series):
                assert math.isclose(r, v, rel_tol=1e-9, abs_tol=1e-9)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            _simulate(FluidScenario(solver="magic"))


# ----------------------------------------------------------------------
# Combinatorial fat-tree paths == generic BFS enumeration
# ----------------------------------------------------------------------


class TestFatTreePathConstruction:
    def test_identical_to_generic_enumeration_k4(self):
        """The combinatorial construction must reproduce the generic DFS
        enumeration exactly — order included — or ECMP selections (and
        every golden trace) would silently change."""
        net = build_fattree(k=4)
        hosts = net.host_names
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                constructed = net._construct_paths(src, dst, 64)
                generic = Network.paths(net, src, dst, 64)
                assert constructed == generic, (src, dst)

    def test_truncation_matches_generic(self):
        net = build_fattree(k=8)
        src, dst = "h_0_0_0", "h_1_0_0"
        constructed = net._construct_paths(src, dst, 5)
        generic = Network.paths(net, src, dst, 5)
        assert len(constructed) == 5
        assert constructed == generic

    def test_path_counts(self):
        net = build_fattree(k=4)
        assert len(net.paths("h_0_0_0", "h_0_0_1")) == 1   # inner-rack
        assert len(net.paths("h_0_0_0", "h_0_1_0")) == 2   # inter-rack
        assert len(net.paths("h_0_0_0", "h_1_0_0")) == 4   # inter-pod
        assert net.paths("h_0_0_0", "h_0_0_0") == [()]

    def test_switch_pairs_fall_back_to_generic(self):
        net = build_fattree(k=4)
        # Switch endpoints are not hosts; Network.paths handles hosts
        # only, so just pin that the fast path declines them.
        assert net._construct_paths("edge_0_0", "edge_0_1", 64) is None


# ----------------------------------------------------------------------
# Runner + telemetry backend plumbing
# ----------------------------------------------------------------------


class TestBackendPlumbing:
    def test_backend_of(self):
        from repro.runner.registry import (
            BACKEND_FLUID,
            BACKEND_PACKET,
            backend_of,
        )

        assert backend_of("fluid") == BACKEND_FLUID
        assert backend_of("fattree") == BACKEND_PACKET
        assert backend_of("fig1") == BACKEND_PACKET
        with pytest.raises(KeyError):
            backend_of("nope")

    def test_run_record_carries_backend(self):
        from repro.obs.records import TELEMETRY_SCHEMA, run_record
        from repro.runner.registry import execute
        from repro.runner.spec import RunSpec

        result = execute(RunSpec(
            "fluid", FluidScenario(flows=1, duration=seconds(0.005))
        ))
        record = run_record(result)
        assert record["schema"] == TELEMETRY_SCHEMA
        assert record["backend"] == "fluid"
        assert record["kind"] == "fluid"
        assert record["events"] == result.value.events

    def test_run_record_unknown_kind_defaults_to_packet(self):
        from repro.obs.records import run_record
        from repro.runner.spec import CellMetrics, RunResult, RunSpec

        result = RunResult(
            spec=RunSpec("unregistered-kind", FluidScenario(flows=1)),
            value=None,
            metrics=CellMetrics(),
        )
        assert run_record(result)["backend"] == "packet"

    def test_backend_in_deterministic_view(self):
        from repro.obs.records import deterministic_view, run_record
        from repro.runner.registry import execute
        from repro.runner.spec import RunSpec

        result = execute(RunSpec(
            "fluid", FluidScenario(flows=1, duration=seconds(0.005))
        ))
        view = deterministic_view(run_record(result))
        assert view["backend"] == "fluid"
