"""Tests for public-API helper methods not covered elsewhere."""

import subprocess
import sys

import pytest

from repro.experiments.fig4_traffic_shifting import Fig4Config, Fig4Result
from repro.experiments.fig7_rate_compensation import Fig7Config, Fig7Result
from repro.mptcp.connection import MptcpConnection
from repro.transport.receiver import EchoMode, Receiver


class TestConnectionIntrospection:
    def test_subflow_rates_before_start_are_zero(self, two_host_net):
        conn = MptcpConnection(
            two_host_net, "A", "B", two_host_net.paths("A", "B"), scheme="xmp"
        )
        assert conn.subflow_rates_bps() == [0.0] * len(conn.subflows)
        assert conn.srtts() == [None] * len(conn.subflows)

    def test_subflow_rates_reflect_activity(self, two_host_net):
        conn = MptcpConnection(
            two_host_net, "A", "B", two_host_net.paths("A", "B"), scheme="xmp"
        )
        conn.start()
        two_host_net.sim.run(until=0.05)
        rates = conn.subflow_rates_bps()
        srtts = conn.srtts()
        assert any(rate > 0 for rate in rates)
        assert any(srtt is not None and srtt > 0 for srtt in srtts)

    def test_repr_is_informative(self, two_host_net):
        conn = MptcpConnection(
            two_host_net, "A", "B", two_host_net.paths("A", "B"), scheme="xmp"
        )
        text = repr(conn)
        assert "xmp" in text and "A->B" in text


class TestResultHelpers:
    def test_fig4_mean_normalized_empty_window(self):
        result = Fig4Result(config=Fig4Config())
        result.times = [1.0]
        result.rates = {"flow2-1": [150e6]}
        assert result.mean_normalized("flow2-1", 5.0, 6.0) == 0.0
        assert result.mean_normalized("flow2-1", 0.5, 1.5) == pytest.approx(0.5)

    def test_fig4_normalized_series(self):
        result = Fig4Result(config=Fig4Config())
        result.times = [1.0, 2.0]
        result.rates = {"flow2-1": [300e6, 150e6]}
        assert result.normalized("flow2-1") == pytest.approx([1.0, 0.5])

    def test_fig7_mean_rate_empty(self):
        result = Fig7Result(config=Fig7Config())
        result.times = []
        result.rates = {"flow1-1": []}
        assert result.mean_rate("flow1-1", 0.0, 1.0) == 0.0

    def test_fig7_normalized_mean_scaling(self):
        result = Fig7Result(config=Fig7Config())
        result.times = [1.0]
        result.rates = {"flow1-1": [5e8]}
        assert result.normalized_mean("flow1-1", 0.0, 2.0) == pytest.approx(0.5)


class TestReceiverLifecycle:
    def test_close_cancels_pending_delack(self, two_host_net):
        from repro.net.packet import DATA, Packet

        net = two_host_net
        acks = []
        net.host("A").register(0, 0, acks.append)
        receiver = Receiver(
            net.sim, net.host("B"), 0, 0,
            net.reverse_path(net.paths("A", "B")[0]),
            echo_mode=EchoMode.XMP, delack_timeout=1e-3,
        )
        packet = Packet(DATA, 1500, 0, 0, seq=0)
        packet.hop = 1
        receiver.receive(packet)  # arms the delack timer
        receiver.close()
        net.sim.run(until=0.01)
        assert acks == []  # timer cancelled, no ACK after close

    def test_jittered_acks_still_cumulative(self, two_host_net):
        from repro.net.packet import DATA, Packet

        net = two_host_net
        acks = []
        net.host("A").register(0, 0, acks.append)
        receiver = Receiver(
            net.sim, net.host("B"), 0, 0,
            net.reverse_path(net.paths("A", "B")[0]),
            echo_mode=EchoMode.XMP, ack_jitter=50e-6, jitter_seed=3,
        )
        for seq in range(10):
            packet = Packet(DATA, 1500, 0, 0, seq=seq)
            packet.hop = 1
            receiver.receive(packet)
        net.sim.run()
        assert max(a.ack for a in acks) == 10


class TestExampleSmoke:
    def test_quickstart_runs_as_script(self):
        completed = subprocess.run(
            [sys.executable, "examples/quickstart.py"],
            capture_output=True, text=True, timeout=120, cwd="/root/repo",
        )
        assert completed.returncode == 0
        assert "goodput" in completed.stdout
        assert "completed: True" in completed.stdout
