"""Miscellaneous coverage: small behaviours not exercised elsewhere."""

import random

import pytest

from repro.metrics.collector import PeriodicSampler
from repro.mptcp.coupling import UncoupledFactory
from repro.net.queue import REDQueue
from repro.sim.engine import Simulator
from repro.transport.cc import RenoCC
from repro.transport.dctcp import DctcpCC


class TestUncoupledFactory:
    def test_controllers_listed(self):
        factory = UncoupledFactory(DctcpCC)
        a = factory.make_controller()
        b = factory.make_controller()
        assert factory.controllers == [a, b]
        assert a is not b

    def test_factory_builds_requested_type(self):
        factory = UncoupledFactory(lambda: RenoCC(ecn=True))
        controller = factory.make_controller()
        assert isinstance(controller, RenoCC)
        assert controller.ecn_capable


class TestRedCornerCases:
    def test_degenerate_equal_thresholds_probability(self):
        queue = REDQueue(100, 10, 10, weight=1.0, rng=random.Random(0))
        queue.avg = 10.0
        assert queue._mark_probability() == 1.0
        queue.avg = 9.99
        assert queue._mark_probability() == 0.0

    def test_avg_persists_across_arrivals(self):
        from repro.net.packet import DATA, Packet

        queue = REDQueue(100, 5, 15, weight=0.5, rng=random.Random(0))
        for _ in range(4):
            queue.accept(Packet(DATA, 1500, 0, 0, ect=True))
        # EWMA with w=0.5 over occupancies 0,1,2,3.
        expected = 0.0
        for occupancy in (0, 1, 2, 3):
            expected += 0.5 * (occupancy - expected)
        assert queue.avg == pytest.approx(expected)


class TestPeriodicSamplerSemantics:
    def test_until_bound_inclusive_behavior(self):
        sim = Simulator()
        ticks = []

        class Recorder(PeriodicSampler):
            def sample(self):
                ticks.append(self.sim.now)

        sampler = Recorder(sim, interval=0.1, until=0.35)
        sampler.start(0.1)
        sim.run(until=1.0)
        assert ticks == pytest.approx([0.1, 0.2, 0.3])

    def test_no_until_runs_with_heap(self):
        sim = Simulator()
        ticks = []

        class Recorder(PeriodicSampler):
            def sample(self):
                ticks.append(self.sim.now)

        Recorder(sim, interval=0.1).start(0.1)
        sim.run(until=0.55)
        # Self-rescheduling keeps the heap alive until the run bound.
        assert len(ticks) == 5

    def test_interval_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicSampler(sim, interval=-1.0)


class TestSimulatorPriorities:
    def test_priority_with_timer_interplay(self):
        from repro.sim.events import Timer

        sim = Simulator()
        order = []
        timer = Timer(sim, lambda: order.append("timer"))
        timer.start(1.0)
        sim.schedule(1.0, lambda: order.append("low"), priority=5)
        sim.schedule(1.0, lambda: order.append("high"), priority=-5)
        sim.run()
        assert order[0] == "high"
        assert "timer" in order

    def test_many_same_time_events_stable(self):
        sim = Simulator()
        fired = []
        for i in range(200):
            sim.schedule(0.5, fired.append, i)
        sim.run()
        assert fired == list(range(200))
