"""Tests for the fluid model (Eq. 2 integration) and its agreement with
both the closed-form equilibria (Eq. 3) and the packet simulator."""

import pytest

from repro.core import fluid, utility


class TestSingleFlowOde:
    def test_converges_to_eq3_fixed_point(self):
        p = 0.2
        beta, delta = 4.0, 1.0
        trajectory = fluid.integrate_single_flow(
            lambda t: p, duration=0.2, dt=1e-5, beta=beta, delta=delta
        )
        expected = utility.equilibrium_window(p, delta, beta)
        assert trajectory[-1] == pytest.approx(expected, rel=0.02)

    def test_fixed_point_is_stationary(self):
        p = 0.1
        w_star = utility.equilibrium_window(p, 1.0, 4.0)
        assert fluid.bos_window_ode(w_star, p, 1.0, 4.0, 1e-4) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_drift_sign(self):
        p = 0.1
        w_star = utility.equilibrium_window(p, 1.0, 4.0)
        assert fluid.bos_window_ode(w_star / 2, p, 1.0, 4.0, 1e-4) > 0
        assert fluid.bos_window_ode(w_star * 2, p, 1.0, 4.0, 1e-4) < 0

    def test_no_marks_grows_delta_per_rtt(self):
        rtt = 1e-4
        trajectory = fluid.integrate_single_flow(
            lambda t: 0.0, duration=10 * rtt, dt=1e-6, w0=5.0, rtt=rtt
        )
        assert trajectory[-1] == pytest.approx(15.0, rel=0.01)

    def test_larger_delta_larger_equilibrium(self):
        p = 0.2
        small = fluid.integrate_single_flow(lambda t: p, 0.1, delta=0.5)[-1]
        large = fluid.integrate_single_flow(lambda t: p, 0.1, delta=2.0)[-1]
        assert large > 2 * small

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fluid.integrate_single_flow(lambda t: 0.5, duration=0)
        with pytest.raises(ValueError):
            fluid.integrate_single_flow(lambda t: 1.5, duration=0.01)
        with pytest.raises(ValueError):
            fluid.bos_window_ode(1.0, 0.1, 1.0, 4.0, 0.0)


class TestMarkingProbability:
    def test_half_at_threshold(self):
        assert fluid.threshold_marking_probability(10, 10) == pytest.approx(0.5)

    def test_monotone(self):
        ps = [fluid.threshold_marking_probability(q, 10) for q in range(0, 30)]
        assert ps == sorted(ps)

    def test_sharp_far_from_threshold(self):
        assert fluid.threshold_marking_probability(0, 10) < 0.01
        assert fluid.threshold_marking_probability(20, 10) > 0.99

    def test_width_validation(self):
        with pytest.raises(ValueError):
            fluid.threshold_marking_probability(5, 10, width=0)


class TestSharedLink:
    def test_queue_settles_near_threshold(self):
        result = fluid.integrate_shared_link(
            num_flows=2, capacity_bps=1e9, base_rtt=225e-6,
            threshold=10, duration=0.2,
        )
        queue = result.steady_state_queue()
        assert 5 < queue < 20

    def test_equal_flows_get_equal_windows(self):
        result = fluid.integrate_shared_link(
            num_flows=4, capacity_bps=1e9, base_rtt=225e-6,
            threshold=10, duration=0.2,
        )
        windows = result.steady_state_windows()
        assert max(windows) - min(windows) < 0.05 * max(windows)

    def test_total_rate_matches_capacity(self):
        capacity = 1e9
        base_rtt = 225e-6
        result = fluid.integrate_shared_link(
            num_flows=2, capacity_bps=capacity, base_rtt=base_rtt,
            threshold=10, duration=0.2,
        )
        windows = result.steady_state_windows()
        queue = result.steady_state_queue()
        capacity_pps = capacity / fluid.PACKET_BITS
        rtt = base_rtt + queue / capacity_pps
        total_pps = sum(windows) / rtt
        assert total_pps == pytest.approx(capacity_pps, rel=0.05)

    def test_delta_ratio_sets_window_ratio(self):
        # TraSh's lever: a flow with twice the delta should hold roughly
        # twice the window at the shared equilibrium (Eq. 8).
        result = fluid.integrate_shared_link(
            num_flows=2, capacity_bps=1e9, base_rtt=225e-6,
            threshold=10, duration=0.3, deltas=[1.0, 2.0],
        )
        w1, w2 = result.steady_state_windows()
        assert w2 / w1 == pytest.approx(2.0, rel=0.2)

    def test_matches_packet_simulator(self):
        """Headline validation: fluid model vs packet-level simulator."""
        from repro.mptcp.connection import MptcpConnection
        from repro.topology.bottleneck import build_single_bottleneck

        # Fluid prediction.
        result = fluid.integrate_shared_link(
            num_flows=2, capacity_bps=1e9, base_rtt=225e-6,
            threshold=10, duration=0.2,
        )
        fluid_windows = result.steady_state_windows()

        # Packet simulation of the same setup.
        net = build_single_bottleneck(
            num_pairs=2, bottleneck_rate_bps=1e9, rtt=225e-6,
            marking_threshold=10,
        )
        conns = []
        for i in range(2):
            conn = MptcpConnection(net, f"S{i}", f"D{i}",
                                   [net.flow_path(i)], scheme="xmp")
            conn.start()
            conns.append(conn)
        net.sim.run(until=0.3)
        packet_windows = [c.subflows[0].sender.cwnd for c in conns]

        for fluid_w, packet_w in zip(fluid_windows, packet_windows):
            assert packet_w == pytest.approx(fluid_w, rel=0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            fluid.integrate_shared_link(0, 1e9, 1e-4, 10, 0.01)
        with pytest.raises(ValueError):
            fluid.integrate_shared_link(2, 1e9, 1e-4, 10, 0.01, deltas=[1.0])
        with pytest.raises(ValueError):
            fluid.integrate_shared_link(1, 0, 1e-4, 10, 0.01)
