"""Final coverage round: random-pattern views, constructor plumbing,
and factory behaviour on non-fat-tree networks."""

import dataclasses

import pytest

from repro.experiments.fattree_eval import FatTreeScenario, run_fattree
from repro.experiments.fig10_rtt import run_fig10
from repro.experiments.fig11_utilization import run_fig11
from repro.mptcp.connection import MptcpConnection
from repro.topology.bottleneck import build_single_bottleneck
from repro.traffic.factory import TransferFactory

TINY = FatTreeScenario(
    duration=0.08,
    random_mean=100_000,
    random_max=300_000,
    seed=13,
)
SCHEMES = (("xmp", 2),)


class TestRandomPatternViews:
    def test_fig10_random(self):
        result = run_fig10("random", TINY, schemes=SCHEMES)
        assert result.rtt["XMP-2"]
        for summary in result.rtt["XMP-2"].values():
            assert summary["p50"] > 0

    def test_fig11_random(self):
        result = run_fig11("random", TINY, schemes=SCHEMES)
        layers = result.utilization["XMP-2"]
        assert set(layers) == {"core", "aggregation", "rack"}

    def test_random_runs_have_unfinished_tail(self):
        run = run_fattree(dataclasses.replace(TINY, scheme="xmp", subflows=2,
                                              pattern="random"))
        # Random keeps one flow per source alive at all times.
        assert run.unfinished["XMP-2"]


class TestConstructorPlumbing:
    def test_initial_cwnd_reaches_senders(self, two_host_net):
        conn = MptcpConnection(
            two_host_net, "A", "B", two_host_net.paths("A", "B"),
            scheme="xmp", initial_cwnd=4,
        )
        assert all(s.sender.cwnd == 4.0 for s in conn.subflows)

    def test_rto_min_reaches_estimators(self, two_host_net):
        conn = MptcpConnection(
            two_host_net, "A", "B", two_host_net.paths("A", "B"),
            scheme="xmp", rto_min=0.01,
        )
        assert all(s.sender.rtt.rto_min == 0.01 for s in conn.subflows)

    def test_delack_timeout_reaches_receivers(self, two_host_net):
        conn = MptcpConnection(
            two_host_net, "A", "B", two_host_net.paths("A", "B"),
            scheme="xmp", delack_timeout=2e-3,
        )
        assert all(s.receiver.delack_timeout == 2e-3 for s in conn.subflows)

    def test_added_subflow_inherits_settings(self, two_host_net):
        conn = MptcpConnection(
            two_host_net, "A", "B", two_host_net.paths("A", "B"),
            scheme="xmp", initial_cwnd=6, sack=True,
        )
        subflow = conn.add_subflow(two_host_net.paths("A", "B")[0])
        assert subflow.sender.cwnd == 6.0
        assert subflow.sender.sack_enabled
        assert subflow.receiver.sack_enabled


class TestFactoryOutsideFatTree:
    def test_category_is_any(self):
        net = build_single_bottleneck(num_pairs=1)
        factory = TransferFactory(net, "xmp", subflow_count=1)
        assert factory.category("S0", "D0") == "any"

    def test_launch_and_record_on_bottleneck(self):
        net = build_single_bottleneck(num_pairs=1)
        factory = TransferFactory(net, "dctcp", subflow_count=1,
                                  label="MYLABEL")
        factory.launch("S0", "D0", 100_000)
        net.sim.run(until=0.5)
        assert factory.records
        assert factory.records[0].scheme == "MYLABEL"
        assert factory.records[0].category == "any"

    def test_subflow_count_override_per_launch(self):
        net = build_single_bottleneck(num_pairs=1)
        factory = TransferFactory(net, "xmp", subflow_count=1)
        conn = factory.launch("S0", "D0", 50_000, subflow_count=3)
        assert len(conn.subflows) == 3
