"""Fixture-corpus tests for simsem, the cross-module semantic pass.

Each direct subdirectory of ``tests/lint_fixtures/sem/`` is one
mini-project, analyzed as a unit through
``ProjectAnalyzer.analyze_sources`` with the virtual paths taken from
each file's ``# simlint-path:`` header.  Directories ending in ``_bad``
must produce exactly the findings their ``# EXPECT:`` comments announce
(code, line and multiplicity); directories ending in ``_good`` must be
clean.  A ``sinks.toml`` inside the directory seeds the project's sink
registry; otherwise the registry starts empty and only alias-annotated
parameters declare sinks.
"""

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.lint.sem import ProjectAnalyzer, SinkRegistry
from repro.lint.sem.registry import parse_sinks_toml

pytestmark = pytest.mark.simsem

SEM_FIXTURES = Path(__file__).parent / "lint_fixtures" / "sem"
SEM_CODES = ("SIM011", "SIM012", "SIM013", "SIM014", "SIM015")

_PATH_RE = re.compile(r"#\s*simlint-path:\s*(\S+)")
_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*([A-Z0-9 ,]+)")

#: Every message must contain at least one of its code's anchor phrases,
#: so a rule cannot silently degenerate into a generic complaint.
MESSAGE_PHRASES = {
    "SIM011": ("declared",),
    "SIM012": ("dimensionally unsafe", "no physical meaning"),
    "SIM013": ("seed",),
    "SIM014": ("observer",),
    "SIM015": ("never referenced",),
}


def project_dirs():
    return sorted(path for path in SEM_FIXTURES.iterdir() if path.is_dir())


def load_project(project: Path):
    """(virtual-path, source) pairs, expected findings, sink registry."""
    items = []
    expected: Counter = Counter()
    for path in sorted(project.glob("*.py")):
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        match = _PATH_RE.match(lines[0]) if lines else None
        assert match, f"{path} is missing its '# simlint-path:' header"
        virtual = match.group(1)
        items.append((virtual, text))
        for lineno, line in enumerate(lines, start=1):
            expect = _EXPECT_RE.search(line)
            if expect:
                for code in expect.group(1).split(","):
                    expected[(virtual, code.strip(), lineno)] += 1
    toml = project / "sinks.toml"
    if toml.exists():
        registry = SinkRegistry(
            parse_sinks_toml(toml.read_text(encoding="utf-8"), origin=str(toml))
        )
    else:
        registry = SinkRegistry()
    return items, expected, registry


def analyze_project(project: Path):
    items, expected, registry = load_project(project)
    analyzer = ProjectAnalyzer(registry=registry, cache=None)
    return analyzer.analyze_sources(items), expected


@pytest.mark.parametrize("project", project_dirs(), ids=lambda p: p.name)
def test_fixture_findings_exact(project):
    """Bad twins produce exactly their EXPECTed (path, code, line)
    multiset; good twins produce nothing."""
    findings, expected = analyze_project(project)
    actual = Counter((f.path, f.code, f.line) for f in findings)
    assert actual == expected, (
        f"{project.name}: findings diverge from EXPECT comments\n"
        + "\n".join(f.format() for f in findings)
    )
    if project.name.endswith("_good"):
        assert not findings
    if project.name.endswith("_bad"):
        assert findings, f"{project.name} found nothing"


@pytest.mark.parametrize("project", project_dirs(), ids=lambda p: p.name)
def test_fixture_messages_anchor_phrases(project):
    """Messages stay explanatory — each carries its rule's anchor."""
    findings, _expected = analyze_project(project)
    for finding in findings:
        phrases = MESSAGE_PHRASES[finding.code]
        assert any(phrase in finding.message for phrase in phrases), (
            f"{finding.code} message lost its anchor phrase: "
            f"{finding.message!r}"
        )


@pytest.mark.parametrize("code", SEM_CODES)
def test_every_sem_rule_has_bad_and_good_twin(code):
    """Each cross-module rule keeps a failing and a passing fixture."""
    suffix = code[3:].lstrip("0")
    bad = SEM_FIXTURES / f"sim0{suffix}_bad"
    good = SEM_FIXTURES / f"sim0{suffix}_good"
    assert bad.is_dir(), f"no bad twin for {code}"
    assert good.is_dir(), f"no good twin for {code}"
    bad_findings, _ = analyze_project(bad)
    assert any(f.code == code for f in bad_findings), (
        f"{bad.name} never triggers {code}"
    )


def test_finding_order_is_deterministic():
    """Same project, any input order, twice — identical finding lists."""
    project = SEM_FIXTURES / "sim011_bad"
    items, _expected, registry = load_project(project)
    runs = []
    for ordered in (items, list(reversed(items)), items):
        analyzer = ProjectAnalyzer(registry=registry, cache=None)
        runs.append([f.format() for f in analyzer.analyze_sources(ordered)])
    assert runs[0] == runs[1] == runs[2]
    # And the order itself is the canonical (path, line, col, code) sort.
    keys = [(f.path, f.line, f.col, f.code) for f in (
        ProjectAnalyzer(registry=registry, cache=None).analyze_sources(items)
    )]
    assert keys == sorted(keys)


def test_suppression_fixture_is_honoured():
    """The suppressed twin would fire SIM012 without its pragma."""
    project = SEM_FIXTURES / "sim012_suppressed_good"
    items, _expected, registry = load_project(project)
    findings = ProjectAnalyzer(registry=registry, cache=None).analyze_sources(items)
    assert findings == []
    stripped = [
        (path, text.replace("# simlint: disable=SIM012", ""))
        for path, text in items
    ]
    findings = ProjectAnalyzer(registry=registry, cache=None).analyze_sources(stripped)
    assert [f.code for f in findings] == ["SIM012"]
