"""Tests for the opt-in batched (train) link service mode.

Batched mode (``Link(batch=N)`` / ``REPRO_LINK_BATCH``) coalesces up to N
serialization-finish events into one train-finished event while posting
every delivery at its exact per-packet arrival instant.  These tests pin
the contract the module docstring states: arrival times identical to
exact mode, per-packet ``observer.on_transmit`` hooks, byte counters
committed at train start, profiler train accounting, and the env-var
plumbing of :func:`repro.net.link.default_link_batch`.
"""

import pytest

from repro.net.link import Link, default_link_batch
from repro.net.node import Node
from repro.net.packet import Packet, DATA
from repro.net.queue import DropTailQueue
from repro.obs.profiler import Profiler
from repro.sim.engine import Simulator


class Sink(Node):
    __slots__ = ("arrivals",)

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet))


class RecordingObserver:
    """Minimal link observer: counts on_transmit like repro.validate's."""

    def __init__(self):
        self.transmitted = []

    def on_transmit(self, link, packet):
        self.transmitted.append((link.sim.now, packet))


def make_link(sim, batch=None, rate=1e9, delay=10e-6, capacity=100):
    src = Sink(sim, "src")
    dst = Sink(sim, "dst")
    link = Link(
        sim, "L", src, dst, rate, delay, DropTailQueue(capacity), batch=batch
    )
    return link, dst


def data(i=0, size=1500):
    return Packet(DATA, size, 0, 0, seq=i)


def drive(batch, n_packets, sim=None):
    """Enqueue ``n_packets`` back-to-back and return (arrivals, link)."""
    sim = sim if sim is not None else Simulator()
    link, dst = make_link(sim, batch=batch)
    packets = [data(i) for i in range(n_packets)]
    for p in packets:
        link.enqueue(p)
    sim.run()
    return dst.arrivals, link


class TestEquivalence:
    @pytest.mark.parametrize("batch", [2, 4, 16])
    @pytest.mark.parametrize("n", [1, 3, 7, 16, 33])
    def test_arrival_instants_match_exact_mode(self, batch, n):
        # Equal up to float association: exact mode sums tx times one
        # event at a time, a train accumulates offsets from its start,
        # so the same instants can differ in the last ulp.
        exact, _ = drive(None, n)
        batched, _ = drive(batch, n)
        assert [t for t, _ in batched] == pytest.approx(
            [t for t, _ in exact], rel=1e-12, abs=0.0
        )
        assert [p.seq for _, p in batched] == [p.seq for _, p in exact]

    def test_counters_match_exact_mode_at_end(self):
        exact_arr, exact_link = drive(None, 9)
        batched_arr, batched_link = drive(4, 9)
        assert batched_link.packets_transmitted == exact_link.packets_transmitted
        assert batched_link.bytes_transmitted == exact_link.bytes_transmitted
        assert batched_link.busy is False and exact_link.busy is False

    def test_fewer_scheduler_events_than_exact(self):
        sim_exact = Simulator()
        drive(None, 32, sim=sim_exact)
        sim_batched = Simulator()
        drive(16, 32, sim=sim_batched)
        assert sim_batched.events_processed < sim_exact.events_processed


class TestHooksAndProfiler:
    def test_train_path_fires_on_transmit_per_packet(self):
        sim = Simulator()
        link, dst = make_link(sim, batch=4)
        observer = RecordingObserver()
        link.observer = observer
        for i in range(6):
            link.enqueue(data(i))
        sim.run()
        # The first packet starts a train from `enqueue`; all six packets
        # must be observed exactly once, in service order.
        assert [p.seq for _, p in observer.transmitted] == list(range(6))

    def test_profiler_counts_trains_and_packets(self):
        sim = Simulator()
        profiler = Profiler()
        profiler.attach(sim)
        link, _ = make_link(sim, batch=4)
        for i in range(10):
            link.enqueue(data(i))
        sim.run()
        snap = profiler.snapshot()
        assert snap.heap.batched_packets == 10
        # The first train starts from `enqueue` while the queue is still
        # empty, so it serves a single packet: trains of 1, 4, 4, 1.
        assert snap.heap.batches == 4

    def test_exact_mode_reports_no_batches(self):
        sim = Simulator()
        profiler = Profiler()
        profiler.attach(sim)
        link, _ = make_link(sim, batch=None)
        for i in range(5):
            link.enqueue(data(i))
        sim.run()
        snap = profiler.snapshot()
        assert snap.heap.batches == 0
        assert snap.heap.batched_packets == 0


class TestFailureSemantics:
    def test_down_link_between_trains_stops_service(self):
        sim = Simulator()
        link, dst = make_link(sim, batch=2)
        for i in range(6):
            link.enqueue(data(i))
        # Trains at batch=2: {0} (started from `enqueue` with an empty
        # queue), then {1, 2}, ...  Take the link down mid-second-train:
        # its deliveries are already posted and still arrive, the queued
        # remainder {3, 4, 5} is discarded, and the train-finished event
        # finds the link down and releases the transmitter.
        mid_second_train = 2 * (1500 * 8.0 / 1e9)
        sim.schedule(mid_second_train, link.set_down, priority=-1)
        sim.run()
        assert [p.seq for _, p in dst.arrivals] == [0, 1, 2]
        assert link.busy is False
        assert link.queue.stats.dropped == 3


class TestConfiguration:
    def test_batch_parameter_clamps_to_one(self):
        sim = Simulator()
        link, _ = make_link(sim, batch=0)
        assert link.batch == 1
        link2, _ = make_link(sim, batch=-3)
        assert link2.batch == 1

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINK_BATCH", "8")
        assert default_link_batch() == 8
        sim = Simulator()
        link, _ = make_link(sim, batch=None)
        assert link.batch == 8

    @pytest.mark.parametrize("raw", ["", "  ", "zero", "1", "-4", "0"])
    def test_env_var_invalid_or_disabled_means_exact(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_LINK_BATCH", raw)
        assert default_link_batch() == 1

    def test_rebind_refreshes_hot_callbacks(self):
        # The pre-bound serve/deliver callbacks must follow a __class__
        # swap (the repro.validate wrapping strategy) once _rebind runs.
        sim = Simulator()
        link, dst = make_link(sim, batch=None)
        seen = []

        class Traced(Link):
            __slots__ = ()

            def _finish_transmission(self, packet):
                seen.append(packet.seq)
                Link._finish_transmission(self, packet)

        link.__class__ = Traced
        link._rebind()
        for i in range(3):
            link.enqueue(data(i))
        sim.run()
        assert seen == [0, 1, 2]
        assert [p.seq for _, p in dst.arrivals] == [0, 1, 2]
