"""Integration tests of transport behaviours that need a real network:
loss recovery under injected drops, ECN round trips, RTO chains, and the
interaction of delayed ACKs with window growth."""

import pytest

from repro.mptcp.connection import MptcpConnection
from repro.net.network import Network
from repro.net.queue import DropTailQueue, ThresholdECNQueue
from repro.topology.bottleneck import build_single_bottleneck


def tiny_buffer_net(capacity):
    """One pair over a 100 Mbps bottleneck with a tiny queue."""
    net = build_single_bottleneck(
        num_pairs=1, bottleneck_rate_bps=100e6, rtt=1e-3,
        marking_threshold=None, queue_capacity=capacity,
    )
    return net


class TestLossRecovery:
    def test_tcp_completes_despite_heavy_drops(self):
        net = tiny_buffer_net(capacity=5)
        conn = MptcpConnection(net, "S0", "D0", [net.flow_path(0)],
                               scheme="tcp", size_bytes=2_000_000)
        conn.start()
        net.sim.run(until=10.0)
        assert conn.completed
        assert net.total_dropped() > 0

    def test_fast_retransmit_preferred_over_rto(self):
        net = tiny_buffer_net(capacity=20)
        conn = MptcpConnection(net, "S0", "D0", [net.flow_path(0)],
                               scheme="tcp", size_bytes=2_000_000)
        conn.start()
        net.sim.run(until=10.0)
        sender = conn.subflows[0].sender
        assert conn.completed
        # With a 20-packet buffer most losses are recoverable via dupacks.
        assert sender.fast_retransmits >= sender.timeouts

    def test_sack_reduces_recovery_time(self):
        def completion_time(sack):
            net = tiny_buffer_net(capacity=12)
            conn = MptcpConnection(net, "S0", "D0", [net.flow_path(0)],
                                   scheme="tcp", size_bytes=2_000_000,
                                   sack=sack)
            conn.start()
            net.sim.run(until=20.0)
            assert conn.completed
            return conn.complete_time

        # SACK should never be slower; usually faster on burst losses.
        assert completion_time(True) <= completion_time(False) * 1.05

    def test_every_scheme_survives_tiny_buffers(self):
        for scheme, subflows in [("tcp", 1), ("dctcp", 1), ("xmp", 1),
                                 ("lia", 1), ("olia", 1)]:
            net = tiny_buffer_net(capacity=8)
            conn = MptcpConnection(net, "S0", "D0",
                                   [net.flow_path(0)] * subflows,
                                   scheme=scheme, size_bytes=500_000)
            conn.start()
            net.sim.run(until=20.0)
            assert conn.completed, scheme


class TestEcnRoundTrip:
    def test_marks_travel_end_to_end(self):
        net = build_single_bottleneck(num_pairs=1, marking_threshold=5)
        conn = MptcpConnection(net, "S0", "D0", [net.flow_path(0)],
                               scheme="xmp", size_bytes=5_000_000)
        conn.start()
        net.sim.run(until=1.0)
        assert conn.completed
        # Marks were produced and consumed: reductions happened.
        assert net.total_marked() > 0
        assert conn.subflows[0].sender.cc.reductions > 0

    def test_non_ect_flow_never_marked(self):
        net = build_single_bottleneck(num_pairs=1, marking_threshold=0)
        conn = MptcpConnection(net, "S0", "D0", [net.flow_path(0)],
                               scheme="tcp", size_bytes=1_000_000)
        conn.start()
        net.sim.run(until=1.0)
        assert net.total_marked() == 0

    def test_receiver_echo_reaches_reductions_once_per_round(self):
        net = build_single_bottleneck(num_pairs=1, marking_threshold=3)
        conn = MptcpConnection(net, "S0", "D0", [net.flow_path(0)],
                               scheme="xmp")
        conn.start()
        net.sim.run(until=0.2)
        sender = conn.subflows[0].sender
        # Reductions cannot exceed rounds (once-per-round invariant).
        assert sender.cc.reductions <= sender.rounds


class TestIsolation:
    def test_two_connections_do_not_cross_deliver(self):
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        s = net.add_switch("S")
        queue = lambda: ThresholdECNQueue(100, 10)
        net.connect(a, s, 1e9, 1e-5, queue_factory=queue)
        net.connect(s, b, 1e9, 1e-5, queue_factory=queue)
        path = net.paths("A", "B")
        c1 = MptcpConnection(net, "A", "B", path, scheme="xmp",
                             size_bytes=500_000)
        c2 = MptcpConnection(net, "A", "B", path, scheme="dctcp",
                             size_bytes=500_000)
        c1.start()
        c2.start()
        net.sim.run(until=1.0)
        assert c1.completed and c2.completed
        assert c1.delivered_bytes >= 500_000
        assert c2.delivered_bytes >= 500_000
        assert net.host("B").packets_unclaimed == 0
