"""Tests for the workload patterns (permutation / random / incast)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.fattree import build_fattree
from repro.traffic.factory import TransferFactory
from repro.traffic.incast import IncastPattern, REQUEST_BYTES, RESPONSE_BYTES
from repro.traffic.permutation import PermutationPattern, random_derangement
from repro.traffic.random_pattern import RandomPattern


@pytest.fixture
def fattree():
    return build_fattree(k=4)


def factory_for(net, scheme="xmp", subflows=2, label=None):
    return TransferFactory(
        net, scheme, subflow_count=subflows, rng=random.Random(1), label=label
    )


class TestDerangement:
    def test_no_fixed_points(self):
        items = [f"h{i}" for i in range(10)]
        targets = random_derangement(items, random.Random(0))
        assert all(a != b for a, b in zip(items, targets))

    def test_is_permutation(self):
        items = [f"h{i}" for i in range(10)]
        targets = random_derangement(items, random.Random(0))
        assert sorted(targets) == sorted(items)

    def test_two_items(self):
        assert random_derangement(["a", "b"], random.Random(0)) == ["b", "a"]

    def test_single_item_rejected(self):
        with pytest.raises(ValueError):
            random_derangement(["a"], random.Random(0))

    @given(n=st.integers(2, 30), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_property(self, n, seed):
        items = list(range(n))
        targets = random_derangement(items, random.Random(seed))
        assert sorted(targets) == items
        assert all(a != b for a, b in zip(items, targets))


class TestFactory:
    def test_launch_records_on_completion(self, fattree):
        factory = factory_for(fattree)
        conn = factory.launch("h_0_0_0", "h_1_0_0", 500_000)
        fattree.sim.run(until=1.0)
        assert conn.completed
        assert len(factory.records) == 1
        record = factory.records[0]
        assert record.category == "inter-pod"
        assert record.scheme == "XMP-2"
        assert record.finished

    def test_single_path_scheme_gets_one_subflow(self, fattree):
        factory = factory_for(fattree, scheme="dctcp", subflows=1)
        conn = factory.launch("h_0_0_0", "h_1_0_0", 100_000)
        assert len(conn.subflows) == 1

    def test_multipath_subflows_use_distinct_paths(self, fattree):
        factory = factory_for(fattree, scheme="xmp", subflows=4)
        conn = factory.launch("h_0_0_0", "h_1_0_0", 100_000)
        paths = [s.path for s in conn.subflows]
        assert len(set(paths)) == 4

    def test_default_labels(self, fattree):
        assert factory_for(fattree, "xmp", 2).label == "XMP-2"
        assert factory_for(fattree, "dctcp", 1).label == "DCTCP"

    def test_unfinished_records(self, fattree):
        factory = factory_for(fattree)
        factory.launch("h_0_0_0", "h_1_0_0", 50_000_000)
        fattree.sim.run(until=0.02)
        unfinished = factory.unfinished_records(0.02)
        assert len(unfinished) == 1
        assert not unfinished[0].finished
        assert unfinished[0].goodput_bps(0.02) > 0

    def test_all_records_merges(self, fattree):
        factory = factory_for(fattree)
        factory.launch("h_0_0_0", "h_1_0_0", 100_000)
        factory.launch("h_0_0_1", "h_1_0_1", 50_000_000)
        fattree.sim.run(until=0.05)
        assert len(factory.all_records(0.05)) == 2

    def test_no_path_rejected(self, fattree):
        factory = factory_for(fattree)
        with pytest.raises(ValueError):
            factory.launch("h_0_0_0", "h_0_0_0", 1000)

    def test_subflow_count_validation(self, fattree):
        with pytest.raises(ValueError):
            TransferFactory(fattree, "xmp", subflow_count=0)


class TestPermutationPattern:
    def test_round_launches_one_flow_per_host(self, fattree):
        factory = factory_for(fattree)
        pattern = PermutationPattern(
            factory, fattree.host_names, 50_000, 100_000,
            rng=random.Random(0), max_rounds=1,
        )
        pattern.start()
        assert pattern.flows_started == 16
        destinations = [c.dst for c in factory.active]
        assert sorted(destinations) == sorted(fattree.host_names)

    def test_new_round_after_completion(self, fattree):
        factory = factory_for(fattree)
        pattern = PermutationPattern(
            factory, fattree.host_names, 20_000, 40_000,
            rng=random.Random(0), max_rounds=3,
        )
        pattern.start()
        fattree.sim.run(until=2.0)
        assert pattern.rounds_started == 3
        assert len(factory.records) == 48

    def test_stop_prevents_new_rounds(self, fattree):
        factory = factory_for(fattree)
        pattern = PermutationPattern(
            factory, fattree.host_names, 20_000, 40_000, rng=random.Random(0)
        )
        pattern.start()
        pattern.stop()
        fattree.sim.run(until=1.0)
        assert pattern.rounds_started == 1

    def test_sizes_within_range(self, fattree):
        factory = factory_for(fattree)
        pattern = PermutationPattern(
            factory, fattree.host_names, 50_000, 100_000,
            rng=random.Random(0), max_rounds=1,
        )
        pattern.start()
        fattree.sim.run(until=2.0)
        for record in factory.records:
            assert 50_000 <= record.size_bytes <= 100_000

    def test_size_validation(self, fattree):
        with pytest.raises(ValueError):
            PermutationPattern(factory_for(fattree), fattree.host_names, 100, 50)


class TestRandomPattern:
    def test_every_host_issues_a_flow(self, fattree):
        factory = factory_for(fattree)
        pattern = RandomPattern(
            factory, fattree.host_names, mean_bytes=50_000, max_bytes=100_000,
            rng=random.Random(0),
        )
        pattern.start()
        assert pattern.flows_started == 16

    def test_back_to_back_replacement(self, fattree):
        factory = factory_for(fattree)
        pattern = RandomPattern(
            factory, fattree.host_names, mean_bytes=30_000, max_bytes=60_000,
            rng=random.Random(0),
        )
        pattern.start()
        fattree.sim.run(until=0.5)
        assert pattern.flows_started > 16
        assert len(factory.active) == 16  # always one per source

    def test_in_degree_respected(self, fattree):
        factory = factory_for(fattree)
        pattern = RandomPattern(
            factory, fattree.host_names, mean_bytes=50_000_000,
            max_bytes=50_000_000, max_in_degree=1, rng=random.Random(0),
        )
        pattern.start()
        destinations = [c.dst for c in factory.active]
        assert len(set(destinations)) == len(destinations)

    def test_exclude_same_rack(self, fattree):
        factory = factory_for(fattree)
        pattern = RandomPattern(
            factory, fattree.host_names, mean_bytes=30_000, max_bytes=60_000,
            rng=random.Random(0), exclude_same_rack=True,
        )
        pattern.start()
        fattree.sim.run(until=0.3)
        for record in factory.all_records(0.3):
            assert record.category != "inner-rack"

    def test_stop_halts_replacement(self, fattree):
        factory = factory_for(fattree)
        pattern = RandomPattern(
            factory, fattree.host_names, mean_bytes=30_000, max_bytes=60_000,
            rng=random.Random(0),
        )
        pattern.start()
        pattern.stop()
        fattree.sim.run(until=0.5)
        assert pattern.flows_started == 16


class TestIncastPattern:
    def test_constants_match_paper(self):
        assert REQUEST_BYTES == 2_000
        assert RESPONSE_BYTES == 64_000

    def test_jobs_complete_and_chain(self, fattree):
        factory = TransferFactory(fattree, "tcp", rng=random.Random(2))
        pattern = IncastPattern(factory, fattree.host_names,
                                rng=random.Random(3))
        pattern.start()
        fattree.sim.run(until=0.5)
        assert pattern.completed_jobs
        assert pattern.jobs_started >= 8 + len(pattern.completed_jobs) - 8
        for jct in pattern.completion_times():
            assert jct > 0

    def test_concurrent_jobs_count(self, fattree):
        factory = TransferFactory(fattree, "tcp", rng=random.Random(2))
        pattern = IncastPattern(
            factory, fattree.host_names, concurrent_jobs=3, rng=random.Random(3)
        )
        pattern.start()
        assert pattern.jobs_started == 3

    def test_job_traffic_volume(self, fattree):
        # Each job moves 8 requests + 8 responses.
        factory = TransferFactory(fattree, "tcp", rng=random.Random(2))
        pattern = IncastPattern(
            factory, fattree.host_names, concurrent_jobs=1, rng=random.Random(3)
        )
        pattern.start()
        fattree.sim.run(until=0.5)
        done = len(pattern.completed_jobs)
        assert done >= 1
        finished_records = factory.records
        requests = [r for r in finished_records if r.size_bytes == REQUEST_BYTES]
        responses = [r for r in finished_records if r.size_bytes == RESPONSE_BYTES]
        assert len(requests) >= 8 * done
        assert len(responses) >= 8 * done

    def test_stop(self, fattree):
        factory = TransferFactory(fattree, "tcp", rng=random.Random(2))
        pattern = IncastPattern(factory, fattree.host_names, rng=random.Random(3))
        pattern.start()
        pattern.stop()
        fattree.sim.run(until=0.5)
        assert pattern.jobs_started == 8

    def test_needs_enough_hosts(self, fattree):
        factory = TransferFactory(fattree, "tcp", rng=random.Random(2))
        with pytest.raises(ValueError):
            IncastPattern(factory, fattree.host_names[:5], rng=random.Random(3))
