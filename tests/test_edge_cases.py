"""Edge-case tests filling coverage gaps across modules."""

import pytest

from repro.cli import main
from repro.metrics.stats import percentile
from repro.mptcp.connection import MptcpConnection
from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import DATA, Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.topology.bottleneck import build_single_bottleneck
from repro.traffic.incast import IncastPattern
from repro.traffic.factory import TransferFactory


class Sink(Node):
    __slots__ = ("count",)

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.count = 0

    def receive(self, packet):
        self.count += 1


class TestLinkFailureCycles:
    def test_counters_freeze_while_down(self):
        sim = Simulator()
        link = Link(sim, "L", Sink(sim, "a"), Sink(sim, "b"), 1e9, 1e-6,
                    DropTailQueue(10))
        link.enqueue(Packet(DATA, 1500, 0, 0))
        sim.run()
        sent_before = link.bytes_transmitted
        link.set_down()
        link.enqueue(Packet(DATA, 1500, 0, 0))
        sim.run()
        assert link.bytes_transmitted == sent_before
        assert link.bytes_offered == 3000  # offered still counted

    def test_up_down_up_cycle_delivers_again(self):
        sim = Simulator()
        dst = Sink(sim, "b")
        link = Link(sim, "L", Sink(sim, "a"), dst, 1e9, 1e-6, DropTailQueue(10))
        link.enqueue(Packet(DATA, 1500, 0, 0))
        sim.run()
        link.set_down()
        link.set_up()
        link.enqueue(Packet(DATA, 1500, 0, 0))
        sim.run()
        assert dst.count == 2

    def test_busy_flag_clears_after_down_during_tx(self):
        sim = Simulator()
        link = Link(sim, "L", Sink(sim, "a"), Sink(sim, "b"), 1e9, 1e-6,
                    DropTailQueue(10))
        link.enqueue(Packet(DATA, 1500, 0, 0))
        link.enqueue(Packet(DATA, 1500, 0, 0))
        sim.schedule(1e-6, link.set_down)
        sim.run()
        assert not link.busy  # transmitter idle, not wedged


class TestPercentileStability:
    def test_identical_values_exact(self):
        # Regression: interpolation must return the exact common value.
        assert percentile([201.0, 201.0], 1.5) == 201.0

    def test_two_values_midpoint(self):
        assert percentile([1.0, 2.0], 50) == 1.5


class TestIncastAges:
    def test_unfinished_ages_reported(self, two_host_net):
        # Not enough time for any job: all 8 jobs stay active.
        from repro.topology.fattree import build_fattree
        import random

        net = build_fattree(k=4)
        factory = TransferFactory(net, "tcp", rng=random.Random(0))
        pattern = IncastPattern(factory, net.host_names, rng=random.Random(1))
        pattern.start()
        net.sim.run(until=0.0005)
        ages = pattern.unfinished_ages(0.0005)
        assert len(ages) == 8
        assert all(0 <= age <= 0.0005 for age in ages)


class TestSenderKickEdge:
    def test_kick_on_fresh_sender_is_safe(self, two_host_net):
        conn = MptcpConnection(
            two_host_net, "A", "B", two_host_net.paths("A", "B"),
            scheme="xmp", size_bytes=10_000,
        )
        conn.subflows[0].sender.kick()  # not yet started: no-op
        conn.start()
        two_host_net.sim.run(until=0.5)
        assert conn.completed

    def test_stale_ack_ignored(self, two_host_net):
        from repro.net.packet import make_ack_packet
        from repro.transport.cc import RenoCC
        from repro.transport.tcp import FiniteSource, TcpSender

        net = two_host_net
        forward = net.paths("A", "B")[0]
        reverse = net.reverse_path(forward)
        net.host("B").register(0, 0, lambda p: None)
        sender = TcpSender(net.sim, net.host("A"), 0, 0, forward,
                           RenoCC(), FiniteSource(100))
        sender.start()
        net.sim.run(until=0.001)
        # Advance, then deliver an older ACK.
        net.host("B").send(make_ack_packet(0, 0, 5, net.sim.now, -1.0, reverse))
        net.sim.run(until=0.002)
        assert sender.snd_una == 5
        net.host("B").send(make_ack_packet(0, 0, 2, net.sim.now, -1.0, reverse))
        net.sim.run(until=0.003)
        assert sender.snd_una == 5
        assert sender.dupacks == 0  # stale, not duplicate


class TestCliExport:
    def test_export_command(self, tmp_path, capsys):
        assert main(["export", str(tmp_path / "out"), "--duration", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "summary.json" in out
        assert (tmp_path / "out" / "flows.csv").exists()


class TestWeightThroughFactoryDefaults:
    def test_connection_weight_default_is_neutral(self, two_host_net):
        conn = MptcpConnection(
            two_host_net, "A", "B", two_host_net.paths("A", "B"), scheme="xmp"
        )
        assert conn.coupling.weight == 1.0
