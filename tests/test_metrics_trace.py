"""Tests for flow tracing and CSV export."""

import csv
import io

import pytest

from repro.metrics.trace import TRACE_FIELDS, FlowTracer, rate_series_to_csv
from repro.mptcp.connection import MptcpConnection


def traced_flow(net, until=0.05, interval=1e-3, size=None):
    conn = MptcpConnection(net, "A", "B", net.paths("A", "B"),
                           scheme="xmp", size_bytes=size)
    tracer = FlowTracer(net.sim, conn.subflows[0].sender,
                        interval=interval, until=until)
    tracer.start()
    conn.start()
    net.sim.run(until=until)
    return conn, tracer


class TestFlowTracer:
    def test_samples_collected_on_schedule(self, two_host_net):
        _, tracer = traced_flow(two_host_net, until=0.05, interval=0.01)
        assert 4 <= len(tracer.samples) <= 6

    def test_fields_present(self, two_host_net):
        _, tracer = traced_flow(two_host_net)
        for sample in tracer.samples:
            assert set(sample) == set(TRACE_FIELDS)

    def test_cwnd_series_positive(self, two_host_net):
        _, tracer = traced_flow(two_host_net)
        assert all(value >= 1.0 for value in tracer.series("cwnd"))
        assert tracer.max_cwnd() >= 10.0

    def test_delivered_monotone(self, two_host_net):
        _, tracer = traced_flow(two_host_net)
        delivered = tracer.series("delivered_segments")
        assert delivered == sorted(delivered)

    def test_infinite_ssthresh_encoded_as_minus_one(self, two_host_net):
        _, tracer = traced_flow(two_host_net, until=0.002)
        # Early samples are still in slow start (ssthresh infinite).
        assert tracer.samples[0]["ssthresh"] == -1.0

    def test_unknown_field_rejected(self, two_host_net):
        _, tracer = traced_flow(two_host_net, until=0.002)
        with pytest.raises(ValueError):
            tracer.series("bogus")

    def test_csv_round_trip(self, two_host_net):
        _, tracer = traced_flow(two_host_net)
        text = tracer.to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(tracer.samples)
        assert float(rows[-1]["delivered_segments"]) == tracer.samples[-1][
            "delivered_segments"
        ]

    def test_write_csv(self, two_host_net, tmp_path):
        _, tracer = traced_flow(two_host_net)
        path = tmp_path / "trace.csv"
        tracer.write_csv(str(path))
        content = path.read_text()
        assert content.startswith("time,")


class TestRateSeriesCsv:
    def test_layout(self):
        text = rate_series_to_csv([0.0, 0.5], {"b": [1.0, 2.0], "a": [3.0, 4.0]})
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["time", "a", "b"]
        assert rows[1] == ["0.0", "3.0", "1.0"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rate_series_to_csv([0.0, 1.0], {"a": [1.0]})

    def test_empty(self):
        text = rate_series_to_csv([], {})
        assert text.strip() == "time"
