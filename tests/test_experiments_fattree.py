"""Integration tests for the fat-tree evaluation driver and its views.

One tiny scenario per pattern is simulated (module-scoped, shared through
the driver's result cache) and the table/figure extractors are checked
for structure and for the paper's coarsest qualitative claims.
"""

import dataclasses

import pytest

from repro.experiments.fattree_eval import (
    FatTreeScenario,
    clear_cache,
    run_fattree,
)
from repro.experiments.fig8_goodput_dist import run_fig8
from repro.experiments.fig9_jct_cdf import run_jct
from repro.experiments.fig10_rtt import run_fig10
from repro.experiments.fig11_utilization import run_fig11
from repro.experiments.table1_goodput import run_table1
from repro.experiments.table2_coexistence import run_table2

#: Tiny flows and a short horizon keep each simulation around a second.
BASE = FatTreeScenario(
    duration=0.12,
    perm_size_min=100_000,
    perm_size_max=400_000,
    random_mean=200_000,
    random_max=800_000,
    seed=3,
)

SCHEMES = (("dctcp", 1), ("xmp", 2))


@pytest.fixture(scope="module")
def perm_xmp():
    return run_fattree(dataclasses.replace(BASE, scheme="xmp", subflows=2))


class TestDriver:
    def test_records_produced(self, perm_xmp):
        assert perm_xmp.records["XMP-2"]
        for record in perm_xmp.records["XMP-2"]:
            assert record.finished
            assert record.delivered_bytes >= record.size_bytes

    def test_rtt_samples_by_category(self, perm_xmp):
        assert perm_xmp.rtt_samples
        for category, samples in perm_xmp.rtt_samples.items():
            assert category in ("inter-pod", "inter-rack", "inner-rack")
            assert all(s > 0 for s in samples)

    def test_link_utilization_recorded(self, perm_xmp):
        layers = {layer for _, layer, _ in perm_xmp.link_utilization}
        assert {"core", "aggregation", "rack"} <= layers
        assert all(0 <= u <= 1 for _, _, u in perm_xmp.link_utilization)

    def test_cache_returns_same_object(self, perm_xmp):
        scenario = dataclasses.replace(BASE, scheme="xmp", subflows=2)
        assert run_fattree(scenario) is perm_xmp

    def test_cache_can_be_bypassed_and_cleared(self):
        scenario = dataclasses.replace(BASE, scheme="xmp", subflows=2, duration=0.02)
        first = run_fattree(scenario)
        assert run_fattree(scenario) is first
        clear_cache()
        second = run_fattree(scenario)
        assert second is not first

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            run_fattree(
                dataclasses.replace(BASE, pattern="storm")
            )

    def test_goodput_positive(self, perm_xmp):
        assert perm_xmp.mean_goodput_bps() > 50e6


class TestViews:
    def test_table1_structure_and_ordering(self):
        result = run_table1(BASE, schemes=SCHEMES, patterns=("permutation",))
        assert set(result.goodput_mbps) == {"DCTCP", "XMP-2"}
        assert result.goodput_mbps["XMP-2"]["permutation"] > 0
        text = result.format()
        assert "XMP-2" in text and "Permutation" in text

    def test_xmp_beats_dctcp_on_permutation(self):
        result = run_table1(BASE, schemes=SCHEMES, patterns=("permutation",))
        assert (
            result.goodput_mbps["XMP-2"]["permutation"]
            > result.goodput_mbps["DCTCP"]["permutation"]
        )

    def test_fig8_cdfs(self):
        result = run_fig8("permutation", BASE, schemes=SCHEMES)
        for label in ("DCTCP", "XMP-2"):
            points = result.cdfs[label]
            assert points
            fractions = [f for _, f in points]
            assert fractions == sorted(fractions)
            assert fractions[-1] == pytest.approx(1.0)

    def test_fig8_categories(self):
        result = run_fig8("permutation", BASE, schemes=SCHEMES)
        assert "DCTCP" in result.by_category
        for summary in result.by_category["DCTCP"].values():
            assert summary["min"] <= summary["p50"] <= summary["max"]

    def test_fig10_rtt_low_for_marking_schemes(self):
        result = run_fig10("permutation", BASE, schemes=SCHEMES)
        for label in ("DCTCP", "XMP-2"):
            for category, summary in result.rtt[label].items():
                # Marked queues hold RTT within a few ms everywhere.
                assert summary["p50"] < 3e-3

    def test_fig11_utilization_bounds(self):
        result = run_fig11("permutation", BASE, schemes=SCHEMES)
        for label, layers in result.utilization.items():
            for layer, summary in layers.items():
                assert 0.0 <= summary["min"] <= summary["max"] <= 1.0

    def test_jct_runs_produce_jobs(self):
        result = run_jct(BASE, schemes=(("xmp", 2),))
        assert result.jcts["XMP-2"]
        assert result.jobs_started["XMP-2"] >= 8
        assert 0.0 <= result.fraction_over("XMP-2") <= 1.0
        assert "XMP-2" in result.format_table3()

    def test_table2_cells(self):
        result = run_table2(BASE, schemes=(("dctcp", 1),), queue_sizes=(100,))
        xmp, other = result.cells[("dctcp", 100)]
        assert xmp > 0 and other > 0
        assert "XMP : DCTCP" in result.format()
