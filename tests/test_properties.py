"""Cross-cutting property-based tests (hypothesis).

These check structural invariants that hold for *any* input: conservation
of packets through links, cumulative-ACK correctness under arbitrary
delivery orders, event-ordering of the engine under random schedules, and
fat-tree path structure for any valid arity.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import DATA, Packet
from repro.net.queue import DropTailQueue, ThresholdECNQueue
from repro.sim.engine import Simulator
from repro.topology.fattree import build_fattree
from repro.transport.receiver import EchoMode, Receiver
from repro.net.network import Network


class CountingSink(Node):
    __slots__ = ("count",)

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.count = 0

    def receive(self, packet):
        self.count += 1


class TestLinkConservation:
    @given(
        arrivals=st.lists(st.integers(40, 1500), min_size=1, max_size=200),
        capacity=st.integers(1, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_packets_conserved(self, arrivals, capacity):
        """offered = delivered + dropped, and delivery order preserved."""
        sim = Simulator()
        src = CountingSink(sim, "src")
        dst = CountingSink(sim, "dst")
        link = Link(sim, "L", src, dst, 1e9, 1e-6, DropTailQueue(capacity))
        for size in arrivals:
            link.enqueue(Packet(DATA, size, 0, 0))
        sim.run()
        assert dst.count + link.queue.stats.dropped == len(arrivals)
        assert dst.count == link.packets_transmitted
        # Nothing left anywhere.
        assert link.occupancy == 0
        assert not link.busy

    @given(
        threshold=st.integers(0, 60),
        arrivals=st.integers(1, 150),
    )
    @settings(max_examples=50, deadline=None)
    def test_marks_never_exceed_deliveries(self, threshold, arrivals):
        sim = Simulator()
        src = CountingSink(sim, "src")
        dst = CountingSink(sim, "dst")
        link = Link(sim, "L", src, dst, 1e9, 1e-6,
                    ThresholdECNQueue(100, threshold))
        for _ in range(arrivals):
            link.enqueue(Packet(DATA, 1500, 0, 0, ect=True))
        sim.run()
        stats = link.queue.stats
        assert stats.marked <= stats.enqueued
        assert dst.count == min(arrivals, 101)  # capacity + 1 in service...
        # (1 in flight bypasses the queue, the rest bounded by capacity)


class TestReceiverPermutations:
    @given(
        n=st.integers(1, 40),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_delivery_order_yields_full_cumulative_ack(self, n, seed):
        """Whatever order segments 0..n-1 arrive in, the final cumulative
        ACK is n and every segment is counted exactly once."""
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        net.connect(a, b, 1e9, 1e-6)
        acks = []
        net.host("A").register(0, 0, acks.append)
        receiver = Receiver(
            net.sim, b, 0, 0,
            net.reverse_path(net.paths("A", "B")[0]),
            echo_mode=EchoMode.XMP,
        )
        order = list(range(n))
        random.Random(seed).shuffle(order)
        for seq in order:
            packet = Packet(DATA, 1500, 0, 0, seq=seq, ts=0.0)
            packet.hop = 1
            receiver.receive(packet)
        net.sim.run()
        assert receiver.rcv_nxt == n
        assert receiver.segments_received == n
        assert acks[-1].ack == n

    @given(
        n=st.integers(2, 30),
        seed=st.integers(0, 10_000),
        ce_every=st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_ce_mark_ever_lost(self, n, seed, ce_every):
        """The 2-bit echo returns exactly as many CEs as were delivered,
        regardless of delivery order and delayed ACKs."""
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        net.connect(a, b, 1e9, 1e-6)
        acks = []
        net.host("A").register(0, 0, acks.append)
        receiver = Receiver(
            net.sim, b, 0, 0,
            net.reverse_path(net.paths("A", "B")[0]),
            echo_mode=EchoMode.XMP,
        )
        order = list(range(n))
        random.Random(seed).shuffle(order)
        marked = 0
        for seq in order:
            ce = seq % ce_every == 0
            marked += ce
            packet = Packet(DATA, 1500, 0, 0, seq=seq, ts=0.0, ect=True, ce=ce)
            packet.hop = 1
            receiver.receive(packet)
        net.sim.run()
        assert sum(ack.ece_count for ack in acks) == marked


class TestEngineOrdering:
    @given(
        delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_schedules_fire_sorted(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(st.floats(0.0, 10.0), min_size=2, max_size=50),
        cancel_index=st.integers(0, 48),
    )
    @settings(max_examples=50, deadline=None)
    def test_cancellation_removes_exactly_one(self, delays, cancel_index):
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(delay, lambda d=delay: fired.append(d))
            for delay in delays
        ]
        victim = events[cancel_index % len(events)]
        victim.cancel()
        sim.run()
        assert len(fired) == len(delays) - 1


class TestFatTreeStructure:
    @given(k=st.sampled_from([2, 4, 6]))
    @settings(max_examples=10, deadline=None)
    def test_counts_and_paths(self, k):
        net = build_fattree(k=k)
        half = k // 2
        assert len(net.hosts) == k * half * half
        assert len(net.switches) == k * k + half * half
        if k >= 4:
            hosts = net.host_names
            # First host of pod 0 vs first host of pod 1: (k/2)^2 paths.
            inter_pod = net.paths(f"h_0_0_0", f"h_1_0_0")
            assert len(inter_pod) == half * half
            # Paths are loop-free and of equal length.
            lengths = {len(p) for p in inter_pod}
            assert len(lengths) == 1
            for path in inter_pod:
                nodes = [path[0].src] + [link.dst for link in path]
                assert len(nodes) == len(set(nodes))

    @given(k=st.sampled_from([4, 6]), seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_random_pairs_always_connected(self, k, seed):
        net = build_fattree(k=k)
        rng = random.Random(seed)
        for _ in range(5):
            src, dst = rng.sample(net.host_names, 2)
            paths = net.paths(src, dst)
            assert paths
            for path in paths:
                assert path[0].src is net.host(src)
                assert path[-1].dst is net.host(dst)
