"""Unit tests for the LIA and OLIA couplings."""

import math

import pytest

from repro.mptcp.lia import LiaCC, LiaCoupling
from repro.mptcp.olia import OliaCC, OliaCoupling


class StubSender:
    def __init__(self, cwnd, srtt, running=True):
        self.cwnd = cwnd
        self.srtt = srtt
        self.running = running
        self.completed = False
        self.snd_una = 0
        self.snd_nxt = int(cwnd)
        self.ssthresh = 1.0  # congestion avoidance
        self.in_recovery = False

    @property
    def flight(self):
        return self.snd_nxt - self.snd_una


def lia_pair(w1=10.0, w2=10.0, rtt1=100e-6, rtt2=100e-6):
    coupling = LiaCoupling()
    c1, c2 = coupling.make_controller(), coupling.make_controller()
    c1.attach(StubSender(w1, rtt1))
    c2.attach(StubSender(w2, rtt2))
    return coupling, c1, c2


class TestLiaAlpha:
    def test_symmetric_two_paths_alpha_is_one(self):
        # Equal windows and RTTs: alpha = 2w * (w/r^2) / (2w/r)^2 = 1/2...
        coupling, _, _ = lia_pair()
        w, r = 10.0, 100e-6
        expected = (2 * w) * (w / r**2) / (2 * w / r) ** 2
        assert coupling.alpha() == pytest.approx(expected)
        assert coupling.alpha() == pytest.approx(0.5)

    def test_alpha_zero_without_rtt(self):
        coupling, c1, _ = lia_pair()
        c1.sender.srtt = None
        assert coupling.alpha() == 0.0

    def test_total_cwnd_sums_active(self):
        coupling, c1, c2 = lia_pair(w1=4.0, w2=6.0)
        assert coupling.total_cwnd() == 10.0
        c2.sender.completed = True
        assert coupling.total_cwnd() == 4.0

    def test_increase_capped_by_uncoupled_tcp(self):
        # LIA is never more aggressive per path than plain TCP.
        _, c1, c2 = lia_pair(w1=2.0, w2=50.0)
        assert c1.increase_per_segment(1) <= 1.0 / 2.0
        assert c2.increase_per_segment(1) <= 1.0 / 50.0

    def test_total_increase_less_than_single_tcp(self):
        # Coupling: aggregate aggressiveness ~ one TCP, not N TCPs.
        coupling, c1, c2 = lia_pair()
        total = c1.increase_per_segment(1) * 10 + c2.increase_per_segment(1) * 10
        # One TCP with cwnd 20 would grow ~1 per RTT; two uncoupled TCPs ~2.
        assert total <= 1.01

    def test_fallback_to_uncoupled_when_no_rtt(self):
        coupling, c1, _ = lia_pair()
        for controller in coupling.controllers:
            controller.sender.srtt = None
        assert c1.increase_per_segment(1) == pytest.approx(1.0 / 10.0)

    def test_lia_prefers_lower_rtt_path(self):
        # alpha weights by w/rtt^2: the short path dominates the numerator.
        coupling, c1, c2 = lia_pair(rtt1=50e-6, rtt2=500e-6)
        assert coupling.alpha() > 0

    def test_not_ecn_capable(self):
        assert LiaCC(LiaCoupling()).ecn_capable is False


def olia_set(*windows_rtts):
    coupling = OliaCoupling()
    controllers = []
    for w, r in windows_rtts:
        c = coupling.make_controller()
        c.attach(StubSender(w, r))
        controllers.append(c)
    return coupling, controllers


class TestOliaAlphas:
    def test_single_path_alpha_zero(self):
        coupling, (c,) = olia_set((10.0, 100e-6))
        assert coupling.alphas()[c] == 0.0

    def test_alphas_sum_to_zero_when_shifting(self):
        coupling, (c1, c2) = olia_set((10.0, 100e-6), (4.0, 100e-6))
        # Make the small-window path the best (large loss interval).
        c1._l2 = 10.0
        c2._l2 = 1000.0
        alphas = coupling.alphas()
        assert sum(alphas.values()) == pytest.approx(0.0)
        assert alphas[c2] > 0  # best path with small window gains
        assert alphas[c1] < 0  # max-window non-best path loses

    def test_best_equals_largest_no_transfer(self):
        coupling, (c1, c2) = olia_set((10.0, 100e-6), (4.0, 100e-6))
        c1._l2 = 1000.0  # best AND largest-window
        c2._l2 = 1.0
        alphas = coupling.alphas()
        assert all(a == 0.0 for a in alphas.values())

    def test_loss_interval_tracking(self):
        c = OliaCC(OliaCoupling())
        c.attach(StubSender(10.0, 100e-6))
        c.on_ack(5, 0, None, 0.0, False)
        assert c._l2 == 5.0
        c.on_loss_event(0.0)
        assert c._l1 == 5.0
        assert c._l2 == 0.0

    def test_increase_nonnegative_and_capped(self):
        coupling, (c1, c2) = olia_set((10.0, 100e-6), (4.0, 100e-6))
        c1._l2 = 10.0
        c2._l2 = 1000.0
        for c in (c1, c2):
            inc = c.increase_per_segment(1)
            assert 0.0 <= inc <= 1.0 / c.sender.cwnd

    def test_timeout_rotates_loss_interval(self):
        c = OliaCC(OliaCoupling())
        c.attach(StubSender(10.0, 100e-6))
        c.on_ack(7, 0, None, 0.0, False)
        c.on_timeout(0.0)
        assert c._l1 == 7.0

    def test_not_ecn_capable(self):
        assert OliaCC(OliaCoupling()).ecn_capable is False


class TestCouplingRegistry:
    def test_known_schemes(self):
        from repro.mptcp.coupling import available_schemes, create_coupling

        for scheme in available_schemes():
            coupling = create_coupling(scheme)
            controller = coupling.make_controller()
            assert controller is not None

    def test_unknown_scheme_rejected(self):
        from repro.mptcp.coupling import create_coupling

        with pytest.raises(ValueError):
            create_coupling("bbr")

    def test_xmp_coupling_carries_beta(self):
        from repro.mptcp.coupling import create_coupling

        coupling = create_coupling("xmp", beta=6.0)
        controller = coupling.make_controller()
        assert controller.beta == 6.0

    def test_scheme_echo_modes(self):
        from repro.mptcp.coupling import create_coupling

        assert create_coupling("xmp").make_controller().echo_mode_name == "xmp"
        assert create_coupling("dctcp").make_controller().echo_mode_name == "dctcp"
        assert create_coupling("tcp").make_controller().echo_mode_name == "classic"

    def test_ecn_capability_by_scheme(self):
        from repro.mptcp.coupling import create_coupling

        assert create_coupling("xmp").make_controller().ecn_capable
        assert create_coupling("dctcp").make_controller().ecn_capable
        assert not create_coupling("lia").make_controller().ecn_capable
        assert not create_coupling("tcp").make_controller().ecn_capable
        assert create_coupling("reno-ecn").make_controller().ecn_capable
