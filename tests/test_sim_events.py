"""Tests for Event and the lazy deadline Timer."""

from repro.sim.events import Timer


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        assert fired == [1.0]

    def test_armed_reflects_state(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_expiry_reports_deadline(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(2.0)
        assert timer.expiry == 2.0

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_without_start_is_noop(self, sim):
        Timer(sim, lambda: None).cancel()

    def test_restart_extends_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.schedule(0.5, timer.restart, 1.0)  # new deadline 1.5
        sim.run()
        assert fired == [1.5]

    def test_restart_shortens_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(5.0)
        timer.restart(1.0)
        sim.run()
        assert fired == [1.0]

    def test_repeated_lazy_restarts_fire_once_at_final_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        for i in range(1, 10):
            sim.schedule(i * 0.1, timer.restart, 1.0)
        sim.run()
        assert fired == [1.9]

    def test_lazy_restart_does_not_grow_heap(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        before = sim.pending_events
        timer.restart(2.0)  # later deadline: no new heap entry
        assert sim.pending_events == before

    def test_restart_after_fire_works(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0]

    def test_cancel_then_restart(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.cancel()
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_callback_may_rearm_itself(self, sim):
        fired = []
        timer = Timer(sim, lambda: None)

        def tick():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer._callback = tick  # rebind for the self-rearm pattern
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
