"""Tests for hosts, switches and source-routed forwarding."""

import pytest

from repro.net.network import Network
from repro.net.packet import Packet, DATA


def linear_net():
    """A -- SW1 -- SW2 -- B."""
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    s1 = net.add_switch("SW1")
    s2 = net.add_switch("SW2")
    net.connect(a, s1, 1e9, 1e-6)
    net.connect(s1, s2, 1e9, 1e-6)
    net.connect(s2, b, 1e9, 1e-6)
    return net


class TestForwarding:
    def test_packet_travels_full_path(self):
        net = linear_net()
        path = net.paths("A", "B")[0]
        received = []
        net.host("B").register(0, 0, received.append)
        packet = Packet(DATA, 1500, 0, 0, path=path)
        net.host("A").send(packet)
        net.sim.run()
        assert received == [packet]
        assert packet.hop == len(path)

    def test_switch_counts_forwarded(self):
        net = linear_net()
        path = net.paths("A", "B")[0]
        net.host("B").register(0, 0, lambda p: None)
        net.host("A").send(Packet(DATA, 1500, 0, 0, path=path))
        net.sim.run()
        assert net.switch("SW1").packets_forwarded == 1
        assert net.switch("SW2").packets_forwarded == 1

    def test_forward_without_next_hop_raises(self):
        net = linear_net()
        with pytest.raises(RuntimeError):
            net.switch("SW1").forward(Packet(DATA, 1500, 0, 0, path=()))


class TestHostDemux:
    def test_dispatch_by_flow_and_subflow(self):
        net = linear_net()
        path = net.paths("A", "B")[0]
        flows = {0: [], 1: []}
        net.host("B").register(5, 0, flows[0].append)
        net.host("B").register(5, 1, flows[1].append)
        net.host("A").send(Packet(DATA, 1500, 5, 1, path=path))
        net.sim.run()
        assert flows[0] == []
        assert len(flows[1]) == 1

    def test_unclaimed_packet_counted(self):
        net = linear_net()
        path = net.paths("A", "B")[0]
        net.host("A").send(Packet(DATA, 1500, 9, 9, path=path))
        net.sim.run()
        assert net.host("B").packets_unclaimed == 1

    def test_duplicate_registration_rejected(self):
        net = linear_net()
        net.host("B").register(1, 0, lambda p: None)
        with pytest.raises(ValueError):
            net.host("B").register(1, 0, lambda p: None)

    def test_unregister_then_reregister(self):
        net = linear_net()
        host = net.host("B")
        host.register(1, 0, lambda p: None)
        host.unregister(1, 0)
        host.register(1, 0, lambda p: None)

    def test_unregister_missing_is_noop(self):
        linear_net().host("B").unregister(42, 0)

    def test_delivered_counter(self):
        net = linear_net()
        path = net.paths("A", "B")[0]
        net.host("B").register(0, 0, lambda p: None)
        for _ in range(3):
            net.host("A").send(Packet(DATA, 1500, 0, 0, path=path))
        net.sim.run()
        assert net.host("B").packets_delivered == 3

    def test_multihomed_host_relays(self):
        # A path that passes *through* a host keeps forwarding (testbed
        # topologies attach hosts to two switches).
        net = Network()
        a = net.add_host("A")
        relay = net.add_host("R")
        b = net.add_host("B")
        net.connect(a, relay, 1e9, 1e-6)
        net.connect(relay, b, 1e9, 1e-6)
        path = net.paths("A", "B")[0]
        received = []
        net.host("B").register(0, 0, received.append)
        net.host("A").send(Packet(DATA, 1500, 0, 0, path=path))
        net.sim.run()
        assert len(received) == 1
