#!/usr/bin/env python3
"""Traffic shifting demo — the paper's Fig. 4 experiment, compressed.

An XMP flow with one subflow over each of two 300 Mbps bottlenecks;
background flows perturb the bottlenecks one after the other.  Watch the
flow move its traffic away from whichever path is congested and
compensate on the other — the TraSh algorithm in action.

Run:  python examples/traffic_shifting.py
"""

from repro.experiments.fig4_traffic_shifting import Fig4Config, run_fig4

TIME_SCALE = 0.15  # compress the paper's 40 s to 6 s of simulated time


def main() -> None:
    result = run_fig4(Fig4Config(beta=4.0, time_scale=TIME_SCALE))

    print("Flow 2 subflow rates (normalized to the 300 Mbps bottleneck):")
    print(f"{'time':>8}  {'subflow 1 (DN1)':>16}  {'subflow 2 (DN2)':>16}")
    series1 = result.normalized("flow2-1")
    series2 = result.normalized("flow2-2")
    for time, r1, r2 in zip(result.times, series1, series2):
        bar1 = "#" * int(r1 * 30)
        bar2 = "*" * int(r2 * 30)
        print(f"{time:8.2f}  {r1:16.3f}  {r2:16.3f}   {bar1}{bar2}")

    phases = result.phases()
    print("\nphase means (subflow 1 / subflow 2):")
    for phase, (start, end) in phases.items():
        m1 = result.mean_normalized("flow2-1", start, end)
        m2 = result.mean_normalized("flow2-2", start, end)
        print(f"  {phase:>10}: {m1:.3f} / {m2:.3f}")
    print(
        "\nExpected shape: subflow 1 sinks while the background flow sits on"
        " DN1,\nsubflow 2 compensates; then the roles swap when the"
        " background moves to DN2."
    )


if __name__ == "__main__":
    main()
