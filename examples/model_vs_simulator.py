#!/usr/bin/env python3
"""The paper's fluid model (Eq. 2) against the packet-level simulator.

Integrates the BOS window ODE for N flows sharing a marked 1 Gbps link
and runs the identical scenario packet by packet, printing steady-state
windows and queue side by side — the internal-consistency check that the
implementation sits where the paper's own analysis says it should.

Run:  python examples/model_vs_simulator.py
"""

from repro.core import fluid
from repro.core.utility import equilibrium_window
from repro.metrics.collector import QueueMonitor
from repro.mptcp.connection import MptcpConnection
from repro.topology.bottleneck import build_single_bottleneck

CAPACITY = 1e9
BASE_RTT = 225e-6
K = 10


def packet_run(num_flows):
    net = build_single_bottleneck(
        num_pairs=num_flows, bottleneck_rate_bps=CAPACITY, rtt=BASE_RTT,
        marking_threshold=K,
    )
    monitor = QueueMonitor(net.sim, [net.forward_bottleneck], 0.001)
    monitor.start()
    connections = []
    for i in range(num_flows):
        conn = MptcpConnection(net, f"S{i}", f"D{i}", [net.flow_path(i)],
                               scheme="xmp")
        conn.start()
        connections.append(conn)
    net.sim.run(until=0.3)
    windows = [c.subflows[0].sender.cwnd for c in connections]
    return sum(windows) / num_flows, monitor.mean_occupancy(
        net.forward_bottleneck.name
    )


def main() -> None:
    print(f"{'flows':>6} {'fluid w':>9} {'packet w':>9} "
          f"{'fluid q':>9} {'packet q':>9}")
    for n in (1, 2, 4, 8):
        model = fluid.integrate_shared_link(
            num_flows=n, capacity_bps=CAPACITY, base_rtt=BASE_RTT,
            threshold=K, duration=0.25,
        )
        fluid_w = sum(model.steady_state_windows()) / n
        fluid_q = model.steady_state_queue()
        packet_w, packet_q = packet_run(n)
        print(f"{n:6d} {fluid_w:9.1f} {packet_w:9.1f} "
              f"{fluid_q:9.1f} {packet_q:9.1f}")
    print(
        "\nEq. 3 cross-check: at marking probability p the model's window"
        "\nfixed point is delta*beta*(1-p)/p; e.g. p=0.2 ->"
        f" {equilibrium_window(0.2, 1.0, 4.0):.0f} packets."
    )


if __name__ == "__main__":
    main()
