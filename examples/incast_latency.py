#!/usr/bin/env python3
"""Incast latency demo: do bulk flows starve latency-sensitive jobs?

Runs the paper's Incast pattern — eight-way request/response jobs over
TCP — on top of bulk background traffic driven by a chosen scheme, and
prints the job-completion-time distribution.  This is the experiment
behind Fig. 9/Table 3: XMP's marking keeps queues shallow so most jobs
finish in ~10 ms, while LIA's full buffers push a tenth of jobs past the
200 ms retransmission timeout ("TCP collapse").

Run:  python examples/incast_latency.py [scheme]   (default: xmp)
"""

import sys

from repro.experiments.fattree_eval import FatTreeScenario, run_fattree
from repro.experiments.reporting import format_cdf
from repro.metrics.stats import percentile


def main() -> None:
    scheme = sys.argv[1] if len(sys.argv) > 1 else "xmp"
    subflows = 2 if scheme in ("xmp", "lia", "olia") else 1
    scenario = FatTreeScenario(
        scheme=scheme, subflows=subflows, pattern="incast", duration=1.5
    )
    result = run_fattree(scenario)

    jcts = result.jcts
    if not jcts:
        print("no jobs completed — simulation too short?")
        return
    print(f"background scheme: {scenario.label()}")
    print(f"jobs completed:    {len(jcts)} of {result.jobs_started} started")
    print(f"mean JCT:          {sum(jcts) / len(jcts) * 1e3:.1f} ms")
    print(f"JCT distribution:  {format_cdf(jcts, scale=1e3, unit='ms')}")
    over = sum(1 for jct in jcts if jct > 0.300)
    print(f"jobs over 300 ms:  {over} ({over / result.jobs_started * 100:.1f}% of started)")
    print(
        f"\nbackground bulk goodput: {result.mean_goodput_bps() / 1e6:.0f} Mbps"
        f"   (drops: {result.total_dropped}, ECN marks: {result.total_marked})"
    )
    p90 = percentile(jcts, 90)
    if p90 > 0.2:
        print(
            "\nNote the ~200 ms cliff: those jobs lost a whole request or"
            " response\nburst and sat out a minimum retransmission timeout."
        )


if __name__ == "__main__":
    main()
