#!/usr/bin/env python3
"""Path failure and connection-level reinjection.

An XMP transfer runs over two disjoint paths; mid-transfer one path dies
(the Fig. 7 "link closed" event, here on a two-path diamond).  Without
reinjection, the data stranded on the dead subflow is lost and the
transfer stalls forever; with ``reinject_after_timeouts`` set, the
connection declares the subflow dead after consecutive RTOs, returns its
undelivered share to the pool, and the surviving subflow finishes the
job — the robustness direction the paper's §7 sketches.

Run:  python examples/path_failure.py
"""

from repro.mptcp.connection import MptcpConnection
from repro.net.network import Network
from repro.net.queue import ThresholdECNQueue

SIZE = 20_000_000
FAIL_AT = 0.02
HORIZON = 8.0


def build_diamond() -> Network:
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    queue = lambda: ThresholdECNQueue(100, 10)
    for name in ("upper", "lower"):
        mid = net.add_switch(name)
        net.connect(a, mid, 1e9, 20e-6, queue_factory=queue)
        net.connect(mid, b, 1e9, 20e-6, queue_factory=queue)
    return net


def run(reinject) -> str:
    net = build_diamond()
    paths = net.paths("A", "B")
    conn = MptcpConnection(
        net, "A", "B", paths, scheme="xmp", size_bytes=SIZE,
        reinject_after_timeouts=reinject,
    )
    conn.start()
    # Kill whichever link the first subflow uses.
    doomed = conn.subflows[0].path[0]
    net.sim.schedule(FAIL_AT, net.set_link_pair_down, doomed)
    net.sim.run(until=HORIZON)
    status = "completed" if conn.completed else "STALLED"
    when = f"at {conn.complete_time:.3f}s" if conn.completed else f"(horizon {HORIZON}s)"
    missing = (conn.total_segments or 0) - conn.delivered_segments
    detail = "all data delivered" if missing == 0 else (
        f"{missing} segments stranded on the dead path forever"
    )
    return (
        f"  reinjection={'on' if reinject else 'off':<4} -> {status} {when}; "
        f"{detail}"
    )


def main() -> None:
    print(f"20 MB XMP transfer over two paths; one path dies at {FAIL_AT * 1e3:.0f} ms:")
    print(run(reinject=None))
    print(run(reinject=2))
    print(
        "\nWith reinjection, the dead subflow's undelivered pool share is"
        "\nre-striped through the survivor after 2 consecutive RTOs."
    )


if __name__ == "__main__":
    main()
