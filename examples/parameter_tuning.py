#!/usr/bin/env python3
"""Sweep XMP's two knobs — beta and the marking threshold K.

Eq. 1 of the paper ties them together: to keep a link busy through a
1/beta window cut, K must be at least BDP/(beta-1).  This sweep runs one
XMP flow on a 1 Gbps bottleneck for each (beta, K) pair and prints
utilization and mean queue depth, showing the trade-off the paper
describes: larger beta permits a smaller K (lower latency) but cuts less
per mark (slower convergence), and K below the Eq. 1 bound costs
throughput.

Run:  python examples/parameter_tuning.py
"""

from repro.core.analysis import predict_sawtooth
from repro.core.utility import min_marking_threshold
from repro.metrics.collector import QueueMonitor
from repro.mptcp.connection import MptcpConnection
from repro.sim.units import bandwidth_delay_product_packets
from repro.topology.bottleneck import build_single_bottleneck

RATE = 1e9
RTT = 225e-6
DURATION = 1.0


def run_cell(beta: float, threshold: int) -> tuple:
    net = build_single_bottleneck(
        num_pairs=1,
        bottleneck_rate_bps=RATE,
        rtt=RTT,
        marking_threshold=threshold,
    )
    connection = MptcpConnection(
        net, "S0", "D0", [net.flow_path(0)], scheme="xmp", beta=beta
    )
    monitor = QueueMonitor(net.sim, [net.forward_bottleneck], interval=0.001)
    monitor.start()
    connection.start()
    net.sim.run(until=DURATION)
    name = net.forward_bottleneck.name
    utilization = net.forward_bottleneck.utilization(DURATION)
    return utilization, monitor.mean_occupancy(name), monitor.max_occupancy(name)


def main() -> None:
    bdp = bandwidth_delay_product_packets(RATE, RTT)
    print(f"bottleneck BDP: {bdp:.1f} packets  (1 Gbps x {RTT * 1e6:.0f} us)")
    print(f"{'beta':>5} {'K':>4} {'Eq.1 min K':>10} {'util':>7} {'pred':>6} "
          f"{'mean q':>7} {'pred':>6} {'max q':>6}")
    for beta in (2.0, 3.0, 4.0, 5.0, 6.0):
        bound = min_marking_threshold(bdp, beta)
        for threshold in (2, 5, 10, 20):
            utilization, mean_q, max_q = run_cell(beta, threshold)
            model = predict_sawtooth(bdp, threshold, beta)
            flag = "" if threshold >= bound else "   <- K below Eq.1 bound"
            print(
                f"{beta:5.0f} {threshold:4d} {bound:10.1f} {utilization:7.3f} "
                f"{model.utilization:6.3f} {mean_q:7.1f} "
                f"{model.mean_queue_packets:6.1f} {max_q:6d}{flag}"
            )
    print("\n'pred' columns: the closed-form sawtooth model "
          "(repro.core.analysis), no simulation involved.")


if __name__ == "__main__":
    main()
