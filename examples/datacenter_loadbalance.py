#!/usr/bin/env python3
"""Scheme shoot-out on a fat tree under the Permutation workload.

Runs DCTCP, MPTCP-LIA and XMP over the same permutation of bulk
transfers and compares mean goodput, fairness across flows and how
balanced the core-layer links end up — the trade-off space of the
paper's Table 1 and Fig. 11.

Run:  python examples/datacenter_loadbalance.py
"""

from repro.experiments.fattree_eval import FatTreeScenario, run_fattree
from repro.experiments.reporting import format_table
from repro.metrics.fairness import jain_index
from repro.metrics.stats import summarize

SCHEMES = (("dctcp", 1), ("lia", 2), ("xmp", 2), ("xmp", 4))
DURATION = 0.5


def main() -> None:
    rows = []
    for scheme, subflows in SCHEMES:
        scenario = FatTreeScenario(
            scheme=scheme,
            subflows=subflows,
            pattern="permutation",
            duration=DURATION,
        )
        result = run_fattree(scenario)
        label = scenario.label()
        goodputs = [
            record.goodput_bps(result.duration)
            for record in result.all_records(label)
        ]
        core = summarize(result.utilization_values("core"))
        rows.append(
            [
                label,
                f"{result.mean_goodput_bps(label) / 1e6:.1f}",
                f"{jain_index(goodputs):.3f}",
                f"{core['mean']:.2f}",
                f"{core['max'] - core['min']:.2f}",
                f"{result.total_dropped}",
            ]
        )
    print(
        format_table(
            ["Scheme", "Goodput (Mbps)", "Jain", "Core util", "Core spread", "Drops"],
            rows,
            title=f"Permutation workload on a k=4 fat tree ({DURATION}s)",
        )
    )
    print(
        "\nExpected shape: XMP beats DCTCP on goodput and balances the core"
        " layer\n(small spread); DCTCP leaves some core links idle; LIA loses"
        " to drops\nand 200 ms recoveries."
    )


if __name__ == "__main__":
    main()
