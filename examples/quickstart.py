#!/usr/bin/env python3
"""Quickstart: one XMP flow over two paths of a k=4 fat tree.

Builds the paper's evaluation topology (scaled to k=4), starts a single
multipath transfer between two inter-pod hosts, and prints goodput,
per-subflow rates/RTTs, and how full the switch queues got — the three
quantities XMP is designed to balance.

Run:  python examples/quickstart.py
"""

from repro import MptcpConnection
from repro.topology import build_fattree


def main() -> None:
    # The paper's parameters: 1 Gbps links, K=10, beta=4, 100-packet queues.
    net = build_fattree(k=4, marking_threshold=10, queue_capacity=100)

    src, dst = "h_0_0_0", "h_2_1_1"  # inter-pod pair: 4 equal-cost paths
    paths = net.paths(src, dst)
    print(f"{src} -> {dst}: {len(paths)} equal-cost paths, using 2 subflows")

    connection = MptcpConnection(
        net, src, dst, paths[:2], scheme="xmp", size_bytes=20_000_000, beta=4.0
    )
    connection.start()
    net.sim.run(until=2.0)

    print(f"completed: {connection.completed}")
    print(f"goodput:   {connection.goodput_bps() / 1e6:.1f} Mbps")
    for subflow in connection.subflows:
        srtt = subflow.sender.srtt
        print(
            f"  subflow {subflow.index}: delivered "
            f"{subflow.sender.delivered_segments} segments, "
            f"srtt {srtt * 1e6:.0f} us" if srtt else "  subflow: no RTT sample"
        )
    print(f"ECN marks: {net.total_marked()},  drops: {net.total_dropped()}")
    deepest = max(link.queue.stats.max_occupancy for link in net.links)
    print(f"deepest queue seen anywhere: {deepest} packets (K = 10)")


if __name__ == "__main__":
    main()
