#!/usr/bin/env bash
# Repo check: lint (ruff if installed, simlint always, mypy if installed)
# + the tier-1 test suite, which includes the runtime-invariant /
# golden-trace tests (-m invariants) and the simlint self-checks
# (-m simlint).
#
#   scripts/check.sh               # everything
#   scripts/check.sh --lint        # ruff (if installed) + simlint + mypy (if installed)
#   scripts/check.sh --simlint     # simlint only
#   scripts/check.sh --tests       # tests only
#   scripts/check.sh --invariants  # invariant + golden-trace suite only
#
# ruff and mypy are optional: their configs live in pyproject.toml, but
# the check degrades gracefully on machines without them.  simlint is
# NOT optional — it is pure stdlib (repro.lint), so there is never a
# reason to skip it.

set -euo pipefail
cd "$(dirname "$0")/.."

# Prepend src without clobbering a caller-provided PYTHONPATH.
REPRO_PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

run_lint=1
run_tests=1
run_simlint_only=0
run_invariants_only=0
case "${1:-}" in
    --lint) run_tests=0 ;;
    --simlint) run_tests=0; run_lint=0; run_simlint_only=1 ;;
    --tests) run_lint=0 ;;
    --invariants) run_lint=0; run_invariants_only=1 ;;
    "") ;;
    *) echo "usage: scripts/check.sh [--lint|--simlint|--tests|--invariants]" >&2; exit 2 ;;
esac

simlint() {
    echo "== simlint (python -m repro.lint) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro.lint src/repro
}

# Compiled bytecode must never be tracked (it is machine/version
# specific and bloats every diff).  Cheap, so it runs in every mode.
if command -v git > /dev/null 2>&1 && git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
    echo "== tracked-bytecode guard =="
    tracked_pyc=$(git ls-files | grep -E '(^|/)__pycache__/|\.py[cod]$' || true)
    if [ -n "$tracked_pyc" ]; then
        echo "error: compiled bytecode is tracked in git:" >&2
        echo "$tracked_pyc" >&2
        echo "fix: git rm -r --cached <paths>  (.gitignore already excludes them)" >&2
        exit 1
    fi
fi

if [ "$run_simlint_only" = 1 ]; then
    simlint
fi

if [ "$run_lint" = 1 ]; then
    if command -v ruff > /dev/null 2>&1; then
        echo "== ruff =="
        ruff check src tests benchmarks
    else
        echo "== ruff not installed; skipping =="
    fi
    simlint
    if command -v mypy > /dev/null 2>&1; then
        echo "== mypy =="
        mypy
    else
        echo "== mypy not installed; skipping =="
    fi
fi

if [ "$run_invariants_only" = 1 ]; then
    echo "== pytest (invariants + golden traces) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m pytest -x -q -m invariants
elif [ "$run_tests" = 1 ]; then
    echo "== pytest (tier 1, includes invariant + simlint suites) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m pytest -x -q
fi
