#!/usr/bin/env bash
# Repo check: lint (ruff if installed, simlint + simsem + simrace +
# simperf always, mypy if installed) + the tier-1 test suite, which
# includes the runtime-invariant / golden-trace tests (-m invariants),
# the simlint self-checks (-m simlint), the simsem
# cross-module-analysis suite (-m simsem), the simrace detector suite
# (-m simrace) and the simperf suite (-m simperf).
#
#   scripts/check.sh               # everything
#   scripts/check.sh --lint        # ruff (if installed) + simlint + simsem + simrace + simperf + mypy (if installed)
#   scripts/check.sh --simlint     # simlint only (syntactic, per file)
#   scripts/check.sh --sem         # simsem only (cross-module semantic pass)
#   scripts/check.sh --race        # simrace only (static race pass + sanitizer smoke)
#   scripts/check.sh --perf        # simperf only (static hot-path pass + allocation sanitizer smoke)
#   scripts/check.sh --tests       # tests only
#   scripts/check.sh --invariants  # invariant + golden-trace suite only
#   scripts/check.sh --bench       # engine bench vs BENCH_engine.json (>30% drop fails)
#
# ruff and mypy are optional: their configs live in pyproject.toml, but
# the check degrades gracefully on machines without them.  simlint,
# simsem, simrace and simperf are NOT optional — all are pure stdlib
# (repro.lint), so there is never a reason to skip them; every
# lint-running mode runs all four.

set -euo pipefail
cd "$(dirname "$0")/.."

# Prepend src without clobbering a caller-provided PYTHONPATH.
REPRO_PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

run_lint=1
run_tests=1
run_simlint_only=0
run_sem_only=0
run_race_only=0
run_perf_only=0
run_invariants_only=0
run_bench_only=0
case "${1:-}" in
    --lint) run_tests=0 ;;
    --simlint) run_tests=0; run_lint=0; run_simlint_only=1 ;;
    --sem) run_tests=0; run_lint=0; run_sem_only=1 ;;
    --race) run_tests=0; run_lint=0; run_race_only=1 ;;
    --perf) run_tests=0; run_lint=0; run_perf_only=1 ;;
    --tests) run_lint=0 ;;
    --invariants) run_lint=0; run_invariants_only=1 ;;
    --bench) run_lint=0; run_tests=0; run_bench_only=1 ;;
    "") ;;
    *) echo "usage: scripts/check.sh [--lint|--simlint|--sem|--race|--perf|--tests|--invariants|--bench]" >&2; exit 2 ;;
esac

simlint() {
    echo "== simlint (python -m repro.lint) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro.lint src/repro
}

simsem() {
    # The cross-module pass; summaries cache under .simsem-cache
    # (content-addressed — safe to persist across runs and in CI).
    echo "== simsem (python -m repro.lint --sem, semantic pass) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro.lint --sem \
        --select SIM011,SIM012,SIM013,SIM014,SIM015 src/repro
}

simrace() {
    # The same-instant race detector, both sides: the static pass over
    # the whole tree, then the runtime sanitizer on one bottleneck
    # golden and one incast cell, cross-checked against the checked-in
    # digests (the sanitizer must observe without perturbing).  The
    # report path can be overridden for CI artifact upload.
    echo "== simrace (python -m repro.lint --race, static pass) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro.lint --race \
        --select SIM016,SIM017,SIM018 src/repro
    echo "== simrace sanitizer smoke (python -m repro.lint.race) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro.lint.race \
        --out "${REPRO_RACE_REPORT:-race-report.jsonl}"
}

simperf() {
    # The hot-path performance pass, both sides: the static rules over
    # the whole tree (every finding must be fixed or carry an
    # allow-alloc pragma — the gate is zero findings), then the
    # allocation sanitizer on the golden smoke set (digests must stay
    # bit-identical and every observed allocator must have a static
    # explanation), then the two engine micro cells with every callback
    # traced.  The report path can be overridden for CI artifact upload.
    echo "== simperf (python -m repro.lint --perf, static pass) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro.lint --perf \
        --select SIM019,SIM020,SIM021,SIM022,SIM023 src/repro
    echo "== simperf sanitizer smoke (python -m repro.lint.perf) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro.lint.perf \
        --out "${REPRO_PERF_REPORT:-perf-report.jsonl}"
    echo "== simperf micro cells (python -m repro.lint.perf --micro) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro.lint.perf --micro
}

# Compiled bytecode and generated sanitizer reports must never be
# tracked (machine/version specific; they bloat every diff).  Cheap, so
# it runs in every mode.
if command -v git > /dev/null 2>&1 && git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
    echo "== tracked-artifact guard =="
    tracked_artifacts=$(git ls-files | grep -E '(^|/)__pycache__/|\.py[cod]$|^[^/]*\.jsonl$' || true)
    if [ -n "$tracked_artifacts" ]; then
        echo "error: generated artifacts are tracked in git:" >&2
        echo "$tracked_artifacts" >&2
        echo "fix: git rm -r --cached <paths>  (.gitignore already excludes them)" >&2
        exit 1
    fi
fi

if [ "$run_simlint_only" = 1 ]; then
    simlint
fi

if [ "$run_sem_only" = 1 ]; then
    simsem
fi

if [ "$run_race_only" = 1 ]; then
    simrace
fi

if [ "$run_perf_only" = 1 ]; then
    simperf
fi

if [ "$run_lint" = 1 ]; then
    if command -v ruff > /dev/null 2>&1; then
        echo "== ruff =="
        ruff check src tests benchmarks
    else
        echo "== ruff not installed; skipping =="
    fi
    simlint
    simsem
    simrace
    simperf
    if command -v mypy > /dev/null 2>&1; then
        echo "== mypy =="
        mypy
    else
        echo "== mypy not installed; skipping =="
    fi
fi

if [ "$run_bench_only" = 1 ]; then
    # Perf-regression gate: re-measure the canonical cells (best-of-N to
    # ride out shared-runner noise) and fail on a >30% events/sec drop
    # against the committed trajectory's last entry.  The wide tolerance
    # is deliberate: single-core CI boxes jitter by 10-20% run to run;
    # the gate is for catching algorithmic regressions, not ulps.
    echo "== engine bench (vs BENCH_engine.json, threshold 30%) =="
    REPRO_BENCH_REPEATS="${REPRO_BENCH_REPEATS:-5}" \
        PYTHONPATH="$REPRO_PYTHONPATH" python benchmarks/engine_bench.py --check --threshold 0.30
fi

workload_smoke() {
    # One tiny cell of each new traffic kind through the real CLI: the
    # cheapest end-to-end proof that samplers -> schedule -> open-loop
    # launch -> FCT/queue reducers -> table formatting still compose.
    echo "== workload smoke (tiny workload + incast cells via the CLI) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro workload \
        --loads 0.4 --schemes xmp-2 --duration 0.006 --no-cache
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro incast \
        --fan-ins 4 --schemes xmp-2 --duration 0.006 --no-cache
}

fluid_smoke() {
    # The fluid backend end-to-end through the CLI, then a short
    # fluid-vs-packet cross-validation on the Fig. 1 dumbbell: the
    # cheapest proof that the ODE backend, the runner plumbing and the
    # crosscheck tolerances still hold together.
    echo "== fluid smoke (fluid cell + bottleneck crosscheck via the CLI) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro fluid \
        --flows 4 --duration 0.05 --no-cache
    PYTHONPATH="$REPRO_PYTHONPATH" python -m repro fluid \
        --crosscheck bottleneck --duration 0.05 --no-cache
}

if [ "$run_invariants_only" = 1 ]; then
    echo "== pytest (invariants + golden traces) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m pytest -x -q -m invariants
elif [ "$run_tests" = 1 ]; then
    echo "== pytest (tier 1, includes invariant + simlint suites) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m pytest -x -q
    workload_smoke
    fluid_smoke
fi
