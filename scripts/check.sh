#!/usr/bin/env bash
# Repo check: lint (if ruff is installed) + the tier-1 test suite,
# which includes the runtime-invariant / golden-trace tests (-m invariants
# selects just those).
#
#   scripts/check.sh               # everything
#   scripts/check.sh --lint        # lint only
#   scripts/check.sh --tests       # tests only
#   scripts/check.sh --invariants  # invariant + golden-trace suite only
#
# ruff is optional: the config lives in pyproject.toml, but the check
# degrades to tests-only on machines without it rather than failing.

set -euo pipefail
cd "$(dirname "$0")/.."

# Prepend src without clobbering a caller-provided PYTHONPATH.
REPRO_PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

run_lint=1
run_tests=1
run_invariants_only=0
case "${1:-}" in
    --lint) run_tests=0 ;;
    --tests) run_lint=0 ;;
    --invariants) run_lint=0; run_invariants_only=1 ;;
    "") ;;
    *) echo "usage: scripts/check.sh [--lint|--tests|--invariants]" >&2; exit 2 ;;
esac

if [ "$run_lint" = 1 ]; then
    if command -v ruff > /dev/null 2>&1; then
        echo "== ruff =="
        ruff check src tests benchmarks
    else
        echo "== ruff not installed; skipping lint =="
    fi
fi

if [ "$run_invariants_only" = 1 ]; then
    echo "== pytest (invariants + golden traces) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m pytest -x -q -m invariants
elif [ "$run_tests" = 1 ]; then
    echo "== pytest (tier 1, includes invariant suite) =="
    PYTHONPATH="$REPRO_PYTHONPATH" python -m pytest -x -q
fi
