"""simperf — profile-guided hot-path performance analysis (SIM019–SIM023).

The fourth rung of the analysis ladder, above simlint (per-file AST
rules), simsem (cross-module dataflow) and simrace (same-instant
ordering).  PR 6 leaned the engine and link hot paths to an
allocation-free per-event floor; simperf *protects* that floor:

* **Static pass** (:mod:`repro.lint.perf.analyzer`): consumes the
  simsem v4 per-file summaries — per-function cost records with every
  allocation site, in-loop attribute chain, global load and
  kwargs/dunder call — and joins them against the hot-path registry
  (``hotpaths.toml``, see :mod:`repro.lint.perf.hotpaths`).  SIM019
  flags allocations in registered hot functions (waivable per line with
  ``# simperf: allow-alloc(<reason>)``), SIM020 unhoisted attribute
  chains in hot loops, SIM021 one-hop transitive allocation through
  non-hot callees, SIM022 registry drift against recorded ``repro.obs``
  telemetry, SIM023 kwargs/dunder-trapped calls.  Run with
  ``python -m repro.lint --perf``.

* **Runtime sanitizer** (:mod:`repro.lint.perf.runtime`): a
  zero-cost-when-disabled tracemalloc hook around every fired hot
  callback (fourth engine seam, same activation contract as
  :mod:`repro.validate` / :mod:`repro.obs` / :mod:`repro.lint.race`),
  enabled with ``REPRO_ALLOC=1``.  ``python -m repro.lint.perf``
  cross-checks dynamically observed allocators against the static
  explanation closure on the golden scenarios, with bit-identical
  digests.

This ``__init__`` deliberately imports only the light modules (rule
metadata and the dependency-free hooks) so that
:class:`repro.net.Network` can consult the activation registry at
construction time without pulling the whole analyzer in.
"""

from repro.lint.perf.hooks import (
    activate,
    active_alloc_monitor,
    alloc_monitoring,
    alloc_requested,
    deactivate,
)
from repro.lint.perf.info import PERF_CODES, PERF_RULE_INFOS

__all__ = [
    "PERF_CODES",
    "PERF_RULE_INFOS",
    "activate",
    "active_alloc_monitor",
    "alloc_monitoring",
    "alloc_requested",
    "deactivate",
]
