"""The hot-path registry: which functions simperf holds allocation-free.

``hotpaths.toml`` (checked in next to this module) lists dotted function
qnames — ``repro.net.link.Link._finish_transmission`` — each with a
one-line ``reason`` documenting *why* it is hot (which loop drives it).
The join pass (:mod:`repro.lint.perf.analyzer`) applies SIM019/020/021/
023 only to registered functions, and SIM022 fails the build when
recorded telemetry shows a function above the wall-time share threshold
that this file does not know about.

The file format is the same deliberately tiny TOML subset as
``sinks.toml``: ``[section]`` headers and ``key = "string"`` pairs, ``#``
comments, hard errors on anything else — no tomllib dependency and no
silent misparses.
"""

from __future__ import annotations

import hashlib
import re
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

DEFAULT_HOTPATHS_FILE = Path(__file__).with_name("hotpaths.toml")

_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_PAIR_RE = re.compile(
    r"^(?P<key>[A-Za-z_][A-Za-z0-9_-]*)\s*=\s*\"(?P<value>[^\"]*)\"\s*$"
)
_QNAME_RE = re.compile(r"^[A-Za-z_][\w]*(\.[A-Za-z_][\w]*)+$")


class HotPathError(ValueError):
    """A malformed or inconsistent hotpaths.toml."""


class HotPathRegistry:
    """Dotted hot-function qnames, each with a documented reason."""

    def __init__(self, origin: str = str(DEFAULT_HOTPATHS_FILE)) -> None:
        self.origin = origin
        self._reasons: Dict[str, str] = {}

    # -- construction ------------------------------------------------------

    def add(self, qname: str, reason: str) -> None:
        if not _QNAME_RE.match(qname):
            raise HotPathError(
                f"hot-path qname {qname!r} is not a dotted identifier"
            )
        if not reason.strip():
            raise HotPathError(f"hot path {qname!r} has an empty reason")
        if qname in self._reasons:
            raise HotPathError(f"duplicate hot-path entry {qname!r}")
        self._reasons[qname] = reason.strip()

    @classmethod
    def load(cls, path: Optional[Path] = None) -> "HotPathRegistry":
        path = path if path is not None else DEFAULT_HOTPATHS_FILE
        registry = cls(origin=str(path))
        registry._parse(path.read_text(encoding="utf-8"), str(path))
        return registry

    @classmethod
    def from_text(
        cls, text: str, origin: str = "<inline>"
    ) -> "HotPathRegistry":
        registry = cls(origin=origin)
        registry._parse(text, origin)
        return registry

    def _parse(self, text: str, origin: str) -> None:
        section: Optional[str] = None
        reason: Optional[str] = None

        def _flush() -> None:
            if section is None:
                return
            if reason is None:
                raise HotPathError(
                    f"{origin}: hot path [{section}] is missing its "
                    "`reason = \"...\"` line"
                )
            self.add(section, reason)

        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            match = _SECTION_RE.match(line)
            if match:
                _flush()
                section = match.group("name").strip()
                reason = None
                continue
            match = _PAIR_RE.match(line)
            if match:
                if section is None:
                    raise HotPathError(
                        f"{origin}:{lineno}: key outside any [section]"
                    )
                key = match.group("key")
                if key != "reason":
                    raise HotPathError(
                        f"{origin}:{lineno}: unknown key {key!r} "
                        "(only `reason` is allowed)"
                    )
                if reason is not None:
                    raise HotPathError(
                        f"{origin}:{lineno}: duplicate reason for "
                        f"[{section}]"
                    )
                reason = match.group("value")
                continue
            raise HotPathError(
                f"{origin}:{lineno}: unparseable line {raw!r} (the "
                "hotpaths format is [dotted.qname] sections with one "
                "`reason = \"...\"` each)"
            )
        _flush()

    # -- queries -----------------------------------------------------------

    def __contains__(self, qname: object) -> bool:
        return qname in self._reasons

    def __len__(self) -> int:
        return len(self._reasons)

    def reason(self, qname: str) -> Optional[str]:
        return self._reasons.get(qname)

    def items(self) -> Iterator[Tuple[str, str]]:
        for qname in sorted(self._reasons):
            yield qname, self._reasons[qname]

    def digest(self) -> str:
        """Content digest, for cache keys and report provenance."""
        blob = "|".join(
            f"{qname}={reason}" for qname, reason in self.items()
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


__all__ = [
    "DEFAULT_HOTPATHS_FILE",
    "HotPathError",
    "HotPathRegistry",
]
