"""Sanitizer smoke runner: ``python -m repro.lint.perf``.

Runs canonical golden scenarios with the allocation sanitizer active
(see :mod:`repro.lint.perf.runtime`), then asserts three things:

* **no unexplained allocators** — every registered hot function that
  tracemalloc observed allocating on a majority of its firings has a
  static explanation: an allocation site (waived or not) reachable from
  it through the summary call graph
  (:func:`repro.lint.perf.analyzer.explained_hot_functions`);
* **bit-identical digests** — the sanitizer observed without
  perturbing: every scenario digest still matches its checked-in
  golden;
* **no invariant violations** — the validator stayed quiet.

``--micro`` instead drives the two engine micro cells
(``micro_schedule_fire`` / ``micro_hotpath_fire`` from
``benchmarks/engine_bench.py``) with *every* callback traced after a
free-list warmup segment, and fails on any callback that still
allocates on a majority of firings — the deterministic form of the
bench job's wall-clock allocation gate.

Either failure exits 1.  ``--out`` writes the JSONL allocation report
(per-function records then one summary line per scenario; see
OBSERVABILITY.md) regardless of outcome, so CI can upload it as an
artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.lint.perf.hooks import alloc_monitoring
from repro.lint.perf.hotpaths import HotPathRegistry
from repro.lint.perf.runtime import AllocMonitor

#: Default smoke set: one bottleneck golden plus one incast cell — the
#: two scenario shapes that exercise the densest transport fan-in.
DEFAULT_SCENARIOS = ("bottleneck-xmp", "incast-fanin8")

DEFAULT_SRC = "src/repro"

#: Micro-cell sizes: enough events past warmup that free-list noise
#: cannot reach the majority threshold, small enough for a CI smoke.
_MICRO_WARMUP = 20_000
_MICRO_EVENTS = 80_000


def _build_summaries(src: str) -> List[Dict[str, Any]]:
    from repro.lint.core import iter_python_files
    from repro.lint.sem.summary import build_summary

    return [
        build_summary(str(path), path.read_text(encoding="utf-8"))
        for path in iter_python_files([src])
    ]


def _explained(src: str, registry: HotPathRegistry) -> Set[str]:
    from repro.lint.perf.analyzer import explained_hot_functions

    return explained_hot_functions(_build_summaries(src), registry)


# -- micro cells ---------------------------------------------------------


def _micro_schedule_fire(monitor: AllocMonitor) -> int:
    """Mirror of the ``micro_schedule_fire`` bench cell, split so the
    monitor attaches only after a free-list warmup segment."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    noop = lambda: None  # noqa: E731 - the cheapest possible callback
    schedule = sim.schedule
    for i in range(_MICRO_EVENTS):
        schedule(i * 1e-6, noop)
    sim.run(max_events=_MICRO_WARMUP)
    monitor.attach(sim)
    sim.run()
    return sim.events_processed


def _micro_hotpath_fire(monitor: AllocMonitor) -> int:
    """Mirror of the ``micro_hotpath_fire`` bench cell (self-posting
    chains through the allocation-free ``post()`` path)."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    post = sim.post
    fired = [0]

    def tick() -> None:
        fired[0] += 1
        if fired[0] < _MICRO_EVENTS:
            post(1.3e-6, tick)

    for lane in range(8):
        sim.schedule(lane * 1e-7, tick)
    sim.run(max_events=_MICRO_WARMUP)
    monitor.attach(sim)
    sim.run()
    return sim.events_processed


_MICRO_CELLS = {
    "micro_schedule_fire": _micro_schedule_fire,
    "micro_hotpath_fire": _micro_hotpath_fire,
}


def _run_micro(args: argparse.Namespace) -> int:
    records: List[dict] = []
    ok = True
    for name, cell in _MICRO_CELLS.items():
        monitor = AllocMonitor(trace_all=True)
        try:
            events = cell(monitor)
        finally:
            monitor.close()
        allocators = monitor.allocators()
        if allocators:
            ok = False
        summary = monitor.summary()
        summary["scenario"] = name
        records.append(summary)
        status = (
            f"{len(allocators)} per-event allocator(s): "
            + ", ".join(allocators)
            if allocators
            else "ok"
        )
        if allocators or not args.quiet:
            print(
                f"{name:<28} {status}  [{events} events, "
                f"{monitor.hot_events} traced]"
            )
    _write_out(args, records)
    return 0 if ok else 1


# -- golden scenarios ----------------------------------------------------


def _run_goldens(args: argparse.Namespace) -> int:
    from repro.validate.golden import check_digest, format_diff
    from repro.validate.scenarios import run_scenario, scenario_names

    parser_error = args._parser.error
    known = scenario_names()
    if args.all:
        names = known
    elif args.scenario:
        names = list(args.scenario)
        for name in names:
            if name not in known:
                parser_error(
                    f"unknown scenario {name!r} (known: {', '.join(known)})"
                )
    else:
        names = list(DEFAULT_SCENARIOS)

    registry = HotPathRegistry.load()
    explained = _explained(args.src, registry)

    records: List[dict] = []
    ok = True
    for name in names:
        monitor = AllocMonitor(registry=registry)
        with alloc_monitoring(monitor):
            digest, validator = run_scenario(name)
        unexplained = sorted(set(monitor.allocators()) - explained)
        status: List[str] = []
        if unexplained:
            ok = False
            status.append(
                f"{len(unexplained)} unexplained allocator(s): "
                + ", ".join(unexplained)
            )
        if validator.violations:
            ok = False
            status.append(
                f"{len(validator.violations)} invariant violation(s)"
            )
        if not args.no_goldens:
            differences = check_digest(name, digest)
            if differences:
                ok = False
                status.append("digest mismatch under sanitizer")
                if not args.quiet:
                    print(format_diff(name, differences), file=sys.stderr)
        if not status:
            status.append("ok")
        summary = monitor.summary()
        summary["scenario"] = name
        summary["unexplained"] = unexplained
        for dotted in sorted(monitor.stats):
            records.append(
                {
                    "kind": "function",
                    "scenario": name,
                    "function": dotted,
                    **monitor.stats[dotted],
                }
            )
        records.append(summary)
        if unexplained or not args.quiet:
            print(
                f"{name:<28} {', '.join(status)}  "
                f"[{summary['events']} events, {summary['hot_events']} hot]"
            )
    _write_out(args, records)
    return 0 if ok else 1


def _write_out(args: argparse.Namespace, records: List[dict]) -> None:
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        if not args.quiet:
            print(f"alloc report: {args.out} ({len(records)} record(s))")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint.perf",
        description=(
            "run golden scenarios under the allocation sanitizer, "
            "cross-check observed allocators against the static "
            "explanation closure, and verify digests stay bit-identical"
        ),
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="scenario to run (repeatable; default: "
             f"{', '.join(DEFAULT_SCENARIOS)})",
    )
    parser.add_argument("--all", action="store_true",
                        help="run every golden scenario")
    parser.add_argument("--micro", action="store_true",
                        help="instead drive the two engine micro cells "
                             "with every callback traced and fail on any "
                             "per-event allocator")
    parser.add_argument("--src", metavar="DIR", default=DEFAULT_SRC,
                        help="tree to build the static explanation "
                             f"closure from (default: {DEFAULT_SRC})")
    parser.add_argument("--out", metavar="FILE",
                        help="write the JSONL allocation report here")
    parser.add_argument("--no-goldens", action="store_true",
                        help="skip the golden-digest cross-check (for "
                             "trees whose goldens are being re-blessed)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print failures")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    args._parser = parser
    if args.micro:
        return _run_micro(args)
    return _run_goldens(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
