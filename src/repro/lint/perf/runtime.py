"""The runtime side of simperf: the per-hot-function allocation sanitizer.

An :class:`AllocMonitor` attaches to a
:class:`~repro.sim.engine.Simulator` through the engine's passive
``alloc`` slot — the fourth zero-cost hook seam, next to the validator's
``observer``, the profiler, and the race monitor.  The instrumented loop
calls exactly two hooks around every fired callback:

* ``alloc.on_event_fired(time, priority, callback)`` — before the fire:
  if the callback resolves to a function registered in ``hotpaths.toml``
  (memoized by the underlying function object), the tracemalloc peak is
  reset and the traced-memory baseline captured;
* ``alloc.on_event_settled()`` — after the fire: the peak delta over the
  baseline is attributed to that hot function.

The monitor observes and never perturbs: tracemalloc tracks allocator
traffic out of band, the monitor schedules nothing and mutates nothing
it observes, and the golden digests must be bit-identical with
``REPRO_ALLOC=1`` (``tests/test_simperf.py`` pins this).

Attribution semantics: CPython's float/tuple free lists bypass the
allocator, so a hot function that *recycles* objects in steady state
shows sporadic deltas at worst; ints have no free list, so scalar
arithmetic boxes one traced ``PyLong`` per operation — deltas at or
below :data:`SCALAR_NOISE_BYTES` are therefore discounted entirely.  A
function is reported as an *allocator* only when it shows a traced
allocation above that floor on a majority of its firings
(:meth:`AllocMonitor.allocators`) — structural per-event allocation,
not free-list warmup noise.  The static cross-check
(``python -m repro.lint.perf``) then demands that every such function
has an allocation site or allow-alloc pragma reachable in its summary
call graph; anything else is an *unexplained* allocation.
"""

from __future__ import annotations

import json
import tracemalloc
from typing import Any, Callable, Dict, List, Optional

from repro.lint.perf.hotpaths import HotPathRegistry

#: Per-function JSONL records are capped so a long campaign cannot grow
#: the log unboundedly; the in-memory totals are always complete.
_LOG_RECORDS_PER_FUNCTION = 50

#: Peak deltas at or below one boxed scalar are measurement noise, not
#: allocation: CPython 3.11 has no int free list, so any arithmetic past
#: the small-int cache (a sequence counter, ``x += 1``) boxes a fresh
#: 28-byte ``PyLong`` (rounded to 32 by pymalloc) that tracemalloc duly
#: traces.  That boxing is the cost of *Python*, not of the function
#: under test, and no real object construction hides under it — the
#: smallest tuple/list/dict/instance all exceed 32 bytes.
SCALAR_NOISE_BYTES = 32


class AllocMonitor:
    """Attributes tracemalloc peak deltas to registered hot functions."""

    def __init__(
        self,
        registry: Optional[HotPathRegistry] = None,
        log_path: Optional[str] = None,
        trace_all: bool = False,
    ) -> None:
        self.registry = (
            registry if registry is not None else HotPathRegistry.load()
        )
        self.log_path = log_path
        #: Trace every callback (micro-cell mode), not just registered
        #: hot functions; attribution keys stay dotted qnames.
        self.trace_all = trace_all
        self.events = 0
        self.hot_events = 0
        #: dotted qname -> {"events", "alloc_events", "bytes"}
        self.stats: Dict[str, Dict[str, int]] = {}
        #: function object -> dotted qname (or None when not registered).
        self._resolved: Dict[Any, Optional[str]] = {}
        self._logged: Dict[str, int] = {}
        #: (dotted, time) of the hot callback currently firing, or None.
        self._pending: Optional[tuple] = None
        self._baseline = 0
        self._started_tracing = not tracemalloc.is_tracing()
        if self._started_tracing:
            tracemalloc.start()

    # -- attachment ----------------------------------------------------

    def attach(self, sim: Any) -> None:
        """Attach to a simulator's passive ``alloc`` slot."""
        sim.alloc = self

    def close(self) -> None:
        """Release tracemalloc, if this monitor started it."""
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracing = False

    # -- engine hooks --------------------------------------------------

    def _resolve(self, callback: Callable[..., None]) -> Optional[str]:
        func = getattr(callback, "__func__", callback)
        try:
            return self._resolved[func]
        except KeyError:
            pass
        except TypeError:  # unhashable callable: never a registered method
            return None
        module = getattr(func, "__module__", "") or ""
        qualname = getattr(func, "__qualname__", "") or ""
        dotted = f"{module}.{qualname}"
        if self.trace_all:
            resolved: Optional[str] = dotted
        else:
            resolved = dotted if dotted in self.registry else None
        self._resolved[func] = resolved
        return resolved

    def on_event_fired(
        self, when: float, priority: int, callback: Callable[..., None]
    ) -> None:
        """Called by the engine loop immediately before a callback fires."""
        self.events += 1
        dotted = self._resolve(callback)
        if dotted is None:
            self._pending = None
            return
        self.hot_events += 1
        self._pending = (dotted, when)
        if tracemalloc.is_tracing():
            # Baseline first, reset second: get_traced_memory() reads the
            # counters *before* building its result tuple, so this order
            # keeps the monitor's own transient tuple out of the peak
            # window.  Reversed, every event shows a ~64-byte phantom
            # delta and every callback looks like an allocator.
            self._baseline = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()

    def on_event_settled(self) -> None:
        """Called by the engine loop after the callback returned."""
        pending = self._pending
        if pending is None:
            return
        self._pending = None
        dotted, when = pending
        delta = 0
        if tracemalloc.is_tracing():
            _current, peak = tracemalloc.get_traced_memory()
            delta = peak - self._baseline
            delta = 0 if delta <= SCALAR_NOISE_BYTES else delta
        entry = self.stats.get(dotted)
        if entry is None:
            entry = {"events": 0, "alloc_events": 0, "bytes": 0}
            self.stats[dotted] = entry
        entry["events"] += 1
        if delta > 0:
            entry["alloc_events"] += 1
            entry["bytes"] += delta
            if (
                self.log_path is not None
                and self._logged.get(dotted, 0) < _LOG_RECORDS_PER_FUNCTION
            ):
                self._logged[dotted] = self._logged.get(dotted, 0) + 1
                record = {
                    "kind": "alloc",
                    "function": dotted,
                    "time": when,
                    "bytes": delta,
                }
                with open(self.log_path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")

    # -- reporting -----------------------------------------------------

    def allocators(self, min_ratio: float = 0.5) -> List[str]:
        """Hot functions that allocated on ≥ ``min_ratio`` of firings.

        The majority threshold separates structural per-event allocation
        (a constructor on every fire) from free-list warmup noise, which
        shows up on a handful of early firings only.
        """
        return sorted(
            dotted
            for dotted, entry in self.stats.items()
            if entry["events"] > 0
            and entry["alloc_events"] / entry["events"] >= min_ratio
        )

    def summary(self) -> Dict[str, Any]:
        """The run's totals, in the JSONL summary-record shape."""
        return {
            "kind": "summary",
            "events": self.events,
            "hot_events": self.hot_events,
            "functions": len(self.stats),
            "allocators": self.allocators(),
        }

    def write_report(
        self, path: str, extra: Optional[Dict[str, Any]] = None
    ) -> None:
        """Write per-function totals plus a trailing summary as JSONL."""
        summary = self.summary()
        if extra:
            summary.update(extra)
        with open(path, "w", encoding="utf-8") as handle:
            for dotted in sorted(self.stats):
                entry = self.stats[dotted]
                record = {"kind": "function", "function": dotted, **entry}
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.write(json.dumps(summary, sort_keys=True) + "\n")


__all__ = ["AllocMonitor", "SCALAR_NOISE_BYTES"]
