"""The active allocation-monitor registry: how the sanitizer is enabled.

Identical contract to :mod:`repro.lint.race.hooks` (and the validator /
profiler registries before it): this module is dependency-free — the
monitor class is imported lazily, tracemalloc only starts once a monitor
actually materializes — so :class:`repro.net.Network` can consult it at
construction time without import cycles, and the engine's hot loop pays
exactly one aliased ``is None`` branch when no monitor is attached.

Activation paths:

* explicitly, via :func:`activate` or the :func:`alloc_monitoring`
  context manager (what the tests and ``python -m repro.lint.perf`` use);
* ambiently, via ``REPRO_ALLOC=1`` in the environment: the first
  :func:`active_alloc_monitor` call lazily creates one shared
  process-wide monitor (``REPRO_ALLOC_LOG=<path>`` streams per-function
  allocation records to JSONL) and every subsequently constructed
  ``Network`` attaches it.
"""

from __future__ import annotations

import contextlib
import os
from typing import TYPE_CHECKING, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker, types only
    from repro.lint.perf.runtime import AllocMonitor

_ENV_ALLOC = "REPRO_ALLOC"
_ENV_ALLOC_LOG = "REPRO_ALLOC_LOG"

#: Stack of explicitly active monitors; the top one receives new sims.
_ACTIVE: List["AllocMonitor"] = []

#: The lazily created environment-requested monitor (shared per process).
_ENV_MONITOR: Optional["AllocMonitor"] = None


def activate(monitor: "AllocMonitor") -> None:
    """Push ``monitor``: networks constructed from now on attach to it."""
    _ACTIVE.append(monitor)


def deactivate(monitor: Optional["AllocMonitor"] = None) -> None:
    """Pop the innermost monitor (must match ``monitor`` when given)."""
    if not _ACTIVE:
        raise RuntimeError("no allocation monitor is active")
    top = _ACTIVE.pop()
    if monitor is not None and top is not monitor:
        _ACTIVE.append(top)
        raise RuntimeError(
            "deactivate() out of order: not the innermost monitor"
        )


def alloc_requested() -> bool:
    """Whether the allocation sanitizer should be on for this process."""
    if _ACTIVE:
        return True
    return os.environ.get(_ENV_ALLOC, "") not in ("", "0")


def active_alloc_monitor() -> Optional["AllocMonitor"]:
    """The monitor new simulators should attach to, or ``None``.

    Explicit activation wins; otherwise ``REPRO_ALLOC`` materializes one
    shared monitor on first use.  Returning ``None`` is the common case
    and must stay cheap — it is consulted once per ``Network``.
    """
    global _ENV_MONITOR
    if _ACTIVE:
        return _ACTIVE[-1]
    if os.environ.get(_ENV_ALLOC, "") in ("", "0"):
        return None
    if _ENV_MONITOR is None:
        from repro.lint.perf.runtime import AllocMonitor

        _ENV_MONITOR = AllocMonitor(
            log_path=os.environ.get(_ENV_ALLOC_LOG) or None
        )
    return _ENV_MONITOR


@contextlib.contextmanager
def alloc_monitoring(
    monitor: Optional["AllocMonitor"] = None,
) -> Iterator["AllocMonitor"]:
    """Run a block with an active allocation monitor.

    Usage::

        with alloc_monitoring() as monitor:
            net = build_single_bottleneck(...)
            net.sim.run(until=0.4)
        stats = monitor.stats

    On exit the monitor's tracemalloc tracing is released (if the
    monitor started it).
    """
    if monitor is None:
        from repro.lint.perf.runtime import AllocMonitor

        monitor = AllocMonitor()
    activate(monitor)
    try:
        yield monitor
    finally:
        deactivate(monitor)
        monitor.close()


__all__ = [
    "activate",
    "deactivate",
    "active_alloc_monitor",
    "alloc_monitoring",
    "alloc_requested",
]
