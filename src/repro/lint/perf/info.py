"""Rule metadata for simperf (SIM019–SIM023).

Kept import-light (no analyzer, no tracemalloc) so the CLI and the rule
registry can enumerate the catalog without paying for the join pass.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.lint.core import Severity
from repro.lint.sem.info import SemRuleInfo

PERF_RULE_INFOS: Tuple[SemRuleInfo, ...] = (
    SemRuleInfo(
        code="SIM019",
        name="hot-path-allocation",
        severity=Severity.ERROR,
        rationale=(
            "An allocation site (constructor call, display, comprehension, "
            "f-string, str concat, lambda/closure) inside a function "
            "registered in hotpaths.toml; PR 6's allocation-free fast "
            "paths regress silently otherwise.  Waive a deliberate site "
            "with `# simperf: allow-alloc(<reason>)`."
        ),
    ),
    SemRuleInfo(
        code="SIM020",
        name="unhoisted-attr-chain",
        severity=Severity.WARNING,
        rationale=(
            "An attribute chain two or more hops deep resolved repeatedly "
            "inside a loop of a hot function; pre-bind it to a local "
            "(the Link._rebind idiom) so each event pays one LOAD_FAST."
        ),
    ),
    SemRuleInfo(
        code="SIM021",
        name="hot-calls-allocating-callee",
        severity=Severity.WARNING,
        rationale=(
            "A hot function calls a non-hot callee whose summary records "
            "unwaived allocation sites — the allocation is one hop away "
            "and invisible to SIM019.  Register the callee as hot, hoist "
            "the call, or waive the call line with allow-alloc."
        ),
    ),
    SemRuleInfo(
        code="SIM022",
        name="hot-registry-drift",
        severity=Severity.ERROR,
        rationale=(
            "A function exceeds the wall-time share threshold in recorded "
            "repro.obs telemetry but is absent from hotpaths.toml, so "
            "none of the hot-path rules protect it; add it to the "
            "registry (closes the profiler->analyzer loop)."
        ),
    ),
    SemRuleInfo(
        code="SIM023",
        name="hot-path-dynamic-call",
        severity=Severity.WARNING,
        rationale=(
            "A call in a hot function that defeats CPython's fast calling "
            "convention: **kwargs / *args unpacking (builds a dict or "
            "tuple per event) or an explicit dunder call routed through "
            "the slow lookup path."
        ),
    ),
)

PERF_CODES: FrozenSet[str] = frozenset(info.code for info in PERF_RULE_INFOS)

__all__ = ["PERF_CODES", "PERF_RULE_INFOS"]
