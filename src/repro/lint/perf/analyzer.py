"""The simperf join pass: SIM019–SIM023 over the v4 summaries.

Phase 1 (shared with simsem/simrace) already recorded, per function,
every allocation site, in-loop global load, in-loop attribute chain and
kwargs/dunder call — see ``summary.py``'s cost records.  This module
joins those records against the hot-path registry
(:mod:`repro.lint.perf.hotpaths`) and, for SIM022, against recorded
``repro.obs`` telemetry, and emits findings:

* **SIM019** — an allocation site inside a registered hot function,
  unless the line carries ``# simperf: allow-alloc(<reason>)``;
* **SIM020** — a ≥2-deep attribute chain resolved inside a loop of a
  hot function (each iteration pays the full lookup; pre-bind it);
* **SIM021** — a hot function calling a non-hot callee whose own cost
  record shows unwaived allocations (one transitive hop, simsem-style
  resolution: unresolvable or ambiguous callees are never guessed);
* **SIM022** — registry drift: telemetry shows a callback above the
  wall-time share threshold that ``hotpaths.toml`` does not register;
* **SIM023** — ``**kwargs`` / ``*args`` unpacking or explicit dunder
  calls in a hot function (each builds a dict/tuple or takes the slow
  lookup path per event).

The same module also computes the *explained allocator* closure the
``REPRO_ALLOC`` sanitizer cross-checks against: a hot function observed
allocating at runtime is explained iff a static allocation site (waived
or not) is reachable from it through the summary call graph.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.core import Finding, Severity
from repro.lint.perf.hotpaths import HotPathRegistry
from repro.lint.perf.info import PERF_RULE_INFOS

_SEVERITIES: Dict[str, Severity] = {
    info.code: info.severity for info in PERF_RULE_INFOS
}

#: SIM022 threshold: a component must exceed this share of total
#: callback wall time in a recorded profile before registry membership
#: is demanded.
TELEMETRY_SHARE_THRESHOLD = 0.05

#: How many call hops the explained-allocator closure follows.  Depth 4
#: covers the deepest real chain in the tree today
#: (_on_packet -> _try_send -> _transmit -> make_data_packet -> Packet).
_EXPLAIN_DEPTH = 4

_ALLOC_KIND_LABELS = {
    "call": "allocating call",
    "display": "container display",
    "comprehension": "comprehension",
    "fstring": "f-string",
    "str-concat": "string concatenation",
    "lambda": "lambda",
    "closure": "nested function",
}


class _PerfProgram:
    """Whole-program tables the perf join checks against."""

    def __init__(self, summaries: Sequence[Dict[str, Any]]) -> None:
        self.summaries = list(summaries)
        #: dotted function qname -> (summary, function record)
        self.functions: Dict[str, Tuple[Dict[str, Any], Dict[str, Any]]] = {}
        #: bare callable name -> dotted qnames defining it
        self.by_name: Dict[str, List[str]] = {}
        for summary in self.summaries:
            module = str(summary["module"])
            for qname, record in summary.get("functions", {}).items():
                if qname == "<module>":
                    continue
                dotted = f"{module}.{qname}"
                self.functions[dotted] = (summary, record)
                self.by_name.setdefault(qname.rsplit(".", 1)[-1], []).append(
                    dotted
                )

    def waived(self, summary: Dict[str, Any], line: int) -> bool:
        return str(line) in summary.get("perf_pragmas", {})

    def unwaived_allocs(self, dotted: str) -> List[Dict[str, Any]]:
        summary, record = self.functions[dotted]
        cost = record.get("cost") or {}
        return [
            alloc
            for alloc in cost.get("allocs", [])
            if not self.waived(summary, int(alloc["line"]))
        ]

    def resolve_call(
        self, caller: str, call: Dict[str, Any]
    ) -> Optional[str]:
        """The analyzed function a call definitely lands in, or None.

        Local names resolve within the caller's module; dotted names are
        import-resolved by phase 1; attribute calls resolve only for a
        literal ``self.`` receiver, to a method of the caller's own
        class.  Everything else is skipped — an unknown receiver could
        be a builtin container (``set.update``), so bare-name matching
        would guess, and this pass never guesses.
        """
        summary, _record = self.functions[caller]
        callee = call.get("callee") or {}
        kind = callee.get("kind")
        name = str(callee.get("name", ""))
        if kind == "local":
            dotted = f'{summary["module"]}.{name}'
            return dotted if dotted in self.functions else None
        if kind == "dotted":
            return name if name in self.functions else None
        if kind == "attr" and callee.get("self"):
            prefix = caller.rsplit(".", 1)[0]
            dotted = f"{prefix}.{name}"
            return dotted if dotted in self.functions else None
        return None


def _build(summaries: Sequence[Dict[str, Any]]) -> _PerfProgram:
    return _PerfProgram(summaries)


# -- SIM019 / SIM020 / SIM023: per-hot-function records ------------------


def _check_hot_records(
    program: _PerfProgram, registry: HotPathRegistry
) -> List[Finding]:
    findings: List[Finding] = []
    for dotted, (summary, record) in sorted(program.functions.items()):
        if dotted not in registry:
            continue
        path = str(summary["path"])
        cost = record.get("cost") or {}
        for alloc in cost.get("allocs", []):
            line = int(alloc["line"])
            if program.waived(summary, line):
                continue
            kind = str(alloc.get("kind", ""))
            label = _ALLOC_KIND_LABELS.get(kind, kind)
            detail = str(alloc.get("detail", ""))
            what = f"{label} ({detail})" if detail else label
            where = "inside a loop of" if alloc.get("in_loop") else "in"
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=int(alloc["col"]),
                    code="SIM019",
                    message=(
                        f"{what} {where} hot function {dotted} — "
                        f"registered hot: {registry.reason(dotted)}; hoist "
                        "it off the per-event path or waive the line with "
                        "`# simperf: allow-alloc(<reason>)`"
                    ),
                    severity=_SEVERITIES["SIM019"],
                )
            )
        for chain in cost.get("attr_chains", []):
            count = int(chain.get("count", 1))
            times = f"{count} time(s) per iteration"
            findings.append(
                Finding(
                    path=path,
                    line=int(chain["line"]),
                    col=int(chain["col"]),
                    code="SIM020",
                    message=(
                        f"attribute chain '{chain['chain']}' is resolved "
                        f"{times} inside a loop of hot function {dotted}; "
                        "pre-bind it to a local before the loop (the "
                        "Link._rebind idiom)"
                    ),
                    severity=_SEVERITIES["SIM020"],
                )
            )
        for call in cost.get("kwargs_calls", []):
            line = int(call["line"])
            if program.waived(summary, line):
                continue
            kind = str(call.get("kind", ""))
            callee = str(call.get("callee", "")) or "<call>"
            if kind == "kwargs":
                detail = (
                    f"call to {callee} with **kwargs builds a fresh dict "
                    "per event"
                )
            elif kind == "star-args":
                detail = (
                    f"call to {callee} with *-unpacking builds a fresh "
                    "tuple per event"
                )
            else:
                detail = (
                    f"explicit dunder call {callee} takes the slow "
                    "attribute path; use the operator or a pre-bound "
                    "method"
                )
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=int(call["col"]),
                    code="SIM023",
                    message=f"{detail} in hot function {dotted}",
                    severity=_SEVERITIES["SIM023"],
                )
            )
    return findings


# -- SIM021: one-hop transitive allocation -------------------------------


def _check_transitive(
    program: _PerfProgram, registry: HotPathRegistry
) -> List[Finding]:
    findings: List[Finding] = []
    for dotted, (summary, record) in sorted(program.functions.items()):
        if dotted not in registry:
            continue
        path = str(summary["path"])
        seen: Set[Tuple[str, int]] = set()
        for call in record.get("calls", []):
            line = int(call.get("line", 1))
            if program.waived(summary, line):
                continue
            target = program.resolve_call(dotted, call)
            if target is None or target == dotted or target in registry:
                continue
            allocs = program.unwaived_allocs(target)
            if not allocs or (target, line) in seen:
                continue
            seen.add((target, line))
            target_summary, _ = program.functions[target]
            first = allocs[0]
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=int(call.get("col", 0)),
                    code="SIM021",
                    message=(
                        f"hot function {dotted} calls {target}, which "
                        f"allocates ({len(allocs)} unwaived site(s), e.g. "
                        f"{target_summary['path']}:{first['line']}); "
                        "register the callee in hotpaths.toml, hoist the "
                        "call, or waive this line with "
                        "`# simperf: allow-alloc(<reason>)`"
                    ),
                    severity=_SEVERITIES["SIM021"],
                )
            )
    return findings


# -- SIM022: telemetry registry drift ------------------------------------


def _profile_shares(telemetry: Path) -> Dict[str, float]:
    """Max observed wall-time share per dotted component across records."""
    shares: Dict[str, float] = {}
    try:
        text = telemetry.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"cannot read telemetry {telemetry}: {exc}") from exc
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{telemetry}:{lineno}: not JSONL ({exc})"
            ) from exc
        profile = record.get("profile") if isinstance(record, dict) else None
        if not isinstance(profile, dict):
            continue  # cached runs carry profile: null
        total = float(profile.get("callback_wall_s") or 0.0)
        if total <= 0.0:
            continue
        for component in profile.get("components", []):
            name = str(component.get("component", ""))
            if not name:
                continue
            dotted = name if name.startswith("repro.") else f"repro.{name}"
            share = float(component.get("wall_s", 0.0)) / total
            if share > shares.get(dotted, 0.0):
                shares[dotted] = share
    return shares


def _check_telemetry(
    program: _PerfProgram,
    registry: HotPathRegistry,
    telemetry: Path,
) -> List[Finding]:
    findings: List[Finding] = []
    for dotted, share in sorted(_profile_shares(telemetry).items()):
        if share < TELEMETRY_SHARE_THRESHOLD or dotted in registry:
            continue
        entry = program.functions.get(dotted)
        if entry is not None:
            summary, record = entry
            path, line = str(summary["path"]), int(record.get("line", 1))
        else:
            path, line = registry.origin, 1
        findings.append(
            Finding(
                path=path,
                line=line,
                col=0,
                code="SIM022",
                message=(
                    f"telemetry shows {dotted} at {share:.0%} of callback "
                    f"wall-time (threshold "
                    f"{TELEMETRY_SHARE_THRESHOLD:.0%}) but hotpaths.toml "
                    "does not register it; add an entry so the hot-path "
                    "rules cover it"
                ),
                severity=_SEVERITIES["SIM022"],
            )
        )
    return findings


# -- entry points --------------------------------------------------------


def check_perf(
    summaries: Sequence[Dict[str, Any]],
    registry: Optional[HotPathRegistry] = None,
    telemetry: Optional[Path] = None,
) -> List[Finding]:
    """All simperf findings for the analyzed summaries."""
    registry = registry if registry is not None else HotPathRegistry.load()
    program = _build(summaries)
    findings = _check_hot_records(program, registry)
    findings.extend(_check_transitive(program, registry))
    if telemetry is not None:
        findings.extend(_check_telemetry(program, registry, telemetry))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def explained_hot_functions(
    summaries: Sequence[Dict[str, Any]],
    registry: Optional[HotPathRegistry] = None,
) -> Set[str]:
    """Hot functions whose runtime allocations have a static explanation.

    A hot function is *explained* when an allocation site or
    kwargs/star-args call — waived or not — is reachable from it through
    the summary call graph within :data:`_EXPLAIN_DEPTH` hops.  Unlike
    SIM021, resolution here is generous (attribute calls fan out to
    every candidate): the sanitizer uses this set to decide which
    dynamically observed allocations are *unexplained*, so false
    ambiguity must not manufacture false alarms.
    """
    registry = registry if registry is not None else HotPathRegistry.load()
    program = _build(summaries)

    def _allocates(dotted: str) -> bool:
        _summary, record = program.functions[dotted]
        cost = record.get("cost") or {}
        return bool(cost.get("allocs")) or bool(cost.get("kwargs_calls"))

    def _callees(dotted: str) -> Set[str]:
        summary, record = program.functions[dotted]
        out: Set[str] = set()
        for call in record.get("calls", []):
            callee = call.get("callee") or {}
            kind = callee.get("kind")
            name = str(callee.get("name", ""))
            if kind == "local":
                local = f'{summary["module"]}.{name}'
                if local in program.functions:
                    out.add(local)
            elif kind == "dotted":
                if name in program.functions:
                    out.add(name)
            elif kind == "attr":
                out.update(program.by_name.get(name, []))
        return out

    explained: Set[str] = set()
    for hot, _reason in registry.items():
        if hot not in program.functions:
            continue
        frontier = {hot}
        visited: Set[str] = set()
        for _hop in range(_EXPLAIN_DEPTH + 1):
            if any(_allocates(d) for d in frontier):
                explained.add(hot)
                break
            visited.update(frontier)
            frontier = {
                callee
                for dotted in frontier
                for callee in _callees(dotted)
                if callee not in visited
            }
            if not frontier:
                break
    return explained


__all__ = [
    "TELEMETRY_SHARE_THRESHOLD",
    "check_perf",
    "explained_hot_functions",
]
