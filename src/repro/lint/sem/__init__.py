"""simsem: cross-module semantic analysis for the simulator.

Two phases (see LINTING.md for the rule catalog SIM011–SIM015):

1. :mod:`repro.lint.sem.summary` extracts one JSON-serializable summary
   per file — symbol definitions, abstract argument values, locally
   decidable findings — cacheable by content hash
   (:mod:`repro.lint.sem.cache`);
2. :mod:`repro.lint.sem.project` joins the summaries into whole-program
   tables and checks unit-sink dataflow, hook conformance and handler
   reachability against the sink registry
   (:mod:`repro.lint.sem.registry`).

Run it via ``python -m repro lint --sem src/repro``.
"""

from repro.lint.sem.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.sem.cache import DEFAULT_CACHE_DIR, SummaryCache, summary_key
from repro.lint.sem.info import SEM_CODES, SEM_RULE_INFOS, SemRuleInfo
from repro.lint.sem.project import ProjectAnalyzer, SemStats
from repro.lint.sem.registry import SinkRegistry, SinkRegistryError
from repro.lint.sem.summary import build_summary

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ProjectAnalyzer",
    "SEM_CODES",
    "SEM_RULE_INFOS",
    "SemRuleInfo",
    "SemStats",
    "SinkRegistry",
    "SinkRegistryError",
    "SummaryCache",
    "apply_baseline",
    "build_summary",
    "load_baseline",
    "summary_key",
    "write_baseline",
]
