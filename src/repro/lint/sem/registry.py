"""The unit-sink registry: which parameters take which dimensions.

Sinks come from two merged sources:

* the checked-in ``sinks.toml`` next to this module — entries for
  callables whose signatures cannot carry alias annotations (or that
  predate them), keyed by dotted path::

      [repro.net.link.Link.__init__]
      rate_bps = "bits_per_second"
      delay = "seconds"

* alias-annotated parameters discovered during the per-file pass
  (``delay: Seconds`` in a signature), which phase 2 merges in via
  :meth:`SinkRegistry.add`.

The file is parsed by a deliberately tiny TOML-subset reader (sections,
``key = "string"`` pairs, ``#`` comments) so the analyzer stays pure
stdlib on every supported Python (``tomllib`` only exists from 3.11).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.units import (
    DIM_BITS_PER_SECOND,
    DIM_BYTES,
    DIM_PACKETS,
    DIM_SECONDS,
)

#: Dimensions a registry entry may declare.
KNOWN_DIMENSIONS = frozenset(
    {DIM_SECONDS, DIM_BITS_PER_SECOND, DIM_BYTES, DIM_PACKETS}
)

DEFAULT_SINKS_FILE = Path(__file__).parent / "sinks.toml"


class SinkRegistryError(ValueError):
    """Raised for a malformed sink-registry file."""


def parse_sinks_toml(text: str, origin: str = "<sinks>") -> Dict[str, Dict[str, str]]:
    """Parse the ``[dotted.callable]`` / ``param = "dimension"`` subset.

    Returns ``{dotted_callable: {param: dimension}}``.  Anything outside
    the subset (nested tables, non-string values, duplicate params) is a
    hard :class:`SinkRegistryError` — the registry is small enough that
    silence would only hide typos.
    """
    sinks: Dict[str, Dict[str, str]] = {}
    section: Optional[str] = None
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip()
            if not section or any(not part for part in section.split(".")):
                raise SinkRegistryError(
                    f"{origin}:{lineno}: malformed section header {raw_line!r}"
                )
            if section in sinks:
                raise SinkRegistryError(
                    f"{origin}:{lineno}: duplicate section [{section}]"
                )
            sinks[section] = {}
            continue
        if "=" not in line:
            raise SinkRegistryError(
                f"{origin}:{lineno}: expected 'param = \"dimension\"', got {raw_line!r}"
            )
        if section is None:
            raise SinkRegistryError(
                f"{origin}:{lineno}: key outside any [section]"
            )
        key, _, value = line.partition("=")
        param = key.strip()
        value = value.strip()
        if not (len(value) >= 2 and value[0] == '"' and value[-1] == '"'):
            raise SinkRegistryError(
                f"{origin}:{lineno}: dimension must be a quoted string, got {value!r}"
            )
        dimension = value[1:-1]
        if dimension not in KNOWN_DIMENSIONS:
            raise SinkRegistryError(
                f"{origin}:{lineno}: unknown dimension {dimension!r} "
                f"(known: {', '.join(sorted(KNOWN_DIMENSIONS))})"
            )
        if not param.isidentifier():
            raise SinkRegistryError(
                f"{origin}:{lineno}: parameter {param!r} is not an identifier"
            )
        if param in sinks[section]:
            raise SinkRegistryError(
                f"{origin}:{lineno}: duplicate parameter {param!r} in [{section}]"
            )
        sinks[section][param] = dimension
    return sinks


class SinkRegistry:
    """Declared unit sinks, addressable by dotted path and callable name.

    ``qname`` keys are fully dotted (``repro.net.link.Link.__init__``).
    Lookup happens two ways during phase 2:

    * :meth:`by_qname` for calls the summary pass resolved exactly;
    * :meth:`by_callable_name` for attribute calls whose receiver type is
      unknown — ``net.connect(...)`` matches every sink whose callable
      name is ``connect`` (``Class.__init__`` sinks go by the class
      name, since that is what a constructor call looks like).
    """

    def __init__(self, sinks: Optional[Dict[str, Dict[str, str]]] = None) -> None:
        self._sinks: Dict[str, Dict[str, str]] = {}
        if sinks:
            for qname, params in sinks.items():
                for param, dimension in params.items():
                    self.add(qname, param, dimension)

    @classmethod
    def load(cls, path: Optional[Path] = None) -> "SinkRegistry":
        """Load the checked-in registry (or ``path``)."""
        target = path if path is not None else DEFAULT_SINKS_FILE
        text = target.read_text(encoding="utf-8")
        return cls(parse_sinks_toml(text, origin=str(target)))

    def add(self, qname: str, param: str, dimension: str) -> None:
        if dimension not in KNOWN_DIMENSIONS:
            raise SinkRegistryError(
                f"unknown dimension {dimension!r} for {qname}.{param}"
            )
        params = self._sinks.setdefault(qname, {})
        existing = params.get(param)
        if existing is not None and existing != dimension:
            raise SinkRegistryError(
                f"conflicting dimensions for {qname}.{param}: "
                f"{existing} vs {dimension}"
            )
        params[param] = dimension

    def merge(self, other: "SinkRegistry") -> None:
        """Fold ``other``'s entries into this registry."""
        for qname, params in other.items():
            for param, dimension in params.items():
                self.add(qname, param, dimension)

    def by_qname(self, qname: str) -> Dict[str, str]:
        """``{param: dimension}`` for an exactly resolved callable."""
        return self._sinks.get(qname, {})

    def by_callable_name(self, name: str) -> List[Tuple[str, Dict[str, str]]]:
        """All sinks a bare callable name could refer to.

        A ``Class.__init__`` sink is addressed by ``Class`` (constructor
        calls), anything else by its final component.
        """
        matches: List[Tuple[str, Dict[str, str]]] = []
        for qname in sorted(self._sinks):
            parts = qname.split(".")
            callable_name = parts[-1]
            if callable_name == "__init__" and len(parts) >= 2:
                callable_name = parts[-2]
            if callable_name == name:
                matches.append((qname, self._sinks[qname]))
        return matches

    def items(self) -> Iterator[Tuple[str, Dict[str, str]]]:
        for qname in sorted(self._sinks):
            yield qname, dict(self._sinks[qname])

    def __len__(self) -> int:
        return len(self._sinks)

    def digest(self) -> str:
        """Stable content hash; part of every summary-cache key."""
        payload = "|".join(
            f"{qname}:{param}={dimension}"
            for qname, params in self.items()
            for param, dimension in sorted(params.items())
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


__all__ = [
    "DEFAULT_SINKS_FILE",
    "KNOWN_DIMENSIONS",
    "SinkRegistry",
    "SinkRegistryError",
    "parse_sinks_toml",
]
