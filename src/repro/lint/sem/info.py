"""Descriptors for the semantic rules SIM011–SIM015.

The semantic pass is not built from per-node :class:`~repro.lint.core.Rule`
subclasses — its findings come out of whole-program analysis — but the
CLI (``--list-rules``, ``--select``/``--ignore``) and the docs still need
one catalog entry per code.  These descriptors are that entry; the
unified registry (:mod:`repro.lint.registry`) merges them with the
syntactic rule classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.lint.core import Severity


@dataclass(frozen=True)
class SemRuleInfo:
    """Catalog metadata for one semantic (cross-module) rule."""

    code: str
    name: str
    severity: Severity
    rationale: str


SEM_RULE_INFOS: Tuple[SemRuleInfo, ...] = (
    SemRuleInfo(
        code="SIM011",
        name="unit-sink-mismatch",
        severity=Severity.ERROR,
        rationale=(
            "a value of one dimension (or a raw literal travelling through "
            "assignments) reaches a parameter declared to take another; "
            "seconds-vs-bytes mixups shift every figure silently"
        ),
    ),
    SemRuleInfo(
        code="SIM012",
        name="unit-unsafe-arithmetic",
        severity=Severity.ERROR,
        rationale=(
            "adding values of different dimensions, or multiplying two "
            "rates, is dimensionally meaningless; the result poisons every "
            "downstream quantity"
        ),
    ),
    SemRuleInfo(
        code="SIM013",
        name="seed-provenance",
        severity=Severity.ERROR,
        rationale=(
            "an RNG seeded from hash()/id()/pid-like entropy is "
            "nondeterministic across processes even though it LOOKS seeded; "
            "seeds must descend from a component seed or repro.sim.random"
        ),
    ),
    SemRuleInfo(
        code="SIM014",
        name="hook-conformance",
        severity=Severity.ERROR,
        rationale=(
            "an observer hook call no observer class defines (or a defined "
            "hook nothing ever fires) is silent protocol drift between the "
            "model and repro.validate / repro.obs"
        ),
    ),
    SemRuleInfo(
        code="SIM015",
        name="dead-event-handler",
        severity=Severity.WARNING,
        rationale=(
            "a handler-named callable nothing references can never be "
            "reached from any schedule() site; it is either dead code or a "
            "wiring bug"
        ),
    ),
)

SEM_CODES: Tuple[str, ...] = tuple(info.code for info in SEM_RULE_INFOS)


__all__ = ["SemRuleInfo", "SEM_RULE_INFOS", "SEM_CODES"]
