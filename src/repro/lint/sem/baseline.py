"""Baseline ratchet for semantic findings.

A baseline records, per ``(path, code)`` pair, how many findings existed
when it was written.  A later run only reports findings *beyond* the
baselined count — so a legacy tree can adopt the analyzer immediately,
while any NEW violation (or an old one moving to a new file) still
fails.  Fixing findings and rewriting the baseline only ever shrinks it:
the ratchet direction.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.core import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised for an unreadable or structurally invalid baseline file."""


def _key(path: str, code: str) -> str:
    return f"{path}:{code}"


def load_baseline(path: "str | Path") -> Dict[str, int]:
    """``{"<path>:<code>": allowed_count}`` from a baseline file."""
    try:
        loaded = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(loaded, dict) or loaded.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported structure or version"
        )
    counts = loaded.get("counts")
    if not isinstance(counts, dict):
        raise BaselineError(f"baseline {path} is missing its counts table")
    result: Dict[str, int] = {}
    for key, value in counts.items():
        if not isinstance(key, str) or not isinstance(value, int) or value < 1:
            raise BaselineError(
                f"baseline {path}: bad entry {key!r}: {value!r}"
            )
        result[key] = value
    return result


def write_baseline(path: "str | Path", findings: Sequence[Finding]) -> None:
    """Write the baseline matching the given findings."""
    counts = Counter(_key(f.path, f.code) for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "counts": {key: counts[key] for key in sorted(counts)},
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> List[Finding]:
    """Suppress findings up to each baselined count, report the excess.

    Findings within a ``(path, code)`` group are ordered by position, so
    the *earliest* N are absorbed and anything beyond them reports —
    deterministic, if arbitrary; the point of a ratchet is the count,
    not which individual line absorbs it.
    """
    remaining = dict(baseline)
    kept: List[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code)):
        key = _key(finding.path, finding.code)
        allowance = remaining.get(key, 0)
        if allowance > 0:
            remaining[key] = allowance - 1
        else:
            kept.append(finding)
    return kept


__all__ = [
    "BASELINE_VERSION",
    "BaselineError",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
