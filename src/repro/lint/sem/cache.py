"""Content-addressed on-disk cache for phase-1 file summaries.

Same idiom as :mod:`repro.runner.cache`: the key is a sha256 over
everything that could change the summary — the schema version, the sink
registry digest, and the file's source text — so invalidation is free
(a changed input simply hashes to a new key) and a warm entry can be
replayed without parsing the file at all.  Entries are single JSON
files written atomically (temp file + ``os.replace``), safe under
concurrent runs.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.lint.sem.summary import SUMMARY_VERSION

#: Default cache directory, relative to the repo root (gitignored).
DEFAULT_CACHE_DIR = ".simsem-cache"


def summary_key(source: str, registry_digest: str) -> str:
    """Cache key for one file's summary."""
    hasher = hashlib.sha256()
    hasher.update(f"simsem-summary-v{SUMMARY_VERSION}\n".encode("utf-8"))
    hasher.update(registry_digest.encode("utf-8"))
    hasher.update(b"\n")
    hasher.update(source.encode("utf-8"))
    return hasher.hexdigest()


class SummaryCache:
    """Keyed JSON blobs under one directory, created lazily."""

    def __init__(self, directory: "str | os.PathLike[str]") -> None:
        self.directory = Path(directory)

    def _entry_path(self, key: str) -> Path:
        # Two-level fanout keeps any one directory small.
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached summary for ``key``, or ``None``.

        A corrupt or truncated entry (interrupted writer from a crashed
        run) is treated as a miss, never an error.
        """
        entry = self._entry_path(key)
        try:
            with entry.open("r", encoding="utf-8") as handle:
                loaded = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(loaded, dict):
            return None
        if loaded.get("version") != SUMMARY_VERSION:
            return None
        return loaded

    def put(self, key: str, summary: Dict[str, Any]) -> None:
        entry = self._entry_path(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        tmp = entry.with_name(entry.name + f".tmp{os.getpid()}")
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(summary, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, entry)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass


__all__ = ["DEFAULT_CACHE_DIR", "SummaryCache", "summary_key"]
