"""Phase 1 of simsem: one JSON-serializable summary per source file.

The summary carries *everything* phase 2 needs — symbol definitions,
import bindings, call records with abstract argument values, locally
decidable findings (SIM012 unit-unsafe arithmetic, SIM013 seed
provenance), observer-hook call/definition sites, handler-named defs and
the file's identifier reference set — so that a cached summary fully
substitutes for re-parsing the file.  Anything that requires another
file's facts (sink resolution, hook conformance, dead handlers) is left
to :mod:`repro.lint.sem.project`.

Abstract values form a tiny lattice, encoded as plain dicts so the whole
summary round-trips through JSON:

``{"k": "dim", "d": <dimension>}``
    value of a known dimension (from a ``repro.sim.units`` constructor,
    an alias-annotated parameter, or dimension-preserving arithmetic);
``{"k": "raw", "via": 0|1, "zero": bool}``
    numeric literal — ``via 0`` directly at the use site, ``via 1``
    having travelled through at least one assignment (``zero`` marks an
    exact zero, which is dimensionless and never flagged);
``{"k": "param", "name": p}``
    pristine reference to parameter ``p`` of the enclosing function
    (never reassigned) — phase 2 derives sinks through these;
``{"k": "import", "name": dotted}``
    reference to an imported module-level constant, resolved by phase 2;
``{"k": "unknown"}``
    everything else (the safe default: unknown never fires a rule).
"""

from __future__ import annotations

import ast
import builtins
import re
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import Suppressions, _normalize
from repro.sim.units import ANNOTATION_DIMENSIONS, CONSTRUCTOR_DIMENSIONS

#: Bump when the summary schema or extraction logic changes; part of the
#: cache key, so stale cached summaries can never be replayed.
#: v3: per-function self read/write sets, scheduler-call records
#: (``sched_calls``) and self-receiver call marking, for simrace
#: (:mod:`repro.lint.race`).
#: v4: per-function ``cost`` records (allocation sites, in-loop global
#: loads, repeated attribute chains, kwargs/dunder call shapes, try
#: inside loops) and the ``# simperf: allow-alloc(...)`` pragma map, for
#: simperf (:mod:`repro.lint.perf`).
SUMMARY_VERSION = 4

UNITS_MODULE = "repro.sim.units"
RANDOM_STREAMS = "repro.sim.random.RandomStreams"

#: Callable names matching this are event-handler-shaped (SIM015).
HANDLER_NAME_RE = re.compile(
    r"^_?on_|^_handle_|^_finish_|^_fire_"
    r"|_timeout$|_expired$|_tick$|_handler$|_callback$"
)

#: Receiver identifiers that make a ``.on_*()`` call an observer-hook
#: dispatch (SIM014): ``observer.on_x(...)``, ``self.observer.on_x(...)``,
#: ``profiler.on_x(...)``.  Hot paths that hoist the receiver into a
#: local (``obs = self.observer`` before a drain loop) are caught by the
#: scanner's alias tracking, which maps the local back to the receiver
#: it was loaded from.
HOOK_RECEIVERS = frozenset({"observer", "profiler", "race"})

#: Receiver terminals that make a ``.schedule()``/``.post()`` call a
#: scheduler call (simrace's raw material): ``sim.schedule(...)``,
#: ``self._sim.post(...)``, ``net.sim.schedule_at(...)``.
_SIM_RECEIVER_RE = re.compile(r"^_?sim(ulator)?$")

#: Method names that enqueue an event on a simulator receiver.
_SCHED_METHODS = frozenset({"schedule", "post", "schedule_at"})

#: Roots that make a seed expression nondeterministic across processes
#: (SIM013): name -> human-readable reason.
NONDETERMINISTIC_SEED_ROOTS: Dict[str, str] = {
    "hash": "hash() is salted per process for str/bytes",
    "id": "id() is an address, different every run",
    "object": "object identity is different every run",
    "os.getpid": "the PID differs per process",
    "os.urandom": "os.urandom() is entropy, not a seed",
    "uuid.uuid1": "uuid1() embeds clock and MAC",
    "uuid.uuid4": "uuid4() is entropy, not a seed",
}

#: Deterministic pure functions a seed may pass through.
_SEED_TRANSPARENT_CALLS = frozenset(
    {"int", "abs", "zlib.crc32", "zlib.adler32", "min", "max", "round"}
)

_SEEDISH_NAME_RE = re.compile(r"seed|^rng$|^streams$|^stream$")

#: ``# simperf: allow-alloc(<reason>)`` — the simperf allocation waiver.
#: The reason is mandatory: an empty parenthesis records nothing, so the
#: finding still fires.  Captured per line into the summary so the perf
#: join pass (and the runtime sanitizer's cross-check) can honor it
#: without re-reading the file.
PERF_PRAGMA_RE = re.compile(r"#\s*simperf:\s*allow-alloc\(([^)]*)\)")


def _absval_dim(dimension: str) -> Dict[str, Any]:
    return {"k": "dim", "d": dimension}


def _absval_raw(via: int, zero: bool = False) -> Dict[str, Any]:
    return {"k": "raw", "via": via, "zero": zero}


_UNKNOWN: Dict[str, Any] = {"k": "unknown"}


def _join(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Lattice join: agreeing values survive, anything else is unknown."""
    if a == b:
        return a
    if a["k"] == "raw" and b["k"] == "raw":
        return _absval_raw(
            max(int(a["via"]), int(b["via"])),
            bool(a.get("zero")) and bool(b.get("zero")),
        )
    return _UNKNOWN


def module_name_for_path(path: str) -> str:
    """Best-effort dotted module name for a (possibly virtual) path.

    ``src/repro/net/link.py`` -> ``repro.net.link``; a path without a
    recognizable package root falls back to its stem.
    """
    posix = _normalize(path)
    parts = [part for part in posix.split("/") if part]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    elif "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "<unknown>"


class _ImportMap:
    """Local name -> dotted target, from the file's import statements."""

    def __init__(self, module: str) -> None:
        self._module = module
        self._bindings: Dict[str, str] = {}

    def record(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self._bindings[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = self._resolve_from(node)
            if base is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self._bindings[local] = f"{base}.{alias.name}" if base else alias.name

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        # Relative import: climb the current module's package.
        package_parts = self._module.split(".")
        if len(package_parts) < node.level:
            return None
        base_parts = package_parts[: len(package_parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    def resolve(self, name: str) -> Optional[str]:
        return self._bindings.get(name)

    def as_dict(self) -> Dict[str, str]:
        return dict(self._bindings)


def _dotted_name(expr: ast.expr, imports: _ImportMap) -> Optional[str]:
    """Resolve ``Name``/``Attribute`` chains through the import map."""
    if isinstance(expr, ast.Name):
        return imports.resolve(expr.id)
    if isinstance(expr, ast.Attribute):
        base = _dotted_name(expr.value, imports)
        if base is None:
            return None
        return f"{base}.{expr.attr}"
    return None


def _annotation_dimension(
    annotation: Optional[ast.expr], imports: _ImportMap
) -> Optional[str]:
    """Dimension declared by a parameter annotation, if any.

    Recognizes the bare aliases (``Seconds``), dotted forms
    (``units.Seconds``) and ``Optional[Seconds]``.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Subscript):
        outer = _dotted_name(annotation.value, imports)
        outer_name = outer.split(".")[-1] if outer else getattr(
            annotation.value, "id", None
        )
        if outer_name == "Optional":
            return _annotation_dimension(annotation.slice, imports)
        return None
    dotted = _dotted_name(annotation, imports)
    if dotted is not None and dotted.startswith(UNITS_MODULE + "."):
        alias = dotted.rsplit(".", 1)[1]
        return ANNOTATION_DIMENSIONS.get(alias)
    if isinstance(annotation, ast.Name):
        # Unimported bare alias: only meaningful if it IS one of ours.
        return None
    return None


def _numeric_literal(expr: ast.expr) -> Optional[float]:
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        inner = _numeric_literal(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, ast.Constant) and type(expr.value) in (int, float):
        return float(expr.value)
    return None


def _loc(node: ast.AST) -> Tuple[int, int]:
    return int(getattr(node, "lineno", 1)), int(getattr(node, "col_offset", 0))


# ---------------------------------------------------------------------------
# v4 cost records (simperf's raw material)
# ---------------------------------------------------------------------------

#: Python-level names recognized by name as allocating a fresh object.
_ALLOC_BUILTINS = frozenset(
    {
        "list", "dict", "set", "tuple", "frozenset", "bytearray", "bytes",
        "str", "range", "sorted", "reversed", "enumerate", "zip", "map",
        "filter", "vars", "deque", "defaultdict", "namedtuple", "array",
        "copy", "deepcopy",
    }
)

_BUILTIN_NAMES = frozenset(dir(builtins))


def _callee_text(func: ast.expr) -> str:
    """Compact display text for a call's callee (for cost records)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        base = _callee_text(func.value)
        return f"{base}.{func.attr}" if base else func.attr
    return ""


def _is_alloc_call(func: ast.expr) -> bool:
    """Heuristic: does calling this callee allocate a fresh object?

    Capitalized terminals are constructors by convention (``Event``,
    ``units.Seconds``); a small closed set of lowercase builtins
    (``list``, ``range``, ``deque``, …) allocates too.  Plain method and
    function calls are *not* allocations here — SIM021 handles the
    transitive case through summaries instead of guessing.
    """
    terminal: Optional[str] = None
    if isinstance(func, ast.Name):
        terminal = func.id
    elif isinstance(func, ast.Attribute):
        terminal = func.attr
    if terminal is None:
        return False
    if terminal in _ALLOC_BUILTINS:
        return True
    return terminal[:1].isupper() and not terminal.isupper()


def _attr_chain(node: ast.Attribute) -> Optional[Tuple[str, int]]:
    """``(dotted text, depth)`` of a Name-rooted attribute chain.

    Depth counts attribute hops: ``self.x`` is 1, ``self._queue.pop``
    is 2.  Chains rooted in anything but a plain name (a call result, a
    subscript) return ``None`` — they cannot be hoisted by pre-binding.
    """
    parts: List[str] = []
    cursor: ast.expr = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    parts.reverse()
    return ".".join(parts), len(parts) - 1


def _function_local_names(node: ast.AST) -> Set[str]:
    """Names bound inside the function: params, assignments, imports,
    ``for``/``with``/``except`` targets, nested def/class names."""
    names: Set[str] = set()
    args = getattr(node, "args", None)
    if args is not None:
        for group in ("posonlyargs", "args", "kwonlyargs"):
            names.update(a.arg for a in getattr(args, group, []))
        for special in (args.vararg, args.kwarg):
            if special is not None:
                names.add(special.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            names.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if sub is not node:
                names.add(sub.name)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            names.add(sub.name)
        elif isinstance(sub, (ast.Global, ast.Nonlocal)):
            names.difference_update(sub.names)
    return names


def _collect_cost(node: ast.AST) -> Dict[str, Any]:
    """The v4 per-function cost record.

    Everything simperf's join pass needs to reason about a function's
    datapath cost without re-parsing it:

    * ``allocs`` — object-allocation sites (constructor calls, container
      displays, comprehensions/genexps, f-strings and str ``+``-concat,
      lambda/closure creation), each ``{kind, line, col, detail,
      in_loop}``;
    * ``global_loads`` — module-global name loads *inside loops* (each a
      dict lookup per iteration that a local alias would hoist);
    * ``attr_chains`` — Name-rooted attribute chains of depth >= 2
      inside loops, aggregated ``{chain, count, line, col}`` (first
      occurrence position);
    * ``kwargs_calls`` — ``**kwargs`` / ``*args`` unpacking and explicit
      dunder-method call sites, each ``{kind, line, col, callee}``;
    * ``try_in_loop`` — ``try`` statements inside loops (setup cost per
      iteration), each ``{line, col}``.

    ``in_loop`` nests through loop *bodies* only: a ``for`` iterable is
    evaluated once and does not count.
    """
    allocs: List[Dict[str, Any]] = []
    global_loads: List[Dict[str, Any]] = []
    chains: Dict[str, Dict[str, Any]] = {}
    kwargs_calls: List[Dict[str, Any]] = []
    try_in_loop: List[Dict[str, Any]] = []
    local_names = _function_local_names(node)

    def record_alloc(kind: str, n: ast.AST, detail: str, in_loop: bool) -> None:
        line, col = _loc(n)
        allocs.append(
            {"kind": kind, "line": line, "col": col, "detail": detail,
             "in_loop": in_loop}
        )

    def visit(n: ast.AST, in_loop: bool, chain_parent: bool) -> None:
        is_chain_parent = False
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if n is not node:
                record_alloc("closure", n, n.name, in_loop)
                return  # nested defs are scanned as their own functions
        elif isinstance(n, ast.Lambda):
            record_alloc("lambda", n, "lambda", in_loop)
            return
        elif isinstance(n, ast.Call):
            if _is_alloc_call(n.func):
                record_alloc("call", n, _callee_text(n.func), in_loop)
            if any(keyword.arg is None for keyword in n.keywords):
                line, col = _loc(n)
                kwargs_calls.append(
                    {"kind": "kwargs", "line": line, "col": col,
                     "callee": _callee_text(n.func)}
                )
            elif any(isinstance(arg, ast.Starred) for arg in n.args):
                line, col = _loc(n)
                kwargs_calls.append(
                    {"kind": "star-args", "line": line, "col": col,
                     "callee": _callee_text(n.func)}
                )
            if (
                isinstance(n.func, ast.Attribute)
                and n.func.attr.startswith("__")
                and n.func.attr.endswith("__")
            ):
                line, col = _loc(n)
                kwargs_calls.append(
                    {"kind": "dunder", "line": line, "col": col,
                     "callee": _callee_text(n.func)}
                )
        elif isinstance(n, (ast.ListComp, ast.SetComp, ast.DictComp,
                            ast.GeneratorExp)):
            kind = {
                ast.ListComp: "listcomp", ast.SetComp: "setcomp",
                ast.DictComp: "dictcomp", ast.GeneratorExp: "genexp",
            }[type(n)]
            record_alloc("comprehension", n, kind, in_loop)
        elif isinstance(n, (ast.List, ast.Set, ast.Dict)):
            detail = type(n).__name__.lower()
            record_alloc("display", n, detail, in_loop)
        elif isinstance(n, ast.Tuple) and isinstance(n.ctx, ast.Load):
            record_alloc("display", n, "tuple", in_loop)
        elif isinstance(n, ast.JoinedStr):
            record_alloc("fstring", n, "f-string", in_loop)
        elif isinstance(n, ast.BinOp) and isinstance(n.op, ast.Add):
            if any(
                isinstance(side, ast.JoinedStr)
                or (isinstance(side, ast.Constant) and isinstance(side.value, str))
                for side in (n.left, n.right)
            ):
                record_alloc("str-concat", n, "+", in_loop)
        elif isinstance(n, ast.Try) and in_loop:
            line, col = _loc(n)
            try_in_loop.append({"line": line, "col": col})
        elif isinstance(n, ast.Attribute):
            is_chain_parent = True
            if in_loop and not chain_parent and isinstance(n.ctx, ast.Load):
                resolved = _attr_chain(n)
                if resolved is not None and resolved[1] >= 2:
                    chain_text = resolved[0]
                    line, col = _loc(n)
                    entry = chains.get(chain_text)
                    if entry is None:
                        chains[chain_text] = {
                            "chain": chain_text, "count": 1,
                            "line": line, "col": col,
                        }
                    else:
                        entry["count"] = int(entry["count"]) + 1
        elif isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load):
            if (
                in_loop
                and n.id not in local_names
                and n.id not in _BUILTIN_NAMES
            ):
                line, col = _loc(n)
                global_loads.append({"name": n.id, "line": line, "col": col})

        if isinstance(n, ast.AnnAssign):
            # The annotation itself is not evaluated per call (and under
            # ``from __future__ import annotations`` never at all); only
            # the assigned value costs anything.
            if n.value is not None:
                visit(n.value, in_loop, False)
            return
        if isinstance(n, (ast.For, ast.AsyncFor)):
            visit(n.target, in_loop, False)
            visit(n.iter, in_loop, False)
            for stmt in n.body + n.orelse:
                visit(stmt, True, False)
            return
        if isinstance(n, ast.While):
            visit(n.test, True, False)
            for stmt in n.body + n.orelse:
                visit(stmt, True, False)
            return
        for child in ast.iter_child_nodes(n):
            visit(child, in_loop, is_chain_parent)

    # Only the body executes per call: parameter annotations, defaults,
    # the return annotation and decorators all evaluate at def time.
    for child in getattr(node, "body", []):
        visit(child, False, False)

    return {
        "allocs": allocs,
        "global_loads": global_loads,
        "attr_chains": sorted(
            chains.values(), key=lambda c: (int(c["line"]), int(c["col"]))
        ),
        "kwargs_calls": kwargs_calls,
        "try_in_loop": try_in_loop,
    }


class _FunctionScanner:
    """Evaluates one function body: env, call records, local findings."""

    def __init__(
        self,
        module: str,
        qname: str,
        node: ast.AST,
        imports: _ImportMap,
        params: List[str],
        param_dims: Dict[str, str],
        module_constants: Dict[str, Dict[str, Any]],
        local_returns: Dict[str, str],
        self_attr_dims: Dict[str, str],
        is_method: bool,
        source: Optional[str] = None,
    ) -> None:
        self.module = module
        self.qname = qname
        self.node = node
        self.imports = imports
        self.params = params
        self.param_dims = param_dims
        self.module_constants = module_constants
        self.local_returns = local_returns
        self.self_attr_dims = self_attr_dims
        self.is_method = is_method
        self.source = source
        self.calls: List[Dict[str, Any]] = []
        self.findings: List[Tuple[str, int, int, str]] = []
        self.hook_calls: List[Dict[str, Any]] = []
        self.sched_calls: List[Dict[str, Any]] = []
        self.self_reads: Set[str] = set()
        self.self_writes: Set[str] = set()
        self.return_dims: List[Optional[str]] = []
        self._env: Dict[str, Dict[str, Any]] = {}
        self._assigned: Set[str] = set()
        #: Local name -> hook receiver it aliases (``obs = self.observer``
        #: makes ``obs`` an alias of ``observer``); ``None`` poisons a
        #: name that was also assigned something else.
        self._hook_aliases: Dict[str, Optional[str]] = {}

    # -- environment -----------------------------------------------------

    def _body_statements(self) -> Iterator[ast.stmt]:
        body = getattr(self.node, "body", [])
        for stmt in body:
            yield stmt

    def _collect_env(self) -> None:
        """Flow-insensitive: join every assignment to a name.

        Reassignment with a different abstract value joins to unknown,
        which can only *suppress* findings — the conservative direction.
        """
        for stmt in ast.walk(self.node):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            elif isinstance(stmt, ast.AugAssign):
                targets = [stmt.target]
                value = None  # joins to unknown below
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                targets = [stmt.target]
                value = None
            if not targets:
                continue
            alias = None if value is None else self._receiver_terminal(value)
            for target in targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        self._assigned.add(name_node.id)
                        # Alias tracking for hook receivers: only a plain
                        # ``name = <receiver>`` binds; any other
                        # assignment to the same name poisons it.
                        bound = alias if name_node is target else None
                        if name_node.id in self._hook_aliases:
                            if self._hook_aliases[name_node.id] != bound:
                                self._hook_aliases[name_node.id] = None
                        else:
                            self._hook_aliases[name_node.id] = bound
            if value is None:
                for target in targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            self._env[name_node.id] = _UNKNOWN
                continue
            abstract = self._eval(value, store=True)
            for target in targets:
                if isinstance(target, ast.Name):
                    previous = self._env.get(target.id)
                    self._env[target.id] = (
                        abstract if previous is None else _join(previous, abstract)
                    )
                else:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            self._env[name_node.id] = _UNKNOWN

    # -- abstract evaluation ---------------------------------------------

    def _call_dimension(self, call: ast.Call) -> Optional[str]:
        """Dimension of a call's return value, when statically known."""
        dotted = _dotted_name(call.func, self.imports)
        if dotted is not None and dotted.startswith(UNITS_MODULE + "."):
            return CONSTRUCTOR_DIMENSIONS.get(dotted.rsplit(".", 1)[1])
        if isinstance(call.func, ast.Name):
            resolved = self.imports.resolve(call.func.id)
            if resolved is None and call.func.id in self.local_returns:
                return self.local_returns[call.func.id]
        return None

    def _eval(self, expr: ast.expr, store: bool = False) -> Dict[str, Any]:
        """Abstract value of an expression (``store``: for an assignment,
        so a literal comes out with ``via`` already bumped)."""
        literal = _numeric_literal(expr)
        if literal is not None:
            return _absval_raw(1 if store else 0, zero=literal == 0)
        if isinstance(expr, ast.Name):
            if expr.id in self._env:
                return self._env[expr.id]
            if expr.id in self.params and expr.id not in self._assigned:
                dim = self.param_dims.get(expr.id)
                if dim is not None:
                    return _absval_dim(dim)
                return {"k": "param", "name": expr.id}
            imported = self.imports.resolve(expr.id)
            if imported is not None:
                return {"k": "import", "name": imported}
            if expr.id in self.module_constants:
                value = dict(self.module_constants[expr.id])
                if value.get("k") == "raw":
                    value["via"] = 1
                return value
            return _UNKNOWN
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.self_attr_dims
            ):
                return _absval_dim(self.self_attr_dims[expr.attr])
            return _UNKNOWN
        if isinstance(expr, ast.Call):
            dim = self._call_dimension(expr)
            if dim is not None:
                return _absval_dim(dim)
            return _UNKNOWN
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, (ast.USub, ast.UAdd)):
            return self._eval(expr.operand, store=store)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, store=store)
        if isinstance(expr, ast.IfExp):
            return _join(self._eval(expr.body, store=store),
                         self._eval(expr.orelse, store=store))
        return _UNKNOWN

    def _eval_binop(self, expr: ast.BinOp, store: bool = False) -> Dict[str, Any]:
        left = self._eval(expr.left, store=store)
        right = self._eval(expr.right, store=store)
        ldim = left.get("d") if left["k"] == "dim" else None
        rdim = right.get("d") if right["k"] == "dim" else None
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            if ldim is not None and rdim is not None:
                if ldim == rdim:
                    return _absval_dim(ldim)
                return _UNKNOWN  # the SIM012 finding was emitted separately
            if left["k"] == "raw" and right["k"] == "raw":
                return _join(left, right)
            return _UNKNOWN
        if isinstance(expr.op, ast.Mult):
            if ldim is not None and rdim is None and right["k"] == "raw":
                return _absval_dim(ldim)
            if rdim is not None and ldim is None and left["k"] == "raw":
                return _absval_dim(rdim)
            if left["k"] == "raw" and right["k"] == "raw":
                return _join(left, right)
            return _UNKNOWN
        if isinstance(expr.op, ast.Div):
            if ldim is not None and rdim is None and right["k"] == "raw":
                return _absval_dim(ldim)
            if left["k"] == "raw" and right["k"] == "raw":
                return _join(left, right)
            return _UNKNOWN
        if left["k"] == "raw" and right["k"] == "raw":
            return _join(left, right)
        return _UNKNOWN

    # -- checks ----------------------------------------------------------

    def _check_binop(self, expr: ast.BinOp) -> None:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if left["k"] != "dim" or right["k"] != "dim":
            return
        ldim, rdim = str(left["d"]), str(right["d"])
        line, col = _loc(expr)
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            if ldim != rdim:
                verb = "adding" if isinstance(expr.op, ast.Add) else "subtracting"
                self.findings.append(
                    (
                        "SIM012",
                        line,
                        col,
                        f"{verb} {ldim} and {rdim}: dimensionally unsafe "
                        "arithmetic (convert one side explicitly)",
                    )
                )
        elif isinstance(expr.op, ast.Mult):
            if ldim == rdim == "bits_per_second":
                self.findings.append(
                    (
                        "SIM012",
                        line,
                        col,
                        "multiplying two rates (bits_per_second x "
                        "bits_per_second) has no physical meaning here",
                    )
                )

    def _seed_roots(self, expr: ast.expr) -> List[Tuple[str, str]]:
        """Roots of a seed expression: ("ok"|"bad"|"unknown", detail)."""
        if isinstance(expr, ast.Constant):
            if type(expr.value) in (int, float):
                return [("ok", "literal")]
            return [("unknown", "constant")]
        if isinstance(expr, ast.Name):
            if _SEEDISH_NAME_RE.search(expr.id):
                return [("ok", expr.id)]
            value = self._env.get(expr.id)
            if value is not None and value.get("k") == "raw":
                return [("ok", "literal")]
            return [("unknown", expr.id)]
        if isinstance(expr, ast.Attribute):
            if _SEEDISH_NAME_RE.search(expr.attr):
                return [("ok", expr.attr)]
            return [("unknown", expr.attr)]
        if isinstance(expr, ast.BinOp):
            return self._seed_roots(expr.left) + self._seed_roots(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self._seed_roots(expr.operand)
        if isinstance(expr, ast.Call):
            dotted = _dotted_name(expr.func, self.imports)
            name = dotted or (
                expr.func.id if isinstance(expr.func, ast.Name) else None
            )
            if name is not None:
                for root, reason in NONDETERMINISTIC_SEED_ROOTS.items():
                    if name == root or name.endswith("." + root):
                        return [("bad", f"{root}(): {reason}")]
                if name.startswith("time.") or name.startswith("datetime."):
                    return [("bad", f"{name}(): wall clock is not a seed")]
                if name in _SEED_TRANSPARENT_CALLS:
                    roots: List[Tuple[str, str]] = []
                    for arg in expr.args:
                        roots.extend(self._seed_roots(arg))
                    return roots or [("unknown", name)]
            return [("unknown", "call")]
        return [("unknown", type(expr).__name__)]

    def _check_rng_construction(self, call: ast.Call) -> None:
        dotted = _dotted_name(call.func, self.imports)
        if dotted not in ("random.Random", RANDOM_STREAMS):
            return
        if not call.args and not call.keywords:
            return  # SIM001's case, not ours
        seed_expr: Optional[ast.expr] = call.args[0] if call.args else None
        if seed_expr is None:
            for keyword in call.keywords:
                if keyword.arg in ("seed", "x"):
                    seed_expr = keyword.value
        if seed_expr is None:
            return
        bad = [detail for kind, detail in self._seed_roots(seed_expr) if kind == "bad"]
        if bad:
            line, col = _loc(call)
            target = dotted.rsplit(".", 1)[1]
            self.findings.append(
                (
                    "SIM013",
                    line,
                    col,
                    f"{target} seeded from nondeterministic entropy "
                    f"({'; '.join(bad)}): seeds must descend from a "
                    "component seed or repro.sim.random",
                )
            )

    @staticmethod
    def _receiver_terminal(expr: ast.expr) -> Optional[str]:
        """Direct hook-receiver terminal of an expression, if any."""
        if isinstance(expr, ast.Name) and expr.id in HOOK_RECEIVERS:
            return expr.id
        if isinstance(expr, ast.Attribute) and expr.attr in HOOK_RECEIVERS:
            return expr.attr
        return None

    def _hook_receiver(self, expr: ast.expr) -> Optional[str]:
        """Terminal identifier of an observer-ish hook receiver.

        Either a direct reference (``observer.on_x``, ``self.observer.on_x``)
        or a local alias hoisted out of a hot loop (``obs = self.observer``
        followed by ``obs.on_x(...)``) — batched drains do exactly that.
        """
        terminal = self._receiver_terminal(expr)
        if terminal is not None:
            return terminal
        if isinstance(expr, ast.Name):
            return self._hook_aliases.get(expr.id)
        return None

    # -- scheduler calls (simrace's raw material) -------------------------

    @staticmethod
    def _is_sim_receiver(expr: ast.expr) -> bool:
        """Whether an expression terminates in a simulator-ish name."""
        if isinstance(expr, ast.Name):
            return _SIM_RECEIVER_RE.match(expr.id) is not None
        if isinstance(expr, ast.Attribute):
            return _SIM_RECEIVER_RE.match(expr.attr) is not None
        return False

    def _expr_src(self, expr: ast.expr) -> Optional[str]:
        if self.source is None:
            return None
        segment = ast.get_source_segment(self.source, expr)
        if segment is None:
            return None
        return " ".join(segment.split())

    def _classify_priority(self, call: ast.Call) -> Dict[str, Any]:
        """Abstract the ``priority=`` argument of a scheduler call.

        ``default`` (omitted), ``literal`` (bare int — unnamed),
        ``named`` (resolves through the import map to a dotted constant,
        e.g. ``repro.sim.priorities.SAMPLE``), ``local`` (a module-level
        constant of this file) or ``unknown`` (never flagged).
        """
        expr: Optional[ast.expr] = None
        for keyword in call.keywords:
            if keyword.arg == "priority":
                expr = keyword.value
        if expr is None:
            return {"kind": "default"}
        literal = _numeric_literal(expr)
        if literal is not None:
            return {"kind": "literal", "value": int(literal)}
        dotted = _dotted_name(expr, self.imports)
        if dotted is not None:
            return {"kind": "named", "name": dotted}
        if isinstance(expr, ast.Name) and expr.id in self.module_constants:
            return {"kind": "local", "name": expr.id}
        return {"kind": "unknown"}

    @staticmethod
    def _classify_callback(expr: Optional[ast.expr]) -> Dict[str, Any]:
        """Abstract the callback argument of a scheduler call."""
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return {"kind": "self", "method": expr.attr}
            recv: Optional[str] = None
            if isinstance(expr.value, ast.Name):
                recv = expr.value.id
            elif isinstance(expr.value, ast.Attribute):
                recv = expr.value.attr
            return {"kind": "recv", "recv": recv, "method": expr.attr}
        if isinstance(expr, ast.Name):
            return {"kind": "func", "name": expr.id}
        return {"kind": "unknown"}

    def _record_sched_call(self, call: ast.Call) -> None:
        func = call.func
        assert isinstance(func, ast.Attribute)
        line, col = _loc(call)
        delay_expr = call.args[0] if call.args else None
        callback_expr = call.args[1] if len(call.args) > 1 else None
        self.sched_calls.append(
            {
                "kind": func.attr,
                "line": line,
                "col": col,
                "delay_src": (
                    None if delay_expr is None else self._expr_src(delay_expr)
                ),
                "priority": self._classify_priority(call),
                "callback": self._classify_callback(callback_expr),
            }
        )

    def _record_call(self, call: ast.Call) -> None:
        func = call.func
        callee: Optional[Dict[str, Any]] = None
        dotted = _dotted_name(func, self.imports)
        if dotted is not None:
            callee = {"kind": "dotted", "name": dotted}
        elif isinstance(func, ast.Name):
            callee = {"kind": "local", "name": func.id}
        elif isinstance(func, ast.Attribute):
            receiver = self._hook_receiver(func.value)
            if receiver is not None and func.attr.startswith("on_"):
                line, col = _loc(call)
                self.hook_calls.append(
                    {"method": func.attr, "receiver": receiver,
                     "line": line, "col": col}
                )
            if func.attr in _SCHED_METHODS and self._is_sim_receiver(
                func.value
            ):
                self._record_sched_call(call)
            callee = {"kind": "attr", "name": func.attr}
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                callee["self"] = True
        if callee is None:
            return
        line, col = _loc(call)
        args = [self._eval(arg) for arg in call.args]
        kwargs = {
            keyword.arg: self._eval(keyword.value)
            for keyword in call.keywords
            if keyword.arg is not None
        }
        self.calls.append(
            {
                "callee": callee,
                "line": line,
                "col": col,
                "args": args,
                "kwargs": kwargs,
                "arg_locs": [list(_loc(arg)) for arg in call.args],
                "kwarg_locs": {
                    keyword.arg: list(_loc(keyword.value))
                    for keyword in call.keywords
                    if keyword.arg is not None
                },
            }
        )

    def scan(self) -> None:
        self._collect_env()
        # ``self.m()`` is a method dispatch, not a data access: keep the
        # callee attribute out of the read set (the call itself is still
        # recorded, with a ``self`` flag, for the race closure).
        dispatch_attrs = {
            id(node.func)
            for node in ast.walk(self.node)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(self.node):
            if node is not self.node and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                # Nested defs are scanned as their own functions.
                continue
            if isinstance(node, ast.BinOp):
                self._check_binop(node)
            elif isinstance(node, ast.Call):
                self._check_rng_construction(node)
                self._record_call(node)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ) and node.value.id == "self" and id(node) not in dispatch_attrs:
                # Attribute *rebinding* counts as a write; loads (including
                # the base of a subscript or method call) count as reads.
                # In-place container mutation is a read of the container —
                # matching the runtime sanitizer's snapshot-diff semantics.
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    self.self_writes.add(node.attr)
                else:
                    self.self_reads.add(node.attr)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Attribute
            ) and isinstance(node.target.value, ast.Name) and (
                node.target.value.id == "self"
            ):
                # ``self.x += 1`` both reads and rebinds the attribute.
                self.self_reads.add(node.target.attr)
            elif isinstance(node, ast.Return) and node.value is not None:
                value = self._eval(node.value)
                self.return_dims.append(
                    str(value["d"]) if value["k"] == "dim" else None
                )

    def returns_dim(self) -> Optional[str]:
        if not self.return_dims:
            return None
        dims = set(self.return_dims)
        if len(dims) == 1 and None not in dims:
            return self.return_dims[0]
        return None


def _function_params(node: ast.AST) -> List[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    params = [a.arg for a in getattr(args, "posonlyargs", [])]
    params.extend(a.arg for a in args.args)
    return params


def _param_dims(node: ast.AST, imports: _ImportMap) -> Dict[str, str]:
    args = getattr(node, "args", None)
    if args is None:
        return {}
    dims: Dict[str, str] = {}
    for arg in list(getattr(args, "posonlyargs", [])) + list(args.args) + list(
        args.kwonlyargs
    ):
        dim = _annotation_dimension(arg.annotation, imports)
        if dim is not None:
            dims[arg.arg] = dim
    return dims


def _iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST, Optional[str]]]:
    """Yield (qname, node, class_name) for every def, one nesting level of
    classes and arbitrarily nested functions."""

    def walk(
        nodes: List[ast.stmt], prefix: str, class_name: Optional[str]
    ) -> Iterator[Tuple[str, ast.AST, Optional[str]]]:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}{node.name}" if prefix else node.name
                yield qname, node, class_name
                yield from walk(node.body, f"{qname}.", class_name)
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{node.name}.", node.name)

    yield from walk(tree.body, "", None)


def _self_attr_dims(
    tree: ast.Module, imports: _ImportMap
) -> Dict[str, Dict[str, str]]:
    """Per-class ``self.<attr>`` dimensions, from ``__init__`` bodies.

    ``self.delay = delay`` where ``delay`` is an alias-annotated
    parameter gives ``Link.delay`` the ``seconds`` dimension for every
    other method of the class.
    """
    result: Dict[str, Dict[str, str]] = {}
    for qname, node, class_name in _iter_functions(tree):
        if class_name is None or not qname.endswith("__init__"):
            continue
        dims = _param_dims(node, imports)
        attr_dims: Dict[str, str] = {}
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Assign):
                continue
            if not isinstance(stmt.value, ast.Name):
                continue
            dim = dims.get(stmt.value.id)
            if dim is None:
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr_dims[target.attr] = dim
        if attr_dims:
            result.setdefault(class_name, {}).update(attr_dims)
    return result


def _module_constants(
    tree: ast.Module, imports: _ImportMap, local_returns: Dict[str, str]
) -> Dict[str, Dict[str, Any]]:
    """Abstract values of module-level simple assignments."""
    scanner = _FunctionScanner(
        module="", qname="<module>", node=tree, imports=imports,
        params=[], param_dims={}, module_constants={},
        local_returns=local_returns, self_attr_dims={}, is_method=False,
    )
    constants: Dict[str, Dict[str, Any]] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        abstract = scanner._eval(value, store=True)
        for target in targets:
            if isinstance(target, ast.Name):
                previous = constants.get(target.id)
                constants[target.id] = (
                    abstract if previous is None else _join(previous, abstract)
                )
    return constants


def _identifier_refs(tree: ast.Module) -> Set[str]:
    """Every identifier the file references (names, attributes, keyword
    argument names) — minus def-statement names, which are definitions."""
    refs: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            refs.add(node.id)
        elif isinstance(node, ast.Attribute):
            refs.add(node.attr)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            refs.add(node.arg)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                refs.add(alias.asname or alias.name)
    return refs


def build_summary(path: str, source: str) -> Dict[str, Any]:
    """Build the phase-1 summary for one file.

    A file that fails to parse yields a summary with a single SIM000
    local finding, so the semantic pass degrades exactly like simlint.
    """
    posix = _normalize(path)
    module = module_name_for_path(posix)
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        return {
            "version": SUMMARY_VERSION,
            "path": posix,
            "module": module,
            "parse_error": True,
            "functions": {},
            "classes": {},
            "module_constants": {},
            "hook_defs": [],
            "handler_defs": [],
            "refs": [],
            "suppressions": {},
            "perf_pragmas": {},
            "local_findings": [
                ["SIM000", exc.lineno or 1, (exc.offset or 1) - 1,
                 f"syntax error: {exc.msg}"]
            ],
        }

    imports = _ImportMap(module)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            imports.record(node)

    # Pass A: local return dimensions (units-style helpers defined here).
    local_returns: Dict[str, str] = {}
    for qname, node, class_name in _iter_functions(tree):
        if class_name is not None:
            continue
        scanner = _FunctionScanner(
            module, qname, node, imports, _function_params(node),
            _param_dims(node, imports), {}, {}, {}, is_method=False,
        )
        scanner.scan()
        dim = scanner.returns_dim()
        if dim is not None:
            local_returns[qname] = dim

    attr_dims_by_class = _self_attr_dims(tree, imports)
    constants = _module_constants(tree, imports, local_returns)

    functions: Dict[str, Dict[str, Any]] = {}
    local_findings: List[List[Any]] = []
    hook_calls_all: List[Dict[str, Any]] = []
    classes: Dict[str, Dict[str, Any]] = {}
    hook_defs: List[Dict[str, Any]] = []
    handler_defs: List[Dict[str, Any]] = []

    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            methods: Dict[str, int] = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = item.lineno
                    if item.name.startswith("on_"):
                        hook_defs.append(
                            {"class": node.name, "method": item.name,
                             "line": item.lineno}
                        )
            classes[node.name] = {"line": node.lineno, "methods": methods}

    for qname, node, class_name in _iter_functions(tree):
        params = _function_params(node)
        is_method = class_name is not None and bool(params) and params[0] in (
            "self", "cls"
        )
        scanner = _FunctionScanner(
            module, qname, node, imports, params,
            _param_dims(node, imports), constants, local_returns,
            attr_dims_by_class.get(class_name or "", {}), is_method,
            source=source,
        )
        scanner.scan()
        functions[qname] = {
            "line": node.lineno,
            "params": params,
            "param_dims": _param_dims(node, imports),
            "is_method": is_method,
            "class": class_name,
            "calls": scanner.calls,
            "sched_calls": scanner.sched_calls,
            "self_reads": sorted(scanner.self_reads),
            "self_writes": sorted(scanner.self_writes),
            "cost": _collect_cost(node),
        }
        local_findings.extend(
            [code, line, col, message]
            for code, line, col, message in scanner.findings
        )
        hook_calls_all.extend(scanner.hook_calls)
        name = qname.rsplit(".", 1)[-1]
        if HANDLER_NAME_RE.search(name):
            handler_defs.append(
                {"qname": qname, "name": name, "line": node.lineno}
            )

    # Module-level statements (constants already harvested; calls at
    # module level — rare — are scanned as a pseudo-function).
    module_scanner = _FunctionScanner(
        module, "<module>", tree, imports, [], {}, constants,
        local_returns, {}, is_method=False, source=source,
    )
    for stmt in tree.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.BinOp):
                    module_scanner._check_binop(sub)
                elif isinstance(sub, ast.Call):
                    module_scanner._check_rng_construction(sub)
                    module_scanner._record_call(sub)
    if module_scanner.calls or module_scanner.findings:
        functions["<module>"] = {
            "line": 1,
            "params": [],
            "param_dims": {},
            "is_method": False,
            "class": None,
            "calls": module_scanner.calls,
            "sched_calls": module_scanner.sched_calls,
            "self_reads": [],
            "self_writes": [],
        }
        local_findings.extend(
            [code, line, col, message]
            for code, line, col, message in module_scanner.findings
        )
        hook_calls_all.extend(module_scanner.hook_calls)

    suppressions = Suppressions.parse(source)
    suppression_map = {
        str(line): sorted(codes)
        for line, codes in suppressions._by_line.items()
    }

    perf_pragmas: Dict[str, str] = {}
    for lineno, line_text in enumerate(source.splitlines(), start=1):
        pragma = PERF_PRAGMA_RE.search(line_text)
        if pragma is not None and pragma.group(1).strip():
            perf_pragmas[str(lineno)] = pragma.group(1).strip()

    return {
        "version": SUMMARY_VERSION,
        "path": posix,
        "module": module,
        "parse_error": False,
        "imports": imports.as_dict(),
        "functions": functions,
        "classes": classes,
        "module_constants": constants,
        "hook_defs": hook_defs,
        "hook_calls": hook_calls_all,
        "handler_defs": handler_defs,
        "refs": sorted(_identifier_refs(tree)),
        "suppressions": suppression_map,
        "perf_pragmas": perf_pragmas,
        "local_findings": local_findings,
    }


__all__ = [
    "PERF_PRAGMA_RE",
    "SUMMARY_VERSION",
    "HANDLER_NAME_RE",
    "build_summary",
    "module_name_for_path",
]
