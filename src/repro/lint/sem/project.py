"""Phase 2 of simsem: cross-module checks over the per-file summaries.

Given the summaries (freshly extracted or replayed from the cache), this
module builds the whole-program tables — symbol definitions, module
constants, the effective sink set (checked-in registry + alias
annotations + derived passthrough sinks) — and emits:

* **SIM011** unit-sink-mismatch: a value whose dimension is known (or a
  raw literal that travelled through assignments) reaches a parameter
  declared with a different dimension;
* **SIM012 / SIM013**: locally decided during phase 1, replayed from
  the summaries here so a warm cache still reports them;
* **SIM014** hook-conformance: ``observer.on_x(...)`` calls vs. ``on_*``
  methods defined by observers in ``repro.validate`` / ``repro.obs`` —
  both directions (undefined hook fired, defined hook never fired);
* **SIM015** dead-event-handler: handler-named defs no identifier in
  the whole analyzed tree references.

SIM014 and SIM015 are whole-program properties: they only run when the
analyzed set actually contains observer modules (for SIM014), and their
precision degrades gracefully — an identifier referenced *anywhere*
clears SIM015 — so partial trees under- rather than over-report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.core import Finding, Severity, iter_python_files
from repro.lint.rules.numerics import UNIT_KWARGS
from repro.lint.sem.cache import SummaryCache, summary_key
from repro.lint.sem.info import SEM_RULE_INFOS
from repro.lint.sem.registry import SinkRegistry
from repro.lint.sem.summary import build_summary

_SEVERITIES: Dict[str, Severity] = {
    info.code: info.severity for info in SEM_RULE_INFOS
}

#: Module prefixes whose classes play the observer role (SIM014).
OBSERVER_MODULE_PREFIXES = ("repro.validate", "repro.obs", "repro.lint.race")

_DERIVATION_ROUNDS = 8  # sink-passthrough fixpoint bound (call depth)


@dataclass
class SemStats:
    """Bookkeeping for one analysis run (cache efficiency, volume)."""

    files: int = 0
    computed: int = 0
    cached: int = 0
    findings: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "files": self.files,
            "computed": self.computed,
            "cached": self.cached,
            "findings": self.findings,
        }


@dataclass
class _Program:
    """The whole-program tables phase 2 checks against."""

    summaries: List[Dict[str, Any]] = field(default_factory=list)
    #: dotted function qname -> (summary, function record)
    functions: Dict[str, Tuple[Dict[str, Any], Dict[str, Any]]] = field(
        default_factory=dict
    )
    #: dotted class name -> summary defining it
    classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: dotted constant name -> abstract value
    constants: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    refs: Set[str] = field(default_factory=set)


def _is_observer_module(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in OBSERVER_MODULE_PREFIXES
    )


class _EffectiveSinks:
    """Declared sinks (registry + annotations) plus derived passthroughs."""

    def __init__(self, declared: SinkRegistry) -> None:
        self._declared = declared
        self._derived: Dict[Tuple[str, str], str] = {}
        self._ambiguous: Set[Tuple[str, str]] = set()

    def dimension(self, qname: str, param: str) -> Optional[str]:
        declared = self._declared.by_qname(qname).get(param)
        if declared is not None:
            return declared
        return self._derived.get((qname, param))

    def params_for_qname(self, qname: str) -> Dict[str, str]:
        params = dict(self._declared.by_qname(qname))
        for (derived_qname, param), dimension in self._derived.items():
            if derived_qname == qname and param not in params:
                params[param] = dimension
        return params

    def candidates_by_name(self, name: str) -> List[Tuple[str, Dict[str, str]]]:
        """Every sink a bare callable name could refer to (declared and
        derived), for attribute calls with unknown receiver type."""
        merged: Dict[str, Dict[str, str]] = {
            qname: dict(params)
            for qname, params in self._declared.by_callable_name(name)
        }
        for (qname, param), dimension in sorted(self._derived.items()):
            parts = qname.split(".")
            callable_name = parts[-1]
            if callable_name == "__init__" and len(parts) >= 2:
                callable_name = parts[-2]
            if callable_name == name:
                merged.setdefault(qname, {}).setdefault(param, dimension)
        return sorted(merged.items())

    def derive(self, qname: str, param: str, dimension: str) -> bool:
        """Record a passthrough sink; returns True if anything changed."""
        key = (qname, param)
        if key in self._ambiguous:
            return False
        if self._declared.by_qname(qname).get(param) is not None:
            return False
        existing = self._derived.get(key)
        if existing is None:
            self._derived[key] = dimension
            return True
        if existing != dimension:
            del self._derived[key]
            self._ambiguous.add(key)
            return True
        return False


class ProjectAnalyzer:
    """Two-phase cross-module analyzer (simsem's entry point)."""

    def __init__(
        self,
        registry: Optional[SinkRegistry] = None,
        cache: Optional[SummaryCache] = None,
        race: bool = False,
        perf: bool = False,
        telemetry: Optional[Path] = None,
        hotpaths: Optional[Any] = None,
    ) -> None:
        self.registry = registry if registry is not None else SinkRegistry.load()
        self.cache = cache
        #: Also run the simrace join checks (SIM016–SIM018) over the same
        #: summaries.  Phase 1 is shared either way: the v3 summaries
        #: always carry the race facts, so enabling this costs only the
        #: extra join work.
        self.race = race
        #: Also run the simperf join checks (SIM019–SIM023); the v4
        #: summaries always carry the cost records, same deal as race.
        self.perf = perf
        #: Recorded ``repro.obs`` telemetry JSONL for the SIM022
        #: registry-drift check (``--from-telemetry``); only consulted
        #: when ``perf`` is on.
        self.telemetry = telemetry
        #: A :class:`~repro.lint.perf.hotpaths.HotPathRegistry` override
        #: for the perf join (fixture projects carry their own); ``None``
        #: means the checked-in ``hotpaths.toml``.
        self.hotpaths = hotpaths
        self.stats = SemStats()

    # -- phase 1 ----------------------------------------------------------

    def _summarize(self, path: str, source: str) -> Dict[str, Any]:
        self.stats.files += 1
        if self.cache is None:
            self.stats.computed += 1
            return build_summary(path, source)
        key = summary_key(source, self.registry.digest())
        cached = self.cache.get(key)
        # The summary stores its (possibly virtual) path; a file moved
        # byte-identically still needs its findings at the new path.
        if cached is not None and cached.get("path") == path.replace("\\", "/"):
            self.stats.cached += 1
            return cached
        self.stats.computed += 1
        summary = build_summary(path, source)
        self.cache.put(key, summary)
        return summary

    def analyze_paths(
        self, paths: Iterable["str | Path"]
    ) -> List[Finding]:
        sources: List[Tuple[str, str]] = []
        for path in iter_python_files(paths):
            sources.append((str(path), path.read_text(encoding="utf-8")))
        return self.analyze_sources(sources)

    def analyze_sources(
        self, items: Sequence[Tuple[str, str]]
    ) -> List[Finding]:
        """Analyze (path, source) pairs — the paths may be virtual (the
        fixture corpus builds mini-projects from ``# simlint-path:``
        headers)."""
        self.stats = SemStats()
        summaries = [
            self._summarize(path.replace("\\", "/"), source)
            for path, source in sorted(items)
        ]
        findings = self._check(summaries)
        self.stats.findings = len(findings)
        return findings

    # -- phase 2 ----------------------------------------------------------

    def _check(self, summaries: List[Dict[str, Any]]) -> List[Finding]:
        program = self._build_program(summaries)
        sinks = self._effective_sinks(program)
        findings: List[Finding] = []
        findings.extend(self._replay_local_findings(program))
        findings.extend(self._check_sinks(program, sinks))
        findings.extend(self._check_hooks(program))
        findings.extend(self._check_dead_handlers(program))
        if self.race:
            # Imported lazily: the race analyzer depends on this module's
            # summaries but sem-only runs should not pay for it.
            from repro.lint.race.analyzer import check_races

            findings.extend(check_races(program.summaries))
        if self.perf:
            # Same lazy-import contract as the race join above.
            from repro.lint.perf.analyzer import check_perf

            findings.extend(
                check_perf(
                    program.summaries,
                    registry=self.hotpaths,
                    telemetry=self.telemetry,
                )
            )
        findings = self._apply_suppressions(program, findings)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return findings

    def _build_program(self, summaries: List[Dict[str, Any]]) -> _Program:
        program = _Program(summaries=summaries)
        for summary in summaries:
            module = str(summary["module"])
            for qname, record in summary.get("functions", {}).items():
                if qname != "<module>":
                    program.functions[f"{module}.{qname}"] = (summary, record)
            for class_name in summary.get("classes", {}):
                program.classes[f"{module}.{class_name}"] = summary
            for name, value in summary.get("module_constants", {}).items():
                program.constants[f"{module}.{name}"] = value
            program.refs.update(summary.get("refs", []))
        return program

    def _effective_sinks(self, program: _Program) -> _EffectiveSinks:
        declared = SinkRegistry()
        declared.merge(self.registry)
        for qname, (summary, record) in program.functions.items():
            for param, dimension in record.get("param_dims", {}).items():
                declared.add(qname, param, dimension)
        sinks = _EffectiveSinks(declared)
        # Passthrough fixpoint: a pristine parameter handed to a sink
        # makes the enclosing function's parameter a sink of the same
        # dimension, one call layer at a time.
        for _ in range(_DERIVATION_ROUNDS):
            changed = False
            for caller_qname, (summary, record) in program.functions.items():
                for call in record.get("calls", []):
                    _qname, sink_args = self._sink_arguments(
                        program, sinks, summary, call
                    )
                    for param, dimension, value, _loc in sink_args:
                        if value.get("k") == "param":
                            changed = (
                                sinks.derive(
                                    caller_qname, str(value["name"]), dimension
                                )
                                or changed
                            )
            if not changed:
                break
        return sinks

    # -- sink resolution ---------------------------------------------------

    def _resolve_callee(
        self, program: _Program, summary: Dict[str, Any], call: Dict[str, Any]
    ) -> Tuple[Optional[str], Optional[Dict[str, Any]], bool]:
        """(sink qname, function record, receiver_bound) for a call.

        ``receiver_bound`` means the first parameter (self) is not part
        of the positional argument list at the call site.
        """
        callee = call.get("callee") or {}
        kind = callee.get("kind")
        name = str(callee.get("name", ""))
        if kind == "local":
            name = f'{summary["module"]}.{name}'
            kind = "dotted"
        if kind == "dotted":
            if name in program.classes or f"{name}.__init__" in program.functions:
                init_qname = f"{name}.__init__"
                record = program.functions.get(init_qname)
                return init_qname, record[1] if record else None, True
            record = program.functions.get(name)
            if record is not None:
                return name, record[1], bool(record[1].get("is_method"))
            # Not in the analyzed tree; the registry may still know it
            # (e.g. repro.sim.units helpers when analyzing a subtree).
            return name, None, name.split(".")[-1] == "__init__"
        return None, None, True

    def _attr_candidates(
        self,
        program: _Program,
        sinks: _EffectiveSinks,
        name: str,
    ) -> Optional[Tuple[str, Dict[str, str], Optional[Dict[str, Any]]]]:
        """The unambiguous sink an attribute call ``x.name(...)`` hits.

        All candidates must agree on the parameter dimensions (and on
        positions, when function records exist); otherwise the call is
        skipped — unknown receivers never guess.
        """
        candidates = sinks.candidates_by_name(name)
        if not candidates:
            return None
        first_params = candidates[0][1]
        if any(params != first_params for _, params in candidates[1:]):
            return None
        records = []
        for qname, _params in candidates:
            record = program.functions.get(qname)
            records.append(record[1] if record else None)
        concrete = [r for r in records if r is not None]
        positions = {tuple(r.get("params", [])) for r in concrete}
        if len(positions) > 1:
            return None
        return candidates[0][0], first_params, concrete[0] if concrete else None

    def _sink_arguments(
        self,
        program: _Program,
        sinks: _EffectiveSinks,
        summary: Dict[str, Any],
        call: Dict[str, Any],
    ) -> Tuple[
        Optional[str], List[Tuple[str, str, Dict[str, Any], Tuple[int, int]]]
    ]:
        """The resolved sink qname, plus (param, dimension, abstract
        value, location) per declared sink parameter receiving a value
        at this call."""
        callee = call.get("callee") or {}
        if callee.get("kind") == "attr":
            resolved = self._attr_candidates(
                program, sinks, str(callee.get("name", ""))
            )
            if resolved is None:
                return None, []
            qname, params_dims, record = resolved
            receiver_bound = True
        else:
            qname, record, receiver_bound = self._resolve_callee(
                program, summary, call
            )
            if qname is None:
                return None, []
            params_dims = sinks.params_for_qname(qname)
        if not params_dims:
            return qname, []
        args: List[Dict[str, Any]] = list(call.get("args", []))
        kwargs: Dict[str, Dict[str, Any]] = dict(call.get("kwargs", {}))
        arg_locs: List[List[int]] = list(call.get("arg_locs", []))
        kwarg_locs: Dict[str, List[int]] = dict(call.get("kwarg_locs", {}))
        call_loc = (int(call.get("line", 1)), int(call.get("col", 0)))
        results: List[Tuple[str, str, Dict[str, Any], Tuple[int, int]]] = []
        param_names: List[str] = list(record.get("params", [])) if record else []
        offset = 0
        if record and receiver_bound and param_names[:1] in (["self"], ["cls"]):
            offset = 1
        for param, dimension in sorted(params_dims.items()):
            value: Optional[Dict[str, Any]] = None
            loc = call_loc
            if param in kwargs:
                value = kwargs[param]
                raw_loc = kwarg_locs.get(param)
                if raw_loc:
                    loc = (int(raw_loc[0]), int(raw_loc[1]))
            elif record and param in param_names:
                index = param_names.index(param) - offset
                if 0 <= index < len(args):
                    value = args[index]
                    if index < len(arg_locs):
                        loc = (int(arg_locs[index][0]), int(arg_locs[index][1]))
            if value is not None:
                results.append((param, dimension, value, loc))
        return qname, results

    # -- SIM011 ------------------------------------------------------------

    def _sim004_covers(
        self, call: Dict[str, Any], param: str, value: Dict[str, Any]
    ) -> bool:
        """Whether simlint's SIM004 already reports this raw literal."""
        if value.get("via", 1) != 0:
            return False
        if param in UNIT_KWARGS and param in call.get("kwargs", {}):
            return True
        callee = call.get("callee") or {}
        if callee.get("kind") == "attr" and callee.get("name") == "connect":
            # Positional slots 2 and 3 of connect() are SIM004's.
            args = call.get("args", [])
            for index in (2, 3):
                if index < len(args) and args[index] is value:
                    return True
        return False

    def _check_sinks(
        self, program: _Program, sinks: _EffectiveSinks
    ) -> List[Finding]:
        findings: List[Finding] = []
        for caller_qname, (summary, record) in sorted(program.functions.items()):
            for call in record.get("calls", []):
                sink_qname, sink_args = self._sink_arguments(
                    program, sinks, summary, call
                )
                if sink_qname is None:
                    continue
                for param, dimension, value, loc in sink_args:
                    finding = self._judge_sink_value(
                        program, sinks, summary, caller_qname, call,
                        sink_qname, param, dimension, value, loc,
                    )
                    if finding is not None:
                        findings.append(finding)
        return findings

    def _judge_sink_value(
        self,
        program: _Program,
        sinks: _EffectiveSinks,
        summary: Dict[str, Any],
        caller_qname: str,
        call: Dict[str, Any],
        sink_qname: str,
        param: str,
        dimension: str,
        value: Dict[str, Any],
        loc: Tuple[int, int],
    ) -> Optional[Finding]:
        kind = value.get("k")
        if kind == "import":
            resolved = program.constants.get(str(value.get("name", "")))
            if resolved is None:
                return None
            value = dict(resolved)
            if value.get("k") == "raw":
                value["via"] = 1
            kind = value.get("k")
        message: Optional[str] = None
        if kind == "dim":
            actual = str(value["d"])
            if actual != dimension:
                message = (
                    f"{actual} value reaches parameter '{param}' of "
                    f"{sink_qname}, which is declared '{dimension}'"
                )
        elif kind == "raw":
            if value.get("zero"):
                return None
            if self._sim004_covers(call, param, value):
                return None
            origin = (
                "a raw numeric literal"
                if value.get("via", 1) == 0
                else "a raw numeric (assigned from a bare literal)"
            )
            message = (
                f"{origin} reaches parameter '{param}' of {sink_qname}, "
                f"declared '{dimension}'; wrap the value in a "
                "repro.sim.units constructor at its origin"
            )
        elif kind == "param":
            declared = sinks.dimension(caller_qname, str(value["name"]))
            if declared is not None and declared != dimension:
                message = (
                    f"parameter '{value['name']}' of {caller_qname} is "
                    f"'{declared}' but flows into parameter '{param}' of "
                    f"{sink_qname}, declared '{dimension}'"
                )
        if message is None:
            return None
        return Finding(
            path=str(summary["path"]),
            line=loc[0],
            col=loc[1],
            code="SIM011",
            message=message,
            severity=_SEVERITIES["SIM011"],
        )

    # -- SIM012/SIM013 replay ---------------------------------------------

    def _replay_local_findings(self, program: _Program) -> List[Finding]:
        findings: List[Finding] = []
        for summary in program.summaries:
            for code, line, col, message in summary.get("local_findings", []):
                findings.append(
                    Finding(
                        path=str(summary["path"]),
                        line=int(line),
                        col=int(col),
                        code=str(code),
                        message=str(message),
                        severity=_SEVERITIES.get(str(code), Severity.ERROR),
                    )
                )
        return findings

    # -- SIM014 ------------------------------------------------------------

    def _check_hooks(self, program: _Program) -> List[Finding]:
        observer_summaries = [
            s for s in program.summaries if _is_observer_module(str(s["module"]))
        ]
        if not observer_summaries:
            return []  # partial tree: the protocol side is not visible
        defined: Dict[str, List[Tuple[str, int, str]]] = {}
        for summary in observer_summaries:
            for hook in summary.get("hook_defs", []):
                defined.setdefault(str(hook["method"]), []).append(
                    (str(summary["path"]), int(hook["line"]), str(hook["class"]))
                )
        fired: Set[str] = set()
        findings: List[Finding] = []
        for summary in program.summaries:
            for hook in summary.get("hook_calls", []):
                method = str(hook["method"])
                fired.add(method)
                if method not in defined:
                    findings.append(
                        Finding(
                            path=str(summary["path"]),
                            line=int(hook["line"]),
                            col=int(hook["col"]),
                            code="SIM014",
                            message=(
                                f"{hook['receiver']}.{method}(...) matches no "
                                "on_* method on any observer in "
                                "repro.validate / repro.obs; the event is "
                                "silently dropped"
                            ),
                            severity=_SEVERITIES["SIM014"],
                        )
                    )
        for method in sorted(defined):
            if method in fired:
                continue
            for path, line, class_name in defined[method]:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        code="SIM014",
                        message=(
                            f"observer hook {class_name}.{method} is defined "
                            "but no instrumented site ever fires it; the "
                            "observation is dead protocol"
                        ),
                        severity=_SEVERITIES["SIM014"],
                    )
                )
        return findings

    # -- SIM015 ------------------------------------------------------------

    def _check_dead_handlers(self, program: _Program) -> List[Finding]:
        findings: List[Finding] = []
        for summary in program.summaries:
            is_observer = _is_observer_module(str(summary["module"]))
            for handler in summary.get("handler_defs", []):
                name = str(handler["name"])
                if name in program.refs:
                    continue
                if is_observer and name.startswith("on_"):
                    continue  # observer hooks are SIM014's domain
                findings.append(
                    Finding(
                        path=str(summary["path"]),
                        line=int(handler["line"]),
                        col=0,
                        code="SIM015",
                        message=(
                            f"event handler '{handler['qname']}' is never "
                            "referenced anywhere in the analyzed tree — "
                            "unreachable from any schedule() site"
                        ),
                        severity=_SEVERITIES["SIM015"],
                    )
                )
        return findings

    # -- suppressions -------------------------------------------------------

    def _apply_suppressions(
        self, program: _Program, findings: List[Finding]
    ) -> List[Finding]:
        by_path: Dict[str, Dict[str, List[str]]] = {
            str(s["path"]): s.get("suppressions", {}) for s in program.summaries
        }
        kept: List[Finding] = []
        for finding in findings:
            codes = by_path.get(finding.path, {}).get(str(finding.line))
            if codes and ("all" in codes or finding.code in codes):
                continue
            kept.append(finding)
        return kept


__all__ = ["OBSERVER_MODULE_PREFIXES", "ProjectAnalyzer", "SemStats"]
