"""simrace — same-instant event-ordering race detection (SIM016–SIM018).

The third rung of the analysis ladder, above simlint (per-file AST
rules) and simsem (cross-module dataflow).  The engine's total event
order is ``(time, priority, seq)``: two events sharing ``(time,
priority)`` fire in *insertion order*, which no model code may depend
on.  simrace attacks that hazard from both sides:

* **Static pass** (:mod:`repro.lint.race.analyzer`): consumes the
  simsem per-file summaries — scheduler-call records with delay source
  text, priority classification and attribute read/write sets per
  callback — and reports SIM016 (same-instant write–write hazard),
  SIM017 (seq-order dependence: non-commutative read/write pairs) and
  SIM018 (a periodic callback scheduled at an unnamed priority, the
  PR 4 sampler-bug shape).  Run with ``python -m repro.lint --race``.

* **Runtime sanitizer** (:mod:`repro.lint.race.runtime`): a
  zero-cost-when-disabled hook on the engine's same-instant batch
  (same activation contract as :mod:`repro.validate` /
  :mod:`repro.obs`), enabled with ``REPRO_RACE=1``.  It snapshot-diffs
  each callback's receiver state and records write collisions within an
  equal-``(time, priority)`` run to JSONL, without ever perturbing the
  simulation.  ``python -m repro.lint.race`` cross-checks observed
  collisions against the static findings on the golden scenarios.

This ``__init__`` deliberately imports only the light modules (rule
metadata and the dependency-free hooks) so that :class:`repro.net.Network`
can consult the activation registry at construction time without pulling
the whole analyzer in.
"""

from repro.lint.race.hooks import (
    activate,
    active_race_monitor,
    deactivate,
    race_monitoring,
    race_requested,
)
from repro.lint.race.info import RACE_CODES, RACE_RULE_INFOS

__all__ = [
    "RACE_CODES",
    "RACE_RULE_INFOS",
    "activate",
    "active_race_monitor",
    "deactivate",
    "race_monitoring",
    "race_requested",
]
