"""Descriptors for the race rules SIM016–SIM018.

Same shape as :mod:`repro.lint.sem.info` (the race pass produces
findings from whole-program analysis, not per-node rules); the unified
registry merges these with the syntactic and semantic catalogs.
"""

from __future__ import annotations

from typing import Tuple

from repro.lint.core import Severity
from repro.lint.sem.info import SemRuleInfo

RACE_RULE_INFOS: Tuple[SemRuleInfo, ...] = (
    SemRuleInfo(
        code="SIM016",
        name="same-instant-write-write",
        severity=Severity.ERROR,
        rationale=(
            "two distinct callbacks scheduled at one instant and equal "
            "priority both rebind the same component attribute; the "
            "surviving value depends on insertion order alone, which no "
            "model code may rely on"
        ),
    ),
    SemRuleInfo(
        code="SIM017",
        name="seq-order-dependence",
        severity=Severity.ERROR,
        rationale=(
            "a callback reads an attribute that a same-instant "
            "equal-priority peer writes; the pair is non-commutative, so "
            "swapping their insertion order changes the result silently"
        ),
    ),
    SemRuleInfo(
        code="SIM018",
        name="unnamed-priority-tier",
        severity=Severity.WARNING,
        rationale=(
            "a periodic (self-rescheduling) callback is scheduled at the "
            "default or a bare-literal priority: its ticks walk onto "
            "instants shared with model events, where ordering must be "
            "named via repro.sim.priorities — the PR 4 sampler-bug shape"
        ),
    ),
)

RACE_CODES: Tuple[str, ...] = tuple(info.code for info in RACE_RULE_INFOS)


__all__ = ["RACE_RULE_INFOS", "RACE_CODES"]
