"""The active race-monitor registry: how the sanitizer is switched on.

Identical contract to :mod:`repro.validate.hooks` / :mod:`repro.obs.hooks`:
this module is deliberately dependency-free (the monitor class itself is
imported lazily) so :class:`repro.net.Network` can consult it at
construction time without import cycles, and the engine's hot loop pays
exactly one aliased ``is None`` branch when no monitor is attached.

Activation paths:

* explicitly, via :func:`activate` or the :func:`race_monitoring`
  context manager (what the tests and ``python -m repro.lint.race`` use);
* ambiently, via ``REPRO_RACE=1`` in the environment: the first
  :func:`active_race_monitor` call lazily creates one shared
  process-wide monitor (``REPRO_RACE_LOG=<path>`` streams its collision
  records to JSONL) and every subsequently constructed ``Network``
  attaches it.  This is how the sanitizer reaches campaign worker
  processes, which inherit the environment.
"""

from __future__ import annotations

import contextlib
import os
from typing import TYPE_CHECKING, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker, types only
    from repro.lint.race.runtime import RaceMonitor

_ENV_RACE = "REPRO_RACE"
_ENV_RACE_LOG = "REPRO_RACE_LOG"

#: Stack of explicitly active monitors; the top one receives new sims.
_ACTIVE: List["RaceMonitor"] = []

#: The lazily created environment-requested monitor (shared per process).
_ENV_MONITOR: Optional["RaceMonitor"] = None


def activate(monitor: "RaceMonitor") -> None:
    """Push ``monitor``: networks constructed from now on attach to it."""
    _ACTIVE.append(monitor)


def deactivate(monitor: Optional["RaceMonitor"] = None) -> None:
    """Pop the innermost monitor (must match ``monitor`` when given)."""
    if not _ACTIVE:
        raise RuntimeError("no race monitor is active")
    top = _ACTIVE.pop()
    if monitor is not None and top is not monitor:
        _ACTIVE.append(top)
        raise RuntimeError("deactivate() out of order: not the innermost monitor")


def race_requested() -> bool:
    """Whether the same-instant sanitizer should be on for this process."""
    if _ACTIVE:
        return True
    return os.environ.get(_ENV_RACE, "") not in ("", "0")


def active_race_monitor() -> Optional["RaceMonitor"]:
    """The monitor new simulators should attach to, or ``None``.

    Explicit activation wins; otherwise ``REPRO_RACE`` materializes one
    shared monitor on first use.  Returning ``None`` is the common case
    and must stay cheap — it is consulted once per ``Network``.
    """
    global _ENV_MONITOR
    if _ACTIVE:
        return _ACTIVE[-1]
    if os.environ.get(_ENV_RACE, "") in ("", "0"):
        return None
    if _ENV_MONITOR is None:
        from repro.lint.race.runtime import RaceMonitor

        _ENV_MONITOR = RaceMonitor(
            log_path=os.environ.get(_ENV_RACE_LOG) or None
        )
    return _ENV_MONITOR


@contextlib.contextmanager
def race_monitoring(
    monitor: Optional["RaceMonitor"] = None,
) -> Iterator["RaceMonitor"]:
    """Run a block with an active race monitor.

    Usage::

        with race_monitoring() as monitor:
            net = build_single_bottleneck(...)
            net.sim.run(until=0.4)
        collisions = monitor.collisions
    """
    if monitor is None:
        from repro.lint.race.runtime import RaceMonitor

        monitor = RaceMonitor()
    activate(monitor)
    try:
        yield monitor
    finally:
        deactivate(monitor)


__all__ = [
    "activate",
    "deactivate",
    "active_race_monitor",
    "race_monitoring",
    "race_requested",
]
