"""The runtime side of simrace: the same-instant write sanitizer.

A :class:`RaceMonitor` attaches to a :class:`~repro.sim.engine.Simulator`
through the engine's passive ``race`` slot (the same seam as the
validator's ``observer`` and the profiler).  The instrumented loop calls
exactly two hooks around every fired callback:

* ``race.on_event_fired(time, priority, callback)`` — before the fire:
  batch bookkeeping (a *batch* is a maximal run of events sharing
  ``(time, priority)`` — precisely the events whose mutual order is
  insertion-order only) and a shallow snapshot of the callback's bound
  receiver;
* ``race.on_event_settled()`` — after the fire: the receiver's state is
  diffed against the snapshot; every attribute the callback *rebound* is
  recorded, and a rebind of an attribute a **different** callback
  already rebound in the same batch is a collision — the runtime
  counterpart of static SIM016.

The monitor observes and never perturbs: it schedules nothing, mutates
nothing it observes, holds only transient references, and the golden
digests must be bit-identical with ``REPRO_RACE=1``
(``tests/test_simrace.py`` pins this).

Detection semantics match the static pass deliberately: a "write" is an
attribute *rebinding* (snapshot diff by identity-then-equality), so
in-place container mutation (``list.append``) is invisible to both
sides, and a rebind to an equal value is invisible to the runtime side
only.  Collisions stream to JSONL when a log path is set; see
OBSERVABILITY.md for the record shape.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple


def _state_of(receiver: Any) -> Dict[str, Any]:
    """Shallow snapshot of an object's attribute bindings.

    Plain instances snapshot ``__dict__``; slotted instances (the
    engine's own :class:`~repro.sim.events.Timer`, for one) walk the
    MRO's ``__slots__``.  Unreadable descriptors are skipped — the
    sanitizer must never raise out of the hot loop.
    """
    d = getattr(receiver, "__dict__", None)
    if d is not None:
        return dict(d)
    state: Dict[str, Any] = {}
    for klass in type(receiver).__mro__:
        for name in getattr(klass, "__slots__", ()):
            try:
                state[name] = getattr(receiver, name)
            except AttributeError:
                continue
    return state


def _rebound(old: Any, new: Any) -> bool:
    """Whether an attribute binding changed between snapshots."""
    if old is new:
        return False
    try:
        return bool(old != new)
    except Exception:
        # Incomparable values: the binding moved to a different object.
        return True


class RaceMonitor:
    """Observes same-instant batches and records write collisions."""

    def __init__(self, log_path: Optional[str] = None) -> None:
        self.log_path = log_path
        #: Collision records, in observation order (see OBSERVABILITY.md).
        self.collisions: List[Dict[str, Any]] = []
        self.events = 0
        self.batches = 0
        #: (time, priority) of the batch being traced; None before the
        #: first event.
        self._batch: Optional[Tuple[float, int]] = None
        #: (id(receiver), attr) -> (writer qualname, receiver) for the
        #: current batch.  The receiver reference keeps the object alive
        #: so ids cannot be recycled within a batch.
        self._writers: Dict[Tuple[int, str], Tuple[str, Any]] = {}
        #: (receiver, before-snapshot, qualname, time, priority) of the
        #: event currently firing, or None.
        self._pending: Optional[Tuple[Any, Dict[str, Any], str, float, int]] = None

    # -- attachment ----------------------------------------------------

    def attach(self, sim: Any) -> None:
        """Attach to a simulator's passive ``race`` slot."""
        sim.race = self

    # -- engine hooks --------------------------------------------------

    def on_event_fired(
        self, when: float, priority: int, callback: Callable[..., None]
    ) -> None:
        """Called by the engine loop immediately before a callback fires."""
        self.events += 1
        self._pending = None  # drop stale state from a raised callback
        batch_key = (when, priority)
        if batch_key != self._batch:
            self._batch = batch_key
            self._writers.clear()
            self.batches += 1
        receiver = getattr(callback, "__self__", None)
        if receiver is None:
            return  # plain function: no instance state to trace
        qualname = getattr(callback, "__qualname__", repr(callback))
        self._pending = (
            receiver, _state_of(receiver), qualname, when, priority
        )

    def on_event_settled(self) -> None:
        """Called by the engine loop after the callback returned."""
        pending = self._pending
        if pending is None:
            return
        self._pending = None
        receiver, before, qualname, when, priority = pending
        after = _state_of(receiver)
        missing = object()
        for attr in after.keys() | before.keys():
            if not _rebound(before.get(attr, missing), after.get(attr, missing)):
                continue
            key = (id(receiver), attr)
            prior = self._writers.get(key)
            self._writers[key] = (qualname, receiver)
            if prior is not None and prior[0] != qualname:
                self._record_collision(
                    when, priority, receiver, attr, prior[0], qualname
                )

    # -- reporting -----------------------------------------------------

    def _record_collision(
        self,
        when: float,
        priority: int,
        receiver: Any,
        attr: str,
        first: str,
        second: str,
    ) -> None:
        record = {
            "kind": "collision",
            "time": when,
            "priority": priority,
            "receiver": type(receiver).__qualname__,
            "attr": attr,
            "first": first,
            "second": second,
        }
        self.collisions.append(record)
        if self.log_path is not None:
            with open(self.log_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    def summary(self) -> Dict[str, Any]:
        """The run's totals, in the JSONL summary-record shape."""
        return {
            "kind": "summary",
            "events": self.events,
            "batches": self.batches,
            "collisions": len(self.collisions),
        }

    def write_report(
        self, path: str, extra: Optional[Dict[str, Any]] = None
    ) -> None:
        """Write every collision plus a trailing summary line as JSONL."""
        summary = self.summary()
        if extra:
            summary.update(extra)
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.collisions:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.write(json.dumps(summary, sort_keys=True) + "\n")


__all__ = ["RaceMonitor"]
