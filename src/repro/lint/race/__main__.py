"""Sanitizer smoke runner: ``python -m repro.lint.race``.

Runs canonical golden scenarios with the same-instant race sanitizer
active (see :mod:`repro.lint.race.runtime`), then asserts two things:

* **no observed collisions** — no two distinct callbacks rebound the
  same attribute of the same object within one equal-``(time,
  priority)`` batch, and
* **bit-identical digests** — the sanitizer observed without
  perturbing: every scenario digest still matches its checked-in
  golden.

Both must hold for exit code 0; either failure exits 1.  ``--out``
writes the JSONL race report (collision records then one summary line
per scenario; see OBSERVABILITY.md) regardless of outcome, so CI can
upload it as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.race.hooks import race_monitoring

#: Default smoke set: one bottleneck golden plus one incast cell — the
#: two scenario shapes with the densest same-instant batches.
DEFAULT_SCENARIOS = ("bottleneck-xmp", "incast-fanin8")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint.race",
        description=(
            "run golden scenarios under the same-instant race sanitizer "
            "and cross-check digests against the checked-in goldens"
        ),
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="scenario to run (repeatable; default: "
             f"{', '.join(DEFAULT_SCENARIOS)})",
    )
    parser.add_argument("--all", action="store_true",
                        help="run every golden scenario")
    parser.add_argument("--out", metavar="FILE",
                        help="write the JSONL race report here")
    parser.add_argument("--no-goldens", action="store_true",
                        help="skip the golden-digest cross-check (for "
                             "trees whose goldens are being re-blessed)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print failures")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    from repro.validate.golden import check_digest, format_diff
    from repro.validate.scenarios import run_scenario, scenario_names

    known = scenario_names()
    if args.all:
        names = known
    elif args.scenario:
        names = list(args.scenario)
        for name in names:
            if name not in known:
                parser.error(
                    f"unknown scenario {name!r} (known: {', '.join(known)})"
                )
    else:
        names = list(DEFAULT_SCENARIOS)

    records: List[dict] = []
    ok = True
    for name in names:
        with race_monitoring() as monitor:
            digest, validator = run_scenario(name)
        status: List[str] = []
        if monitor.collisions:
            ok = False
            status.append(f"{len(monitor.collisions)} collision(s)")
        if validator.violations:
            ok = False
            status.append(f"{len(validator.violations)} invariant violation(s)")
        if not args.no_goldens:
            differences = check_digest(name, digest)
            if differences:
                ok = False
                status.append("digest mismatch under sanitizer")
                if not args.quiet:
                    print(format_diff(name, differences), file=sys.stderr)
        if not status:
            status.append("ok")
        summary = monitor.summary()
        summary["scenario"] = name
        records.extend(monitor.collisions)
        records.append(summary)
        if monitor.collisions or not args.quiet:
            print(
                f"{name:<28} {', '.join(status)}  "
                f"[{summary['events']} events, {summary['batches']} "
                f"same-instant batches]"
            )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        if not args.quiet:
            print(f"race report: {args.out} ({len(records)} record(s))")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
