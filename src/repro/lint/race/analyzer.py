"""The static side of simrace: join-phase race checks (SIM016–SIM018).

Runs over the same whole-program summary set simsem builds (phase 1 is
shared; this module is phase 2b).  The raw material is the v3 summary
extensions: per-function ``sched_calls`` records (scheduler method,
delay source text, priority classification, callback shape) and per
function ``self_reads``/``self_writes`` attribute sets, closed over
intra-class ``self.m()`` calls.

Same-instant approximation
--------------------------

"Two callbacks can share an instant" is undecidable in general; the
pass uses a deliberately narrow, low-noise approximation: two scheduler
calls *in the same function* whose delay expressions have identical
source text and whose effective priorities resolve to the same tier
value.  Receiver identity is textual too — ``flow3.stop`` and
``flow4.stop`` are different instances and never conflict; two
``self.x`` callbacks (or two calls through the same receiver text)
share state.  Unknown receivers, unresolvable callbacks and
unresolvable priorities are skipped: the pass never guesses.

SIM018 is the sampler-bug shape: a *periodic* callback — a method that
reschedules itself — scheduled at the default or a bare-literal
priority.  Periodic ticks land on unboundedly many instants, so their
ordering against model events must be a named tier from
:mod:`repro.sim.priorities`.  A bare literal that happens to equal a
named nonzero tier is flagged everywhere (spell the name).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.core import Finding, Severity
from repro.lint.race.info import RACE_RULE_INFOS
from repro.sim.priorities import PRIORITIES_MODULE, TIERS, tier_name

_SEVERITIES: Dict[str, Severity] = {
    info.code: info.severity for info in RACE_RULE_INFOS
}

_CLOSURE_ROUNDS = 8  # intra-class self-call fixpoint bound


def _priority_value(priority: Dict[str, Any]) -> Optional[int]:
    """The effective tier value of a priority record, if resolvable."""
    kind = priority.get("kind")
    if kind == "default":
        return 0
    if kind == "literal":
        return int(priority["value"])
    if kind == "named":
        name = str(priority.get("name", ""))
        if name.startswith(PRIORITIES_MODULE + "."):
            return TIERS.get(name.rsplit(".", 1)[1])
    return None


def _priority_label(priority: Dict[str, Any]) -> str:
    kind = priority.get("kind")
    if kind == "default":
        return "default priority 0"
    if kind == "literal":
        return f"bare literal priority {priority['value']}"
    if kind == "named":
        return f"priority {priority['name']}"
    return "an unresolved priority"


class _RaceTables:
    """Whole-program tables the race checks consume."""

    def __init__(self, summaries: List[Dict[str, Any]]) -> None:
        #: dotted method qname -> (reads, writes), self-call closed.
        self.rw: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
        #: simple method name -> dotted class names defining it.
        self.classes_by_method: Dict[str, Set[str]] = {}
        #: dotted method qnames that reschedule themselves (periodic).
        self.periodic: Set[str] = set()
        self._build(summaries)

    def _build(self, summaries: List[Dict[str, Any]]) -> None:
        reads: Dict[str, Set[str]] = {}
        writes: Dict[str, Set[str]] = {}
        self_calls: Dict[str, Set[str]] = {}
        for summary in summaries:
            module = str(summary["module"])
            for class_name, record in summary.get("classes", {}).items():
                for method in record.get("methods", {}):
                    self.classes_by_method.setdefault(method, set()).add(
                        f"{module}.{class_name}"
                    )
            for qname, record in summary.get("functions", {}).items():
                class_name = record.get("class")
                if class_name is None:
                    continue
                parts = qname.split(".")
                if len(parts) < 2 or parts[0] != class_name:
                    continue
                # Nested defs fold into their enclosing method: a closure
                # runs with the method's ``self``, so its accesses belong
                # to the method's footprint (the outer scan already
                # includes nested bodies; this keys them consistently).
                dotted = f"{module}.{parts[0]}.{parts[1]}"
                reads.setdefault(dotted, set()).update(
                    record.get("self_reads", [])
                )
                writes.setdefault(dotted, set()).update(
                    record.get("self_writes", [])
                )
                targets = self_calls.setdefault(dotted, set())
                for call in record.get("calls", []):
                    callee = call.get("callee") or {}
                    if callee.get("kind") == "attr" and callee.get("self"):
                        targets.add(f"{module}.{parts[0]}.{callee['name']}")
                enclosing_method = parts[1]
                for sched in record.get("sched_calls", []):
                    callback = sched.get("callback", {})
                    if (
                        callback.get("kind") == "self"
                        and callback.get("method") == enclosing_method
                    ):
                        self.periodic.add(dotted)
        # Close read/write sets over intra-class self calls: a callback
        # touching state through a helper still touches it.
        for _ in range(_CLOSURE_ROUNDS):
            changed = False
            for dotted, targets in self_calls.items():
                for target in targets:
                    if target not in reads and target not in writes:
                        continue
                    for table in (reads, writes):
                        mine = table.setdefault(dotted, set())
                        extra = table.get(target, set()) - mine
                        if extra:
                            mine.update(extra)
                            changed = True
            if not changed:
                break
        for dotted in set(reads) | set(writes):
            self.rw[dotted] = (
                frozenset(reads.get(dotted, set())),
                frozenset(writes.get(dotted, set())),
            )

    def resolve_callback(
        self, module: str, class_name: Optional[str], callback: Dict[str, Any]
    ) -> Optional[str]:
        """Dotted method qname a scheduled callback lands on, or ``None``.

        ``self.m`` resolves through the enclosing class; ``recv.m``
        resolves only when exactly one analyzed class defines ``m``
        (unknown receivers never guess).
        """
        kind = callback.get("kind")
        if kind == "self" and class_name is not None:
            return f"{module}.{class_name}.{callback['method']}"
        if kind == "recv":
            method = str(callback.get("method", ""))
            candidates = self.classes_by_method.get(method, set())
            if len(candidates) == 1:
                return f"{next(iter(candidates))}.{method}"
        return None


def _receiver_key(callback: Dict[str, Any]) -> Optional[str]:
    """Textual identity of the instance a callback is bound to."""
    kind = callback.get("kind")
    if kind == "self":
        return "self"
    if kind == "recv" and callback.get("recv"):
        return str(callback["recv"])
    return None


def _check_pairs(
    tables: _RaceTables,
    summary: Dict[str, Any],
    record: Dict[str, Any],
    findings: List[Finding],
) -> None:
    """SIM016/SIM017 over one function's same-instant clusters."""
    module = str(summary["module"])
    class_name = record.get("class")
    clusters: Dict[Tuple[str, int], List[Dict[str, Any]]] = {}
    for sched in record.get("sched_calls", []):
        delay_src = sched.get("delay_src")
        value = _priority_value(sched.get("priority", {}))
        if delay_src is None or value is None:
            continue
        clusters.setdefault((delay_src, value), []).append(sched)
    for (delay_src, value), group in sorted(clusters.items()):
        if len(group) < 2:
            continue
        group = sorted(group, key=lambda s: (s["line"], s["col"]))
        for i, first in enumerate(group):
            for second in group[i + 1:]:
                receiver = _receiver_key(first["callback"])
                if receiver is None or receiver != _receiver_key(
                    second["callback"]
                ):
                    continue
                target_a = tables.resolve_callback(
                    module, class_name, first["callback"]
                )
                target_b = tables.resolve_callback(
                    module, class_name, second["callback"]
                )
                if target_a is None or target_b is None or target_a == target_b:
                    continue
                rw_a = tables.rw.get(target_a)
                rw_b = tables.rw.get(target_b)
                if rw_a is None or rw_b is None:
                    continue
                reads_a, writes_a = rw_a
                reads_b, writes_b = rw_b
                instant = (
                    f"scheduled at one instant (delay {delay_src!r}, "
                    f"priority {value})"
                )
                write_write = sorted(writes_a & writes_b)
                if write_write:
                    findings.append(
                        Finding(
                            path=str(summary["path"]),
                            line=int(second["line"]),
                            col=int(second["col"]),
                            code="SIM016",
                            message=(
                                f"same-instant write-write hazard: "
                                f"{target_a} and {target_b} are {instant} "
                                f"and both rebind "
                                f"{', '.join(repr(a) for a in write_write)}; "
                                "the surviving value depends on insertion "
                                "order"
                            ),
                            severity=_SEVERITIES["SIM016"],
                        )
                    )
                    continue
                crossed = sorted(
                    (reads_a & writes_b) | (writes_a & reads_b)
                )
                if crossed:
                    findings.append(
                        Finding(
                            path=str(summary["path"]),
                            line=int(second["line"]),
                            col=int(second["col"]),
                            code="SIM017",
                            message=(
                                f"seq-order dependence: {target_a} and "
                                f"{target_b} are {instant} and one reads "
                                f"{', '.join(repr(a) for a in crossed)} "
                                "while the other writes it; swapping their "
                                "insertion order changes the outcome"
                            ),
                            severity=_SEVERITIES["SIM017"],
                        )
                    )


def _check_priorities(
    tables: _RaceTables,
    summary: Dict[str, Any],
    record: Dict[str, Any],
    findings: List[Finding],
) -> None:
    """SIM018 over one function's scheduler calls."""
    module = str(summary["module"])
    class_name = record.get("class")
    for sched in record.get("sched_calls", []):
        priority = sched.get("priority", {})
        kind = priority.get("kind")
        if kind == "literal":
            value = int(priority["value"])
            named = tier_name(value)
            if named is not None and value != 0:
                findings.append(
                    Finding(
                        path=str(summary["path"]),
                        line=int(sched["line"]),
                        col=int(sched["col"]),
                        code="SIM018",
                        message=(
                            f"priority {value} is the {named} tier spelled "
                            f"as a bare literal; import {named} from "
                            "repro.sim.priorities so the tier is checkable"
                        ),
                        severity=_SEVERITIES["SIM018"],
                    )
                )
                continue
        if kind not in ("default", "literal"):
            continue
        target = tables.resolve_callback(
            module, class_name, sched.get("callback", {})
        )
        if target is None or target not in tables.periodic:
            continue
        findings.append(
            Finding(
                path=str(summary["path"]),
                line=int(sched["line"]),
                col=int(sched["col"]),
                code="SIM018",
                message=(
                    f"periodic callback {target} is scheduled at "
                    f"{_priority_label(priority)}: its ticks share "
                    "instants with model events, so the tier must be "
                    "named from repro.sim.priorities (the sampler-bug "
                    "shape)"
                ),
                severity=_SEVERITIES["SIM018"],
            )
        )


def check_races(summaries: List[Dict[str, Any]]) -> List[Finding]:
    """Run SIM016–SIM018 over a whole-program summary set."""
    tables = _RaceTables(summaries)
    findings: List[Finding] = []
    for summary in summaries:
        for _qname, record in sorted(summary.get("functions", {}).items()):
            _check_pairs(tables, summary, record, findings)
            _check_priorities(tables, summary, record, findings)
    return findings


__all__ = ["check_races"]
