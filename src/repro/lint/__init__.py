"""simlint — AST-based determinism & simulation-safety linter.

Static counterpart to the runtime invariant checker
(:mod:`repro.validate`): where the validator catches a hazard *when it
fires*, simlint rejects the code shapes that introduce such hazards
before they ever run — unseeded randomness, wall-clock reads in model
code, float-time equality, raw unit literals, set-order-dependent
scheduling, past scheduling, mutable defaults, runner bypasses,
pickle-unsafe members and swallowed exceptions.

On top of the per-file rules sits simsem (:mod:`repro.lint.sem`), the
cross-module semantic pass: unit-dimension dataflow against a declared
sink registry (SIM011/SIM012), seed provenance (SIM013), observer-hook
conformance (SIM014) and event-handler reachability (SIM015).

Usage::

    python -m repro.lint [PATH ...]      # default: src/repro
    python -m repro.lint --sem src/repro # + the cross-module pass
    python -m repro lint -- --fix src    # via the main CLI
    pytest -m simlint                    # the self-check suite
    pytest -m simsem                     # the semantic-pass suite

Rule catalog, suppression syntax (``# simlint: disable=SIM001``) and
``--fix`` scope are documented in LINTING.md.  Pure stdlib by design:
unlike ruff, simlint runs anywhere the simulator runs.
"""

from repro.lint.core import (
    Analyzer,
    FileContext,
    Finding,
    Fix,
    Rule,
    Severity,
    Suppressions,
    iter_python_files,
)
from repro.lint.fixes import apply_fixes, ensure_units_imports, fix_file
from repro.lint.registry import catalog, known_codes, syntactic_rules
from repro.lint.rules import RULE_CLASSES, all_rules, rules_by_code

__all__ = [
    "Analyzer",
    "FileContext",
    "Finding",
    "Fix",
    "Rule",
    "RULE_CLASSES",
    "Severity",
    "Suppressions",
    "all_rules",
    "apply_fixes",
    "catalog",
    "ensure_units_imports",
    "fix_file",
    "iter_python_files",
    "known_codes",
    "rules_by_code",
    "syntactic_rules",
]
