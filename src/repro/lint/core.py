"""simlint core: findings, rules, suppressions and the one-pass dispatcher.

The linter is a thin framework around :mod:`ast`:

* a :class:`Rule` declares which node types it wants to see and yields
  :class:`Finding` objects from :meth:`Rule.visit`;
* the :class:`Analyzer` parses each file once, links parent pointers,
  and walks the tree a single time, dispatching every node to the rules
  registered for its type;
* ``# simlint: disable=SIM001[,SIM002|all]`` on a finding's line
  suppresses it after the fact, so rules never need to know about
  suppressions.

Everything is pure stdlib by design: unlike ruff, simlint must run on
any machine that can run the simulator (see ``scripts/check.sh``).
"""

from __future__ import annotations

import ast
import enum
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

_PARENT_ATTR = "_simlint_parent"


class Severity(enum.Enum):
    """How bad a finding is; both fail the lint, the label is for triage."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Fix:
    """A mechanically safe, single-line source edit.

    ``expected`` pins the exact text currently occupying the span;
    :func:`repro.lint.fixes.apply_fixes` refuses the edit if the file
    has drifted, so a stale fix can never corrupt a line.
    """

    lineno: int  # 1-based
    col_start: int  # 0-based, inclusive
    col_end: int  # 0-based, exclusive
    expected: str
    replacement: str


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int  # 0-based
    code: str
    message: str
    severity: Severity = Severity.ERROR
    fix: Optional[Fix] = None

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
            "code": self.code,
            "message": self.message,
            "severity": self.severity.value,
            "fixable": self.fix is not None,
        }


class FileContext:
    """Per-file state handed to every rule visit."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree

    def line_text(self, lineno: int) -> str:
        """The raw source line (1-based), empty string past EOF."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def segment(self, node: ast.AST) -> Optional[str]:
        """Exact source text of a node, or ``None`` if unavailable."""
        return ast.get_source_segment(self.source, node)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, _PARENT_ATTR, None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents from the immediate enclosing node up to the Module."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)


class Rule:
    """Base class for simlint rules.

    Subclasses set the class attributes and implement :meth:`visit`.
    Path scoping is declarative: ``allowed_path_suffixes`` are files the
    rule deliberately ignores (e.g. the one module allowed to construct
    RNGs), ``excluded_path_parts`` are directory fragments where the
    rule does not apply (benchmarks measure wall time on purpose), and a
    non-empty ``restrict_to_path_parts`` limits the rule to matching
    paths (driver-shape rules only make sense for experiment drivers).
    """

    code: str = "SIM000"
    name: str = "base-rule"
    severity: Severity = Severity.ERROR
    #: One-line rationale shown by ``--list-rules`` and used in docs.
    rationale: str = ""
    #: Whether the rule attaches mechanically safe fixes (``--fix``).
    fixable: bool = False
    node_types: Tuple[Type[ast.AST], ...] = ()
    allowed_path_suffixes: Tuple[str, ...] = ()
    excluded_path_parts: Tuple[str, ...] = ()
    restrict_to_path_parts: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if any(path.endswith(suffix) for suffix in self.allowed_path_suffixes):
            return False
        if any(part in path for part in self.excluded_path_parts):
            return False
        if self.restrict_to_path_parts:
            return any(part in path for part in self.restrict_to_path_parts)
        return True

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        fix: Optional[Fix] = None,
    ) -> Finding:
        """Build a finding anchored at ``node`` for this rule."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            severity=self.severity,
            fix=fix,
        )


# ---------------------------------------------------------------------------
# Suppressions: "# simlint: disable=SIM001,SIM002" or "disable=all",
# on the same line as the finding.
# ---------------------------------------------------------------------------

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")


class Suppressions:
    """Per-line suppression sets parsed from the raw source."""

    def __init__(self, by_line: Dict[int, frozenset]) -> None:
        self._by_line = by_line

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        by_line: Dict[int, frozenset] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            codes = frozenset(
                token.strip().upper() if token.strip().lower() != "all" else "all"
                for token in match.group(1).replace(",", " ").split()
                if token.strip()
            )
            if codes:
                by_line[lineno] = codes
        return cls(by_line)

    def covers(self, finding: Finding) -> bool:
        codes = self._by_line.get(finding.line)
        if codes is None:
            return False
        return "all" in codes or finding.code in codes


# ---------------------------------------------------------------------------
# Analyzer
# ---------------------------------------------------------------------------


def _link_parents(tree: ast.Module) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            setattr(child, _PARENT_ATTR, parent)


def _normalize(path: "str | os.PathLike[str]") -> str:
    return str(path).replace(os.sep, "/")


class Analyzer:
    """Runs a set of rules over sources, files, and directory trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            # The one registry both the analyzer and the CLI build from.
            from repro.lint.registry import syntactic_rules

            rules = syntactic_rules()
        self.rules: List[Rule] = list(rules)

    def lint_source(
        self, source: str, path: "str | os.PathLike[str]" = "<string>"
    ) -> List[Finding]:
        """Lint one source string; ``path`` scopes path-sensitive rules."""
        posix = _normalize(path)
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            return [
                Finding(
                    path=posix,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code="SIM000",
                    message=f"syntax error: {exc.msg}",
                )
            ]
        _link_parents(tree)
        dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in self.rules:
            if not rule.applies_to(posix):
                continue
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        ctx = FileContext(posix, source, tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                findings.extend(rule.visit(node, ctx))
        suppressions = Suppressions.parse(source)
        findings = [f for f in findings if not suppressions.covers(f)]
        findings.sort(key=lambda f: (f.line, f.col, f.code))
        return findings

    def lint_file(self, path: "str | os.PathLike[str]") -> List[Finding]:
        text = Path(path).read_text(encoding="utf-8")
        return self.lint_source(text, path=path)

    def lint_paths(
        self, paths: Iterable["str | os.PathLike[str]"]
    ) -> List[Finding]:
        """Lint files and directory trees (``*.py``, sorted, once each)."""
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.lint_file(path))
        return findings


def iter_python_files(
    paths: Iterable["str | os.PathLike[str]"],
) -> Iterator[Path]:
    """Expand files/directories into a deterministic, deduplicated list."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            candidates = [path]
        for candidate in candidates:
            key = _normalize(candidate)
            if key not in seen:
                seen.add(key)
                yield candidate


__all__ = [
    "Analyzer",
    "FileContext",
    "Finding",
    "Fix",
    "Rule",
    "Severity",
    "Suppressions",
    "iter_python_files",
]
