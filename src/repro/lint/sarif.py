"""SARIF 2.1.0 serialization for lint findings.

One ``run`` whose tool driver enumerates the full rule catalog —
syntactic (simlint), semantic (simsem) and race (simrace) — so that CI
SARIF upload annotates PR diffs with whichever passes actually ran.
Pure stdlib, like everything under :mod:`repro.lint`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.lint.core import Finding, Severity
from repro.lint.registry import catalog

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: simlint severities -> SARIF levels.
_LEVELS: Dict[Severity, str] = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
}


def _rules() -> List[Dict[str, Any]]:
    rules = []
    for entry in catalog():
        rules.append(
            {
                "id": entry.code,
                "name": entry.name,
                "shortDescription": {"text": entry.name},
                "fullDescription": {"text": entry.rationale},
                "defaultConfiguration": {
                    "level": _LEVELS.get(entry.severity, "warning")
                },
                "properties": {"kind": entry.kind},
            }
        )
    return rules


def _result(finding: Finding) -> Dict[str, Any]:
    return {
        "ruleId": finding.code,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        # simlint columns are 0-based; SARIF's are 1-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def findings_to_sarif(findings: Iterable[Finding]) -> Dict[str, Any]:
    """The complete SARIF log object for one lint run."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "LINTING.md",
                        "rules": _rules(),
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result(finding) for finding in findings],
            }
        ],
    }


__all__ = ["findings_to_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]
