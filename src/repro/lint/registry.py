"""The single rule registry: syntactic rule classes + semantic rule infos.

Before this module existed, the rule list was assembled independently by
:mod:`repro.lint.cli` (code validation, ``--list-rules``) and
:mod:`repro.lint.core` (the analyzer's default rule set), which is how
catalogs drift.  Now both — plus the semantic pass, the tests and the
docs — build from here:

* :func:`syntactic_rules` — fresh :class:`~repro.lint.core.Rule`
  instances (SIM001–SIM010), what :class:`~repro.lint.core.Analyzer`
  runs per file;
* :func:`known_codes` — every valid code for ``--select``/``--ignore``,
  optionally including the whole-program codes SIM011–SIM023;
* :func:`catalog` — uniform entries for every code, in code order, for
  ``--list-rules`` and LINTING.md cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

from repro.lint.core import Rule, Severity
from repro.lint.perf.info import PERF_CODES, PERF_RULE_INFOS
from repro.lint.race.info import RACE_CODES, RACE_RULE_INFOS
from repro.lint.rules import RULE_CLASSES, all_rules
from repro.lint.sem.info import SEM_CODES, SEM_RULE_INFOS

#: Analysis-ladder rung per catalog kind, for ``--list-rules`` display.
KIND_RUNGS = {
    "syntactic": "simlint",
    "semantic": "simsem",
    "race": "simrace",
    "perf": "simperf",
}


@dataclass(frozen=True)
class CatalogEntry:
    """One rule's catalog row, whichever pass implements it."""

    code: str
    name: str
    severity: Severity
    rationale: str
    #: "syntactic" (per-file Rule), "semantic" (simsem whole-program),
    #: "race" (simrace whole-program) or "perf" (simperf whole-program).
    kind: str
    #: Whether ``--fix`` can rewrite this rule's findings.
    fixable: bool = False

    @property
    def rung(self) -> str:
        """The analysis-ladder rung that implements the rule."""
        return KIND_RUNGS[self.kind]


def syntactic_rules() -> List[Rule]:
    """Fresh instances of every per-file rule, in code order."""
    return all_rules()


def known_codes(include_sem: bool = True) -> FrozenSet[str]:
    """Every rule code the CLI accepts."""
    codes = {cls.code for cls in RULE_CLASSES}
    if include_sem:
        codes.update(SEM_CODES)
        codes.update(RACE_CODES)
        codes.update(PERF_CODES)
    return frozenset(codes)


def catalog() -> List[CatalogEntry]:
    """All rules — syntactic and whole-program — as uniform entries."""
    entries = [
        CatalogEntry(
            code=cls.code,
            name=cls.name,
            severity=cls.severity,
            rationale=cls.rationale,
            kind="syntactic",
            fixable=cls.fixable,
        )
        for cls in RULE_CLASSES
    ]
    for kind, infos in (
        ("semantic", SEM_RULE_INFOS),
        ("race", RACE_RULE_INFOS),
        ("perf", PERF_RULE_INFOS),
    ):
        entries.extend(
            CatalogEntry(
                code=info.code,
                name=info.name,
                severity=info.severity,
                rationale=info.rationale,
                kind=kind,
            )
            for info in infos
        )
    entries.sort(key=lambda entry: entry.code)
    return entries


__all__ = [
    "CatalogEntry",
    "KIND_RUNGS",
    "catalog",
    "known_codes",
    "syntactic_rules",
]
