"""``python -m repro.lint`` — the simlint CLI (see :mod:`repro.lint.cli`)."""

import sys

from repro.lint.cli import main

sys.exit(main())
