"""The simlint command line: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 clean, 1 findings remain, 2 usage error.  ``--fix``
applies the mechanically safe fixes in place and reports what is left.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.lint.core import Analyzer, Finding, Rule, iter_python_files
from repro.lint.fixes import fix_file
from repro.lint.rules import all_rules

DEFAULT_TARGET = "src/repro"


def _parse_codes(raw: str, parser: argparse.ArgumentParser) -> List[str]:
    known = {rule.code for rule in all_rules()}
    codes = [token.strip().upper() for token in raw.split(",") if token.strip()]
    for code in codes:
        if code not in known:
            parser.error(
                f"unknown rule code {code!r} (known: {', '.join(sorted(known))})"
            )
    return codes


def _select_rules(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> List[Rule]:
    rules = all_rules()
    if args.select:
        wanted = set(_parse_codes(args.select, parser))
        rules = [rule for rule in rules if rule.code in wanted]
    if args.ignore:
        dropped = set(_parse_codes(args.ignore, parser))
        rules = [rule for rule in rules if rule.code not in dropped]
    if not rules:
        parser.error("--select/--ignore left no rules to run")
    return rules


def _rule_listing() -> str:
    lines = ["simlint rules (see LINTING.md for the full catalog):"]
    for rule in all_rules():
        lines.append(f"  {rule.code}  {rule.name:<24} [{rule.severity.value}]")
        lines.append(f"         {rule.rationale}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "simlint: AST-based determinism & simulation-safety linter "
            "for the XMP reproduction (pure stdlib; see LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=f"files or directories to lint (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanically safe fixes in place")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        print(_rule_listing())
        return 0
    paths = list(args.paths)
    if not paths:
        if os.path.isdir(DEFAULT_TARGET):
            paths = [DEFAULT_TARGET]
        else:
            parser.error(
                f"no paths given and default target {DEFAULT_TARGET!r} "
                "does not exist here"
            )
    analyzer = Analyzer(rules=_select_rules(args, parser))

    files = list(iter_python_files(paths))
    findings: List[Finding] = []
    fixed_total = 0
    for path in files:
        if args.fix:
            applied, remaining = fix_file(analyzer, path)
            fixed_total += applied
            findings.extend(remaining)
        else:
            findings.extend(analyzer.lint_file(path))

    if args.format == "json":
        print(
            json.dumps(
                {
                    "checked_files": len(files),
                    "fixed": fixed_total,
                    "findings": [f.to_json() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        if not args.quiet:
            summary = (
                f"simlint: {len(findings)} finding(s) in {len(files)} file(s)"
            )
            if args.fix:
                summary += f", {fixed_total} fixed"
            print(summary, file=sys.stderr)
    return 1 if findings else 0


__all__ = ["build_parser", "main"]
