"""The simlint command line: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 clean, 1 findings remain, 2 usage error.  ``--fix``
applies the mechanically safe fixes in place and reports what is left.

``--sem`` additionally runs simsem, the cross-module semantic pass
(SIM011–SIM015, see :mod:`repro.lint.sem`); ``--race`` additionally
runs simrace, the same-instant race pass (SIM016–SIM018, see
:mod:`repro.lint.race`); ``--perf`` additionally runs simperf, the
hot-path performance pass (SIM019–SIM023, see :mod:`repro.lint.perf`;
``--from-telemetry`` feeds recorded ``repro.obs`` JSONL to the SIM022
registry-drift check).  All share one whole-program summary pass, so
``--sem --race --perf`` costs a single analysis.  Per-file summaries are
cached under ``--sem-cache`` (content-addressed; safe to persist across
runs and in CI), and ``--baseline`` ratchets legacy findings so new
code is held to zero while old findings burn down.

``--changed-only`` narrows the per-file rules (SIM001–SIM010) to files
git reports as changed against HEAD; the whole-program passes still
analyze the full tree — cross-module properties are only meaningful on
whole trees.  ``--format sarif`` emits SARIF 2.1.0 covering every pass,
for CI upload.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.lint.core import Analyzer, Finding, Rule, iter_python_files
from repro.lint.fixes import fix_file
from repro.lint.perf.info import PERF_CODES
from repro.lint.race.info import RACE_CODES
from repro.lint.registry import catalog, known_codes, syntactic_rules
from repro.lint.sarif import findings_to_sarif
from repro.lint.sem.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.sem.cache import DEFAULT_CACHE_DIR, SummaryCache
from repro.lint.sem.info import SEM_CODES
from repro.lint.sem.project import ProjectAnalyzer

DEFAULT_TARGET = "src/repro"


def _parse_codes(raw: str, parser: argparse.ArgumentParser) -> List[str]:
    known = known_codes()
    codes = [token.strip().upper() for token in raw.split(",") if token.strip()]
    for code in codes:
        if code not in known:
            parser.error(
                f"unknown rule code {code!r} (known: {', '.join(sorted(known))})"
            )
    return codes


def _selected_codes(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> Set[str]:
    selected = set(known_codes())
    if args.select:
        selected = set(_parse_codes(args.select, parser))
    if args.ignore:
        selected -= set(_parse_codes(args.ignore, parser))
    return selected


def _project_gate(args: argparse.Namespace) -> Set[str]:
    """Codes the whole-program pass may report, per --sem/--race/--perf."""
    gate: Set[str] = set()
    if args.sem:
        gate.update(SEM_CODES)
    if args.race:
        gate.update(RACE_CODES)
    if args.perf:
        gate.update(PERF_CODES)
    return gate


def _select_rules(
    selected: Set[str], project_gate: Set[str], parser: argparse.ArgumentParser
) -> List[Rule]:
    rules = [rule for rule in syntactic_rules() if rule.code in selected]
    project_active = bool(selected & project_gate)
    if not rules and not project_active:
        parser.error("--select/--ignore left no rules to run")
    return rules


def _changed_files(parser: argparse.ArgumentParser) -> Set[str]:
    """Absolute paths git reports as changed vs HEAD (plus untracked).

    Both the staged-or-unstaged diff and untracked files count: the
    point is "what am I editing right now", for fast local iteration.
    """
    def _git(*argv: str) -> str:
        return subprocess.run(
            ["git", *argv],
            capture_output=True,
            text=True,
            check=True,
        ).stdout

    try:
        top = _git("rev-parse", "--show-toplevel").strip()
        diffed = _git("diff", "--name-only", "HEAD", "--")
        untracked = _git("ls-files", "--others", "--exclude-standard", "--")
    except (OSError, subprocess.CalledProcessError) as exc:
        parser.error(f"--changed-only requires a git work tree ({exc})")
    names = set(diffed.splitlines()) | set(untracked.splitlines())
    return {
        os.path.abspath(os.path.join(top, name)) for name in names if name
    }


_KIND_FLAGS = {"semantic": " (--sem)", "race": " (--race)", "perf": " (--perf)"}


def _rule_listing() -> str:
    lines = ["simlint rules (see LINTING.md for the full catalog):"]
    for entry in catalog():
        marker = _KIND_FLAGS.get(entry.kind, "")
        fix = " [--fix]" if entry.fixable else ""
        lines.append(
            f"  {entry.code}  {entry.name:<26} "
            f"[{entry.rung}/{entry.severity.value}]{fix}{marker}"
        )
        lines.append(f"         {entry.rationale}")
    return "\n".join(lines)


def _rule_listing_json() -> str:
    return json.dumps(
        {
            "rules": [
                {
                    "code": entry.code,
                    "name": entry.name,
                    "rung": entry.rung,
                    "kind": entry.kind,
                    "severity": entry.severity.value,
                    "fixable": entry.fixable,
                    "rationale": entry.rationale,
                }
                for entry in catalog()
            ]
        },
        indent=2,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "simlint: AST-based determinism & simulation-safety linter "
            "for the XMP reproduction (pure stdlib; see LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=f"files or directories to lint (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanically safe fixes in place")
    parser.add_argument("--changed-only", action="store_true",
                        help="restrict the per-file rules SIM001-SIM010 to "
                             "files changed vs git HEAD (whole-program "
                             "passes still see the full tree)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    sem = parser.add_argument_group("whole-program analysis (simsem / simrace)")
    sem.add_argument("--sem", action="store_true",
                     help="also run the cross-module semantic pass "
                          "(SIM011-SIM015); analyze whole trees, not "
                          "single files, for full precision")
    sem.add_argument("--race", action="store_true",
                     help="also run the same-instant race pass "
                          "(SIM016-SIM018); shares the summary pass "
                          "with --sem")
    sem.add_argument("--perf", action="store_true",
                     help="also run the hot-path performance pass "
                          "(SIM019-SIM023); shares the summary pass "
                          "with --sem/--race")
    sem.add_argument("--from-telemetry", metavar="FILE",
                     help="recorded repro.obs telemetry JSONL for the "
                          "SIM022 registry-drift check (requires --perf)")
    sem.add_argument("--baseline", metavar="FILE",
                     help="ratchet file: suppress up to the baselined "
                          "count of whole-program findings per (path, code)")
    sem.add_argument("--write-baseline", metavar="FILE",
                     help="write the current whole-program findings as "
                          "the new baseline and exit 0")
    sem.add_argument("--sem-cache", metavar="DIR", default=DEFAULT_CACHE_DIR,
                     help="summary cache directory "
                          f"(default: {DEFAULT_CACHE_DIR})")
    sem.add_argument("--no-sem-cache", action="store_true",
                     help="disable the summary cache for this run")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        if args.format == "sarif":
            parser.error("--list-rules supports text or json, not sarif")
        print(
            _rule_listing_json() if args.format == "json" else _rule_listing()
        )
        return 0
    if (args.baseline or args.write_baseline) and not (
        args.sem or args.race or args.perf
    ):
        parser.error(
            "--baseline/--write-baseline require --sem, --race or --perf"
        )
    if args.from_telemetry and not args.perf:
        parser.error("--from-telemetry requires --perf")
    paths = list(args.paths)
    if not paths:
        if os.path.isdir(DEFAULT_TARGET):
            paths = [DEFAULT_TARGET]
        else:
            parser.error(
                f"no paths given and default target {DEFAULT_TARGET!r} "
                "does not exist here"
            )
    selected = _selected_codes(args, parser)
    project_gate = _project_gate(args)
    analyzer = Analyzer(rules=_select_rules(selected, project_gate, parser))

    files = list(iter_python_files(paths))
    if args.changed_only:
        changed = _changed_files(parser)
        files = [
            path for path in files if os.path.abspath(str(path)) in changed
        ]
    findings: List[Finding] = []
    fixed_total = 0
    for path in files:
        if args.fix:
            applied, remaining = fix_file(analyzer, path)
            fixed_total += applied
            findings.extend(remaining)
        else:
            findings.extend(analyzer.lint_file(path))

    sem_stats = None
    if project_gate:
        cache = None
        if not args.no_sem_cache:
            cache = SummaryCache(args.sem_cache)
        project = ProjectAnalyzer(
            cache=cache,
            race=args.race,
            perf=args.perf,
            telemetry=(
                Path(args.from_telemetry) if args.from_telemetry else None
            ),
        )
        sem_findings = [
            f
            for f in project.analyze_paths(paths)
            if (f.code in selected and f.code in project_gate)
            or f.code == "SIM000"
        ]
        sem_stats = project.stats
        if args.write_baseline:
            write_baseline(args.write_baseline, sem_findings)
            if not args.quiet:
                print(
                    f"simsem: baseline written to {args.write_baseline} "
                    f"({len(sem_findings)} finding(s))",
                    file=sys.stderr,
                )
            return 0
        if args.baseline:
            try:
                baseline = load_baseline(args.baseline)
            except BaselineError as exc:
                parser.error(str(exc))
            sem_findings = apply_baseline(sem_findings, baseline)
        findings.extend(sem_findings)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    if args.format == "json":
        payload = {
            "checked_files": len(files),
            "fixed": fixed_total,
            "findings": [f.to_json() for f in findings],
        }
        if sem_stats is not None:
            payload["sem"] = sem_stats.as_dict()
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        print(json.dumps(findings_to_sarif(findings), indent=2))
    else:
        for finding in findings:
            print(finding.format())
        if not args.quiet:
            summary = (
                f"simlint: {len(findings)} finding(s) in {len(files)} file(s)"
            )
            if args.fix:
                summary += f", {fixed_total} fixed"
            if sem_stats is not None:
                summary += (
                    f" (sem: {sem_stats.computed} summarized, "
                    f"{sem_stats.cached} cached)"
                )
            print(summary, file=sys.stderr)
    return 1 if findings else 0


__all__ = ["build_parser", "main"]
