"""The simlint command line: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 clean, 1 findings remain, 2 usage error.  ``--fix``
applies the mechanically safe fixes in place and reports what is left.

``--sem`` additionally runs simsem, the cross-module semantic pass
(SIM011–SIM015, see :mod:`repro.lint.sem`): unit-dimension dataflow
against the sink registry, seed provenance, observer-hook conformance
and handler reachability.  Its per-file summaries are cached under
``--sem-cache`` (content-addressed; safe to persist across runs and in
CI), and ``--baseline`` ratchets legacy findings so new code is held to
zero while old findings burn down.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Set

from repro.lint.core import Analyzer, Finding, Rule, iter_python_files
from repro.lint.fixes import fix_file
from repro.lint.registry import catalog, known_codes, syntactic_rules
from repro.lint.sem.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.sem.cache import DEFAULT_CACHE_DIR, SummaryCache
from repro.lint.sem.info import SEM_CODES
from repro.lint.sem.project import ProjectAnalyzer

DEFAULT_TARGET = "src/repro"


def _parse_codes(raw: str, parser: argparse.ArgumentParser) -> List[str]:
    known = known_codes()
    codes = [token.strip().upper() for token in raw.split(",") if token.strip()]
    for code in codes:
        if code not in known:
            parser.error(
                f"unknown rule code {code!r} (known: {', '.join(sorted(known))})"
            )
    return codes


def _selected_codes(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> Set[str]:
    selected = set(known_codes())
    if args.select:
        selected = set(_parse_codes(args.select, parser))
    if args.ignore:
        selected -= set(_parse_codes(args.ignore, parser))
    return selected


def _select_rules(
    selected: Set[str], run_sem: bool, parser: argparse.ArgumentParser
) -> List[Rule]:
    rules = [rule for rule in syntactic_rules() if rule.code in selected]
    sem_active = run_sem and any(code in selected for code in SEM_CODES)
    if not rules and not sem_active:
        parser.error("--select/--ignore left no rules to run")
    return rules


def _rule_listing() -> str:
    lines = ["simlint rules (see LINTING.md for the full catalog):"]
    for entry in catalog():
        marker = " (--sem)" if entry.kind == "semantic" else ""
        lines.append(
            f"  {entry.code}  {entry.name:<24} [{entry.severity.value}]{marker}"
        )
        lines.append(f"         {entry.rationale}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "simlint: AST-based determinism & simulation-safety linter "
            "for the XMP reproduction (pure stdlib; see LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=f"files or directories to lint (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanically safe fixes in place")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    sem = parser.add_argument_group("semantic analysis (simsem)")
    sem.add_argument("--sem", action="store_true",
                     help="also run the cross-module semantic pass "
                          "(SIM011-SIM015); analyze whole trees, not "
                          "single files, for full precision")
    sem.add_argument("--baseline", metavar="FILE",
                     help="ratchet file: suppress up to the baselined "
                          "count of semantic findings per (path, code)")
    sem.add_argument("--write-baseline", metavar="FILE",
                     help="write the current semantic findings as the "
                          "new baseline and exit 0")
    sem.add_argument("--sem-cache", metavar="DIR", default=DEFAULT_CACHE_DIR,
                     help="summary cache directory "
                          f"(default: {DEFAULT_CACHE_DIR})")
    sem.add_argument("--no-sem-cache", action="store_true",
                     help="disable the summary cache for this run")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        print(_rule_listing())
        return 0
    if (args.baseline or args.write_baseline) and not args.sem:
        parser.error("--baseline/--write-baseline require --sem")
    paths = list(args.paths)
    if not paths:
        if os.path.isdir(DEFAULT_TARGET):
            paths = [DEFAULT_TARGET]
        else:
            parser.error(
                f"no paths given and default target {DEFAULT_TARGET!r} "
                "does not exist here"
            )
    selected = _selected_codes(args, parser)
    analyzer = Analyzer(rules=_select_rules(selected, args.sem, parser))

    files = list(iter_python_files(paths))
    findings: List[Finding] = []
    fixed_total = 0
    for path in files:
        if args.fix:
            applied, remaining = fix_file(analyzer, path)
            fixed_total += applied
            findings.extend(remaining)
        else:
            findings.extend(analyzer.lint_file(path))

    sem_stats = None
    if args.sem:
        cache = None
        if not args.no_sem_cache:
            cache = SummaryCache(args.sem_cache)
        project = ProjectAnalyzer(cache=cache)
        sem_findings = [
            f
            for f in project.analyze_paths(paths)
            if f.code in selected or f.code == "SIM000"
        ]
        sem_stats = project.stats
        if args.write_baseline:
            write_baseline(args.write_baseline, sem_findings)
            if not args.quiet:
                print(
                    f"simsem: baseline written to {args.write_baseline} "
                    f"({len(sem_findings)} finding(s))",
                    file=sys.stderr,
                )
            return 0
        if args.baseline:
            try:
                baseline = load_baseline(args.baseline)
            except BaselineError as exc:
                parser.error(str(exc))
            sem_findings = apply_baseline(sem_findings, baseline)
        findings.extend(sem_findings)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    if args.format == "json":
        payload = {
            "checked_files": len(files),
            "fixed": fixed_total,
            "findings": [f.to_json() for f in findings],
        }
        if sem_stats is not None:
            payload["sem"] = sem_stats.as_dict()
        print(json.dumps(payload, indent=2))
    else:
        for finding in findings:
            print(finding.format())
        if not args.quiet:
            summary = (
                f"simlint: {len(findings)} finding(s) in {len(files)} file(s)"
            )
            if args.fix:
                summary += f", {fixed_total} fixed"
            if sem_stats is not None:
                summary += (
                    f" (sem: {sem_stats.computed} summarized, "
                    f"{sem_stats.cached} cached)"
                )
            print(summary, file=sys.stderr)
    return 1 if findings else 0


__all__ = ["build_parser", "main"]
