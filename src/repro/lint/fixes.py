"""Applying the mechanically safe fixes rules attach to findings.

Only rules whose rewrite cannot change behavior *except in the intended
direction* attach a :class:`~repro.lint.core.Fix` (see LINTING.md for
the exact scope).  Every fix is a single-line span replacement guarded
by the expected current text, applied right-to-left so earlier edits
never invalidate later spans.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.lint.core import Analyzer, Finding
from repro.sim.units import CONSTRUCTOR_DIMENSIONS

_UNITS_MODULE = "repro.sim.units"


def apply_fixes(source: str, findings: Iterable[Finding]) -> Tuple[str, int]:
    """Apply every finding's fix to ``source``; returns (text, applied).

    A fix whose span no longer holds its expected text is skipped rather
    than guessed at.
    """
    fixes = [f.fix for f in findings if f.fix is not None]
    if not fixes:
        return source, 0
    lines: List[str] = source.splitlines(keepends=True)
    applied = 0
    for fix in sorted(fixes, key=lambda f: (f.lineno, f.col_start), reverse=True):
        if not 1 <= fix.lineno <= len(lines):
            continue
        line = lines[fix.lineno - 1]
        if line[fix.col_start : fix.col_end] != fix.expected:
            continue
        lines[fix.lineno - 1] = (
            line[: fix.col_start] + fix.replacement + line[fix.col_end :]
        )
        applied += 1
    return "".join(lines), applied


def _bound_names(tree: ast.Module) -> Set[str]:
    """Names the module binds at top level (imports, defs, assignments)."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            for target in ast.walk(node):
                if isinstance(target, ast.Name) and isinstance(
                    target.ctx, ast.Store
                ):
                    bound.add(target.id)
    return bound


def ensure_units_imports(source: str) -> str:
    """Import any ``repro.sim.units`` constructor a fix introduced.

    The SIM004 rewrite replaces a literal with a bare constructor call
    (``gigabits_per_second(1)``); this post-pass makes the name resolve:
    it extends an existing single-line ``from repro.sim.units import``
    statement, or inserts one after the last top-level import.  A no-op
    when every used constructor is already bound.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source
    used = {
        node.func.id
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in CONSTRUCTOR_DIMENSIONS
    }
    missing = sorted(used - _bound_names(tree))
    if not missing:
        return source
    lines = source.splitlines(keepends=True)
    # Prefer extending an existing single-line units import.
    for node in tree.body:
        if (
            isinstance(node, ast.ImportFrom)
            and node.module == _UNITS_MODULE
            and node.level == 0
            and node.end_lineno == node.lineno
            and not any(alias.asname or alias.name == "*" for alias in node.names)
        ):
            names = sorted({alias.name for alias in node.names} | set(missing))
            indent = lines[node.lineno - 1][: node.col_offset]
            lines[node.lineno - 1] = (
                f"{indent}from {_UNITS_MODULE} import {', '.join(names)}\n"
            )
            return "".join(lines)
    # Otherwise insert a fresh import after the last top-level import
    # (or after the module docstring when there are none).
    insert_after = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            insert_after = max(insert_after, node.end_lineno or node.lineno)
    if insert_after == 0 and tree.body:
        first = tree.body[0]
        if isinstance(first, ast.Expr) and isinstance(first.value, ast.Constant):
            insert_after = first.end_lineno or first.lineno
    statement = f"from {_UNITS_MODULE} import {', '.join(missing)}\n"
    lines.insert(insert_after, statement)
    return "".join(lines)


def fix_file(analyzer: Analyzer, path: "str | Path") -> Tuple[int, List[Finding]]:
    """Fix one file in place; returns (edits applied, remaining findings).

    Re-lints after rewriting, both to report what is left and to pick up
    any finding whose fix was skipped as stale.
    """
    target = Path(path)
    source = target.read_text(encoding="utf-8")
    findings = analyzer.lint_source(source, path=target)
    fixed, applied = apply_fixes(source, findings)
    if applied:
        fixed = ensure_units_imports(fixed)
        target.write_text(fixed, encoding="utf-8")
        findings = analyzer.lint_source(fixed, path=target)
    return applied, findings


__all__ = ["apply_fixes", "ensure_units_imports", "fix_file"]
