"""Applying the mechanically safe fixes rules attach to findings.

Only rules whose rewrite cannot change behavior *except in the intended
direction* attach a :class:`~repro.lint.core.Fix` (see LINTING.md for
the exact scope).  Every fix is a single-line span replacement guarded
by the expected current text, applied right-to-left so earlier edits
never invalidate later spans.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Tuple

from repro.lint.core import Analyzer, Finding


def apply_fixes(source: str, findings: Iterable[Finding]) -> Tuple[str, int]:
    """Apply every finding's fix to ``source``; returns (text, applied).

    A fix whose span no longer holds its expected text is skipped rather
    than guessed at.
    """
    fixes = [f.fix for f in findings if f.fix is not None]
    if not fixes:
        return source, 0
    lines: List[str] = source.splitlines(keepends=True)
    applied = 0
    for fix in sorted(fixes, key=lambda f: (f.lineno, f.col_start), reverse=True):
        if not 1 <= fix.lineno <= len(lines):
            continue
        line = lines[fix.lineno - 1]
        if line[fix.col_start : fix.col_end] != fix.expected:
            continue
        lines[fix.lineno - 1] = (
            line[: fix.col_start] + fix.replacement + line[fix.col_end :]
        )
        applied += 1
    return "".join(lines), applied


def fix_file(analyzer: Analyzer, path: "str | Path") -> Tuple[int, List[Finding]]:
    """Fix one file in place; returns (edits applied, remaining findings).

    Re-lints after rewriting, both to report what is left and to pick up
    any finding whose fix was skipped as stale.
    """
    target = Path(path)
    source = target.read_text(encoding="utf-8")
    findings = analyzer.lint_source(source, path=target)
    fixed, applied = apply_fixes(source, findings)
    if applied:
        target.write_text(fixed, encoding="utf-8")
        findings = analyzer.lint_source(fixed, path=target)
    return applied, findings


__all__ = ["apply_fixes", "fix_file"]
