"""SIM002: wall-clock time must never leak into simulation logic.

Simulation time is ``Simulator.now`` and nothing else.  A single
``time.time()`` in a model path silently couples results to host load,
which destroys replay and invalidates every timing-sensitive claim
(ECN marking vs. RTT, Fig. 10's RTT distributions).  Wall-clock reads
are legitimate only where we *measure ourselves*: the campaign runner's
per-cell timing, the engine profiler (which hands the simulator a clock
rather than letting repro.sim read one), and the benchmark harness.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, Finding, Rule, Severity

#: ``time`` module attributes that read host clocks.
TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: ``datetime`` / ``date`` constructors that read host clocks.
DATETIME_FUNCTIONS = frozenset({"now", "utcnow", "today"})


class WallClockRule(Rule):
    """SIM002: no host-clock reads outside the timing allowlist."""

    code = "SIM002"
    name = "wall-clock"
    severity = Severity.ERROR
    rationale = (
        "host clocks couple results to machine load; simulation time is "
        "Simulator.now only (runner cell timing is the one allowed reader)"
    )
    node_types = (ast.Call, ast.ImportFrom)
    #: The runner's choke point times every cell for the [runner]
    #: summary; the profiler times callbacks on the engine's behalf.
    allowed_path_suffixes = (
        "repro/runner/registry.py",
        "repro/obs/profiler.py",
    )
    #: Benchmarks measure wall time on purpose; tests may time themselves.
    excluded_path_parts = ("benchmarks/", "tests/")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name == "*" or alias.name in TIME_FUNCTIONS:
                        yield self.finding(
                            ctx,
                            node,
                            f"importing time.{alias.name} pulls a wall clock "
                            "into scope; simulation code must use "
                            "Simulator.now",
                        )
            return
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        if isinstance(value, ast.Name) and value.id == "time":
            if func.attr in TIME_FUNCTIONS:
                yield self.finding(
                    ctx,
                    node,
                    f"time.{func.attr}() reads the host clock; simulation "
                    "code must use Simulator.now",
                )
        elif func.attr in DATETIME_FUNCTIONS:
            if isinstance(value, ast.Name) and value.id in ("datetime", "date"):
                yield self.finding(
                    ctx,
                    node,
                    f"{value.id}.{func.attr}() reads the host clock; "
                    "simulation code must use Simulator.now",
                )
            elif (
                isinstance(value, ast.Attribute)
                and value.attr in ("datetime", "date")
                and isinstance(value.value, ast.Name)
                and value.value.id == "datetime"
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"datetime.{value.attr}.{func.attr}() reads the host "
                    "clock; simulation code must use Simulator.now",
                )
