"""Structural-safety rules: mutable defaults (SIM007), swallowed errors (SIM010).

A mutable default argument is shared across every call — in a simulator
that means shared across every *flow*, turning independent senders into
accidentally coupled ones.  And a bare ``except:`` (or a broad handler
that only ``pass``es) in the engine or runner can swallow an
``InvariantError`` or a worker crash, converting a loud determinism
violation into silently wrong curves.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import FileContext, Finding, Fix, Rule, Severity

#: Constructors returning fresh mutable containers.
MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)


def _is_mutable_literal(expr: ast.expr) -> bool:
    if isinstance(
        expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in MUTABLE_CONSTRUCTORS
    return False


class MutableDefaultRule(Rule):
    """SIM007: no mutable default arguments."""

    code = "SIM007"
    name = "mutable-default"
    severity = Severity.ERROR
    rationale = (
        "a mutable default is shared across calls, coupling what should be "
        "independent flows/queues; default to None and construct in the body"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        label = (
            getattr(node, "name", None) or "<lambda>"
        )
        for default in defaults:
            if _is_mutable_literal(default):
                yield self.finding(
                    ctx,
                    default,
                    f"mutable default argument in {label}(); it is shared "
                    "across every call — default to None and build the "
                    "container in the body",
                )


def _broad_handler(type_node: Optional[ast.expr]) -> bool:
    """Bare, ``Exception`` or ``BaseException`` (possibly inside a tuple)."""
    if type_node is None:
        return True
    if isinstance(type_node, ast.Name):
        return type_node.id in ("Exception", "BaseException")
    if isinstance(type_node, ast.Attribute):
        return type_node.attr in ("Exception", "BaseException")
    if isinstance(type_node, ast.Tuple):
        return any(_broad_handler(elt) for elt in type_node.elts)
    return False


class SwallowedExceptionRule(Rule):
    """SIM010: no bare ``except:`` and no broad handler that only passes."""

    code = "SIM010"
    name = "swallowed-exception"
    severity = Severity.ERROR
    rationale = (
        "a bare/broad silent handler can eat InvariantError or a worker "
        "crash, turning a loud violation into silently wrong results"
    )
    fixable = True
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.finding(
                ctx,
                node,
                "bare except: also catches KeyboardInterrupt/SystemExit; "
                "name the exception (at least 'except Exception:')",
                fix=self._except_fix(node, ctx),
            )
            return
        only_pass = len(node.body) == 1 and isinstance(node.body[0], ast.Pass)
        if only_pass and _broad_handler(node.type):
            yield self.finding(
                ctx,
                node,
                "broad exception handler whose body is only 'pass' swallows "
                "every error silently; narrow the type or handle it",
            )

    def _except_fix(self, node: ast.ExceptHandler, ctx: FileContext) -> "Fix | None":
        """Rewrite ``except:`` to ``except Exception:`` on its own line."""
        line = ctx.line_text(node.lineno)
        prefix = line[node.col_offset :]
        if not prefix.startswith("except"):
            return None
        colon = prefix.find(":")
        if colon < 0 or prefix[len("except") : colon].strip():
            return None
        return Fix(
            lineno=node.lineno,
            col_start=node.col_offset,
            col_end=node.col_offset + colon + 1,
            expected=prefix[: colon + 1],
            replacement="except Exception:",
        )
