"""Driver-shape rules: runner routing (SIM008), pickle safety (SIM009).

Every experiment cell must execute through :mod:`repro.runner` — that is
the single choke point where caching keys are computed, wall time is
measured and the invariant checker is activated.  A public ``run_*``
driver that builds a network/simulator directly bypasses all three.
And because :class:`~repro.runner.spec.RunSpec` configs and results
cross process boundaries pickled, a lambda or local closure stored on
one of those classes fails only when someone first passes ``--jobs 4``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.core import FileContext, Finding, Rule, Severity

#: Names whose presence shows the driver routes through the runner.
RUNNER_NAMES = frozenset({"RunSpec", "run_spec", "Campaign"})

#: Callees that construct a simulation directly.
DIRECT_SIM_CONSTRUCTORS = frozenset({"Simulator", "Network", "_simulate"})


def _call_name(node: ast.Call) -> "str | None":
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class UnroutedDriverRule(Rule):
    """SIM008: public ``run_*`` drivers must go through repro.runner."""

    code = "SIM008"
    name = "unrouted-driver"
    severity = Severity.ERROR
    rationale = (
        "a driver that builds the simulation itself bypasses the runner's "
        "cache keys, cell timing and invariant-checker activation"
    )
    node_types = (ast.FunctionDef,)
    restrict_to_path_parts = ("repro/experiments/",)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.FunctionDef)
        if not node.name.startswith("run_"):
            return
        if any(isinstance(a, ast.ClassDef) for a in ctx.ancestors(node)):
            return  # methods are not drivers
        routed = False
        direct: "ast.Call | None" = None
        for inner in ast.walk(node):
            if isinstance(inner, (ast.Name, ast.Attribute)):
                name = inner.id if isinstance(inner, ast.Name) else inner.attr
                if name in RUNNER_NAMES:
                    routed = True
                    break
            if isinstance(inner, ast.Call) and direct is None:
                name = _call_name(inner)
                if name is not None and (
                    name in DIRECT_SIM_CONSTRUCTORS or name.startswith("build_")
                ):
                    direct = inner
        if not routed and direct is not None:
            yield self.finding(
                ctx,
                node,
                f"driver {node.name}() constructs a simulation directly "
                f"({_call_name(direct)}) without routing through "
                "repro.runner (RunSpec/run_spec/Campaign)",
            )


#: Class names whose instances travel through RunSpec pickling.
_PICKLED_CLASS_RE = re.compile(r"(Config|Scenario|Spec|Result)$")


class PickleUnsafeMemberRule(Rule):
    """SIM009: no lambdas / local closures stored on RunSpec-reachable classes."""

    code = "SIM009"
    name = "pickle-unsafe-member"
    severity = Severity.ERROR
    rationale = (
        "configs and results cross worker-process boundaries pickled; a "
        "stored lambda or local closure only fails under --jobs > 1"
    )
    node_types = (ast.Assign, ast.AnnAssign)
    restrict_to_path_parts = ("repro/experiments/", "repro/runner/")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.Assign, ast.AnnAssign))
        value = node.value
        if value is None:
            return
        owner = self._pickled_class(node, ctx)
        if owner is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        class_level = ctx.parent(node) is owner
        stores_member = any(
            (isinstance(t, ast.Name) and class_level)
            or (
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
            )
            for t in targets
        )
        if not stores_member:
            return
        if isinstance(value, ast.Lambda):
            yield self.finding(
                ctx,
                value,
                f"lambda stored on {owner.name} cannot be pickled across "
                "worker processes; use a module-level function or "
                "functools.partial",
            )
        elif isinstance(value, ast.Name) and self._is_local_function(
            value.id, node, ctx
        ):
            yield self.finding(
                ctx,
                value,
                f"locally defined function {value.id}() stored on "
                f"{owner.name} cannot be pickled across worker processes; "
                "move it to module level",
            )

    def _pickled_class(
        self, node: ast.AST, ctx: FileContext
    ) -> "ast.ClassDef | None":
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                if _PICKLED_CLASS_RE.search(ancestor.name):
                    return ancestor
                return None
        return None

    def _is_local_function(
        self, name: str, node: ast.AST, ctx: FileContext
    ) -> bool:
        """Whether ``name`` is a def nested in the enclosing function."""
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return any(
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == name
                    for stmt in ast.walk(ancestor)
                    if stmt is not ancestor
                )
        return False
