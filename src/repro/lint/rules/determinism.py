"""Determinism rules: seeded randomness (SIM001) and ordered iteration (SIM005).

The whole reproduction rests on bit-for-bit deterministic replay (same
seed, same trace, same Fig. 3-11 curves).  Two classic ways to lose it:

* drawing from the process-global ``random`` module (seeded from OS
  entropy) or an unseeded ``random.Random()`` instead of routing through
  :class:`repro.sim.random.RandomStreams`;
* iterating a ``set`` while scheduling events or drawing randomness —
  ``PYTHONHASHSEED`` varies string hashes across processes, so set order
  is not stable run-to-run even though dict order is.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, Finding, Fix, Rule, Severity

#: Module-level functions of :mod:`random` that consume the global RNG.
GLOBAL_RNG_FUNCTIONS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


def _unseeded_random_call(node: ast.Call) -> bool:
    """``random.Random()`` / ``Random()`` with no seed argument at all."""
    return not node.args and not node.keywords


class UnseededRandomRule(Rule):
    """SIM001: all randomness must come from an explicitly seeded stream."""

    code = "SIM001"
    name = "unseeded-random"
    severity = Severity.ERROR
    rationale = (
        "unseeded RNGs break bit-for-bit replay; use "
        "repro.sim.random.RandomStreams or a seed-constructed random.Random"
    )
    fixable = True
    node_types = (ast.Call, ast.ImportFrom)
    # The one module that owns RNG construction may do as it likes.
    allowed_path_suffixes = ("repro/sim/random.py",)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    if alias.name == "*" or alias.name in GLOBAL_RNG_FUNCTIONS:
                        yield self.finding(
                            ctx,
                            node,
                            f"importing random.{alias.name} binds the "
                            "process-global RNG; pass a seeded "
                            "random.Random (see repro.sim.random)",
                        )
            return
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "random":
                if func.attr in GLOBAL_RNG_FUNCTIONS:
                    yield self.finding(
                        ctx,
                        node,
                        f"random.{func.attr}() draws from the process-global "
                        "RNG; use a stream from "
                        "repro.sim.random.RandomStreams instead",
                    )
                elif func.attr == "Random" and _unseeded_random_call(node):
                    yield self.finding(
                        ctx,
                        node,
                        "random.Random() without a seed argument is "
                        "nondeterministic; construct it with an explicit seed",
                        fix=self._seed_fix(node, ctx),
                    )
            elif (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"numpy.random.{func.attr}() uses numpy's global RNG; "
                    "use numpy.random.Generator seeded from the RunSpec seed",
                )
        elif (
            isinstance(func, ast.Name)
            and func.id == "Random"
            and _unseeded_random_call(node)
        ):
            yield self.finding(
                ctx,
                node,
                "Random() without a seed argument is nondeterministic; "
                "construct it with an explicit seed",
                fix=self._seed_fix(node, ctx),
            )

    def _seed_fix(self, node: ast.Call, ctx: FileContext) -> "Fix | None":
        """Rewrite ``...Random()`` to ``...Random(0)`` when single-line."""
        if node.end_lineno != node.lineno or node.end_col_offset is None:
            return None
        segment = ctx.segment(node)
        if segment is None or not segment.endswith("()"):
            return None
        return Fix(
            lineno=node.lineno,
            col_start=node.col_offset,
            col_end=node.end_col_offset,
            expected=segment,
            replacement=segment[:-2] + "(0)",
        )


#: Method names that schedule or cancel simulator events.
SCHEDULING_METHODS = frozenset({"schedule", "schedule_at", "cancel"})


def _is_set_typed(expr: ast.expr) -> bool:
    """Syntactically set-typed: literals, comprehensions, set()/frozenset(),
    and set-algebra expressions over those."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_typed(expr.left) or _is_set_typed(expr.right)
    return False


def _hazardous_call(node: ast.Call) -> "str | None":
    """What (if anything) an in-loop call does that set order would perturb."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in SCHEDULING_METHODS:
        return "event scheduling"
    if func.attr in GLOBAL_RNG_FUNCTIONS:
        return "an RNG draw"
    return None


class UnorderedIterationRule(Rule):
    """SIM005: no event scheduling / RNG draws while iterating a set."""

    code = "SIM005"
    name = "unordered-iteration"
    severity = Severity.ERROR
    rationale = (
        "set iteration order depends on PYTHONHASHSEED; feeding it into "
        "schedule() or RNG draws reorders events between runs"
    )
    node_types = (ast.For, ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            set_iter = _is_set_typed(node.iter)
            body: "list[ast.AST]" = list(node.body)
        else:
            assert isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            )
            set_iter = any(_is_set_typed(gen.iter) for gen in node.generators)
            body = [node]
        if not set_iter:
            return
        for child in body:
            for inner in ast.walk(child):
                if isinstance(inner, ast.Call):
                    hazard = _hazardous_call(inner)
                    if hazard is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"iterating a set feeds {hazard}; iterate a "
                            "sorted() or otherwise deterministically "
                            "ordered sequence instead",
                        )
                        return
