"""Numeric-hygiene rules: float-time equality (SIM003), magic units (SIM004).

Simulation time is a float in seconds.  Exact ``==`` on derived times is
only stable while nobody reorders an arithmetic expression; the engine
guarantees deterministic *ordering* via ``(time, priority, seq)`` tuples
precisely so model code never needs float equality.  Likewise, the
simulator's base units (seconds, bits/s, bytes) make a bare ``rate=1e9``
ambiguous — ``repro.sim.units`` exists so every literal names its unit.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import FileContext, Finding, Fix, Rule, Severity
from repro.sim import units as _units
from repro.sim.units import (
    CONVERSION_FACTORS,
    DIM_BITS_PER_SECOND,
    DIM_SECONDS,
    IDENTITY_CONSTRUCTORS,
)

#: Identifiers (variable names / attribute names) treated as sim-time values.
TIME_NAMES = frozenset(
    {
        "now",
        "_now",
        "deadline",
        "_deadline",
        "expiry",
        "_expiry",
        "time",
        "_time",
        "start_time",
        "end_time",
        "finish_time",
        "arrival_time",
        "departure_time",
        "rtt",
        "srtt",
        "base_rtt",
    }
)


def time_like(expr: ast.expr) -> bool:
    """Whether an expression reads like a simulation-time value."""
    if isinstance(expr, ast.Name):
        return expr.id in TIME_NAMES
    if isinstance(expr, ast.Attribute):
        return expr.attr in TIME_NAMES
    return False


class FloatTimeEqualityRule(Rule):
    """SIM003: no ``==`` / ``!=`` between sim-time expressions."""

    code = "SIM003"
    name = "float-time-equality"
    severity = Severity.WARNING
    rationale = (
        "exact float equality on derived times breaks under any "
        "re-association; compare with <=/>= or an explicit tolerance"
    )
    node_types = (ast.Compare,)
    # Tests deliberately assert exact replayed times; that is the
    # determinism claim itself, not a hazard.
    excluded_path_parts = ("tests/", "benchmarks/")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                operands = (left, right)
                if any(time_like(o) for o in operands) and not any(
                    isinstance(o, ast.Constant) and o.value is None
                    for o in operands
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "exact ==/!= on a simulation-time float; use an "
                        "ordering comparison or an explicit tolerance",
                    )
            left = right


#: Call keywords carrying a rate (bits/second).
RATE_KWARGS = frozenset(
    {
        "rate",
        "rate_bps",
        "bandwidth",
        "bandwidth_bps",
        "link_rate",
        "link_rate_bps",
        "access_rate",
        "access_rate_bps",
    }
)

#: Call keywords carrying a time (seconds).
TIME_KWARGS = frozenset(
    {
        "delay",
        "delay_s",
        "hop_delay",
        "propagation_delay",
        "rtt",
        "rtt_s",
        "base_rtt",
    }
)

#: Call keywords whose value carries a unit the literal cannot express.
UNIT_KWARGS = RATE_KWARGS | TIME_KWARGS

#: Named conversions --fix may propose, largest scale first, per dimension.
_FIX_CANDIDATES = {
    DIM_SECONDS: ("seconds", "milliseconds", "microseconds", "nanoseconds"),
    DIM_BITS_PER_SECOND: (
        "gigabits_per_second",
        "megabits_per_second",
        "kilobits_per_second",
        "bits_per_second",
    ),
}


def _unit_replacement(value: float, literal_text: str, dimension: str) -> Optional[str]:
    """Source text of a units call that is BIT-IDENTICAL to ``value``.

    Tries the named conversions largest-scale-first with an integral
    argument (``1e9`` -> ``gigabits_per_second(1)``), verifying each
    candidate by calling the real constructor — ``microseconds(20)`` is
    one ulp away from ``20e-6``, and a fix that shifts a float would
    shift golden-trace digests.  When no named conversion reproduces the
    value, falls back to the identity constructor wrapping the original
    literal (``seconds(20e-6)``), which is exact by construction.
    """
    for name in _FIX_CANDIDATES.get(dimension, ()):
        factor = CONVERSION_FACTORS[name]
        argument = value / factor
        if argument != int(argument) or not 1 <= abs(argument) < 1000:
            continue
        if getattr(_units, name)(int(argument)) == value:
            return f"{name}({int(argument)})"
    identity = IDENTITY_CONSTRUCTORS.get(dimension)
    if identity is not None and getattr(_units, identity)(value) == value:
        return f"{identity}({literal_text})"
    return None


def _unit_fix(ctx: FileContext, expr: ast.expr, dimension: str) -> Optional[Fix]:
    """A guarded single-line rewrite of a bare unit literal, if safe."""
    value = _numeric_literal(expr)
    if value is None or value == 0:
        return None
    if getattr(expr, "end_lineno", None) != expr.lineno:
        return None
    col_end = getattr(expr, "end_col_offset", None)
    if col_end is None:
        return None
    expected = ctx.line_text(expr.lineno)[expr.col_offset : col_end]
    if not expected:
        return None
    replacement = _unit_replacement(value, expected, dimension)
    if replacement is None:
        return None
    return Fix(
        lineno=expr.lineno,
        col_start=expr.col_offset,
        col_end=col_end,
        expected=expected,
        replacement=replacement,
    )


def _numeric_literal(expr: ast.expr) -> Optional[float]:
    """The value of a bare (possibly negated) numeric literal, else None."""
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        inner = _numeric_literal(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, ast.Constant) and type(expr.value) in (int, float):
        return float(expr.value)
    return None


class MagicUnitLiteralRule(Rule):
    """SIM004: bandwidth/delay arguments must go through repro.sim.units."""

    code = "SIM004"
    name = "magic-unit-literal"
    severity = Severity.ERROR
    rationale = (
        "a bare number in a rate/delay argument hides its unit; "
        "repro.sim.units conversions make Gbps-vs-bps bugs impossible"
    )
    fixable = True
    node_types = (ast.Call,)
    excluded_path_parts = ("tests/", "benchmarks/")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        for keyword in node.keywords:
            if keyword.arg is None or keyword.arg not in UNIT_KWARGS:
                continue
            value = _numeric_literal(keyword.value)
            if value is not None and value != 0:
                dimension = (
                    DIM_BITS_PER_SECOND
                    if keyword.arg in RATE_KWARGS
                    else DIM_SECONDS
                )
                yield self.finding(
                    ctx,
                    keyword.value,
                    f"bare numeric literal for {keyword.arg}=; wrap it in a "
                    "repro.sim.units conversion "
                    "(e.g. gigabits_per_second, microseconds)",
                    fix=_unit_fix(ctx, keyword.value, dimension),
                )
        # Network.connect(a, b, rate_bps, delay_s, ...): the two positional
        # unit slots of the one call every topology goes through.
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "connect":
            for index, label, dimension in (
                (2, "rate_bps", DIM_BITS_PER_SECOND),
                (3, "delay_s", DIM_SECONDS),
            ):
                if index < len(node.args):
                    value = _numeric_literal(node.args[index])
                    if value is not None and value != 0:
                        yield self.finding(
                            ctx,
                            node.args[index],
                            f"bare numeric literal for connect() {label}; "
                            "wrap it in a repro.sim.units conversion",
                            fix=_unit_fix(ctx, node.args[index], dimension),
                        )
