"""SIM006: never schedule behind a captured ``now``.

``Simulator.schedule`` raises on a negative delay and ``schedule_at``
raises on a past absolute time, but only *at runtime*, possibly hours
into a campaign.  The two statically recognizable shapes — a negative
literal delay, and ``schedule_at(now - offset)`` where ``now`` was
captured before other callbacks may have advanced the clock — are
always bugs, so simlint rejects them before they ever run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, Finding, Rule, Severity
from repro.lint.rules.numerics import _numeric_literal, time_like


class PastSchedulingRule(Rule):
    """SIM006: no statically negative delays or ``now - x`` absolute times."""

    code = "SIM006"
    name = "past-scheduling"
    severity = Severity.ERROR
    rationale = (
        "a negative delay or schedule_at(captured_now - offset) lands in "
        "the past and raises SimulationError mid-campaign"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute) or not node.args:
            return
        first = node.args[0]
        if func.attr == "schedule":
            value = _numeric_literal(first)
            if value is not None and value < 0:
                yield self.finding(
                    ctx,
                    first,
                    f"schedule() with negative delay {value}; delays are "
                    "relative to now and must be >= 0",
                )
        elif func.attr == "schedule_at":
            if (
                isinstance(first, ast.BinOp)
                and isinstance(first.op, ast.Sub)
                and time_like(first.left)
            ):
                yield self.finding(
                    ctx,
                    first,
                    "schedule_at(<captured now> - offset) can land in the "
                    "past once other events have advanced the clock; "
                    "schedule a non-negative delay from the live clock "
                    "instead",
                )
