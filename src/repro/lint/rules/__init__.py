"""The simlint rule catalog.

One :class:`~repro.lint.core.Rule` subclass per SIMxxx code; see
LINTING.md for the catalog with rationale.  :func:`all_rules` is the
single registry the analyzer, CLI and docs build from.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.lint.core import Rule
from repro.lint.rules.determinism import UnorderedIterationRule, UnseededRandomRule
from repro.lint.rules.drivers import PickleUnsafeMemberRule, UnroutedDriverRule
from repro.lint.rules.numerics import FloatTimeEqualityRule, MagicUnitLiteralRule
from repro.lint.rules.scheduling import PastSchedulingRule
from repro.lint.rules.structure import MutableDefaultRule, SwallowedExceptionRule
from repro.lint.rules.wallclock import WallClockRule

RULE_CLASSES: Tuple[Type[Rule], ...] = (
    UnseededRandomRule,  # SIM001
    WallClockRule,  # SIM002
    FloatTimeEqualityRule,  # SIM003
    MagicUnitLiteralRule,  # SIM004
    UnorderedIterationRule,  # SIM005
    PastSchedulingRule,  # SIM006
    MutableDefaultRule,  # SIM007
    UnroutedDriverRule,  # SIM008
    PickleUnsafeMemberRule,  # SIM009
    SwallowedExceptionRule,  # SIM010
)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [cls() for cls in RULE_CLASSES]


def rules_by_code() -> Dict[str, Type[Rule]]:
    return {cls.code: cls for cls in RULE_CLASSES}


__all__ = ["RULE_CLASSES", "all_rules", "rules_by_code"]
