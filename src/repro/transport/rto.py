"""RTT estimation and retransmission-timeout computation (RFC 6298).

The paper repeatedly blames LIA's poor small-RTT performance on
``RTOmin = 200 ms`` ("two thousand times larger than RTT of inner-rack
flows"), so the estimator keeps that floor configurable and defaults to the
Linux value the authors measured against.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.units import Seconds

#: Linux default minimum RTO; the quantity Table 1/Fig. 9 discussions hinge on.
DEFAULT_RTO_MIN = 0.200
#: Cap on exponential backoff of the RTO.
DEFAULT_RTO_MAX = 64.0
#: RTO before the first RTT sample (RFC 6298 says 1 s).
DEFAULT_RTO_INITIAL = 1.0


class RttEstimator:
    """SRTT/RTTVAR tracking per RFC 6298 with microsecond-granularity input.

    The paper's implementation enables ``TCP_CONG_RTT_STAMP`` to get
    microsecond RTTs; our simulator timestamps are floats, so granularity
    is a non-issue, but the smoothing constants are the standard
    ``alpha=1/8``, ``beta=1/4``.
    """

    __slots__ = ("srtt", "rttvar", "rto", "rto_min", "rto_max", "samples")

    def __init__(
        self,
        rto_min: Seconds = DEFAULT_RTO_MIN,
        rto_max: Seconds = DEFAULT_RTO_MAX,
    ) -> None:
        if rto_min <= 0:
            raise ValueError(f"rto_min must be positive, got {rto_min}")
        if rto_max < rto_min:
            raise ValueError("rto_max must be >= rto_min")
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.rto: float = max(DEFAULT_RTO_INITIAL, rto_min)
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.samples = 0

    def update(self, rtt_sample: float) -> None:
        """Fold in a new RTT measurement."""
        if rtt_sample < 0:
            raise ValueError(f"negative RTT sample: {rtt_sample}")
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt_sample
            self.rttvar = rtt_sample / 2.0
        else:
            delta = rtt_sample - self.srtt
            self.rttvar += 0.25 * (abs(delta) - self.rttvar)
            self.srtt += 0.125 * delta
        raw = self.srtt + 4.0 * self.rttvar
        self.rto = min(self.rto_max, max(self.rto_min, raw))

    def backoff(self) -> None:
        """Double the RTO after a timeout (Karn), capped at ``rto_max``."""
        self.rto = min(self.rto_max, self.rto * 2.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        srtt = f"{self.srtt*1e6:.0f}us" if self.srtt is not None else "-"
        return f"RttEstimator(srtt={srtt}, rto={self.rto*1e3:.1f}ms)"


__all__ = ["RttEstimator", "DEFAULT_RTO_MIN", "DEFAULT_RTO_MAX", "DEFAULT_RTO_INITIAL"]
