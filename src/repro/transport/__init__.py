"""Transport protocols: TCP (Reno/NewReno + ECN), DCTCP, and shared plumbing.

The sender state machine lives in :mod:`repro.transport.tcp`; congestion
control algorithms are pluggable strategies (:mod:`repro.transport.cc`,
:mod:`repro.transport.dctcp`, :mod:`repro.core.bos`); the receiver with its
delayed-ACK and ECN-echo variants is :mod:`repro.transport.receiver`.
"""

from repro.transport.rto import RttEstimator, DEFAULT_RTO_MIN
from repro.transport.cc import CongestionControl, RenoCC
from repro.transport.dctcp import DctcpCC
from repro.transport.d2tcp import D2tcpCC
from repro.transport.receiver import Receiver, EchoMode
from repro.transport.tcp import TcpSender, SegmentSource, FiniteSource, InfiniteSource
from repro.transport.flow import SinglePathFlow

__all__ = [
    "RttEstimator",
    "DEFAULT_RTO_MIN",
    "CongestionControl",
    "RenoCC",
    "DctcpCC",
    "D2tcpCC",
    "Receiver",
    "EchoMode",
    "TcpSender",
    "SegmentSource",
    "FiniteSource",
    "InfiniteSource",
    "SinglePathFlow",
]
