"""Congestion-control strategy interface plus TCP Reno/NewReno.

A :class:`CongestionControl` instance is attached to exactly one
:class:`~repro.transport.tcp.TcpSender` and mutates its ``cwnd`` /
``ssthresh`` in response to the sender's events.  The split keeps the
sequence/retransmission machinery (identical for every scheme) in the
sender and the window laws (the thing the paper varies) in small, testable
strategy classes:

* :class:`RenoCC` — here, loss-based AIMD with optional classic ECN.
* :class:`~repro.transport.dctcp.DctcpCC` — DCTCP.
* :class:`~repro.core.bos.BosCC` — the paper's BOS, optionally coupled by
  TraSh into XMP.
* :class:`~repro.mptcp.lia.LiaCC` / :class:`~repro.mptcp.olia.OliaCC` —
  MPTCP couplings.

All of the ECN-reacting schemes share the paper's Fig. 2 state machine —
reduce at most once per round, tracked through ``cwr_seq`` — implemented
once in the base class (:meth:`CongestionControl.update_cwr_state`,
:meth:`CongestionControl.enter_reduced`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.tcp import TcpSender

#: Lower bound the paper imposes on any subflow's window ("it is more
#: reasonable to set 2 packets as the lower-bound of cwnd", §2.2 footnote).
MIN_CWND = 2.0

NORMAL = 0
REDUCED = 1


class CongestionControl:
    """Base strategy: hooks called by the sender, state for the CWR machine."""

    #: Whether the scheme sets ECT on its data packets (queues only mark ECT).
    ecn_capable = False
    #: Which receiver echo discipline the scheme expects.
    echo_mode_name = "classic"

    def __init__(self) -> None:
        self.sender: Optional["TcpSender"] = None
        self.state = NORMAL
        self.cwr_seq = 0
        #: Optional validation observer (see :mod:`repro.validate`); only
        #: schemes that report reductions/rounds (BOS) consult it.
        self.observer = None

    def attach(self, sender: "TcpSender") -> None:
        """Bind to the sender; called once from the sender's constructor."""
        if self.sender is not None:
            raise RuntimeError("congestion control already attached")
        self.sender = sender

    # ------------------------------------------------------------------
    # Events (the sender calls these)
    # ------------------------------------------------------------------

    def on_ack(
        self,
        newly_acked: int,
        ece_count: int,
        rtt_sample: Optional[float],
        now: float,
        round_ended: bool,
    ) -> None:
        """A (possibly duplicate) ACK arrived; adjust the window."""
        raise NotImplementedError

    def on_loss_event(self, now: float) -> None:
        """Fast retransmit fired: standard multiplicative decrease."""
        sender = self.sender
        assert sender is not None
        sender.ssthresh = max(sender.flight / 2.0, MIN_CWND)
        sender.cwnd = sender.ssthresh

    def on_timeout(self, now: float) -> None:
        """RTO fired: collapse to one segment and re-probe."""
        sender = self.sender
        assert sender is not None
        sender.ssthresh = max(sender.flight / 2.0, MIN_CWND)
        sender.cwnd = 1.0
        self.state = NORMAL

    # ------------------------------------------------------------------
    # The Fig. 2 once-per-round reduction machine
    # ------------------------------------------------------------------

    def update_cwr_state(self, ack: int) -> None:
        """Return to NORMAL once the reduction round has been fully ACKed."""
        if self.state != NORMAL and ack >= self.cwr_seq:
            self.state = NORMAL

    def enter_reduced(self) -> bool:
        """Try to start a reduction; ``False`` when one is already pending."""
        if self.state != NORMAL:
            return False
        sender = self.sender
        assert sender is not None
        self.state = REDUCED
        self.cwr_seq = sender.snd_nxt
        return True

    @property
    def in_slow_start(self) -> bool:
        sender = self.sender
        assert sender is not None
        return sender.cwnd < sender.ssthresh


class RenoCC(CongestionControl):
    """TCP Reno/NewReno, optionally with classic (RFC 3168) ECN.

    This is the per-subflow behaviour of standard TCP, and — with
    ``ecn=False`` — what the paper's "TCP" small flows and background flows
    run.  The MPTCP-LIA coupling subclasses the increase rule only.
    """

    def __init__(self, ecn: bool = False) -> None:
        super().__init__()
        self.ecn_capable = ecn
        self.echo_mode_name = "classic"

    def on_ack(
        self,
        newly_acked: int,
        ece_count: int,
        rtt_sample: Optional[float],
        now: float,
        round_ended: bool,
    ) -> None:
        sender = self.sender
        assert sender is not None
        self.update_cwr_state(sender.snd_una)
        if self.ecn_capable and ece_count > 0 and self.enter_reduced():
            # Classic ECN: treat ECE like a loss (halve), once per RTT.
            sender.ssthresh = max(sender.cwnd / 2.0, MIN_CWND)
            sender.cwnd = sender.ssthresh
            return
        if newly_acked <= 0 or sender.in_recovery:
            return
        if self.in_slow_start:
            sender.cwnd += newly_acked
        else:
            sender.cwnd += self.increase_per_segment(newly_acked) * newly_acked

    def increase_per_segment(self, newly_acked: int) -> float:
        """Additive increase per ACKed segment; LIA/OLIA override this."""
        sender = self.sender
        assert sender is not None
        return 1.0 / max(sender.cwnd, 1.0)


__all__ = ["CongestionControl", "RenoCC", "MIN_CWND", "NORMAL", "REDUCED"]
