"""The receive side: reordering, delayed ACKs and ECN echo.

One :class:`Receiver` terminates one subflow on the destination host.  It
tracks the cumulative receive point, buffers out-of-order segments, and
generates ACKs according to the delayed-ACK rule the paper assumes (one
cumulative ACK for at most every two consecutively received packets) plus
the echo discipline of the scheme in use:

* ``EchoMode.XMP`` — the paper's BOS step 2: the exact number of CE marks
  received since the last ACK is returned in the two ECE/CWR bits, so at
  most 3 per ACK; hitting 3 forces an immediate ACK so no mark is lost.
* ``EchoMode.DCTCP`` — accurate per-segment mark feedback: the ACK carries
  the number of CE-marked segments it covers, and a change in CE state
  forces an immediate ACK (DCTCP's state-machine behaviour, which bounds
  the estimation error the same way).
* ``EchoMode.CLASSIC`` — RFC 3168 flavour: the ACK just says "congestion
  was seen" (a single bit); the sender reacts at most once per RTT.
"""

from __future__ import annotations

import enum
import random
from typing import Callable, Optional, Set

from repro.net.node import Host
from repro.net.packet import Packet, make_ack_packet
from repro.net.routing import Path
from repro.sim.engine import Simulator
from repro.sim.events import Timer
from repro.sim.units import Seconds


class EchoMode(enum.Enum):
    """How CE marks are reflected back to the sender."""

    XMP = "xmp"
    DCTCP = "dctcp"
    CLASSIC = "classic"


#: The paper's two-bit ECE/CWR encoding holds at most this many CEs.
XMP_MAX_CE_PER_ACK = 3
#: Delayed-ACK: acknowledge at least every Nth data packet.
DELAYED_ACK_EVERY = 2
#: Fallback delayed-ACK timeout.  Real stacks use tens of ms; in a DCN that
#: would dwarf the RTT, and bulk traffic almost never hits the timer anyway.
DEFAULT_DELACK_TIMEOUT = 500e-6


class Receiver:
    """Subflow receive endpoint registered on the destination host."""

    __slots__ = (
        "sim",
        "host",
        "flow",
        "subflow",
        "reverse_path",
        "echo_mode",
        "delack_timeout",
        "rcv_nxt",
        "_out_of_order",
        "_unacked_data",
        "_pending_ce",
        "_earliest_ts",
        "_last_ce_state",
        "_delack_timer",
        "segments_received",
        "duplicates_received",
        "acks_sent",
        "ce_received",
        "on_segment",
        "sack_enabled",
        "ack_jitter",
        "_jitter_rng",
    )

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow: int,
        subflow: int,
        reverse_path: Path,
        echo_mode: EchoMode = EchoMode.CLASSIC,
        delack_timeout: Seconds = DEFAULT_DELACK_TIMEOUT,
        on_segment: Optional[Callable[[int], None]] = None,
        sack_enabled: bool = False,
        ack_jitter: Seconds = 0.0,
        jitter_seed: int = 0,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow = flow
        self.subflow = subflow
        self.reverse_path = reverse_path
        self.echo_mode = echo_mode
        self.delack_timeout = delack_timeout
        self.rcv_nxt = 0
        self._out_of_order: Set[int] = set()
        self._unacked_data = 0
        self._pending_ce = 0
        self._earliest_ts = -1.0  # -1 = nothing pending
        self._last_ce_state = False
        self._delack_timer = Timer(sim, self._on_delack_timeout)
        self.segments_received = 0
        self.duplicates_received = 0
        self.acks_sent = 0
        self.ce_received = 0
        self.on_segment = on_segment
        self.sack_enabled = sack_enabled
        #: Optional uniform delay in [0, ack_jitter) before each ACK is
        #: injected, modelling host-stack timing noise.  Zero (default)
        #: keeps the simulator bit-deterministic and faithful to the
        #: paper's NS-3 setting — including its phase-locking/global-
        #: synchronization artifacts.  To actually decorrelate two flows'
        #: queue-arrival phases the jitter must exceed one packet
        #: serialization time (12 us at 1 Gbps); smaller values only
        #: perturb, not break, a phase lock.
        self.ack_jitter = ack_jitter
        self._jitter_rng = random.Random(jitter_seed) if ack_jitter > 0 else None
        host.register(flow, subflow, self.receive)

    # ------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Handle an arriving DATA packet (the host demux calls this)."""
        seq = packet.seq
        if self._unacked_data == 0:
            self._earliest_ts = packet.ts
        ce_state_changed = packet.ce != self._last_ce_state
        self._last_ce_state = packet.ce
        if packet.ce:
            self._pending_ce += 1
            self.ce_received += 1

        out_of_order = False
        duplicate = False
        if seq == self.rcv_nxt:
            self.segments_received += 1
            self.rcv_nxt += 1
            # Drain any buffered continuation.
            buffered = self._out_of_order
            while self.rcv_nxt in buffered:
                buffered.discard(self.rcv_nxt)
                self.rcv_nxt += 1
            if self.on_segment is not None:
                self.on_segment(self.rcv_nxt)
        elif seq > self.rcv_nxt:
            self.segments_received += 1
            out_of_order = True
            self._out_of_order.add(seq)
        else:
            # Spurious retransmission; ACK immediately to resync the sender.
            duplicate = True
            self.duplicates_received += 1

        self._unacked_data += 1
        force = (
            out_of_order
            or duplicate
            or self._unacked_data >= DELAYED_ACK_EVERY
            or (
                self.echo_mode is EchoMode.XMP
                and self._pending_ce >= XMP_MAX_CE_PER_ACK
            )
            or (self.echo_mode is EchoMode.DCTCP and ce_state_changed)
        )
        if force:
            self._send_ack()
        elif not self._delack_timer.armed:
            self._delack_timer.start(self.delack_timeout)

    # ------------------------------------------------------------------

    def _on_delack_timeout(self) -> None:
        if self._unacked_data > 0:
            self._send_ack()

    def _send_ack(self) -> None:
        self._delack_timer.cancel()
        ece_count = self._encode_ece()
        ack = make_ack_packet(  # simperf: allow-alloc(the ACK packet is the payload of this function)
            self.flow,
            self.subflow,
            self.rcv_nxt,
            self.sim.now,
            ts_echo=self._earliest_ts,
            path=self.reverse_path,
            ece_count=ece_count,
            sack=self._sack_blocks() if self.sack_enabled else (),  # simperf: allow-alloc(bounded per-ACK SACK block tuple)
        )
        self._unacked_data = 0
        self.acks_sent += 1
        if self._jitter_rng is not None:
            delay = self._jitter_rng.random() * self.ack_jitter
            self.sim.schedule(delay, self.host.send, ack)
        else:
            self.host.send(ack)

    def _encode_ece(self) -> int:
        if self._pending_ce == 0:
            return 0
        if self.echo_mode is EchoMode.XMP:
            count = min(self._pending_ce, XMP_MAX_CE_PER_ACK)
            self._pending_ce -= count
            return count
        if self.echo_mode is EchoMode.DCTCP:
            count = self._pending_ce
            self._pending_ce = 0
            return count
        # CLASSIC: a single congestion-seen bit.
        self._pending_ce = 0
        return 1

    def _sack_blocks(self) -> tuple:
        """Up to three contiguous out-of-order ranges, highest first.

        RFC 2018 budgets at most three blocks per ACK (with timestamps);
        reporting the *highest* ranges first tells the sender about the
        most recent deliveries, which is what drives hole detection.
        """
        if not self._out_of_order:
            return ()
        ordered = sorted(self._out_of_order)
        blocks = []
        start = prev = ordered[0]
        for seq in ordered[1:]:
            if seq == prev + 1:
                prev = seq
                continue
            blocks.append((start, prev + 1))
            start = prev = seq
        blocks.append((start, prev + 1))
        return tuple(reversed(blocks[-3:]))

    def close(self) -> None:
        """Tear down the endpoint (unregister from the host demux)."""
        self._delack_timer.cancel()
        self.host.unregister(self.flow, self.subflow)


__all__ = [
    "Receiver",
    "EchoMode",
    "XMP_MAX_CE_PER_ACK",
    "DELAYED_ACK_EVERY",
    "DEFAULT_DELACK_TIMEOUT",
]
