"""Single-path flow convenience wrapper.

Wires a :class:`~repro.transport.tcp.TcpSender` on the source host to a
:class:`~repro.transport.receiver.Receiver` on the destination host over an
explicit path, with the ACK path derived automatically.  This is the
building block tests and the Fig. 1 experiment use directly; multipath
flows use :class:`repro.mptcp.connection.MptcpConnection` instead.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.network import Network
from repro.net.packet import MSS_BYTES
from repro.net.routing import Path
from repro.transport.cc import CongestionControl
from repro.transport.receiver import DEFAULT_DELACK_TIMEOUT, EchoMode, Receiver
from repro.transport.tcp import (
    FiniteSource,
    InfiniteSource,
    SegmentSource,
    TcpSender,
    segments_for_bytes,
)

_ECHO_MODES = {
    "xmp": EchoMode.XMP,
    "dctcp": EchoMode.DCTCP,
    "classic": EchoMode.CLASSIC,
}


def echo_mode_for(cc: CongestionControl) -> EchoMode:
    """Map a congestion controller to the receiver echo discipline it expects."""
    return _ECHO_MODES[cc.echo_mode_name]


class SinglePathFlow:
    """One TCP-like flow pinned to one path."""

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        path: Path,
        cc: CongestionControl,
        size_bytes: Optional[int] = None,
        flow_id: Optional[int] = None,
        initial_cwnd: float = 10,
        rto_min: float = 0.200,
        delack_timeout: float = DEFAULT_DELACK_TIMEOUT,
        on_complete: Optional[Callable[[float], None]] = None,
        sack: bool = False,
    ) -> None:
        self.network = network
        self.src = src
        self.dst = dst
        self.flow_id = flow_id if flow_id is not None else network.next_flow_id()
        self.size_bytes = size_bytes
        source: SegmentSource
        if size_bytes is None:
            source = InfiniteSource()
            self.total_segments: Optional[int] = None
        else:
            self.total_segments = segments_for_bytes(size_bytes)
            source = FiniteSource(self.total_segments)
        self._user_on_complete = on_complete
        self.sender = TcpSender(
            network.sim,
            network.host(src),
            self.flow_id,
            0,
            path,
            cc,
            source,
            initial_cwnd=initial_cwnd,
            rto_min=rto_min,
            on_complete=self._on_complete,
            sack_enabled=sack,
        )
        self.receiver = Receiver(
            network.sim,
            network.host(dst),
            self.flow_id,
            0,
            network.reverse_path(path),
            echo_mode=echo_mode_for(cc),
            delack_timeout=delack_timeout,
            sack_enabled=sack,
        )
        self.complete_time: Optional[float] = None

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start transmitting now (schedule via ``sim.schedule`` for later)."""
        self.sender.start()

    def stop(self) -> None:
        """Stop the flow (long-running flows in staged experiments)."""
        self.sender.stop()

    @property
    def completed(self) -> bool:
        return self.sender.completed

    @property
    def delivered_bytes(self) -> int:
        """Payload bytes cumulatively acknowledged."""
        return self.sender.delivered_segments * MSS_BYTES

    def goodput_bps(self) -> float:
        """Average goodput over the flow's lifetime so far, bits/second.

        For completed flows this is the paper's "Goodput" metric (§5.2.2):
        transfer size over whole running time.
        """
        end = self.complete_time if self.complete_time is not None else self.network.sim.now
        duration = end - self.sender.start_time
        if duration <= 0:
            return 0.0
        return self.delivered_bytes * 8.0 / duration

    def _on_complete(self, now: float) -> None:
        self.complete_time = now
        if self._user_on_complete is not None:
            self._user_on_complete(now)


__all__ = ["SinglePathFlow", "echo_mode_for"]
