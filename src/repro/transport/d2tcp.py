"""D2TCP — Deadline-Aware Datacenter TCP (Vamanan et al., SIGCOMM 2012).

The paper's related work (§6): "D2TCP uses ECN to make flows with tight
deadlines obtain more bandwidth".  We implement it as an extension
baseline on top of our DCTCP:

The congestion penalty applied on ECN feedback is gamma-corrected by a
*deadline imminence* factor ``d``:

.. math::

    p = \\alpha^{d}, \\qquad cwnd \\leftarrow cwnd \\cdot (1 - p / 2)

where ``d = Tc / D`` — the ratio of the time the flow still *needs*
(remaining data over current rate) to the time it still *has* — clamped
to ``[D_MIN, D_MAX]``.  A far-from-deadline flow (``d < 1``) backs off
more than DCTCP would; a tight-deadline flow (``d > 1``) backs off less.
Without a deadline ``d = 1`` and D2TCP degenerates to exactly DCTCP.
"""

from __future__ import annotations

from typing import Optional

from repro.transport.cc import MIN_CWND
from repro.transport.dctcp import DctcpCC
from repro.transport.tcp import FiniteSource

#: Clamps on the imminence exponent (the D2TCP paper uses [0.5, 2.0]).
D_MIN = 0.5
D_MAX = 2.0


class D2tcpCC(DctcpCC):
    """Deadline-aware DCTCP."""

    def __init__(
        self,
        deadline: Optional[float] = None,
        gain: float = 1.0 / 16.0,
        initial_alpha: float = 1.0,
    ) -> None:
        super().__init__(gain=gain, initial_alpha=initial_alpha)
        #: Absolute simulation time by which the flow wants to finish
        #: (``None`` = no deadline = plain DCTCP behaviour).
        self.deadline = deadline

    # ------------------------------------------------------------------

    def imminence(self, now: float) -> float:
        """The deadline-imminence exponent ``d``, clamped to [0.5, 2]."""
        if self.deadline is None:
            return 1.0
        sender = self.sender
        assert sender is not None
        remaining_time = self.deadline - now
        if remaining_time <= 0:
            return D_MAX  # already late: maximum aggression
        remaining_segments = self._remaining_segments()
        if remaining_segments is None or remaining_segments <= 0:
            return 1.0
        rate = sender.instant_rate
        if rate <= 0:
            return D_MAX  # no estimate yet; be aggressive, not stalled
        needed_time = remaining_segments / rate
        return min(D_MAX, max(D_MIN, needed_time / remaining_time))

    def _remaining_segments(self) -> Optional[int]:
        sender = self.sender
        assert sender is not None
        source = sender.source
        if isinstance(source, FiniteSource):
            return source.total - sender.snd_una
        return None

    # ------------------------------------------------------------------

    def on_ack(self, newly_acked, ece_count, rtt_sample, now, round_ended):
        # Reuse DCTCP's window accounting and once-per-round gating but
        # substitute the gamma-corrected penalty for the reduction.
        sender = self.sender
        assert sender is not None
        self.update_cwr_state(sender.snd_una)

        self._acked_window += newly_acked
        self._marked_window += min(ece_count, max(newly_acked, 1))
        if round_ended and self._acked_window > 0:
            fraction = min(1.0, self._marked_window / self._acked_window)
            self.alpha += self.gain * (fraction - self.alpha)
            self._acked_window = 0
            self._marked_window = 0

        if ece_count > 0 and self.state == 0:  # NORMAL
            if self.enter_reduced():
                self.reductions += 1
                penalty = self.alpha ** self.imminence(now)
                reduced = sender.cwnd * (1.0 - penalty / 2.0)
                sender.cwnd = max(reduced, MIN_CWND)
                sender.ssthresh = sender.cwnd - 1.0
            return

        if newly_acked <= 0 or sender.in_recovery or self.state != 0:
            return
        if self.in_slow_start:
            sender.cwnd += newly_acked
        else:
            sender.cwnd += newly_acked / max(sender.cwnd, 1.0)


__all__ = ["D2tcpCC", "D_MIN", "D_MAX"]
