"""The TCP sender state machine.

One :class:`TcpSender` drives one subflow: it owns the sequence space,
sends segments up to the congestion window, processes cumulative ACKs,
performs NewReno-style fast retransmit/recovery and RTO-based go-back-N,
and delegates every window adjustment to its pluggable
:class:`~repro.transport.cc.CongestionControl`.

Sequence numbers count whole MSS-sized segments (see
:mod:`repro.net.packet`).  Data to send is pulled from a
:class:`SegmentSource` so the same sender serves single-path flows (a
:class:`FiniteSource`), long-running flows (:class:`InfiniteSource`) and
MPTCP subflows (the connection's shared pool).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.net.node import Host
from repro.net.packet import MSS_BYTES, Packet, make_data_packet
from repro.net.routing import Path
from repro.sim.engine import Simulator
from repro.sim.events import Timer
from repro.sim.units import Seconds
from repro.transport.cc import CongestionControl
from repro.transport.rto import RttEstimator
from repro.validate.hooks import active_validator

#: Fast retransmit after this many duplicate ACKs (RFC 5681).
DUPACK_THRESHOLD = 3
#: Default initial window, segments (Linux since 2.6.39; kernel 3.5, which
#: the paper's MPTCP v0.86 is based on, ships IW10).
DEFAULT_INITIAL_CWND = 10
#: How many segments a sender asks its source for at a time.
SOURCE_BATCH = 16


class SegmentSource:
    """Supplies segments for a sender to transmit."""

    def take(self, want: int) -> int:
        """Grant up to ``want`` more segments; 0 means none available now."""
        raise NotImplementedError

    @property
    def exhausted(self) -> bool:
        """True when no further segments will ever be granted."""
        raise NotImplementedError


class FiniteSource(SegmentSource):
    """A fixed number of segments (one finite single-path flow)."""

    def __init__(self, total_segments: int) -> None:
        if total_segments < 0:
            raise ValueError(f"total_segments must be >= 0, got {total_segments}")
        self.total = total_segments
        self.granted = 0

    def take(self, want: int) -> int:
        grant = min(want, self.total - self.granted)
        self.granted += grant
        return grant

    @property
    def exhausted(self) -> bool:
        return self.granted >= self.total


class InfiniteSource(SegmentSource):
    """An endless supply (long-running rate-measurement flows)."""

    def take(self, want: int) -> int:
        return want

    @property
    def exhausted(self) -> bool:
        return False


class TcpSender:
    """Send side of one (sub)flow."""

    __slots__ = (
        "sim",
        "host",
        "flow",
        "subflow",
        "path",
        "cc",
        "source",
        "cwnd",
        "ssthresh",
        "snd_una",
        "snd_nxt",
        "assigned",
        "beg_seq",
        "dupacks",
        "in_recovery",
        "recover",
        "rtt",
        "rto_timer",
        "completed",
        "on_complete",
        "on_delivered",
        "segments_sent",
        "retransmissions",
        "fast_retransmits",
        "timeouts",
        "rounds",
        "start_time",
        "complete_time",
        "running",
        "consecutive_timeouts",
        "on_timeout_event",
        "sack_enabled",
        "_sacked",
        "_rescued",
        "observer",
    )

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow: int,
        subflow: int,
        path: Path,
        cc: CongestionControl,
        source: SegmentSource,
        initial_cwnd: float = DEFAULT_INITIAL_CWND,
        rto_min: Seconds = 0.200,
        on_complete: Optional[Callable[[float], None]] = None,
        on_delivered: Optional[Callable[[int], None]] = None,
        sack_enabled: bool = False,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow = flow
        self.subflow = subflow
        self.path = path
        self.cc = cc
        self.source = source
        cc.attach(self)
        self.cwnd = float(initial_cwnd)
        self.ssthresh = math.inf
        self.snd_una = 0
        self.snd_nxt = 0
        self.assigned = 0
        self.beg_seq = 0
        self.dupacks = 0
        self.in_recovery = False
        self.recover = 0
        self.rtt = RttEstimator(rto_min=rto_min)
        self.rto_timer = Timer(sim, self._on_rto)
        self.completed = False
        self.on_complete = on_complete
        self.on_delivered = on_delivered
        self.segments_sent = 0
        self.retransmissions = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.rounds = 0
        self.start_time = 0.0
        self.complete_time: Optional[float] = None
        self.running = False
        #: RTOs since the last forward progress; a proxy for "path dead".
        self.consecutive_timeouts = 0
        #: Optional hook fired after every RTO (MPTCP reinjection uses it).
        self.on_timeout_event: Optional[Callable[["TcpSender"], None]] = None
        #: Selective acknowledgements (RFC 2018/6675, simplified): the
        #: scoreboard lets recovery repair several holes per RTT instead of
        #: NewReno's one.  Off by default so the paper-default behaviour is
        #: a SACK-less stack; see the SACK ablation bench.
        self.sack_enabled = sack_enabled
        self._sacked: set = set()
        self._rescued: set = set()
        #: Optional validation observer (see :mod:`repro.validate`).
        self.observer = None
        host.register(flow, subflow, self._on_packet)
        validator = active_validator()
        if validator is not None:
            validator.watch_sender(self)

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------

    @property
    def flight(self) -> int:
        """Outstanding (sent, unacknowledged) segments."""
        return self.snd_nxt - self.snd_una

    @property
    def delivered_segments(self) -> int:
        """Cumulatively acknowledged segments."""
        return self.snd_una

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT in seconds (``None`` before the first sample)."""
        return self.rtt.srtt

    @property
    def instant_rate(self) -> float:
        """The paper's ``instant_rate`` = cwnd / srtt, segments per second.

        Zero until the first RTT sample exists, matching the kernel code
        which only computes it once ``srtt_us`` is populated.
        """
        srtt = self.rtt.srtt
        if srtt is None or srtt <= 0:
            return 0.0
        return self.cwnd / srtt

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting (call once, at the flow's start time)."""
        if self.running:
            raise RuntimeError("sender already started")
        self.running = True
        self.start_time = self.sim.now
        self._try_send()

    def stop(self) -> None:
        """Abort the flow: stop sending and cancel timers."""
        self.running = False
        self.rto_timer.cancel()

    def close(self) -> None:
        """Tear the endpoint down entirely."""
        self.stop()
        self.host.unregister(self.flow, self.subflow)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _try_send(self) -> None:
        if not self.running or self.completed:
            return
        window = int(self.cwnd)
        take = self.source.take
        while self.snd_nxt - self.snd_una < window:
            if self.snd_nxt >= self.assigned:
                granted = take(SOURCE_BATCH)
                if granted == 0:
                    break
                self.assigned += granted
            self._transmit(self.snd_nxt, retransmission=False)
            self.snd_nxt += 1

    def _transmit(self, seq: int, retransmission: bool) -> None:
        packet = make_data_packet(  # simperf: allow-alloc(the DATA packet is the payload of this function)
            self.flow,
            self.subflow,
            seq,
            self.sim.now,
            self.path,
            ect=self.cc.ecn_capable,
        )
        if retransmission:
            self.retransmissions += 1
        else:
            self.segments_sent += 1
        self.host.send(packet)
        if not self.rto_timer.armed:
            self.rto_timer.start(self.rtt.rto)

    # ------------------------------------------------------------------
    # Receiving ACKs
    # ------------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        if not self.running:
            return
        observer = self.observer
        cwnd_before = self.cwnd
        now = self.sim.now
        ack = packet.ack
        rtt_sample: Optional[float] = None
        if packet.ts_echo >= 0.0:
            rtt_sample = now - packet.ts_echo
            if rtt_sample >= 0.0:
                self.rtt.update(rtt_sample)

        if ack < self.snd_una:
            # Stale ACK (reordered on the reverse path, e.g. by ACK
            # jitter): carries no new information, must not count as a
            # duplicate of the *current* ACK point.
            return

        if self.sack_enabled and packet.sack:
            sacked_update = self._sacked.update
            for block_start, block_end in packet.sack:
                sacked_update(range(block_start, block_end))  # simperf: allow-alloc(bounded per-ACK SACK range)

        newly = ack - self.snd_una
        round_ended = False
        if newly > 0:
            self.snd_una = ack
            self.dupacks = 0
            self.consecutive_timeouts = 0
            if self.in_recovery:
                if ack >= self.recover:
                    # Full ACK: leave recovery, deflate to ssthresh.
                    self.in_recovery = False
                    self.cwnd = max(self.ssthresh, 1.0)
                    self._sacked.clear()
                    self._rescued.clear()
                else:
                    # NewReno partial ACK (RFC 6582): the next hole is lost
                    # too; retransmit it and deflate the inflated window by
                    # the amount of new data acknowledged (plus one).
                    self.cwnd = max(self.cwnd - newly + 1.0, 1.0)
                    if self.snd_una not in self._sacked:
                        self._rescued.add(self.snd_una)
                        self._transmit(self.snd_una, retransmission=True)
                    elif self.sack_enabled:
                        self._sack_retransmit()
                    self.rto_timer.restart(self.rtt.rto)
            if ack > self.beg_seq:
                round_ended = True
                self.rounds += 1
            if self.snd_una < self.snd_nxt:
                self.rto_timer.restart(self.rtt.rto)
            else:
                self.rto_timer.cancel()
        else:
            if self.flight > 0:
                self.dupacks += 1
                if self.in_recovery:
                    # Window inflation: each dupack signals a departure, so
                    # let one new segment out (keeps the pipe from draining
                    # while holes are repaired one per RTT).
                    self.cwnd += 1.0
                    if self.sack_enabled:
                        # SACK recovery: every dupack may repair one more
                        # known hole (vs NewReno's one hole per RTT).
                        self._sack_retransmit()
                elif self.dupacks == DUPACK_THRESHOLD:
                    self._fast_retransmit(now)

        self.cc.on_ack(max(newly, 0), packet.ece_count, rtt_sample, now, round_ended)
        if round_ended:
            self.beg_seq = self.snd_nxt
        if observer is not None:
            observer.on_ack(
                self, max(newly, 0), packet.ece_count, round_ended, cwnd_before
            )

        if newly > 0 and self.on_delivered is not None:
            self.on_delivered(newly)

        self._try_send()
        self._check_complete(now)

    def _fast_retransmit(self, now: float) -> None:
        self.fast_retransmits += 1
        self.in_recovery = True
        self.recover = self.snd_nxt
        self.cc.on_loss_event(now)
        # Classic inflation start: ssthresh plus the three dupacks.
        self.cwnd = self.ssthresh + DUPACK_THRESHOLD
        self._rescued.add(self.snd_una)
        self._transmit(self.snd_una, retransmission=True)
        self.rto_timer.restart(self.rtt.rto)

    def _sack_retransmit(self) -> None:
        """Retransmit the lowest un-SACKed, un-repaired hole, if any."""
        if not self._sacked:
            return
        highest = max(self._sacked)
        seq = self.snd_una
        while seq < highest:
            if seq not in self._sacked and seq not in self._rescued:
                self._rescued.add(seq)
                self._transmit(seq, retransmission=True)
                return
            seq += 1

    def _on_rto(self) -> None:
        if not self.running or self.completed:
            return
        self.timeouts += 1
        self.consecutive_timeouts += 1
        self.rtt.backoff()
        self.in_recovery = False
        self.dupacks = 0
        self.cc.on_timeout(self.sim.now)
        # Go-back-N: everything outstanding is presumed lost.
        self.snd_nxt = self.snd_una
        self.beg_seq = self.snd_una
        self._sacked.clear()
        self._rescued.clear()
        if self.observer is not None:
            self.observer.on_rto(self)
        self.rto_timer.start(self.rtt.rto)
        self._try_send()
        if self.on_timeout_event is not None:
            self.on_timeout_event(self)

    def kick(self) -> None:
        """Re-run the send loop (e.g. after the shared pool was refilled).

        A sender that had drained an exhausted pool marks itself completed;
        if reinjection has since returned segments to the pool, the sender
        is revived so it can carry them.
        """
        if self.completed and self.running and not self.source.exhausted:
            self.completed = False
            self.complete_time = None
        self._try_send()

    def _check_complete(self, now: float) -> None:
        if (
            not self.completed
            and self.source.exhausted
            and self.snd_una >= self.assigned
        ):
            self.completed = True
            self.complete_time = now
            self.rto_timer.cancel()
            if self.on_complete is not None:
                self.on_complete(now)


def segments_for_bytes(num_bytes: int, mss: int = MSS_BYTES) -> int:
    """Number of MSS-sized segments needed to carry ``num_bytes``."""
    if num_bytes <= 0:
        return 0
    return -(-num_bytes // mss)


__all__ = [
    "TcpSender",
    "SegmentSource",
    "FiniteSource",
    "InfiniteSource",
    "segments_for_bytes",
    "DUPACK_THRESHOLD",
    "DEFAULT_INITIAL_CWND",
    "SOURCE_BATCH",
]
