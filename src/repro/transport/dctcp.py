"""DCTCP (Alizadeh et al., SIGCOMM 2010) — the paper's main single-path
baseline.

The sender keeps an EWMA ``alpha`` of the fraction of marked segments per
window and, on receiving ECN echo, cuts ``cwnd`` by ``alpha/2`` at most
once per window.  The receiver side (accurate per-segment mark feedback,
immediate ACK on CE-state change) lives in
:mod:`repro.transport.receiver` under ``EchoMode.DCTCP``.

Losses are handled like Reno (halving), and the slow-start exit happens on
the first echo — with ``alpha`` initialized to 1, that first cut is a
halving, as in the reference implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.transport.cc import MIN_CWND, NORMAL, CongestionControl

#: DCTCP's EWMA gain g (the reference implementation's 1/16).
DEFAULT_GAIN = 1.0 / 16.0


class DctcpCC(CongestionControl):
    """DCTCP congestion control."""

    ecn_capable = True
    echo_mode_name = "dctcp"

    def __init__(self, gain: float = DEFAULT_GAIN, initial_alpha: float = 1.0) -> None:
        super().__init__()
        if not 0 < gain <= 1:
            raise ValueError(f"gain must be in (0, 1], got {gain}")
        if not 0 <= initial_alpha <= 1:
            raise ValueError(f"alpha must be in [0, 1], got {initial_alpha}")
        self.gain = gain
        self.alpha = initial_alpha
        self._acked_window = 0
        self._marked_window = 0
        self.reductions = 0

    def on_ack(
        self,
        newly_acked: int,
        ece_count: int,
        rtt_sample: Optional[float],
        now: float,
        round_ended: bool,
    ) -> None:
        sender = self.sender
        assert sender is not None
        self.update_cwr_state(sender.snd_una)

        # Accumulate the marked fraction for this observation window.
        self._acked_window += newly_acked
        self._marked_window += min(ece_count, max(newly_acked, 1))
        if round_ended and self._acked_window > 0:
            fraction = min(1.0, self._marked_window / self._acked_window)
            self.alpha += self.gain * (fraction - self.alpha)
            self._acked_window = 0
            self._marked_window = 0

        # Proportional decrease, once per window.
        if ece_count > 0 and self.state == NORMAL:
            if self.enter_reduced():
                self.reductions += 1
                reduced = sender.cwnd * (1.0 - self.alpha / 2.0)
                sender.cwnd = max(reduced, MIN_CWND)
                sender.ssthresh = sender.cwnd - 1.0
            return

        if newly_acked <= 0 or sender.in_recovery or self.state != NORMAL:
            return
        if self.in_slow_start:
            sender.cwnd += newly_acked
        else:
            sender.cwnd += newly_acked / max(sender.cwnd, 1.0)

    def on_timeout(self, now: float) -> None:
        super().on_timeout(now)
        self._acked_window = 0
        self._marked_window = 0


__all__ = ["DctcpCC", "DEFAULT_GAIN"]
