"""Command-line interface: run any of the paper's experiments directly.

Examples::

    python -m repro list
    python -m repro fig4 --beta 4 --time-scale 0.2
    python -m repro fig6 --beta 6
    python -m repro fig7 --beta 5 --threshold 15 --time-scale 0.05
    python -m repro fig1 --scheme dctcp --threshold 10 --interval 1.0
    python -m repro table1 --duration 0.3 --patterns permutation random
    python -m repro jct --duration 1.0
    python -m repro rtt --pattern random
    python -m repro utilization --pattern permutation
    python -m repro validate
    python -m repro validate --bless
    python -m repro lint --list-rules
    python -m repro lint src/repro --format json
    python -m repro table1 --duration 0.02 --validate
    python -m repro profile fattree --duration 0.05
    python -m repro table1 --telemetry telemetry/

Every subcommand prints the same rows/series its benchmark counterpart
asserts on; the CLI exists so a single experiment can be explored (and
its knobs swept) without the pytest machinery.

Every experiment runs through :mod:`repro.runner`: ``--jobs N`` fans the
grid's cells over N worker processes (deterministic — same output as
``--jobs 1``), results are cached on disk under ``--cache-dir`` (default
``~/.cache/repro``) so repeated invocations skip simulation, and
``--no-cache`` forces recomputation.  A ``[runner]`` summary line after
each result reports per-invocation cost; ``--cells`` adds a per-cell
timing table.

``--validate`` runs every cell under the runtime invariant checker
(:mod:`repro.validate`; implies ``--no-cache``), and the ``validate``
subcommand diffs the golden-trace scenarios against their checked-in
digests (``--bless`` regenerates them) — see VALIDATION.md.

``--telemetry DIR`` records one JSONL document per cell (spec
fingerprint, cache tier, event counts, engine hot-spot profile) under
``DIR/runs.jsonl``, and the ``profile`` subcommand runs one experiment
kind under the engine profiler and prints the hot-spot table — see
OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.fattree_eval import PATTERNS, FatTreeScenario
from repro.experiments.fig1_convergence import Fig1Config
from repro.experiments.fig4_traffic_shifting import Fig4Config
from repro.experiments.fig6_fairness import Fig6Config
from repro.experiments.fig7_rate_compensation import Fig7Config
from repro.experiments.fig9_jct_cdf import run_jct
from repro.experiments.fig10_rtt import FIG10_SCHEMES, run_fig10
from repro.experiments.fig11_utilization import run_fig11
from repro.experiments.reporting import format_cdf, format_table
from repro.experiments.table1_goodput import TABLE1_SCHEMES, run_table1
from repro.experiments.table2_coexistence import (
    COEXIST_SCHEMES,
    QUEUE_SIZES,
    run_table2,
)
from repro.experiments.workload_matrix import (
    MATRIX_LOADS,
    MATRIX_SCHEMES,
    SWEEP_FAN_INS,
    IncastSweepScenario,
    WorkloadScenario,
    parse_scheme_spec,
    run_incast_sweep,
    run_workload_matrix,
)
from repro.fluid.backend import TOPOLOGIES as FLUID_TOPOLOGIES, FluidScenario
from repro.fluid.laws import FLUID_SCHEMES
from repro.fluid.solver import SOLVERS as FLUID_SOLVERS
from repro.sim.units import seconds
from repro.workloads.arrivals import ARRIVAL_NAMES
from repro.workloads.cdf import WORKLOAD_NAMES
from repro.runner import (
    Campaign,
    CampaignResult,
    DiskCache,
    RunCache,
    RunSpec,
    default_cache,
)

#: name -> (cell count at defaults, help text).  The cell count is the
#: number of independent simulations, i.e. the useful upper bound for
#: ``--jobs``.
EXPERIMENT_INFO: Dict[str, Tuple[int, str]] = {
    "fig1": (1, "Fig. 1: convergence on one bottleneck"),
    "fig4": (1, "Fig. 4: traffic shifting testbed"),
    "fig6": (1, "Fig. 6: fairness vs subflow count"),
    "fig7": (1, "Fig. 7: torus rate compensation"),
    "table1": (
        len(TABLE1_SCHEMES) * len(PATTERNS),
        "Table 1: goodput per scheme per pattern",
    ),
    "table2": (
        len(COEXIST_SCHEMES) * len(QUEUE_SIZES),
        "Table 2: XMP coexistence",
    ),
    "jct": (len(TABLE1_SCHEMES), "Fig. 9 / Table 3: incast job completion times"),
    "rtt": (len(FIG10_SCHEMES), "Fig. 10: RTT by category"),
    "utilization": (len(FIG10_SCHEMES), "Fig. 11: utilization by layer"),
    "workload": (
        len(MATRIX_SCHEMES) * len(MATRIX_LOADS),
        "workload matrix: empirical flow sizes, open-loop arrivals, "
        "FCT/queue-depth by load 0.1-0.9",
    ),
    "incast": (
        len(MATRIX_SCHEMES) * len(SWEEP_FAN_INS),
        "incast sweep: partition-aggregate fan-in vs JCT and goodput "
        "collapse",
    ),
    "fluid": (
        1,
        "fluid ODE backend: steady-state windows/goodput/queues; "
        "--crosscheck validates fluid against the packet engine",
    ),
    "export": (1, "run one fat-tree scenario and dump JSON/CSV artifacts"),
    "validate": (
        6,
        "run the golden-trace scenarios under the invariant checker "
        "(--bless regenerates goldens)",
    ),
    "profile": (
        1,
        "run one experiment kind under the engine profiler: hot-spot "
        "table + JSONL telemetry (see OBSERVABILITY.md)",
    ),
}

EXPERIMENTS = tuple(EXPERIMENT_INFO)


def _add_runner_options(p: argparse.ArgumentParser) -> None:
    """The campaign-runner knobs shared by every experiment subcommand."""
    group = p.add_argument_group("runner")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for independent cells "
                            "(deterministic: output equals --jobs 1)")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="on-disk run cache location "
                            "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    group.add_argument("--no-cache", action="store_true",
                       help="ignore cached runs and recompute everything")
    group.add_argument("--cells", action="store_true",
                       help="print the per-cell timing table")
    group.add_argument("--validate", action="store_true",
                       help="run every cell under the runtime invariant "
                            "checker (implies --no-cache; fails on any "
                            "violation)")
    group.add_argument("--telemetry", default=None, metavar="DIR",
                       help="append one JSONL telemetry record per cell "
                            "to DIR/runs.jsonl (implies profiling of "
                            "simulated cells; see OBSERVABILITY.md)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from the XMP paper (CoNEXT'13).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments and cell counts")

    p = sub.add_parser("fig1", help=EXPERIMENT_INFO["fig1"][1])
    p.add_argument("--scheme", choices=("dctcp", "bos"), default="dctcp")
    p.add_argument("--threshold", type=int, default=10, help="marking K")
    p.add_argument("--beta", type=float, default=2.0)
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between joins/leaves (paper: 5)")
    _add_runner_options(p)

    p = sub.add_parser("fig4", help=EXPERIMENT_INFO["fig4"][1])
    p.add_argument("--beta", type=float, default=4.0)
    p.add_argument("--time-scale", type=float, default=0.2)
    _add_runner_options(p)

    p = sub.add_parser("fig6", help=EXPERIMENT_INFO["fig6"][1])
    p.add_argument("--beta", type=float, default=4.0)
    p.add_argument("--time-scale", type=float, default=0.2)
    _add_runner_options(p)

    p = sub.add_parser("fig7", help=EXPERIMENT_INFO["fig7"][1])
    p.add_argument("--beta", type=float, default=4.0)
    p.add_argument("--threshold", type=int, default=20, help="marking K")
    p.add_argument("--time-scale", type=float, default=0.05)
    _add_runner_options(p)

    for name in ("table1", "table2", "jct", "rtt", "utilization"):
        p = sub.add_parser(name, help=EXPERIMENT_INFO[name][1])
        p.add_argument("--duration", type=float, default=0.4)
        p.add_argument("--k", type=int, default=4, help="fat-tree arity")
        p.add_argument("--seed", type=int, default=1)
        if name == "table1":
            p.add_argument("--patterns", nargs="+",
                           default=["permutation", "random", "incast"])
        if name in ("rtt", "utilization"):
            p.add_argument("--pattern", default="permutation")
        _add_runner_options(p)

    p = sub.add_parser("workload", help=EXPERIMENT_INFO["workload"][1])
    p.add_argument("--workload", default="websearch", choices=WORKLOAD_NAMES,
                   help="flow-size distribution (default: websearch)")
    p.add_argument("--arrival", default="poisson", choices=ARRIVAL_NAMES,
                   help="interarrival process (default: poisson)")
    p.add_argument("--loads", nargs="+", type=float,
                   default=list(MATRIX_LOADS), metavar="LOAD",
                   help="offered loads as a fraction of fabric capacity "
                        "(default: 0.1 .. 0.9)")
    p.add_argument("--schemes", nargs="+", metavar="SCHEME[-N]",
                   default=[f"{s}-{n}" for s, n in MATRIX_SCHEMES],
                   help="schemes with subflow counts, e.g. xmp-2 dctcp "
                        "lia-2 (default: xmp-2 dctcp-1 lia-2)")
    p.add_argument("--duration", type=float, default=0.1)
    p.add_argument("--size-scale", type=float, default=1.0,
                   help="multiplier on sampled flow sizes")
    p.add_argument("--elephants", type=int, default=0,
                   help="long-lived background bulk flows")
    p.add_argument("--k", type=int, default=4, help="fat-tree arity")
    p.add_argument("--seed", type=int, default=1)
    _add_runner_options(p)

    p = sub.add_parser("incast", help=EXPERIMENT_INFO["incast"][1])
    p.add_argument("--fan-ins", nargs="+", type=int,
                   default=list(SWEEP_FAN_INS), metavar="N",
                   help="workers per partition-aggregate round "
                        "(default: 2 4 8 12)")
    p.add_argument("--schemes", nargs="+", metavar="SCHEME[-N]",
                   default=[f"{s}-{n}" for s, n in MATRIX_SCHEMES],
                   help="response-flow schemes, e.g. xmp-2 dctcp lia-2")
    p.add_argument("--response-bytes", type=int, default=64_000,
                   help="bytes each worker sends back (default: 64000)")
    p.add_argument("--concurrent", type=int, default=4,
                   help="partition-aggregate jobs in flight at once")
    p.add_argument("--duration", type=float, default=0.1)
    p.add_argument("--k", type=int, default=4, help="fat-tree arity")
    p.add_argument("--seed", type=int, default=1)
    _add_runner_options(p)

    p = sub.add_parser("fluid", help=EXPERIMENT_INFO["fluid"][1])
    p.add_argument("--scheme", default="xmp", choices=FLUID_SCHEMES)
    p.add_argument("--topology", default="bottleneck",
                   choices=FLUID_TOPOLOGIES)
    p.add_argument("--flows", type=int, default=4,
                   help="long-lived flows (default 4)")
    p.add_argument("--subflows", type=int, default=1)
    p.add_argument("--duration", type=float, default=None,
                   help="horizon in seconds (default 0.2; crosscheck 0.3)")
    p.add_argument("--dt", type=float, default=2e-5,
                   help="Euler step in seconds (default 2e-5)")
    p.add_argument("--beta", type=float, default=4.0)
    p.add_argument("--k", type=int, default=4,
                   help="fat-tree arity (fattree topology only)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--solver", default="reference", choices=FLUID_SOLVERS,
                   help="reference (pure python) or vector (numpy)")
    p.add_argument("--crosscheck", nargs="?", const="all", default=None,
                   choices=("bottleneck", "fattree", "all"), metavar="TOPO",
                   help="cross-validate fluid vs packet on the golden "
                        "scenarios instead of running one cell "
                        "(optionally restrict to one topology)")
    _add_runner_options(p)

    p = sub.add_parser(
        "lint",
        help="run simlint, the determinism & simulation-safety linter "
             "(see LINTING.md); extra args pass through to repro.lint",
    )
    p.add_argument("lint_args", nargs=argparse.REMAINDER, metavar="ARGS",
                   help="arguments forwarded to python -m repro.lint")

    p = sub.add_parser("validate", help=EXPERIMENT_INFO["validate"][1])
    p.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                   help="scenario names (default: all; see "
                        "repro.validate.scenarios)")
    p.add_argument("--bless", action="store_true",
                   help="regenerate the checked-in golden digests from "
                        "this run instead of diffing against them")

    p = sub.add_parser("export", help=EXPERIMENT_INFO["export"][1])
    p.add_argument("directory", help="output directory")
    p.add_argument("--scheme", default="xmp")
    p.add_argument("--subflows", type=int, default=2)
    p.add_argument("--pattern", default="permutation",
                   choices=("permutation", "random", "incast"))
    p.add_argument("--duration", type=float, default=0.4)
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--seed", type=int, default=1)
    _add_runner_options(p)

    p = sub.add_parser("profile", help=EXPERIMENT_INFO["profile"][1])
    p.add_argument("experiment",
                   choices=("fattree", "fig1", "fig4", "fig6", "fig7"),
                   help="registered experiment kind to profile")
    p.add_argument("--scheme", default="xmp",
                   help="fattree scheme (fattree kind only)")
    p.add_argument("--subflows", type=int, default=2)
    p.add_argument("--pattern", default="permutation",
                   choices=("permutation", "random", "incast"))
    p.add_argument("--duration", type=float, default=0.1)
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--top", type=int, default=12, metavar="N",
                   help="hot-spot table rows (default 12)")
    p.add_argument("--telemetry", default="telemetry", metavar="DIR",
                   help="JSONL output directory (default: ./telemetry)")
    return parser


def _campaign_kwargs(args: argparse.Namespace) -> dict:
    """Translate runner flags into the drivers' campaign kwargs.

    The CLI attaches a disk tier (unlike library defaults, which stay
    memory-only unless ``$REPRO_CACHE_DIR`` is set): a repeated
    invocation with a warm cache skips simulation entirely.

    ``--validate`` forces recomputation (cached results were produced by
    *unvalidated* runs, so replaying them would check nothing) and sets
    ``$REPRO_VALIDATE`` so worker processes validate too.

    ``--telemetry DIR`` exports ``$REPRO_TELEMETRY``: the drivers'
    campaigns pick the sink up from the environment (no driver signature
    carries it), and pool workers inherit the variable so their cells run
    profiled.
    """
    import os

    if getattr(args, "telemetry", None):
        os.environ["REPRO_TELEMETRY"] = args.telemetry
    if getattr(args, "validate", False):
        os.environ["REPRO_VALIDATE"] = "1"
        return {"jobs": args.jobs, "cache": None, "use_cache": False}
    if args.no_cache:
        return {"jobs": args.jobs, "cache": None, "use_cache": False}
    disk = DiskCache(args.cache_dir) if args.cache_dir else DiskCache()
    cache = RunCache(memory=default_cache().memory, disk=disk)
    return {"jobs": args.jobs, "cache": cache, "use_cache": True}


def _epilogue(args: argparse.Namespace, campaign: Optional[CampaignResult]) -> str:
    """The ``[runner]`` summary (and optional per-cell table) for a run."""
    if campaign is None:
        return ""
    lines = [f"[runner] {campaign.summary()}"]
    if getattr(args, "validate", False):
        checks = sum(r.metrics.invariant_checks for r in campaign.results)
        lines.append(
            f"[validate] {len(campaign.results)} cells passed "
            f"({checks} invariant checks)"
        )
    if args.cells:
        lines.append(campaign.format_cells())
    if getattr(args, "telemetry", None):
        from repro.obs.telemetry import RUNS_FILENAME

        lines.append(f"[telemetry] appended to {args.telemetry}/{RUNS_FILENAME}")
    return "\n" + "\n".join(lines)


def _run_single(kind: str, config, args: argparse.Namespace):
    """Run a one-cell experiment through the runner; returns its result
    value and the one-cell campaign for the epilogue."""
    kwargs = _campaign_kwargs(args)
    campaign = Campaign(
        jobs=1, cache=kwargs["cache"], use_cache=kwargs["use_cache"]
    ).run([RunSpec(kind, config)])
    return campaign.results[0].value, campaign


def _scenario(args: argparse.Namespace) -> FatTreeScenario:
    return FatTreeScenario(duration=args.duration, k=args.k, seed=args.seed)


def _run_fig1(args) -> str:
    result, campaign = _run_single("fig1", Fig1Config(
        scheme=args.scheme, beta=args.beta,
        marking_threshold=args.threshold, interval=args.interval,
    ), args)
    rows = [
        (f"{start:.1f}-{end:.1f}s", active, f"{jain:.4f}")
        for start, end, active, jain in result.segments
    ]
    table = format_table(["segment", "active flows", "Jain"], rows,
                         title=f"Fig. 1 ({args.scheme}, K={args.threshold})")
    return (f"{table}\nworst multi-flow Jain: {result.worst_jain():.4f}"
            + _epilogue(args, campaign))


def _run_fig4(args) -> str:
    result, campaign = _run_single(
        "fig4", Fig4Config(beta=args.beta, time_scale=args.time_scale), args
    )
    rows = []
    for phase, (start, end) in result.phases().items():
        rows.append(
            (
                phase,
                f"{result.mean_normalized('flow2-1', start, end):.3f}",
                f"{result.mean_normalized('flow2-2', start, end):.3f}",
            )
        )
    return format_table(
        ["phase", "subflow 1", "subflow 2"], rows,
        title=f"Fig. 4 (beta={args.beta}): Flow 2 normalized rates",
    ) + _epilogue(args, campaign)


def _run_fig6(args) -> str:
    result, campaign = _run_single(
        "fig6", Fig6Config(beta=args.beta, time_scale=args.time_scale), args
    )
    s = args.time_scale
    rows = [
        (f"flow {flow}",
         f"{result.flow_rate_between(flow, 21 * s, 25 * s) / 1e6:.1f} Mbps")
        for flow in (1, 2, 3, 4)
    ]
    table = format_table(["flow", "rate (20-25s window)"], rows,
                         title=f"Fig. 6 (beta={args.beta})")
    return (f"{table}\nJain index: {result.fairness_all_flows():.4f}"
            + _epilogue(args, campaign))


def _run_fig7(args) -> str:
    result, campaign = _run_single("fig7", Fig7Config(
        beta=args.beta, marking_threshold=args.threshold,
        time_scale=args.time_scale,
    ), args)
    s = args.time_scale
    rows = []
    for i in range(1, 6):
        for j in (1, 2):
            name = f"flow{i}-{j}"
            rows.append(
                (
                    name,
                    f"{result.normalized_mean(name, 20 * s, 25 * s):.3f}",
                    f"{result.normalized_mean(name, 40 * s, 45 * s):.3f}",
                    f"{result.normalized_mean(name, 65 * s, 70 * s):.3f}",
                )
            )
    return format_table(
        ["subflow", "pre (20-25s)", "congested (40-45s)", "L3 closed (65-70s)"],
        rows,
        title=f"Fig. 7 (beta={args.beta}, K={args.threshold})",
    ) + _epilogue(args, campaign)


def _run_table1(args) -> str:
    result = run_table1(
        _scenario(args), patterns=tuple(args.patterns), **_campaign_kwargs(args)
    )
    return result.format() + _epilogue(args, result.campaign)


def _run_table2(args) -> str:
    result = run_table2(_scenario(args), **_campaign_kwargs(args))
    return result.format() + _epilogue(args, result.campaign)


def _run_jct(args) -> str:
    result = run_jct(_scenario(args), **_campaign_kwargs(args))
    lines = [result.format_table3(), "", "CDFs:"]
    for label, jcts in result.jcts.items():
        lines.append(f"  {label:<7} {format_cdf(jcts, scale=1e3, unit='ms')}")
    return "\n".join(lines) + _epilogue(args, result.campaign)


def _run_rtt(args) -> str:
    result = run_fig10(args.pattern, _scenario(args), **_campaign_kwargs(args))
    return result.format() + _epilogue(args, result.campaign)


def _run_utilization(args) -> str:
    result = run_fig11(args.pattern, _scenario(args), **_campaign_kwargs(args))
    return result.format() + _epilogue(args, result.campaign)


def _run_workload(args) -> str:
    base = WorkloadScenario(
        workload=args.workload,
        arrival=args.arrival,
        duration=args.duration,
        size_scale=args.size_scale,
        background_elephants=args.elephants,
        k=args.k,
        seed=args.seed,
    )
    schemes = tuple(parse_scheme_spec(s) for s in args.schemes)
    result = run_workload_matrix(
        base, schemes=schemes, loads=tuple(args.loads), **_campaign_kwargs(args)
    )
    return result.format() + _epilogue(args, result.campaign)


def _run_incast(args) -> str:
    base = IncastSweepScenario(
        response_bytes=args.response_bytes,
        concurrent_jobs=args.concurrent,
        duration=args.duration,
        k=args.k,
        seed=args.seed,
    )
    schemes = tuple(parse_scheme_spec(s) for s in args.schemes)
    result = run_incast_sweep(
        base, schemes=schemes, fan_ins=tuple(args.fan_ins),
        **_campaign_kwargs(args)
    )
    return result.format() + _epilogue(args, result.campaign)


def _run_fluid(args) -> str:
    if args.crosscheck:
        from repro.fluid.crosscheck import run_crosschecks

        duration = seconds(args.duration) if args.duration else None
        checks = run_crosschecks(args.crosscheck, duration=duration)
        lines = [check.format() for check in checks]
        failed = [check for check in checks if not check.ok]
        lines.append(
            f"crosscheck: {len(checks) - len(failed)}/{len(checks)} ok"
        )
        if failed:
            raise SystemExit("\n".join(lines) + "\ncrosscheck: FAILED")
        return "\n".join(lines)

    scenario = FluidScenario(
        scheme=args.scheme,
        topology=args.topology,
        flows=args.flows,
        subflows=args.subflows,
        duration=seconds(args.duration if args.duration else 0.2),
        dt=seconds(args.dt),
        beta=args.beta,
        k=args.k,
        seed=args.seed,
        solver=args.solver,
    )
    result, campaign = _run_single("fluid", scenario, args)
    windows = result.steady_state_windows()
    goodputs = result.flow_goodputs_bps()
    rows = [
        ("mean window", f"{sum(windows) / len(windows):.2f} packets"),
        ("mean goodput", f"{sum(goodputs) / len(goodputs) / 1e6:.1f} Mbps"),
        ("min/max goodput",
         f"{min(goodputs) / 1e6:.1f} / {max(goodputs) / 1e6:.1f} Mbps"),
        ("max queue", f"{result.max_steady_state_queue():.1f} packets"),
        ("state updates", f"{result.events}"),
    ]
    return format_table(
        ["steady state", "value"], rows,
        title=f"fluid {scenario.label()} ({args.solver} solver)",
    ) + _epilogue(args, campaign)


def _run_export(args) -> str:
    from repro.experiments.export import (
        export_campaign_metrics,
        export_fattree_result,
    )

    scenario = FatTreeScenario(
        scheme=args.scheme,
        subflows=args.subflows,
        pattern=args.pattern,
        duration=args.duration,
        k=args.k,
        seed=args.seed,
    )
    result, campaign = _run_single("fattree", scenario, args)
    out = export_fattree_result(result, args.directory)
    export_campaign_metrics(campaign, args.directory)
    return (
        f"wrote {out}/summary.json, flows.csv, jct.csv, rtt_samples.csv, "
        f"links.csv, cells.csv  (mean goodput "
        f"{result.mean_goodput_bps() / 1e6:.1f} Mbps)"
        + _epilogue(args, campaign)
    )


def _run_profile(args) -> str:
    """Run one experiment kind under the engine profiler, no cache.

    Prints the per-component hot-spot table and heap health, and appends
    the cell's telemetry record (the same JSONL document ``--telemetry``
    produces for any experiment) under the output directory.
    """
    from repro.obs.telemetry import Telemetry

    if args.experiment == "fattree":
        config = FatTreeScenario(
            scheme=args.scheme, subflows=args.subflows, pattern=args.pattern,
            duration=args.duration, k=args.k, seed=args.seed,
        )
    else:
        config = {
            "fig1": Fig1Config,
            "fig4": Fig4Config,
            "fig6": Fig6Config,
            "fig7": Fig7Config,
        }[args.experiment]()
    telemetry = Telemetry(args.telemetry)
    # No cache: profiling a cache hit would measure nothing.  Campaign
    # exports $REPRO_PROFILE for the duration, so the cell runs profiled.
    campaign = Campaign(
        jobs=1, cache=None, use_cache=False, telemetry=telemetry
    ).run([RunSpec(args.experiment, config)])
    result = campaign.results[0]
    profile = result.metrics.profile
    if profile is None:  # pragma: no cover - defensive; execute() profiles
        return "profile: no profile captured"
    lines = [f"profile: {result.spec.label()}", "", profile.format(args.top)]
    sim_time = getattr(config, "duration", None)
    wall = result.metrics.wall_time_s
    if sim_time:
        lines.append(
            f"wall/sim: {wall:.2f}s wall for {sim_time:g}s simulated "
            f"({wall / sim_time:.1f}x real time)"
        )
    lines.append(f"[telemetry] appended to {telemetry.path}")
    return "\n".join(lines)


def _run_validate(args) -> str:
    from repro.validate.scenarios import run_golden_suite

    report, ok = run_golden_suite(
        names=args.scenarios or None, bless=args.bless
    )
    if not ok:
        # Print the report on the way out; main() turns this into exit 1.
        raise SystemExit(report + "\nvalidate: FAILED")
    return report + ("\nvalidate: blessed" if args.bless else "\nvalidate: OK")


_RUNNERS = {
    "fig1": _run_fig1,
    "fig4": _run_fig4,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "table1": _run_table1,
    "table2": _run_table2,
    "jct": _run_jct,
    "rtt": _run_rtt,
    "utilization": _run_utilization,
    "workload": _run_workload,
    "incast": _run_incast,
    "fluid": _run_fluid,
    "export": _run_export,
    "validate": _run_validate,
    "profile": _run_profile,
}


def _list_text() -> str:
    lines = [
        "available experiments (cells = independent simulations; size --jobs accordingly):"
    ]
    for name, (cells, help_text) in EXPERIMENT_INFO.items():
        cell_word = "cell " if cells == 1 else "cells"
        lines.append(f"  {name:<12} {cells:>2} {cell_word}  {help_text}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv[:1] == ["--list"]:
        print(_list_text())
        return 0
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(_list_text())
        return 0
    if args.command == "lint":
        from repro.lint.cli import main as lint_main

        # argparse.REMAINDER keeps a leading "--" separator; drop it.
        lint_args = [a for a in args.lint_args if a != "--"]
        return lint_main(lint_args)
    print(_RUNNERS[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
