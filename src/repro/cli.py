"""Command-line interface: run any of the paper's experiments directly.

Examples::

    python -m repro list
    python -m repro fig4 --beta 4 --time-scale 0.2
    python -m repro fig6 --beta 6
    python -m repro fig7 --beta 5 --threshold 15 --time-scale 0.05
    python -m repro fig1 --scheme dctcp --threshold 10 --interval 1.0
    python -m repro table1 --duration 0.3 --patterns permutation random
    python -m repro jct --duration 1.0
    python -m repro rtt --pattern random
    python -m repro utilization --pattern permutation

Every subcommand prints the same rows/series its benchmark counterpart
asserts on; the CLI exists so a single experiment can be explored (and
its knobs swept) without the pytest machinery.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.fattree_eval import FatTreeScenario
from repro.experiments.fig1_convergence import Fig1Config, run_fig1
from repro.experiments.fig4_traffic_shifting import Fig4Config, run_fig4
from repro.experiments.fig6_fairness import Fig6Config, run_fig6
from repro.experiments.fig7_rate_compensation import Fig7Config, run_fig7
from repro.experiments.fig9_jct_cdf import run_jct
from repro.experiments.fig10_rtt import run_fig10
from repro.experiments.fig11_utilization import run_fig11
from repro.experiments.reporting import format_cdf, format_table
from repro.experiments.table1_goodput import run_table1
from repro.experiments.table2_coexistence import run_table2

EXPERIMENTS = (
    "fig1", "fig4", "fig6", "fig7",
    "table1", "table2", "jct", "rtt", "utilization", "export",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from the XMP paper (CoNEXT'13).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    p = sub.add_parser("fig1", help="Fig. 1: convergence on one bottleneck")
    p.add_argument("--scheme", choices=("dctcp", "bos"), default="dctcp")
    p.add_argument("--threshold", type=int, default=10, help="marking K")
    p.add_argument("--beta", type=float, default=2.0)
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between joins/leaves (paper: 5)")

    p = sub.add_parser("fig4", help="Fig. 4: traffic shifting testbed")
    p.add_argument("--beta", type=float, default=4.0)
    p.add_argument("--time-scale", type=float, default=0.2)

    p = sub.add_parser("fig6", help="Fig. 6: fairness vs subflow count")
    p.add_argument("--beta", type=float, default=4.0)
    p.add_argument("--time-scale", type=float, default=0.2)

    p = sub.add_parser("fig7", help="Fig. 7: torus rate compensation")
    p.add_argument("--beta", type=float, default=4.0)
    p.add_argument("--threshold", type=int, default=20, help="marking K")
    p.add_argument("--time-scale", type=float, default=0.05)

    for name, help_text in (
        ("table1", "Table 1: goodput per scheme per pattern"),
        ("table2", "Table 2: XMP coexistence"),
        ("jct", "Fig. 9 / Table 3: incast job completion times"),
        ("rtt", "Fig. 10: RTT by category"),
        ("utilization", "Fig. 11: utilization by layer"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--duration", type=float, default=0.4)
        p.add_argument("--k", type=int, default=4, help="fat-tree arity")
        p.add_argument("--seed", type=int, default=1)
        if name == "table1":
            p.add_argument("--patterns", nargs="+",
                           default=["permutation", "random", "incast"])
        if name in ("rtt", "utilization"):
            p.add_argument("--pattern", default="permutation")

    p = sub.add_parser(
        "export",
        help="run one fat-tree scenario and dump JSON/CSV artifacts",
    )
    p.add_argument("directory", help="output directory")
    p.add_argument("--scheme", default="xmp")
    p.add_argument("--subflows", type=int, default=2)
    p.add_argument("--pattern", default="permutation",
                   choices=("permutation", "random", "incast"))
    p.add_argument("--duration", type=float, default=0.4)
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--seed", type=int, default=1)
    return parser


def _scenario(args: argparse.Namespace) -> FatTreeScenario:
    return FatTreeScenario(duration=args.duration, k=args.k, seed=args.seed)


def _run_fig1(args) -> str:
    result = run_fig1(Fig1Config(
        scheme=args.scheme, beta=args.beta,
        marking_threshold=args.threshold, interval=args.interval,
    ))
    rows = [
        (f"{start:.1f}-{end:.1f}s", active, f"{jain:.4f}")
        for start, end, active, jain in result.segments
    ]
    table = format_table(["segment", "active flows", "Jain"], rows,
                         title=f"Fig. 1 ({args.scheme}, K={args.threshold})")
    return f"{table}\nworst multi-flow Jain: {result.worst_jain():.4f}"


def _run_fig4(args) -> str:
    result = run_fig4(Fig4Config(beta=args.beta, time_scale=args.time_scale))
    rows = []
    for phase, (start, end) in result.phases().items():
        rows.append(
            (
                phase,
                f"{result.mean_normalized('flow2-1', start, end):.3f}",
                f"{result.mean_normalized('flow2-2', start, end):.3f}",
            )
        )
    return format_table(
        ["phase", "subflow 1", "subflow 2"], rows,
        title=f"Fig. 4 (beta={args.beta}): Flow 2 normalized rates",
    )


def _run_fig6(args) -> str:
    result = run_fig6(Fig6Config(beta=args.beta, time_scale=args.time_scale))
    s = args.time_scale
    rows = [
        (f"flow {flow}",
         f"{result.flow_rate_between(flow, 21 * s, 25 * s) / 1e6:.1f} Mbps")
        for flow in (1, 2, 3, 4)
    ]
    table = format_table(["flow", "rate (20-25s window)"], rows,
                         title=f"Fig. 6 (beta={args.beta})")
    return f"{table}\nJain index: {result.fairness_all_flows():.4f}"


def _run_fig7(args) -> str:
    result = run_fig7(Fig7Config(
        beta=args.beta, marking_threshold=args.threshold,
        time_scale=args.time_scale,
    ))
    s = args.time_scale
    rows = []
    for i in range(1, 6):
        for j in (1, 2):
            name = f"flow{i}-{j}"
            rows.append(
                (
                    name,
                    f"{result.normalized_mean(name, 20 * s, 25 * s):.3f}",
                    f"{result.normalized_mean(name, 40 * s, 45 * s):.3f}",
                    f"{result.normalized_mean(name, 65 * s, 70 * s):.3f}",
                )
            )
    return format_table(
        ["subflow", "pre (20-25s)", "congested (40-45s)", "L3 closed (65-70s)"],
        rows,
        title=f"Fig. 7 (beta={args.beta}, K={args.threshold})",
    )


def _run_table1(args) -> str:
    result = run_table1(_scenario(args), patterns=tuple(args.patterns))
    return result.format()


def _run_table2(args) -> str:
    return run_table2(_scenario(args)).format()


def _run_jct(args) -> str:
    result = run_jct(_scenario(args))
    lines = [result.format_table3(), "", "CDFs:"]
    for label, jcts in result.jcts.items():
        lines.append(f"  {label:<7} {format_cdf(jcts, scale=1e3, unit='ms')}")
    return "\n".join(lines)


def _run_rtt(args) -> str:
    return run_fig10(args.pattern, _scenario(args)).format()


def _run_utilization(args) -> str:
    return run_fig11(args.pattern, _scenario(args)).format()


def _run_export(args) -> str:
    from repro.experiments.export import export_fattree_result
    from repro.experiments.fattree_eval import run_fattree

    scenario = FatTreeScenario(
        scheme=args.scheme,
        subflows=args.subflows,
        pattern=args.pattern,
        duration=args.duration,
        k=args.k,
        seed=args.seed,
    )
    result = run_fattree(scenario)
    out = export_fattree_result(result, args.directory)
    return (
        f"wrote {out}/summary.json, flows.csv, jct.csv, rtt_samples.csv, "
        f"links.csv  (mean goodput "
        f"{result.mean_goodput_bps() / 1e6:.1f} Mbps)"
    )


_RUNNERS = {
    "fig1": _run_fig1,
    "fig4": _run_fig4,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "table1": _run_table1,
    "table2": _run_table2,
    "jct": _run_jct,
    "rtt": _run_rtt,
    "utilization": _run_utilization,
    "export": _run_export,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0
    print(_RUNNERS[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
