"""Single-bottleneck topology: N sources, N sinks, one shared link.

Used by the Fig. 1 convergence/fairness study (4 flows, 1 Gbps, RTT
225 µs) and the Fig. 3(b)/Fig. 6 fairness experiment (4 flows with
different subflow counts, 300 Mbps, RTT 1.8 ms).

Geometry::

    S0 ─┐                   ┌─ D0
    S1 ─┤                   ├─ D1
        ├─ SWL ══════ SWR ──┤
    ...                      ...

Access links run at ten times the bottleneck rate with deep DropTail
queues so that marking and queueing happen only at the bottleneck; the
round-trip propagation time is split so the no-load RTT matches the
requested value.
"""

from __future__ import annotations

from typing import Optional

from repro.net.network import Network
from repro.net.queue import DropTailQueue, ThresholdECNQueue
from repro.net.routing import Path


class BottleneckNetwork(Network):
    """A :class:`Network` with the bottleneck's parameters attached."""

    def __init__(self) -> None:
        super().__init__()
        self.num_pairs = 0
        self.bottleneck_rate_bps = 0.0
        self.base_rtt = 0.0
        self.forward_bottleneck = None
        self.backward_bottleneck = None

    def source(self, index: int) -> str:
        """Name of the ``index``-th source host."""
        return f"S{index}"

    def sink(self, index: int) -> str:
        """Name of the ``index``-th sink host."""
        return f"D{index}"

    def flow_path(self, index: int) -> Path:
        """The unique path from source ``index`` to sink ``index``."""
        paths = self.paths(self.source(index), self.sink(index))
        if not paths:
            raise RuntimeError(f"no path for pair {index}")
        return paths[0]


def build_single_bottleneck(
    num_pairs: int = 4,
    bottleneck_rate_bps: float = 1e9,
    rtt: float = 225e-6,
    queue_capacity: int = 100,
    marking_threshold: Optional[int] = 10,
    access_queue_capacity: int = 1000,
) -> BottleneckNetwork:
    """Build the topology; ``marking_threshold=None`` makes it pure DropTail.

    The bottleneck queue in each direction is a
    :class:`~repro.net.queue.ThresholdECNQueue` with the given K (the
    paper's packet-marking rule); access links never mark.
    """
    if num_pairs < 1:
        raise ValueError(f"need at least one pair, got {num_pairs}")
    if rtt <= 0:
        raise ValueError(f"rtt must be positive, got {rtt}")
    net = BottleneckNetwork()
    net.num_pairs = num_pairs
    net.bottleneck_rate_bps = bottleneck_rate_bps
    net.base_rtt = rtt

    left = net.add_switch("SWL")
    right = net.add_switch("SWR")

    # One-way propagation budget rtt/2, split equally over the three hops.
    hop_delay = rtt / 6.0
    access_rate = bottleneck_rate_bps * 10.0

    def bottleneck_queue() -> DropTailQueue:
        if marking_threshold is None:
            return DropTailQueue(queue_capacity)
        return ThresholdECNQueue(queue_capacity, marking_threshold)

    net.forward_bottleneck, net.backward_bottleneck = net.connect(
        left, right, bottleneck_rate_bps, hop_delay,
        queue_factory=bottleneck_queue, layer="bottleneck",
    )

    def access_queue() -> DropTailQueue:
        return DropTailQueue(access_queue_capacity)

    for index in range(num_pairs):
        source = net.add_host(f"S{index}")
        sink = net.add_host(f"D{index}")
        net.connect(source, left, access_rate, hop_delay,
                    queue_factory=access_queue, layer="access")
        net.connect(right, sink, access_rate, hop_delay,
                    queue_factory=access_queue, layer="access")
    return net


__all__ = ["BottleneckNetwork", "build_single_bottleneck"]
