"""The Fig. 5 torus: a ring of five bottlenecks for rate compensation.

Bottleneck links L1..L5 have capacities 0.8, 1.2, 2, 1.5 and 0.5 Gbps.
Flow *i* (1-based) has two subflows: one across L_i, one across L_{i+1}
(wrapping), so every bottleneck is shared by two neighbouring flows —
which is what lets a congestion event on L3 ripple around the ring
("attenuated Dominos").  Four background host pairs sit on L3 for the
25-45 s perturbation, and L3 itself can be taken down (the 60 s event).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.net.link import Link
from repro.net.network import Network
from repro.net.queue import DropTailQueue, ThresholdECNQueue
from repro.net.routing import Path
from repro.sim.units import Seconds, gigabits_per_second

#: The paper's bottleneck capacities, left to right, bits/second.
DEFAULT_CAPACITIES = (0.8e9, 1.2e9, 2.0e9, 1.5e9, 0.5e9)


class TorusNetwork(Network):
    """Network plus helpers naming the paper's flows and links."""

    def __init__(self) -> None:
        super().__init__()
        self.num_bottlenecks = 0
        self.base_rtt = 0.0
        self.bottlenecks: List[Link] = []

    def bottleneck(self, index: int) -> Link:
        """Forward direction of L{index} (1-based, as in the paper)."""
        return self.bottlenecks[index - 1]

    def flow_paths(self, index: int) -> List[Path]:
        """The two subflow paths of Flow ``index`` (1-based).

        Subflow 1 crosses L_index; subflow 2 crosses L_{index+1} (wrapped),
        matching the paper's left-to-right, top-down numbering.
        """
        n = self.num_bottlenecks
        first = self._path_via(index, index)
        second = self._path_via(index, index % n + 1)
        return [first, second]

    def _path_via(self, flow_index: int, bottleneck_index: int) -> Path:
        src = f"S{flow_index}"
        dst = f"D{flow_index}"
        for path in self.paths(src, dst):
            if self.bottlenecks[bottleneck_index - 1] in path:
                return path
        raise RuntimeError(
            f"no path for flow {flow_index} via L{bottleneck_index}"
        )

    def background_path(self, index: int) -> Path:
        """BG{index} -> BGD{index}, all crossing L3 (1-based index)."""
        return self.paths(f"BG{index}", f"BGD{index}")[0]


def build_torus(
    capacities: Sequence[float] = DEFAULT_CAPACITIES,
    rtt: Seconds = 350e-6,
    queue_capacity: int = 100,
    marking_threshold: int = 20,
    num_background: int = 4,
) -> TorusNetwork:
    """Build the torus with the paper's §5.1 parameters as defaults.

    Every path's no-load RTT is ``rtt`` (350 µs in the paper, giving BDPs
    between 15 and 60 packets across the five capacities).
    """
    if len(capacities) < 2:
        raise ValueError("need at least two bottlenecks")
    net = TorusNetwork()
    net.num_bottlenecks = len(capacities)
    net.base_rtt = rtt

    hop_delay = rtt / 6.0
    access_rate = gigabits_per_second(10)

    def marking_queue() -> DropTailQueue:
        return ThresholdECNQueue(queue_capacity, marking_threshold)

    def access_queue() -> DropTailQueue:
        return DropTailQueue(1000)

    heads = []
    tails = []
    for i, capacity in enumerate(capacities, start=1):
        head = net.add_switch(f"A{i}")
        tail = net.add_switch(f"B{i}")
        forward, _ = net.connect(
            head, tail, capacity, hop_delay,
            queue_factory=marking_queue, layer="bottleneck",
        )
        net.bottlenecks.append(forward)
        heads.append(head)
        tails.append(tail)

    n = len(capacities)
    for i in range(1, n + 1):
        src = net.add_host(f"S{i}")
        dst = net.add_host(f"D{i}")
        # Subflow 1 via L_i, subflow 2 via L_{i+1} (wrapping).
        for j in (i, i % n + 1):
            net.connect(src, heads[j - 1], access_rate, hop_delay,
                        queue_factory=access_queue, layer="access")
            net.connect(tails[j - 1], dst, access_rate, hop_delay,
                        queue_factory=access_queue, layer="access")

    l3_head = heads[2] if n >= 3 else heads[0]
    l3_tail = tails[2] if n >= 3 else tails[0]
    for b in range(1, num_background + 1):
        src = net.add_host(f"BG{b}")
        dst = net.add_host(f"BGD{b}")
        net.connect(src, l3_head, access_rate, hop_delay,
                    queue_factory=access_queue, layer="access")
        net.connect(l3_tail, dst, access_rate, hop_delay,
                    queue_factory=access_queue, layer="access")
    return net


__all__ = ["TorusNetwork", "build_torus", "DEFAULT_CAPACITIES"]
