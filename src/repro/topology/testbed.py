"""The Fig. 3(a) traffic-shifting testbed.

Two independent 300 Mbps bottlenecks (the paper's DummyNet boxes DN1 and
DN2).  Flow 1 crosses DN1, Flow 3 crosses DN2, and Flow 2 is multihomed —
one subflow over each bottleneck.  A background host pair sits on each
bottleneck for the 10-20 s / 20-30 s perturbations of Fig. 4.

Geometry (forward direction)::

    S1 ──┐                      ┌── D1
    S2 ──┤ A1 ═══ 300M ═══ B1 ──┤── D2
    BG1 ─┘                      └── BGD1
    S2 ──┐                      ┌── D2
    S3 ──┤ A2 ═══ 300M ═══ B2 ──┤── D3
    BG2 ─┘                      └── BGD2

(S2 and D2 attach to both sides — the multihoming.)
"""

from __future__ import annotations

from repro.net.network import Network
from repro.net.queue import DropTailQueue, ThresholdECNQueue
from repro.net.routing import Path
from repro.sim.units import BitsPerSecond, Seconds, gigabits_per_second


class ShiftingTestbed(Network):
    """Network plus named paths for the Fig. 4 experiment."""

    def __init__(self) -> None:
        super().__init__()
        self.bottleneck_rate_bps = 0.0
        self.base_rtt = 0.0

    # Paths -------------------------------------------------------------

    def path_flow1(self) -> Path:
        """S1 -> D1 via DN1."""
        return self.paths("S1", "D1")[0]

    def path_flow3(self) -> Path:
        """S3 -> D3 via DN2."""
        return self.paths("S3", "D3")[0]

    def paths_flow2(self) -> list:
        """S2 -> D2: one path via DN1, one via DN2 (in that order)."""
        all_paths = self.paths("S2", "D2")
        if len(all_paths) != 2:
            raise RuntimeError(f"expected 2 paths for flow 2, got {len(all_paths)}")
        # Order deterministically: the path through A1 first.
        return sorted(all_paths, key=lambda p: p[0].dst.name)

    def path_background(self, bottleneck: int) -> Path:
        """BG{i} -> BGD{i} via DN{i} (``bottleneck`` is 1 or 2)."""
        return self.paths(f"BG{bottleneck}", f"BGD{bottleneck}")[0]


def build_shifting_testbed(
    bottleneck_rate_bps: BitsPerSecond = 300e6,
    rtt: Seconds = 1.8e-3,
    queue_capacity: int = 100,
    marking_threshold: int = 15,
) -> ShiftingTestbed:
    """Build the testbed with the paper's §4 parameters as defaults.

    300 Mbps bottlenecks, 1.8 ms average RTT (BDP ≈ 45 packets), K = 15,
    100-packet queues.
    """
    net = ShiftingTestbed()
    net.bottleneck_rate_bps = bottleneck_rate_bps
    net.base_rtt = rtt

    hop_delay = rtt / 6.0
    access_rate = gigabits_per_second(1)

    def bottleneck_queue() -> DropTailQueue:
        return ThresholdECNQueue(queue_capacity, marking_threshold)

    def access_queue() -> DropTailQueue:
        return DropTailQueue(1000)

    switches = {}
    for i in (1, 2):
        switches[f"A{i}"] = net.add_switch(f"A{i}")
        switches[f"B{i}"] = net.add_switch(f"B{i}")
        net.connect(
            switches[f"A{i}"], switches[f"B{i}"], bottleneck_rate_bps,
            hop_delay, queue_factory=bottleneck_queue, layer="bottleneck",
        )

    def attach(host_name: str, switch_name: str) -> None:
        host = net.hosts.get(host_name) or net.add_host(host_name)
        net.connect(host, switches[switch_name], access_rate, hop_delay,
                    queue_factory=access_queue, layer="access")

    attach("S1", "A1")
    attach("D1", "B1")
    attach("S3", "A2")
    attach("D3", "B2")
    attach("S2", "A1")
    attach("S2", "A2")
    attach("D2", "B1")
    attach("D2", "B2")
    attach("BG1", "A1")
    attach("BGD1", "B1")
    attach("BG2", "A2")
    attach("BGD2", "B2")
    return net


__all__ = ["ShiftingTestbed", "build_shifting_testbed"]
