"""Topology builders for every network the paper evaluates on.

* :func:`~repro.topology.bottleneck.build_single_bottleneck` — N host
  pairs sharing one link (Fig. 1 convergence, Fig. 3(b)/Fig. 6 fairness).
* :func:`~repro.topology.testbed.build_shifting_testbed` — the Fig. 3(a)
  two-bottleneck testbed for traffic shifting (Fig. 4).
* :func:`~repro.topology.torus.build_torus` — the Fig. 5 ring of five
  bottlenecks for rate compensation (Fig. 7).
* :func:`~repro.topology.fattree.build_fattree` — the k-ary fat tree used
  for the DCN evaluation (Figs. 8-11, Tables 1-3).
"""

from repro.topology.bottleneck import BottleneckNetwork, build_single_bottleneck
from repro.topology.testbed import ShiftingTestbed, build_shifting_testbed
from repro.topology.torus import TorusNetwork, build_torus
from repro.topology.dumbbell import DumbbellNetwork, build_dumbbell
from repro.topology.fattree import FatTreeNetwork, build_fattree

__all__ = [
    "BottleneckNetwork",
    "build_single_bottleneck",
    "ShiftingTestbed",
    "build_shifting_testbed",
    "TorusNetwork",
    "build_torus",
    "FatTreeNetwork",
    "build_fattree",
    "DumbbellNetwork",
    "build_dumbbell",
]
