"""The k-ary fat tree (Al-Fares et al., SIGCOMM 2008) the paper evaluates in.

For port count ``k`` (even): ``k`` pods; each pod has ``k/2`` edge (rack)
switches and ``k/2`` aggregation switches; ``(k/2)^2`` core switches; each
edge switch hosts ``k/2`` machines.  Between inter-pod hosts there are
``(k/2)^2`` equal-cost paths — the path diversity MPTCP exploits.

The paper's instance is k=8 (128 hosts, 80 switches); our experiments
default to k=4 (16 hosts, 20 switches) for wall-clock reasons, with the
per-link parameters kept at the paper's values: 1 Gbps everywhere, one-way
delays of 20/30/40 µs at the rack/aggregation/core layer (no-load RTTs
between ~80 µs inner-rack and ~360 µs inter-pod plus serialization — the
paper's "105 µs to 435 µs"), marking threshold K=10, queues of 100 packets.

Hosts are named ``h_<pod>_<edge>_<index>``; link layers are tagged
``rack`` / ``aggregation`` / ``core`` for Fig. 11's per-layer utilization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.link import Link
from repro.net.network import Network
from repro.net.queue import DropTailQueue, ThresholdECNQueue
from repro.net.routing import Path
from repro.sim.units import BitsPerSecond, Seconds


class FatTreeNetwork(Network):
    """Network plus fat-tree metadata (k, host naming, flow categories)."""

    def __init__(self) -> None:
        super().__init__()
        self.k = 0
        self.host_names: List[str] = []
        #: Per-port rate; set by :func:`build_fattree` (paper: 1 Gbps).
        self.link_rate_bps: BitsPerSecond = 0.0
        self._link_by_name: Dict[str, Link] = {}
        self._link_map_size = 0

    def bisection_bandwidth_bps(self) -> BitsPerSecond:
        """Full bisection bandwidth of the rearrangeably non-blocking tree.

        A k-ary fat tree hosts ``k^3/4`` machines and can carry half of
        them sending full-rate across the bisection: ``(k^3/8) * rate``.
        The workload layer's load calibration
        (:func:`repro.workloads.arrivals.workload_capacity_bps`) doubles
        this back to the aggregate host access bandwidth.
        """
        return (self.k ** 3 / 8.0) * self.link_rate_bps

    @staticmethod
    def parse_host(name: str) -> Tuple[int, int, int]:
        """``h_<pod>_<edge>_<index>`` -> (pod, edge, index)."""
        _, pod, edge, index = name.split("_")
        return int(pod), int(edge), int(index)

    def category(self, src: str, dst: str) -> str:
        """The paper's flow categories (§5.2.2).

        ``inner-rack`` (same edge switch), ``inter-rack`` (same pod,
        different racks) or ``inter-pod``.
        """
        src_pod, src_edge, _ = self.parse_host(src)
        dst_pod, dst_edge, _ = self.parse_host(dst)
        if src_pod != dst_pod:
            return "inter-pod"
        if src_edge != dst_edge:
            return "inter-rack"
        return "inner-rack"

    def same_rack(self, src: str, dst: str) -> bool:
        """Whether two hosts hang off the same edge switch."""
        return self.category(src, dst) == "inner-rack"

    # ------------------------------------------------------------------
    # Combinatorial path construction
    # ------------------------------------------------------------------
    #
    # The generic BFS+DFS in repro.net.routing costs O(V+E) per host
    # pair — ~20 s of setup for 10^4 flows at k=16.  Fat-tree shortest
    # paths are fully determined by the host coordinates, so they can
    # be constructed directly.  The construction reproduces the DFS
    # enumeration order *exactly* (aggregation switches ascending, then
    # cores ascending — the adjacency insertion order of
    # :func:`build_fattree`), so ECMP/DistinctPath selections, and with
    # them every golden trace, are bit-identical to the generic path
    # (pinned by tests/test_fluid_backend.py's equality test).

    def _link(self, src_name: str, dst_name: str) -> Link:
        if self._link_map_size != len(self.links):
            self._link_by_name = {link.name: link for link in self.links}
            self._link_map_size = len(self.links)
        return self._link_by_name[f"{src_name}->{dst_name}"]

    def _construct_paths(
        self, src: str, dst: str, max_paths: int
    ) -> Optional[List[Path]]:
        """Shortest host-to-host paths by coordinates; None if not hosts."""
        if src not in self.hosts or dst not in self.hosts:
            return None
        if src == dst:
            return [()]
        src_pod, src_edge, _ = self.parse_host(src)
        dst_pod, dst_edge, _ = self.parse_host(dst)
        half = self.k // 2
        src_edge_name = f"edge_{src_pod}_{src_edge}"
        dst_edge_name = f"edge_{dst_pod}_{dst_edge}"
        up = self._link(src, src_edge_name)
        down = self._link(dst_edge_name, dst)
        if src_pod == dst_pod and src_edge == dst_edge:
            return [(up, down)]
        paths: List[Path] = []
        if src_pod == dst_pod:
            for a in range(half):
                if len(paths) >= max_paths:
                    break
                agg = f"agg_{src_pod}_{a}"
                paths.append(
                    (
                        up,
                        self._link(src_edge_name, agg),
                        self._link(agg, dst_edge_name),
                        down,
                    )
                )
            return paths
        for a in range(half):
            if len(paths) >= max_paths:
                break
            src_agg = f"agg_{src_pod}_{a}"
            dst_agg = f"agg_{dst_pod}_{a}"
            edge_up = self._link(src_edge_name, src_agg)
            edge_down = self._link(dst_agg, dst_edge_name)
            for j in range(half):
                if len(paths) >= max_paths:
                    break
                core = f"core_{a}_{j}"
                paths.append(
                    (
                        up,
                        edge_up,
                        self._link(src_agg, core),
                        self._link(core, dst_agg),
                        edge_down,
                        down,
                    )
                )
        return paths

    def paths(self, src: str, dst: str, max_paths: int = 64) -> List[Path]:
        """All shortest paths, constructed combinatorially for host pairs.

        Switch endpoints (or malformed names) fall back to the generic
        BFS enumeration of :class:`~repro.net.network.Network`.
        """
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        try:
            constructed = self._construct_paths(src, dst, max_paths)
        except (KeyError, ValueError):
            constructed = None
        if constructed is None:
            return super().paths(src, dst, max_paths)
        self._path_cache[key] = constructed
        return constructed


def build_fattree(
    k: int = 4,
    link_rate_bps: BitsPerSecond = 1e9,
    rack_delay: Seconds = 20e-6,
    aggregation_delay: Seconds = 30e-6,
    core_delay: Seconds = 40e-6,
    queue_capacity: int = 100,
    marking_threshold: int = 10,
) -> FatTreeNetwork:
    """Build a k-ary fat tree with the paper's §5.2.1 defaults."""
    if k < 2 or k % 2 != 0:
        raise ValueError(f"k must be an even integer >= 2, got {k}")
    net = FatTreeNetwork()
    net.k = k
    net.link_rate_bps = link_rate_bps
    half = k // 2

    def queue() -> DropTailQueue:
        return ThresholdECNQueue(queue_capacity, marking_threshold)

    cores = [
        net.add_switch(f"core_{i}_{j}") for i in range(half) for j in range(half)
    ]

    for pod in range(k):
        aggs = [net.add_switch(f"agg_{pod}_{a}") for a in range(half)]
        edges = [net.add_switch(f"edge_{pod}_{e}") for e in range(half)]
        for a, agg in enumerate(aggs):
            # Aggregation switch a connects to cores a*half .. a*half+half-1.
            for j in range(half):
                core = cores[a * half + j]
                net.connect(agg, core, link_rate_bps, core_delay,
                            queue_factory=queue, layer="core")
            for edge in edges:
                net.connect(edge, agg, link_rate_bps, aggregation_delay,
                            queue_factory=queue, layer="aggregation")
        for e, edge in enumerate(edges):
            for h in range(half):
                host = net.add_host(f"h_{pod}_{e}_{h}")
                net.connect(host, edge, link_rate_bps, rack_delay,
                            queue_factory=queue, layer="rack")
                net.host_names.append(host.name)
    return net


__all__ = ["FatTreeNetwork", "build_fattree"]
