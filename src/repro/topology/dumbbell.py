"""Dumbbell topology: N pairs over one bottleneck with per-pair RTTs.

A generalization of :mod:`repro.topology.bottleneck` where each
source/sink pair can have its own base RTT — the canonical setup for
RTT-fairness studies (window-based AIMD favours short-RTT flows; BOS's
once-per-round growth inherits that bias, which multipath RTT mismatch
makes relevant to XMP).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.net.network import Network
from repro.net.queue import DropTailQueue, ThresholdECNQueue
from repro.net.routing import Path
from repro.sim.units import BitsPerSecond, Seconds


class DumbbellNetwork(Network):
    """Network plus the per-pair RTT table."""

    def __init__(self) -> None:
        super().__init__()
        self.bottleneck_rate_bps = 0.0
        self.pair_rtts: list = []
        self.forward_bottleneck = None
        self.backward_bottleneck = None

    def flow_path(self, index: int) -> Path:
        """The unique path from source ``index`` to sink ``index``."""
        paths = self.paths(f"S{index}", f"D{index}")
        if not paths:
            raise RuntimeError(f"no path for pair {index}")
        return paths[0]


def build_dumbbell(
    pair_rtts: Sequence[float],
    bottleneck_rate_bps: BitsPerSecond = 1e9,
    queue_capacity: int = 100,
    marking_threshold: Optional[int] = 10,
    bottleneck_delay: Optional[Seconds] = None,
) -> DumbbellNetwork:
    """Build a dumbbell whose pair ``i`` has base RTT ``pair_rtts[i]``.

    The bottleneck link contributes ``bottleneck_delay`` (defaults to a
    third of the smallest pair RTT, split over the round trip); each
    pair's access links absorb the remainder of that pair's RTT budget.
    """
    if not pair_rtts:
        raise ValueError("need at least one pair")
    if any(rtt <= 0 for rtt in pair_rtts):
        raise ValueError("all RTTs must be positive")
    net = DumbbellNetwork()
    net.bottleneck_rate_bps = bottleneck_rate_bps
    net.pair_rtts = list(pair_rtts)

    min_rtt = min(pair_rtts)
    if bottleneck_delay is None:
        bottleneck_delay = min_rtt / 6.0
    if 2 * bottleneck_delay >= min_rtt:
        raise ValueError("bottleneck delay exceeds the smallest RTT budget")

    left = net.add_switch("SWL")
    right = net.add_switch("SWR")

    def bottleneck_queue() -> DropTailQueue:
        if marking_threshold is None:
            return DropTailQueue(queue_capacity)
        return ThresholdECNQueue(queue_capacity, marking_threshold)

    net.forward_bottleneck, net.backward_bottleneck = net.connect(
        left, right, bottleneck_rate_bps, bottleneck_delay,
        queue_factory=bottleneck_queue, layer="bottleneck",
    )

    access_rate = bottleneck_rate_bps * 10.0
    for index, rtt in enumerate(pair_rtts):
        # One-way budget: rtt/2 = access_src + bottleneck + access_dst.
        access_delay = (rtt / 2.0 - bottleneck_delay) / 2.0
        source = net.add_host(f"S{index}")
        sink = net.add_host(f"D{index}")
        net.connect(source, left, access_rate, access_delay,
                    queue_factory=lambda: DropTailQueue(1000), layer="access")
        net.connect(right, sink, access_rate, access_delay,
                    queue_factory=lambda: DropTailQueue(1000), layer="access")
    return net


__all__ = ["DumbbellNetwork", "build_dumbbell"]
