"""repro — a packet-level reproduction of *Explicit Multipath Congestion
Control for Data Center Networks* (XMP; Cao, Xu, Fu, Dong — CoNEXT 2013).

Public API tour:

* :class:`~repro.sim.Simulator` — the discrete-event engine.
* :class:`~repro.net.Network` — topology container (hosts, switches,
  links, ECN queues); ready-made topologies in :mod:`repro.topology`.
* :class:`~repro.mptcp.MptcpConnection` — a transfer over one or more
  pinned paths with a pluggable scheme: ``"xmp"`` (the paper),
  ``"lia"``, ``"olia"``, ``"dctcp"``, ``"tcp"``, …
* :mod:`repro.core` — the paper's algorithms (BOS, TraSh) and the
  closed-form model (Eqs. 1-9).
* :mod:`repro.traffic` — the paper's Permutation / Random / Incast
  workloads; :mod:`repro.metrics` — goodput, RTT, utilization, JCT.
* :mod:`repro.experiments` — a driver per paper figure/table.
* :mod:`repro.runner` — the campaign layer all drivers run through:
  :class:`~repro.runner.RunSpec` grids, process-parallel
  :class:`~repro.runner.Campaign` execution, two-tier run caching.

Quickstart::

    from repro import Network, MptcpConnection
    from repro.topology import build_fattree

    net = build_fattree(k=4, marking_threshold=10)
    paths = net.paths("h_0_0_0", "h_2_1_1")
    conn = MptcpConnection(net, "h_0_0_0", "h_2_1_1", paths[:2],
                           scheme="xmp", size_bytes=10_000_000)
    conn.start()
    net.sim.run(until=2.0)
    print(conn.goodput_bps() / 1e6, "Mbps")
"""

from repro.sim import Simulator
from repro.net import Network
from repro.mptcp import MptcpConnection
from repro.core import BosCC, TraSh
from repro.transport import DctcpCC, RenoCC, SinglePathFlow

__version__ = "1.1.0"

__all__ = [
    "Simulator",
    "Network",
    "MptcpConnection",
    "BosCC",
    "TraSh",
    "DctcpCC",
    "RenoCC",
    "SinglePathFlow",
    "__version__",
]
