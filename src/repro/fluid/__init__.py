"""The fluid simulation backend: long-lived flows as ODEs over a topology.

The packet engine (``repro.sim`` + ``repro.net``) simulates every
segment; this package simulates the *fluid limit* of the same system —
per-subflow window ODEs (paper Eq. 2, extended with TraSh coupling,
Eq. 9) coupled to per-link queue/marking state extracted from the same
``repro.topology`` builders and path enumeration the packet engine uses.
A :class:`~repro.fluid.backend.FluidScenario` is a frozen RunSpec config
like any packet scenario, so fluid cells flow through the same
Campaign/cache/telemetry machinery (``kind="fluid"``).

Fidelity contract: the fluid backend reproduces *steady-state* windows,
queues and per-flow rates of long-lived flows (cross-validated against
the packet engine in ``repro.fluid.crosscheck`` within documented
tolerances); it does not model per-packet effects — retransmission
timeouts, slow start, incast synchronization.  Use it where the packet
engine cannot go: k=16/k=32 fat trees with 10^4-10^6 concurrent flows.
"""

from repro.fluid.backend import FluidResult, FluidScenario, run_fluid
from repro.fluid.model import FluidLink, FluidModel, FluidSubflow, model_from_network
from repro.fluid.solver import FluidTrajectory, integrate_model, vector_available

__all__ = [
    "FluidLink",
    "FluidModel",
    "FluidResult",
    "FluidScenario",
    "FluidSubflow",
    "FluidTrajectory",
    "integrate_model",
    "model_from_network",
    "run_fluid",
    "vector_available",
]
