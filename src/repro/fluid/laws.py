"""Per-scheme fluid window laws, shared with the packet-level controllers.

Each law is the fluid (per-second drift) form of a packet-level scheme,
built from the *same* pure formulas the packet controllers use:

* ``xmp`` — Eq. 2's BOS ODE (:func:`repro.core.fluid.bos_window_ode`)
  with delta from TraSh's Eq. 9 (:func:`repro.core.trash.trash_delta`);
* ``bos-uncoupled`` — Eq. 2 with delta = 1;
* ``lia`` — RFC 6356's linked increase with alpha from
  :func:`repro.mptcp.lia.lia_alpha` and the Reno halving as drift;
* ``dctcp`` — per-ACK increase 1/w plus the alpha-proportional cut,
  with the marked-fraction EWMA (gain
  :data:`repro.transport.dctcp.DEFAULT_GAIN`) itself integrated as an
  ODE.

The scalar functions here are the reference semantics; the vector
solver in :mod:`repro.fluid.solver` mirrors them with numpy and is
pinned to them by an equality test (``tests/test_fluid_backend.py``).
"""

from __future__ import annotations

from repro.core.bos import DEFAULT_BETA
from repro.core.fluid import bos_window_ode
from repro.core.trash import trash_delta
from repro.mptcp.lia import lia_alpha
from repro.sim.units import Seconds
from repro.transport.dctcp import DEFAULT_GAIN

#: Scheme names accepted by the fluid backend (packet-registry spelling,
#: see :func:`repro.mptcp.coupling.create_coupling`).
FLUID_SCHEMES = ("xmp", "bos-uncoupled", "lia", "dctcp")

#: Window floor in packets — matches the packet engine's one-segment
#: minimum and the core integrators' clamp.
MIN_WINDOW = 1.0

#: Width (packets) of the logistic marking knee, the default of
#: :func:`repro.core.fluid.threshold_marking_probability`.
MARKING_WIDTH = 2.0


def scheme_uses_ecn(scheme: str) -> bool:
    """Whether a scheme reacts to the ECN knee K (vs. buffer-full loss)."""
    if scheme not in FLUID_SCHEMES:
        raise ValueError(
            f"unknown fluid scheme {scheme!r} (one of {FLUID_SCHEMES})"
        )
    return scheme != "lia"


def xmp_window_drift(
    w: float,
    p: float,
    rtt: Seconds,
    flow_rate: float,
    flow_min_rtt: Seconds,
    beta: float = DEFAULT_BETA,
) -> float:
    """XMP: Eq. 2 with TraSh's delta (Eq. 9) from the flow aggregates.

    ``flow_rate`` is the flow's total fluid rate in packets/s (the
    paper's ``y_s``) and ``flow_min_rtt`` its minimum subflow RTT
    (``T_s``); both in the same units :func:`trash_delta` expects.
    """
    delta = trash_delta(w, flow_rate, flow_min_rtt)
    return bos_window_ode(w, p, delta, beta, rtt)


def bos_window_drift(
    w: float, p: float, rtt: Seconds, beta: float = DEFAULT_BETA
) -> float:
    """Uncoupled BOS: Eq. 2 with delta = 1."""
    return bos_window_ode(w, p, 1.0, beta, rtt)


def lia_window_drift(
    w: float, p: float, rtt: Seconds, alpha: float, flow_total_window: float
) -> float:
    """LIA: linked increase per ACK, Reno halving at the loss rate.

    Per-ACK increase ``min(alpha/w_total, 1/w)`` times the ACK rate
    ``x(1-p)``, minus the halving ``w/2`` at the per-round loss rate
    ``x p`` — with the packet side's fallback to the uncoupled ``1/w``
    increase while alpha is unmeasurable.
    """
    x = w / rtt
    own = 1.0 / max(w, 1.0)
    if alpha > 0.0 and flow_total_window > 0.0:
        increase = min(alpha / flow_total_window, own)
    else:
        increase = own
    return x * (1.0 - p) * increase - x * p * (w / 2.0)


def dctcp_window_drift(
    w: float, p: float, rtt: Seconds, alpha: float
) -> float:
    """DCTCP: additive increase, alpha-proportional cut at the mark rate."""
    return (1.0 - p) / rtt - (w * alpha / 2.0) * (p / rtt)


def dctcp_alpha_drift(
    alpha: float, p: float, rtt: Seconds, gain: float = DEFAULT_GAIN
) -> float:
    """DCTCP's marked-fraction EWMA as an ODE: one gain step per RTT."""
    return gain * (p - alpha) / rtt


__all__ = [
    "FLUID_SCHEMES",
    "MARKING_WIDTH",
    "MIN_WINDOW",
    "bos_window_drift",
    "dctcp_alpha_drift",
    "dctcp_window_drift",
    "lia_alpha",
    "lia_window_drift",
    "scheme_uses_ecn",
    "xmp_window_drift",
]
