"""The ``fluid`` experiment kind: RunSpec-compatible fluid scenarios.

A :class:`FluidScenario` is a frozen config like any packet scenario —
hashable, picklable, content-fingerprintable — so fluid cells run
through the same Campaign/cache/telemetry machinery.  ``_simulate``
builds the *same* topology the packet engine would (via
``repro.topology``), extracts the fluid model from its links and path
enumeration, and integrates it.

Scenario knobs deliberately mirror the packet drivers: ``bottleneck``
is the Fig. 1 dumbbell (N pairs, one marked link), ``fattree`` the
§5.2 fabric under a permutation of long-lived flows.  The ``solver``
choice is part of the spec (and so of the cache fingerprint): reference
and vector solvers agree only to integration tolerance, and a cache
key must name the arithmetic that produced its value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.bos import DEFAULT_BETA
from repro.core.fluid import PACKET_BITS, SAMPLE_STRIDE, tail_mean
from repro.fluid.laws import FLUID_SCHEMES
from repro.fluid.model import model_from_network
from repro.fluid.solver import FluidTrajectory, integrate_model
from repro.net.routing import DistinctPathSelector, Path
from repro.sim.random import RandomStreams
from repro.sim.units import (
    BitsPerSecond,
    Seconds,
    gigabits_per_second,
    microseconds,
    seconds,
)
from repro.topology.bottleneck import build_single_bottleneck
from repro.topology.fattree import build_fattree

TOPOLOGIES = ("bottleneck", "fattree")


@dataclass(frozen=True)
class FluidScenario:
    """One fluid cell: scheme x topology x flow population."""

    scheme: str = "xmp"
    topology: str = "bottleneck"
    #: Long-lived flows; every flow runs for the whole horizon.
    flows: int = 4
    subflows: int = 1
    duration: Seconds = seconds(0.2)
    dt: Seconds = seconds(2e-5)
    beta: float = DEFAULT_BETA
    #: Fat-tree port count (``topology="fattree"`` only).
    k: int = 4
    link_rate_bps: BitsPerSecond = gigabits_per_second(1)
    #: No-load RTT of the dumbbell (``topology="bottleneck"`` only).
    base_rtt: Seconds = microseconds(225)
    marking_threshold: int = 10
    queue_capacity: int = 100
    seed: int = 1
    solver: str = "reference"
    sample_stride: int = SAMPLE_STRIDE
    w0: float = 2.0

    def label(self) -> str:
        base = self.scheme.upper()
        if self.subflows > 1:
            base = f"{base}-{self.subflows}"
        return f"{base}/{self.topology}-f{self.flows}"


@dataclass
class FluidResult:
    """One integrated fluid cell plus its steady-state reductions."""

    scenario: FluidScenario
    trajectory: FluidTrajectory
    #: Flow id of each subflow (parallel to trajectory.windows/rates).
    flow_of_subflow: Tuple[int, ...] = ()
    num_flows: int = 0
    num_links: int = 0
    #: State updates performed — the events-processed equivalent the
    #: runner's throughput accounting uses.
    events: int = 0

    def steady_state_windows(self, tail_fraction: float = 0.3) -> List[float]:
        """Per-subflow tail-mean window, packets."""
        return self.trajectory.steady_state_windows(tail_fraction)

    def flow_goodputs_bps(self, tail_fraction: float = 0.3) -> List[float]:
        """Per-flow steady-state rate: subflow fluid rates summed, in bps."""
        rates = self.trajectory.steady_state_rates(tail_fraction)
        per_flow = [0.0] * self.num_flows
        for subflow, flow in enumerate(self.flow_of_subflow):
            per_flow[flow] += rates[subflow] * PACKET_BITS
        return per_flow

    def mean_goodput_bps(self, tail_fraction: float = 0.3) -> float:
        """Mean per-flow steady-state goodput, bps."""
        goodputs = self.flow_goodputs_bps(tail_fraction)
        return sum(goodputs) / len(goodputs) if goodputs else 0.0

    def steady_state_queue(
        self, link_name: str, tail_fraction: float = 0.3
    ) -> float:
        """Tail-mean queue of one named link, packets."""
        try:
            index = self.trajectory.link_names.index(link_name)
        except ValueError:
            raise KeyError(
                f"link {link_name!r} not in fluid model "
                f"({len(self.trajectory.link_names)} links)"
            ) from None
        return tail_mean(self.trajectory.queues[index], tail_fraction)

    def max_steady_state_queue(self, tail_fraction: float = 0.3) -> float:
        """The most congested link's tail-mean queue, packets."""
        return max(self.trajectory.steady_state_queues(tail_fraction))


def run_fluid(
    scenario: FluidScenario, use_cache: bool = True, cache=None
) -> FluidResult:
    """Run (or fetch from the runner cache) one fluid scenario."""
    from repro.runner import RunSpec, run_spec

    return run_spec(
        RunSpec("fluid", scenario), cache=cache, use_cache=use_cache
    ).value


def _permutation_pairs(
    hosts: Sequence[str], flows: int, rng
) -> List[Tuple[str, str]]:
    """Rounds of random permutation traffic: each host sends to one other.

    More flows than hosts means several permutation rounds (distinct
    shuffles), matching how the packet side's PermutationPattern places
    long-lived flows; self-pairs are rejected by reshuffling.
    """
    pairs: List[Tuple[str, str]] = []
    while len(pairs) < flows:
        destinations = list(hosts)
        for _ in range(64):
            rng.shuffle(destinations)
            if all(s != d for s, d in zip(hosts, destinations)):
                break
        else:  # pragma: no cover - vanishing probability
            destinations = list(hosts[1:]) + [hosts[0]]
        pairs.extend(zip(hosts, destinations))
    return pairs[:flows]


def _flow_paths(scenario: FluidScenario) -> Tuple[object, List[List[Path]]]:
    """Build the scenario's network and per-flow forward-path lists."""
    if scenario.topology == "bottleneck":
        net = build_single_bottleneck(
            num_pairs=scenario.flows,
            bottleneck_rate_bps=scenario.link_rate_bps,
            rtt=scenario.base_rtt,
            queue_capacity=scenario.queue_capacity,
            marking_threshold=scenario.marking_threshold,
        )
        # The dumbbell has one path per pair; extra subflows share it
        # (what multiple addresses on one physical path would do).
        flow_paths = [
            [net.flow_path(flow)] * scenario.subflows
            for flow in range(scenario.flows)
        ]
        return net, flow_paths
    if scenario.topology == "fattree":
        net = build_fattree(
            k=scenario.k,
            link_rate_bps=scenario.link_rate_bps,
            queue_capacity=scenario.queue_capacity,
            marking_threshold=scenario.marking_threshold,
        )
        streams = RandomStreams(scenario.seed)
        pairs = _permutation_pairs(
            net.host_names, scenario.flows, streams.stream("fluid-perm")
        )
        selector = DistinctPathSelector(streams.stream("fluid-paths"))
        flow_paths = [
            selector.select(net.paths(src, dst), flow, scenario.subflows)
            for flow, (src, dst) in enumerate(pairs)
        ]
        return net, flow_paths
    raise ValueError(
        f"unknown fluid topology {scenario.topology!r} (one of {TOPOLOGIES})"
    )


def _simulate(scenario: FluidScenario) -> FluidResult:
    """Integrate one fluid scenario (the registered ``fluid`` kind)."""
    if scenario.scheme not in FLUID_SCHEMES:
        raise ValueError(
            f"unknown fluid scheme {scenario.scheme!r} (one of {FLUID_SCHEMES})"
        )
    if scenario.flows < 1:
        raise ValueError(f"need at least one flow, got {scenario.flows}")
    if scenario.subflows < 1:
        raise ValueError(f"need at least one subflow, got {scenario.subflows}")
    net, flow_paths = _flow_paths(scenario)
    model = model_from_network(net, flow_paths)
    trajectory = integrate_model(
        model,
        scenario.scheme,
        duration=scenario.duration,
        dt=scenario.dt,
        beta=scenario.beta,
        w0=scenario.w0,
        sample_stride=scenario.sample_stride,
        solver=scenario.solver,
    )
    return FluidResult(
        scenario=scenario,
        trajectory=trajectory,
        flow_of_subflow=tuple(sf.flow for sf in model.subflows),
        num_flows=model.num_flows,
        num_links=len(model.links),
        events=trajectory.state_updates,
    )


__all__ = [
    "TOPOLOGIES",
    "FluidResult",
    "FluidScenario",
    "run_fluid",
]
