"""Fluid-model state extracted from a packet-level :class:`Network`.

A :class:`FluidModel` is the static description the solver integrates:
one :class:`FluidLink` per directed link that appears on any subflow
path (capacity in packets/s plus its queue's marking and drop knees),
and one :class:`FluidSubflow` per (flow, path) pair with the no-load
RTT precomputed from link delays and serialization times.

The extraction goes through the same objects the packet engine runs on
— :meth:`repro.net.network.Network.paths` enumeration, ``Link.delay``,
``Link.rate_bps``, queue ``threshold``/``capacity`` — so the two
backends cannot disagree about the topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.fluid import PACKET_BITS
from repro.net.network import Network
from repro.net.routing import Path
from repro.sim.units import Packets, Seconds

#: Reverse-path (ACK) size used in the no-load RTT: 40 B of TCP/IP
#: header, as in the packet engine's pure-ACK segments.
ACK_BITS = 40 * 8


@dataclass(frozen=True)
class FluidLink:
    """One directed link's fluid state parameters.

    ``ecn_threshold`` is the marking knee for ECN-capable schemes (the
    queue's K, or its capacity when the queue never marks);
    ``drop_threshold`` is the buffer-full knee loss-driven schemes react
    to (always the queue capacity).
    """

    name: str
    #: Service rate in packets/second (rate_bps / PACKET_BITS).
    capacity_pps: float
    ecn_threshold: Packets
    drop_threshold: Packets


@dataclass(frozen=True)
class FluidSubflow:
    """One subflow: its flow id, no-load RTT and forward-path links."""

    flow: int
    base_rtt: Seconds
    #: Indices into :attr:`FluidModel.links`, in hop order.
    links: Tuple[int, ...]


@dataclass(frozen=True)
class FluidModel:
    """The static inputs of one fluid integration."""

    links: Tuple[FluidLink, ...]
    #: Grouped contiguously by flow, flow ids ascending from 0 — the
    #: solver's per-flow segment reductions rely on this layout.
    subflows: Tuple[FluidSubflow, ...]
    num_flows: int

    def flow_slices(self) -> List[Tuple[int, int]]:
        """Per-flow ``(start, end)`` index ranges into :attr:`subflows`."""
        slices: List[Tuple[int, int]] = []
        start = 0
        for index, subflow in enumerate(self.subflows):
            if subflow.flow != self.subflows[start].flow:
                slices.append((start, index))
                start = index
        if self.subflows:
            slices.append((start, len(self.subflows)))
        return slices


def _no_load_rtt(net: Network, path: Path) -> Seconds:
    """Propagation plus serialization both ways, data out and ACKs back."""
    rtt = 0.0
    for link in path:
        rtt += link.delay + PACKET_BITS / link.rate_bps
    for link in net.reverse_path(path):
        rtt += link.delay + ACK_BITS / link.rate_bps
    return rtt


def model_from_network(
    net: Network, flow_paths: Sequence[Sequence[Path]]
) -> FluidModel:
    """Build a :class:`FluidModel` from per-flow forward-path lists.

    ``flow_paths[f]`` is the list of forward paths (one per subflow) of
    flow ``f``, as returned by :meth:`Network.paths` and the routing
    selectors.  Only links appearing on some forward path become fluid
    links — reverse (ACK) directions contribute their no-load delay but
    carry negligible load, exactly the approximation the shared-link
    model in :mod:`repro.core.fluid` makes.
    """
    link_index: Dict[str, int] = {}
    links: List[FluidLink] = []
    subflows: List[FluidSubflow] = []
    for flow, paths in enumerate(flow_paths):
        if not paths:
            raise ValueError(f"flow {flow} has no paths")
        for path in paths:
            if not path:
                raise ValueError(f"flow {flow} has an empty path")
            hop_indices = []
            for link in path:
                index = link_index.get(link.name)
                if index is None:
                    index = len(links)
                    link_index[link.name] = index
                    queue = link.queue
                    drop = float(queue.capacity)
                    ecn = float(getattr(queue, "threshold", queue.capacity))
                    links.append(
                        FluidLink(
                            name=link.name,
                            capacity_pps=link.rate_bps / PACKET_BITS,
                            ecn_threshold=ecn,
                            drop_threshold=drop,
                        )
                    )
                hop_indices.append(index)
            subflows.append(
                FluidSubflow(
                    flow=flow,
                    base_rtt=_no_load_rtt(net, path),
                    links=tuple(hop_indices),
                )
            )
    return FluidModel(
        links=tuple(links),
        subflows=tuple(subflows),
        num_flows=len(flow_paths),
    )


__all__ = [
    "ACK_BITS",
    "FluidLink",
    "FluidModel",
    "FluidSubflow",
    "model_from_network",
]
