"""Fluid-vs-packet cross-validation on the paper's golden scenarios.

The fluid backend's acceptance contract: on scenarios both backends can
run, steady-state windows, queues and per-flow goodputs must agree
within the documented tolerances below.  Two scenario families cover
the golden cells:

* **bottleneck** — the Fig. 1 dumbbell (N flows, 1 Gbps, RTT 225 us,
  K=10): per-flow steady-state window, bottleneck queue, per-flow
  goodput;
* **fattree** — the Table 1 permutation cell (k=4, XMP-2): mean
  per-flow goodput.

Tolerances are deliberately loose enough to absorb what the fluid
limit *cannot* model (the packet engine's sawtooth discreteness,
slow-start overshoot, stochastic path collisions) and tight enough to
catch a wrong equilibrium: a window off by Eq. 3's ``beta`` factor, a
queue settling away from K, or a goodput share off by a flow count.
``scripts/check.sh`` runs the quick variant as a smoke; the full
variant runs in the tier-1 suite (``tests/test_fluid_crosscheck.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.fluid import tail_mean
from repro.fluid.backend import FluidScenario, _simulate as _simulate_fluid
from repro.metrics.collector import PeriodicSampler, QueueMonitor
from repro.mptcp.connection import MptcpConnection
from repro.sim.units import (
    BitsPerSecond,
    Seconds,
    gigabits_per_second,
    microseconds,
    seconds,
)
from repro.topology.bottleneck import build_single_bottleneck

#: Relative tolerance on steady-state windows and goodputs.  The packet
#: sawtooth oscillates around the fluid equilibrium by ~1/(2 beta) and
#: discretizes to whole segments; 0.25 holds on every golden cell with
#: margin while a beta-factor error (2x) or an off-by-one-flow share
#: still fails.
WINDOW_RTOL = 0.25

#: Absolute tolerance (packets) on steady-state queue occupancy.  The
#: marking knee is ~2 packets wide and the packet queue jitters by a
#: few packets around it.
QUEUE_ATOL_PACKETS = 6.0

#: Relative tolerance on mean per-flow goodput in the fat tree.  Wider
#: than WINDOW_RTOL: the packet permutation adds slow start, finite
#: flow sizes and stochastic ECMP collisions the fluid limit averages
#: away.
GOODPUT_RTOL = 0.40

#: Tail fraction both sides average over for "steady state".
TAIL_FRACTION = 0.4


@dataclass(frozen=True)
class CrossCheck:
    """One fluid-vs-packet comparison."""

    name: str
    fluid: float
    packet: float
    tolerance: float
    mode: str  # "relative" or "absolute"

    @property
    def error(self) -> float:
        if self.mode == "relative":
            scale = max(abs(self.packet), 1e-12)
            return abs(self.fluid - self.packet) / scale
        return abs(self.fluid - self.packet)

    @property
    def ok(self) -> bool:
        return self.error <= self.tolerance

    def format(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"{self.name:<40} fluid {self.fluid:>12.3f}  "
            f"packet {self.packet:>12.3f}  err {self.error:>7.3f} "
            f"(tol {self.tolerance}, {self.mode})  {status}"
        )


class _CwndSampler(PeriodicSampler):
    """Periodic cwnd samples per named sender (packet-side tail means)."""

    def __init__(self, sim, senders, interval: Seconds, until=None) -> None:
        super().__init__(sim, interval, until)
        self.senders = dict(senders)
        self.times: List[float] = []
        self.samples: Dict[str, List[float]] = {
            name: [] for name in self.senders
        }

    def sample(self) -> None:
        self.times.append(self.sim.now)
        for name, sender in self.senders.items():
            self.samples[name].append(sender.cwnd)


def crosscheck_bottleneck(
    scheme: str = "xmp",
    flows: int = 4,
    duration: Seconds = seconds(0.3),
    bottleneck_rate_bps: BitsPerSecond = gigabits_per_second(1),
    base_rtt: Seconds = microseconds(225),
    marking_threshold: int = 10,
    queue_capacity: int = 100,
    beta: float = 4.0,
) -> List[CrossCheck]:
    """Fig. 1 dumbbell: windows, bottleneck queue and goodput, both ways."""
    # -- packet side ---------------------------------------------------
    net = build_single_bottleneck(
        num_pairs=flows,
        bottleneck_rate_bps=bottleneck_rate_bps,
        rtt=base_rtt,
        queue_capacity=queue_capacity,
        marking_threshold=marking_threshold,
    )
    connections = [
        MptcpConnection(
            net,
            f"S{i}",
            f"D{i}",
            [net.flow_path(i)],
            scheme=scheme,
            beta=beta,
        )
        for i in range(flows)
    ]
    for connection in connections:
        connection.start()
    sample_interval = duration / 300.0
    cwnd_sampler = _CwndSampler(
        net.sim,
        {
            f"flow{i}": connection.subflows[0].sender
            for i, connection in enumerate(connections)
        },
        interval=sample_interval,
        until=duration,
    )
    cwnd_sampler.start(sample_interval)
    queue_monitor = QueueMonitor(
        net.sim, [net.forward_bottleneck], sample_interval, until=duration
    )
    queue_monitor.start(sample_interval)
    net.sim.run(until=duration)

    packet_windows = [
        tail_mean(cwnd_sampler.samples[f"flow{i}"], TAIL_FRACTION)
        for i in range(flows)
    ]
    packet_queue = tail_mean(
        queue_monitor.occupancy[net.forward_bottleneck.name], TAIL_FRACTION
    )
    packet_goodputs = [
        connection.goodput_bps() for connection in connections
    ]

    # -- fluid side ----------------------------------------------------
    fluid = _simulate_fluid(
        FluidScenario(
            scheme=scheme,
            topology="bottleneck",
            flows=flows,
            subflows=1,
            duration=duration,
            beta=beta,
            link_rate_bps=bottleneck_rate_bps,
            base_rtt=base_rtt,
            marking_threshold=marking_threshold,
            queue_capacity=queue_capacity,
        )
    )
    fluid_windows = fluid.steady_state_windows(TAIL_FRACTION)
    fluid_queue = fluid.steady_state_queue(
        net.forward_bottleneck.name, TAIL_FRACTION
    )
    fluid_goodputs = fluid.flow_goodputs_bps(TAIL_FRACTION)

    mean = lambda values: sum(values) / len(values)  # noqa: E731
    return [
        CrossCheck(
            name=f"bottleneck/{scheme}/window",
            fluid=mean(fluid_windows),
            packet=mean(packet_windows),
            tolerance=WINDOW_RTOL,
            mode="relative",
        ),
        CrossCheck(
            name=f"bottleneck/{scheme}/queue",
            fluid=fluid_queue,
            packet=packet_queue,
            tolerance=QUEUE_ATOL_PACKETS,
            mode="absolute",
        ),
        CrossCheck(
            name=f"bottleneck/{scheme}/goodput",
            fluid=mean(fluid_goodputs),
            packet=mean(packet_goodputs),
            tolerance=WINDOW_RTOL,
            mode="relative",
        ),
    ]


def crosscheck_fattree(
    scheme: str = "xmp",
    subflows: int = 2,
    k: int = 4,
    duration: Seconds = seconds(0.3),
    seed: int = 1,
) -> List[CrossCheck]:
    """Table 1's permutation cell: mean per-flow goodput, k=4 fat tree."""
    from repro.experiments.fattree_eval import (
        FatTreeScenario,
        _simulate as _simulate_fattree,
    )

    packet = _simulate_fattree(
        FatTreeScenario(
            scheme=scheme,
            subflows=subflows,
            pattern="permutation",
            k=k,
            duration=duration,
            seed=seed,
        )
    )
    num_hosts = k ** 3 // 4
    fluid = _simulate_fluid(
        FluidScenario(
            scheme=scheme,
            topology="fattree",
            flows=num_hosts,
            subflows=subflows,
            duration=duration,
            k=k,
            seed=seed,
        )
    )
    return [
        CrossCheck(
            name=f"fattree-k{k}/{scheme}-{subflows}/goodput",
            fluid=fluid.mean_goodput_bps(TAIL_FRACTION),
            packet=packet.mean_goodput_bps(),
            tolerance=GOODPUT_RTOL,
            mode="relative",
        ),
    ]


def run_crosschecks(
    topology: str = "all",
    duration: Optional[Seconds] = None,
) -> List[CrossCheck]:
    """The cross-validation matrix the CLI and smoke checks run.

    ``topology`` selects "bottleneck", "fattree" or "all"; ``duration``
    shortens both sides uniformly (smoke mode) when given.
    """
    checks: List[CrossCheck] = []
    if topology in ("bottleneck", "all"):
        kwargs = {} if duration is None else {"duration": duration}
        for scheme in ("xmp", "dctcp"):
            checks.extend(crosscheck_bottleneck(scheme=scheme, **kwargs))
    if topology in ("fattree", "all"):
        kwargs = {} if duration is None else {"duration": duration}
        checks.extend(crosscheck_fattree(**kwargs))
    if topology not in ("bottleneck", "fattree", "all"):
        raise ValueError(f"unknown crosscheck topology {topology!r}")
    return checks


__all__ = [
    "GOODPUT_RTOL",
    "QUEUE_ATOL_PACKETS",
    "TAIL_FRACTION",
    "WINDOW_RTOL",
    "CrossCheck",
    "crosscheck_bottleneck",
    "crosscheck_fattree",
    "run_crosschecks",
]
